//! The single-pass contract, asserted end to end: a whole analysis set with
//! a 16-point transient curve plus two SLA windows performs **exactly one**
//! uniformized-matrix construction and **exactly one** power march.
//!
//! This file deliberately holds a single test: the
//! `dtc_markov::instrument` counters are process-wide, and Rust runs every
//! test of one binary in the same process — a sibling test solving chains
//! concurrently would pollute the deltas. One test per binary means one
//! process, so the deltas are exact.

use dtc_core::prelude::*;
use dtc_markov::instrument;

fn tiny_spec() -> CloudSystemSpec {
    CloudSystemSpec {
        ospm: ComponentParams::new(1000.0, 12.0),
        vm: VmParams { mttf_hours: 2880.0, mttr_hours: 0.5, start_hours: 0.1 },
        data_centers: vec![DataCenterSpec {
            label: "1".into(),
            pms: vec![PmSpec::hot(1, 1)],
            disaster: None,
            nas_net: None,
            backup_inbound_mtt_hours: None,
        }],
        backup: None,
        direct_mtt_hours: vec![vec![None]],
        min_running_vms: 1,
        migration_threshold: 1,
    }
}

#[test]
fn sixteen_point_transient_plus_two_intervals_cost_one_build_and_one_march() {
    let spec = tiny_spec();
    let model = CloudModel::build(&spec).unwrap();
    // Pin the baseline run to the serial path (threads = 1); the re-run at
    // the end asserts 4 threads change nothing.
    let mut opts = EvalOptions::default();
    opts.solver.threads = 1;
    let graph = model.state_space(&opts).unwrap();

    // 16 points, unsorted with a duplicate and a zero — the full contract.
    let mut times: Vec<f64> = (1..=13).map(|i| i as f64 * 673.5).collect();
    times.extend([0.0, 24.0, 673.5]);
    assert_eq!(times.len(), 16);
    let requests = [
        AnalysisRequest::SteadyState,
        AnalysisRequest::Transient { time_points: times.clone() },
        AnalysisRequest::Interval { horizon_hours: 8760.0 },
        AnalysisRequest::Interval { horizon_hours: 720.0 },
    ];

    let builds0 = instrument::uniformized_builds();
    let marches0 = instrument::transient_marches();
    let reports = model.evaluate_all_on(&spec, &graph, &requests, &opts).unwrap();
    let builds = instrument::uniformized_builds() - builds0;
    let marches = instrument::transient_marches() - marches0;
    assert_eq!(builds, 1, "whole analysis set must build the uniformized matrix once");
    assert_eq!(marches, 1, "16 transient points + 2 horizons must share one power march");

    // Numerical equivalence with the per-point engines (which cost one
    // build + march EACH — 18 passes where the set above used 1).
    let AnalysisReport::Transient { availability, time_points } = &reports[1] else {
        panic!("transient report expected");
    };
    assert_eq!(*time_points, times, "caller order preserved");
    for (&t, &a) in times.iter().zip(availability) {
        let per_point = graph.transient(t).unwrap().probability(&model.availability_expr());
        assert_eq!(a, per_point, "t = {t}: single pass must match per-point exactly");
    }
    let expr = model.availability_expr();
    let up: Vec<bool> = graph
        .states()
        .iter()
        .map(|m| expr.eval(&|p: dtc_petri::PlaceId| m[p.index()]))
        .collect();
    for (report, horizon) in reports[2..].iter().zip([8760.0, 720.0]) {
        let AnalysisReport::Interval { availability, horizon_hours } = report else {
            panic!("interval report expected");
        };
        assert_eq!(*horizon_hours, horizon);
        // Compare against the legacy per-horizon engine, straight from
        // dtc-markov (one build + one march per call).
        let per_point = dtc_markov::interval_availability(
            graph.ctmc(),
            &graph.initial_pi0(),
            horizon,
            |i| up[i],
        )
        .unwrap();
        assert_eq!(
            *availability, per_point,
            "h = {horizon}: single pass must match per-horizon exactly"
        );
    }
    assert!((availability[13] - 1.0).abs() < 1e-12, "A(0) = 1 from the fully-up marking");
    let dup = (times.iter().position(|&t| t == 673.5).unwrap(), 15);
    assert_eq!(availability[dup.0], availability[dup.1], "duplicate times agree");

    // Parallelism must not change the work count: the same analysis set at
    // 4 worker threads is still exactly one build and one march (threads
    // split row blocks *inside* the march; they never add passes), and the
    // reports are byte-identical to the serial run — the deterministic-
    // kernel contract (dtc_markov::par) observed through the full
    // model → state space → analysis pipeline. This stays in the same test
    // fn so the process-wide counter deltas remain exact.
    let mut opts4 = EvalOptions::default();
    opts4.solver.threads = 4;
    let builds0 = instrument::uniformized_builds();
    let marches0 = instrument::transient_marches();
    let reports4 = model.evaluate_all_on(&spec, &graph, &requests, &opts4).unwrap();
    let builds = instrument::uniformized_builds() - builds0;
    let marches = instrument::transient_marches() - marches0;
    assert_eq!(builds, 1, "4 threads must not change the build count");
    assert_eq!(marches, 1, "4 threads must still share one power march");
    assert_eq!(
        format!("{reports:?}"),
        format!("{reports4:?}"),
        "reports at 4 threads must be byte-identical to the serial run"
    );
}
