//! The unified analysis API: typed requests and the multi-metric report
//! union.
//!
//! The paper evaluates more than steady-state availability — transient
//! curves, SLA-window (interval) availability, time to first service
//! failure, capacity/COA thresholds, cost trade-offs, and simulative
//! cross-validation. [`AnalysisRequest`] names each of those analyses as a
//! value, [`AnalysisReport`] carries each result, and
//! [`crate::CloudModel::evaluate_all`] runs any set of them against **one**
//! state-space construction (the expensive step for the ~126k-state case
//! study) instead of regenerating it per metric.
//!
//! The same vocabulary flows through every layer: scenario catalogs declare
//! an `[analyses]` section, the evaluation cache keys entries by spec +
//! options + analysis set, and the HTTP service exposes the full union at
//! `POST /v2/evaluate`.
//!
//! # Examples
//!
//! Run three analyses — including a parameter-sensitivity sweep — against
//! one state-space construction. The sensitivity baseline reuses the
//! analysis set's shared steady-state solve; only the perturbed models are
//! rebuilt:
//!
//! ```
//! use dtc_core::prelude::*;
//!
//! let spec = CloudSystemSpec {
//!     ospm: ComponentParams::new(1000.0, 12.0),
//!     vm: VmParams { mttf_hours: 2880.0, mttr_hours: 0.5, start_hours: 0.1 },
//!     data_centers: vec![DataCenterSpec {
//!         label: "1".into(),
//!         pms: vec![PmSpec::hot(1, 1)],
//!         disaster: None,
//!         nas_net: None,
//!         backup_inbound_mtt_hours: None,
//!     }],
//!     backup: None,
//!     direct_mtt_hours: vec![vec![None]],
//!     min_running_vms: 1,
//!     migration_threshold: 1,
//! };
//! let model = CloudModel::build(&spec)?;
//! let reports = model.evaluate_all(
//!     &spec,
//!     &[
//!         AnalysisRequest::SteadyState,
//!         AnalysisRequest::Mttsf,
//!         // Only the VM knobs, ±5% around the base point.
//!         AnalysisRequest::Sensitivity {
//!             parameters: vec!["vm_mttf".into(), "vm_mttr".into()],
//!             rel_step: 0.05,
//!         },
//!     ],
//!     &EvalOptions::default(),
//! )?;
//! assert_eq!(reports.len(), 3);
//! let AnalysisReport::Sensitivity { rows, .. } = &reports[2] else {
//!     panic!("reports come back in request order");
//! };
//! assert_eq!(rows.len(), 2, "filtered to the two VM dependability knobs");
//! assert!(rows[0].elasticity.abs() >= rows[1].elasticity.abs(), "ranked");
//! # Ok::<(), CloudError>(())
//! ```

use crate::economics::{CostBreakdown, CostModel};
use crate::error::Result;
use crate::metrics::AvailabilityReport;
use crate::sensitivity::{SensitivityRow, DEFAULT_REL_STEP};
use dtc_petri::expr::BoolExpr;
use dtc_petri::reach::TangibleGraph;
use dtc_petri::PlaceId;

/// One requested analysis, with its parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisRequest {
    /// Long-run availability, COA, downtime — the paper's headline report.
    SteadyState,
    /// Point availability `A(t)` at each time (hours).
    Transient {
        /// Evaluation times in hours since the fully-up initial marking.
        time_points: Vec<f64>,
    },
    /// Expected interval availability over `[0, horizon]` hours.
    Interval {
        /// SLA window length in hours (8760 = first year).
        horizon_hours: f64,
    },
    /// Mean time to first service failure, hours.
    Mttsf,
    /// `P{running VMs >= k}` for every threshold `k = 0..=N`.
    CapacityThresholds,
    /// Expected annual cost under a [`CostModel`].
    Cost {
        /// Cost-rate assumptions.
        model: CostModel,
    },
    /// Discrete-event simulation estimate of steady availability.
    Simulation {
        /// Independent replications to run.
        batches: u32,
        /// Base RNG seed.
        seed: u64,
    },
    /// Parameter-sensitivity ranking: availability elasticities
    /// `∂ ln A / ∂ ln θ` by central differences, strongest knob first.
    Sensitivity {
        /// Parameter filter: exact keys (`"nas_mttf_1"`) or family names
        /// (`"vm_mttf"`); empty selects every applicable parameter.
        /// Entries that match nothing on a given architecture are skipped
        /// (see [`crate::sensitivity::filtered_parameters`]).
        parameters: Vec<String>,
        /// Relative perturbation step in `(0, 1)` (0.05 = ±5%).
        rel_step: f64,
    },
}

impl AnalysisRequest {
    /// The stable kind name used by catalogs, the CLI and the HTTP API.
    pub fn kind(&self) -> &'static str {
        match self {
            AnalysisRequest::SteadyState => "steady_state",
            AnalysisRequest::Transient { .. } => "transient",
            AnalysisRequest::Interval { .. } => "interval",
            AnalysisRequest::Mttsf => "mttsf",
            AnalysisRequest::CapacityThresholds => "capacity_thresholds",
            AnalysisRequest::Cost { .. } => "cost",
            AnalysisRequest::Simulation { .. } => "simulation",
            AnalysisRequest::Sensitivity { .. } => "sensitivity",
        }
    }

    /// Default transient grid: one day, one week, one month, one year.
    pub fn default_transient() -> AnalysisRequest {
        AnalysisRequest::Transient { time_points: vec![24.0, 168.0, 720.0, 8760.0] }
    }

    /// Default SLA window: the first year of operation.
    pub fn default_interval() -> AnalysisRequest {
        AnalysisRequest::Interval { horizon_hours: 8760.0 }
    }

    /// Default simulation: a small cross-validation run.
    pub fn default_simulation() -> AnalysisRequest {
        AnalysisRequest::Simulation { batches: 4, seed: 0xD7C1_0AD5 }
    }

    /// Default sensitivity sweep: every applicable parameter, ±5%.
    pub fn default_sensitivity() -> AnalysisRequest {
        AnalysisRequest::Sensitivity { parameters: Vec::new(), rel_step: DEFAULT_REL_STEP }
    }

    /// A request with default parameters for `kind`, or `None` if the kind
    /// is unknown.
    pub fn from_kind(kind: &str) -> Option<AnalysisRequest> {
        match kind {
            "steady_state" | "steady" => Some(AnalysisRequest::SteadyState),
            "transient" => Some(AnalysisRequest::default_transient()),
            "interval" => Some(AnalysisRequest::default_interval()),
            "mttsf" => Some(AnalysisRequest::Mttsf),
            "capacity_thresholds" | "capacity" => Some(AnalysisRequest::CapacityThresholds),
            "cost" => Some(AnalysisRequest::Cost { model: CostModel::default() }),
            "simulation" | "sim" => Some(AnalysisRequest::default_simulation()),
            "sensitivity" => Some(AnalysisRequest::default_sensitivity()),
            _ => None,
        }
    }
}

/// The result of one [`AnalysisRequest`], same order, same variant.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisReport {
    /// Steady-state dependability report.
    SteadyState(AvailabilityReport),
    /// `A(t)` sampled at the requested times.
    Transient {
        /// The requested times, hours.
        time_points: Vec<f64>,
        /// `A(t)` at each time.
        availability: Vec<f64>,
    },
    /// Expected uptime fraction over the window.
    Interval {
        /// The requested window, hours.
        horizon_hours: f64,
        /// Expected interval availability.
        availability: f64,
    },
    /// Mean time to first service failure.
    Mttsf {
        /// Expected hours until running VMs first drop below `k`.
        hours: f64,
    },
    /// Availability for every service threshold.
    CapacityThresholds {
        /// Entry `k` is `P{running VMs >= k}`, `k = 0..=N`.
        availability: Vec<f64>,
    },
    /// Expected annual cost.
    Cost {
        /// Downtime vs infrastructure split.
        breakdown: CostBreakdown,
    },
    /// Simulation estimate of steady availability.
    Simulation {
        /// Sample mean across replications.
        mean: f64,
        /// Confidence-interval half width.
        half_width: f64,
        /// Replications run.
        replications: usize,
        /// Confidence level of the interval.
        confidence: f64,
    },
    /// Ranked availability elasticities, strongest knob first.
    Sensitivity {
        /// The relative perturbation step used.
        rel_step: f64,
        /// One row per evaluated parameter, sorted by `|elasticity|`
        /// descending.
        rows: Vec<SensitivityRow>,
    },
}

impl AnalysisReport {
    /// The stable kind name (matches [`AnalysisRequest::kind`]).
    pub fn kind(&self) -> &'static str {
        match self {
            AnalysisReport::SteadyState(_) => "steady_state",
            AnalysisReport::Transient { .. } => "transient",
            AnalysisReport::Interval { .. } => "interval",
            AnalysisReport::Mttsf { .. } => "mttsf",
            AnalysisReport::CapacityThresholds { .. } => "capacity_thresholds",
            AnalysisReport::Cost { .. } => "cost",
            AnalysisReport::Simulation { .. } => "simulation",
            AnalysisReport::Sensitivity { .. } => "sensitivity",
        }
    }

    /// The steady-state report, if this is the steady-state variant.
    pub fn steady_state(&self) -> Option<&AvailabilityReport> {
        match self {
            AnalysisReport::SteadyState(r) => Some(r),
            _ => None,
        }
    }
}

/// Finds the first steady-state report in an analysis set.
pub fn first_steady_state(reports: &[AnalysisReport]) -> Option<&AvailabilityReport> {
    reports.iter().find_map(AnalysisReport::steady_state)
}

/// The transient and interval results of one shared uniformization pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AvailabilityCurves {
    /// `P{pred}` at each requested time point, in caller order.
    pub point: Vec<f64>,
    /// Expected interval availability over `[0, h]` for each requested
    /// horizon, in caller order.
    pub interval: Vec<f64>,
}

/// Evaluates every transient time point **and** every interval horizon in
/// one uniformization pass over the graph's CTMC (one matrix build, one
/// power march — see [`dtc_markov::curve`]).
///
/// Time points may be unsorted, duplicated, or zero; results come back in
/// caller order, bit-identical to the per-point solvers. Horizons must be
/// positive.
pub fn availability_curves(
    graph: &TangibleGraph,
    pred: &BoolExpr,
    times: &[f64],
    horizons: &[f64],
) -> Result<AvailabilityCurves> {
    availability_curves_with(graph, pred, times, horizons, 0)
}

/// [`availability_curves`] with an explicit worker-thread count for the
/// march kernels (`0` = one per core, `1` = serial). A pure scheduling
/// knob: results are bit-identical at every value (`dtc_markov::par`), so
/// callers key caches without it. This is where
/// `SolverOptions::threads` enters the evaluation pipeline (see
/// [`crate::CloudModel::evaluate_all_on`]).
pub fn availability_curves_with(
    graph: &TangibleGraph,
    pred: &BoolExpr,
    times: &[f64],
    horizons: &[f64],
    threads: usize,
) -> Result<AvailabilityCurves> {
    if let Some(&bad) = horizons.iter().find(|&&h| h <= 0.0) {
        return Err(
            dtc_petri::PetriError::from(dtc_markov::MarkovError::NegativeTime(bad)).into()
        );
    }
    let up: Vec<f64> = graph
        .states()
        .iter()
        .map(|m| if pred.eval(&|p: PlaceId| m[p.index()]) { 1.0 } else { 0.0 })
        .collect();
    let pi0 = graph.initial_pi0();
    let opts = dtc_markov::PassOptions { threads, ..Default::default() };
    let pass =
        dtc_markov::uniformized_pass_with(graph.ctmc(), &pi0, times, horizons, &up, &opts)
            .map_err(dtc_petri::PetriError::from)?;
    Ok(AvailabilityCurves {
        point: pass.distributions.iter().map(|pi| dtc_markov::dot(pi, &up)).collect(),
        interval: pass.cumulative.iter().zip(horizons).map(|(a, &h)| a / h).collect(),
    })
}

/// `P{pred}` at each requested time, starting from the graph's initial
/// distribution — the transient engine shared by
/// [`crate::CloudModel::transient_availability`]. The whole curve costs a
/// single uniformization pass regardless of how many times are requested.
pub fn transient_probability_curve(
    graph: &TangibleGraph,
    pred: &BoolExpr,
    times: &[f64],
) -> Result<Vec<f64>> {
    Ok(availability_curves(graph, pred, times, &[])?.point)
}

/// Expected fraction of `[0, horizon]` spent in states satisfying `pred` —
/// the interval engine shared by
/// [`crate::CloudModel::interval_availability`]. For several horizons at
/// once, [`availability_curves`] shares one pass across all of them.
pub fn interval_probability(
    graph: &TangibleGraph,
    pred: &BoolExpr,
    horizon_hours: f64,
) -> Result<f64> {
    Ok(availability_curves(graph, pred, &[], &[horizon_hours])?.interval[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::add_simple_component;
    use crate::params::ComponentParams;
    use dtc_petri::expr::IntExpr;
    use dtc_petri::model::PetriNetBuilder;
    use dtc_petri::reach::{explore, ReachOptions};

    /// A single SIMPLE_COMPONENT is the textbook two-state machine:
    /// `A(t) = μ/(λ+μ) + λ/(λ+μ)·e^{-(λ+μ)t}` and the interval
    /// availability has the closed form
    /// `IA(T) = μ/(λ+μ) + λ/((λ+μ)²T)·(1 - e^{-(λ+μ)T})`.
    fn two_state_graph(mttf: f64, mttr: f64) -> (TangibleGraph, BoolExpr) {
        let mut b = PetriNetBuilder::new();
        let c = add_simple_component(&mut b, "C", ComponentParams::new(mttf, mttr));
        let net = b.build().unwrap();
        let graph = explore(&net, &ReachOptions::default()).unwrap();
        assert_eq!(graph.num_states(), 2, "single component is a two-state chain");
        (graph, IntExpr::tokens(c.up).gt(0))
    }

    #[test]
    fn transient_curve_matches_closed_form_two_state() {
        let (mttf, mttr) = (1000.0, 20.0);
        let (lambda, mu) = (1.0 / mttf, 1.0 / mttr);
        let (graph, up) = two_state_graph(mttf, mttr);
        let times = [0.0, 1.0, 5.0, 20.0, 100.0, 1000.0, 50_000.0];
        let curve = transient_probability_curve(&graph, &up, &times).unwrap();
        for (&t, &a) in times.iter().zip(&curve) {
            let exact =
                mu / (lambda + mu) + lambda / (lambda + mu) * (-(lambda + mu) * t).exp();
            assert!((a - exact).abs() < 1e-9, "A({t}) = {a}, closed form {exact}");
        }
    }

    #[test]
    fn interval_probability_matches_closed_form_two_state() {
        let (mttf, mttr) = (500.0, 10.0);
        let (lambda, mu) = (1.0 / mttf, 1.0 / mttr);
        let rate = lambda + mu;
        let (graph, up) = two_state_graph(mttf, mttr);
        for horizon in [1.0, 24.0, 8760.0, 1e6] {
            let ia = interval_probability(&graph, &up, horizon).unwrap();
            let exact =
                mu / rate + lambda / (rate * rate * horizon) * (1.0 - (-rate * horizon).exp());
            assert!((ia - exact).abs() < 1e-8, "IA({horizon}) = {ia}, closed form {exact}");
        }
    }

    #[test]
    fn kinds_round_trip_and_defaults() {
        for kind in [
            "steady_state",
            "transient",
            "interval",
            "mttsf",
            "capacity_thresholds",
            "cost",
            "simulation",
            "sensitivity",
        ] {
            let req = AnalysisRequest::from_kind(kind).unwrap();
            assert_eq!(req.kind(), kind);
        }
        assert_eq!(
            AnalysisRequest::from_kind("sensitivity").unwrap(),
            AnalysisRequest::Sensitivity { parameters: vec![], rel_step: 0.05 },
            "default sensitivity sweeps everything at ±5%"
        );
        assert_eq!(AnalysisRequest::from_kind("steady").unwrap(), AnalysisRequest::SteadyState);
        assert_eq!(
            AnalysisRequest::from_kind("capacity").unwrap(),
            AnalysisRequest::CapacityThresholds
        );
        assert!(AnalysisRequest::from_kind("nope").is_none());
        assert!(matches!(
            AnalysisRequest::default_transient(),
            AnalysisRequest::Transient { time_points } if time_points.len() == 4
        ));
    }

    #[test]
    fn first_steady_state_scans_the_set() {
        let reports = vec![
            AnalysisReport::Mttsf { hours: 100.0 },
            AnalysisReport::SteadyState(AvailabilityReport::new(
                0.99,
                1.0,
                1,
                dtc_petri::ReachStats::default(),
                dtc_markov::SolveStats {
                    iterations: 1,
                    residual: 0.0,
                    method: dtc_markov::Method::Direct,
                },
            )),
        ];
        assert!(first_steady_state(&reports).is_some());
        assert!(first_steady_state(&reports[..1]).is_none());
    }
}
