//! The paper's Section V case study, as reusable scenario generators.
//!
//! * **Table VII** — eight baseline architectures: one/two/four machines in
//!   a single data center, and five two-data-center deployments
//!   (Rio de Janeiro paired with Brasília, Recife, New York, Calcutta,
//!   Tokyo) at α = 0.35 and a 100-year disaster MTTF.
//! * **Figure 7** — the full sweep: every city pair × α ∈ {0.35, 0.40,
//!   0.45} × disaster mean time ∈ {100, 200, 300} years, reported as the
//!   improvement in number of nines over that pair's baseline.
//!
//! The Backup Server sits in São Paulo; VM images are 4 GB; at least two
//! running VMs are required (`k = 2`); a VM boots in five minutes; a data
//! center takes one year to recover from a disaster.

use crate::params::PaperParams;
use crate::system::{CloudSystemSpec, DataCenterSpec, PmSpec};
use dtc_geo::{
    haversine_km, City, WanModel, BRASILIA, CALCUTTA, NEW_YORK, RECIFE, RIO_DE_JANEIRO,
    SAO_PAULO, TOKYO,
};

/// The five case-study secondary sites (primary is always Rio de Janeiro).
pub const SECONDARY_CITIES: [City; 5] = [BRASILIA, RECIFE, NEW_YORK, CALCUTTA, TOKYO];

/// The α values swept by the paper.
pub const ALPHAS: [f64; 3] = [0.35, 0.40, 0.45];

/// The disaster mean times (years) swept by the paper.
pub const DISASTER_YEARS: [f64; 3] = [100.0, 200.0, 300.0];

/// Baseline sweep point: α = 0.35, disaster mean time = 100 years.
pub const BASELINE_ALPHA: f64 = 0.35;
/// Baseline disaster mean time in years.
pub const BASELINE_DISASTER_YEARS: f64 = 100.0;

/// Case-study context: dependability parameters, WAN model and the backup
/// site.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Component parameters (Table VI).
    pub params: PaperParams,
    /// Distance → throughput model.
    pub wan: WanModel,
    /// Primary site (Rio de Janeiro in the paper).
    pub primary: City,
    /// Backup Server location (São Paulo in the paper).
    pub backup_site: City,
}

impl CaseStudy {
    /// The paper's configuration.
    pub fn paper() -> Self {
        CaseStudy {
            params: PaperParams::table_vi(),
            wan: WanModel::paper_calibrated(),
            primary: RIO_DE_JANEIRO,
            backup_site: SAO_PAULO,
        }
    }

    /// Mean VM-migration time between the primary DC and `secondary`
    /// (hours).
    pub fn mtt_dcs_hours(&self, secondary: &City, alpha: f64) -> f64 {
        self.wan.mtt_between_hours(&self.primary, secondary, alpha, self.params.vm_size_gb)
    }

    /// Mean restore time from the Backup Server into a DC at `city` (hours).
    pub fn mtt_backup_hours(&self, city: &City, alpha: f64) -> f64 {
        self.wan.mtt_between_hours(&self.backup_site, city, alpha, self.params.vm_size_gb)
    }

    /// Single-data-center architecture with `machines` PMs
    /// (Table VII rows 1–3).
    ///
    /// Placement: four VMs spread over up to two hot PMs (two VMs each,
    /// matching "up to two VMs per machine"); additional PMs join the warm
    /// pool. The one-machine row hosts two VMs on its single PM.
    /// Disasters strike with the baseline 100-year mean.
    ///
    /// # Panics
    ///
    /// Panics if `machines == 0`.
    pub fn single_dc_spec(&self, machines: usize) -> CloudSystemSpec {
        assert!(machines > 0, "need at least one machine");
        let p = &self.params;
        let mut pms = Vec::with_capacity(machines);
        for i in 0..machines {
            if i < 2 {
                pms.push(PmSpec::hot(2, 2));
            } else {
                pms.push(PmSpec::warm(2));
            }
        }
        CloudSystemSpec {
            ospm: p.ospm_folded().expect("Table VI folds"),
            vm: p.vm_params(),
            data_centers: vec![DataCenterSpec {
                label: "1".into(),
                pms,
                disaster: Some(p.disaster(BASELINE_DISASTER_YEARS)),
                nas_net: Some(p.nas_net_folded().expect("Table VI folds")),
                backup_inbound_mtt_hours: None,
            }],
            backup: None,
            direct_mtt_hours: vec![vec![None]],
            min_running_vms: p.min_running_vms,
            migration_threshold: 1,
        }
    }

    /// Two-data-center architecture (Fig. 6): primary DC in Rio with two
    /// hot PMs (2 VMs each), secondary DC at `secondary` with two warm PMs,
    /// Backup Server in São Paulo, disasters in both DCs.
    pub fn two_dc_spec(
        &self,
        secondary: &City,
        alpha: f64,
        disaster_years: f64,
    ) -> CloudSystemSpec {
        let p = &self.params;
        let mtt = self.mtt_dcs_hours(secondary, alpha);
        let bk1 = self.mtt_backup_hours(&self.primary, alpha);
        let bk2 = self.mtt_backup_hours(secondary, alpha);
        let mk_dc = |label: &str, hot: bool, backup_mtt: f64| DataCenterSpec {
            label: label.into(),
            pms: if hot {
                vec![PmSpec::hot(2, 2), PmSpec::hot(2, 2)]
            } else {
                vec![PmSpec::warm(2), PmSpec::warm(2)]
            },
            disaster: Some(p.disaster(disaster_years)),
            nas_net: Some(p.nas_net_folded().expect("Table VI folds")),
            backup_inbound_mtt_hours: Some(backup_mtt),
        };
        CloudSystemSpec {
            ospm: p.ospm_folded().expect("Table VI folds"),
            vm: p.vm_params(),
            data_centers: vec![mk_dc("1", true, bk1), mk_dc("2", false, bk2)],
            backup: Some(p.backup),
            direct_mtt_hours: vec![vec![None, Some(mtt)], vec![Some(mtt), None]],
            min_running_vms: p.min_running_vms,
            migration_threshold: 1,
        }
    }

    /// Distance from the primary site to `secondary` in km.
    pub fn distance_km(&self, secondary: &City) -> f64 {
        haversine_km(&self.primary, secondary)
    }
}

/// A named scenario (used by the Table VII harness).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Row label as printed in the paper.
    pub name: String,
    /// The system to evaluate.
    pub spec: CloudSystemSpec,
}

/// The eight Table VII rows.
pub fn table_vii_scenarios(cs: &CaseStudy) -> Vec<Scenario> {
    let mut rows = vec![
        Scenario { name: "Cloud system with one machine".into(), spec: cs.single_dc_spec(1) },
        Scenario {
            name: "Cloud system with two machines in one data center".into(),
            spec: cs.single_dc_spec(2),
        },
        Scenario {
            name: "Cloud system with four machines in one data center".into(),
            spec: cs.single_dc_spec(4),
        },
    ];
    for city in SECONDARY_CITIES {
        rows.push(Scenario {
            name: format!("Baseline architecture: Rio de janeiro - {}", city.name),
            spec: cs.two_dc_spec(&city, BASELINE_ALPHA, BASELINE_DISASTER_YEARS),
        });
    }
    rows
}

/// One point of the Figure 7 sweep.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    /// Secondary city.
    pub city: City,
    /// Network quality constant.
    pub alpha: f64,
    /// Disaster mean time in years.
    pub disaster_years: f64,
    /// Whether this is the pair's baseline configuration.
    pub is_baseline: bool,
    /// The system to evaluate.
    pub spec: CloudSystemSpec,
}

/// The full Figure 7 sweep: 5 cities × 3 α × 3 disaster means (45 points,
/// of which 5 are the per-pair baselines).
pub fn figure7_scenarios(cs: &CaseStudy) -> Vec<Fig7Point> {
    let mut out = Vec::with_capacity(45);
    for city in SECONDARY_CITIES {
        for alpha in ALPHAS {
            for years in DISASTER_YEARS {
                out.push(Fig7Point {
                    city,
                    alpha,
                    disaster_years: years,
                    is_baseline: alpha == BASELINE_ALPHA && years == BASELINE_DISASTER_YEARS,
                    spec: cs.two_dc_spec(&city, alpha, years),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_case_study_mtts_increase_with_distance() {
        let cs = CaseStudy::paper();
        let mut prev = 0.0;
        for city in SECONDARY_CITIES {
            let mtt = cs.mtt_dcs_hours(&city, 0.35);
            assert!(mtt > prev, "{}: {mtt}", city.name);
            prev = mtt;
        }
    }

    #[test]
    fn mtt_decreases_with_alpha() {
        let cs = CaseStudy::paper();
        let a = cs.mtt_dcs_hours(&TOKYO, 0.35);
        let b = cs.mtt_dcs_hours(&TOKYO, 0.45);
        assert!(b < a);
        assert!((a / b - 0.45 / 0.35).abs() < 1e-9);
    }

    #[test]
    fn table_vii_has_eight_rows() {
        let cs = CaseStudy::paper();
        let rows = table_vii_scenarios(&cs);
        assert_eq!(rows.len(), 8);
        assert!(rows[0].name.contains("one machine"));
        assert!(rows[7].name.contains("Tokio"));
        // Single-DC rows have no backup; two-DC rows do.
        assert!(rows[0].spec.backup.is_none());
        assert!(rows[3].spec.backup.is_some());
        assert_eq!(rows[3].spec.data_centers.len(), 2);
    }

    #[test]
    fn single_dc_placement() {
        let cs = CaseStudy::paper();
        let one = cs.single_dc_spec(1);
        assert_eq!(one.total_vms(), 2);
        let two = cs.single_dc_spec(2);
        assert_eq!(two.total_vms(), 4);
        let four = cs.single_dc_spec(4);
        assert_eq!(four.total_vms(), 4);
        assert_eq!(four.total_pms(), 4);
        // Two of the four are warm.
        let warm = four.data_centers[0].pms.iter().filter(|p| p.initial_vms == 0).count();
        assert_eq!(warm, 2);
    }

    #[test]
    fn figure7_sweep_structure() {
        let cs = CaseStudy::paper();
        let pts = figure7_scenarios(&cs);
        assert_eq!(pts.len(), 45);
        assert_eq!(pts.iter().filter(|p| p.is_baseline).count(), 5);
        // All specs share k=2 and N=4.
        for p in &pts {
            assert_eq!(p.spec.min_running_vms, 2);
            assert_eq!(p.spec.total_vms(), 4);
        }
    }

    #[test]
    fn two_dc_spec_mtt_matrix_symmetric() {
        let cs = CaseStudy::paper();
        let spec = cs.two_dc_spec(&BRASILIA, 0.4, 200.0);
        assert_eq!(spec.direct_mtt_hours[0][1], spec.direct_mtt_hours[1][0]);
        assert!(spec.direct_mtt_hours[0][1].unwrap() > 0.0);
        // Backup restore into Rio is faster than into Tokyo.
        let spec_tokyo = cs.two_dc_spec(&TOKYO, 0.4, 200.0);
        let bk1 = spec_tokyo.data_centers[0].backup_inbound_mtt_hours.unwrap();
        let bk2 = spec_tokyo.data_centers[1].backup_inbound_mtt_hours.unwrap();
        assert!(bk1 < bk2);
    }
}
