//! # dtc-core — dependability models for disaster-tolerant clouds
//!
//! Reproduction of *"Dependability Models for Designing Disaster Tolerant
//! Cloud Computing Systems"* (Silva, Maciel, Tavares, Zimmermann — DSN 2013):
//! hierarchical RBD + GSPN availability models for IaaS clouds deployed
//! across geographically distributed data centers, under disaster occurrence
//! and distance-dependent VM migration times.
//!
//! The crate provides:
//!
//! * the paper's SPN building blocks ([`blocks`]): `SIMPLE_COMPONENT`,
//!   `VM_BEHAVIOR`, and the transmission component,
//! * RBD → SPN parameter folding ([`params`], via [`dtc_rbd`]),
//! * a whole-system compiler ([`system`]) from a [`CloudSystemSpec`]
//!   (data centers, hot/warm PM pools, disasters, backup server, migration
//!   matrix) to a solvable GSPN,
//! * dependability metrics ([`metrics`]): availability, number of nines,
//!   downtime, capacity-oriented availability,
//! * the paper's full case study ([`scenarios`]): Table VII rows and the
//!   Figure 7 sweep,
//! * a parallel scenario-sweep harness ([`sweep`]).
//!
//! # Quickstart
//!
//! The full two-DC case-study model has ~126 000 tangible states; build it
//! in release mode (it is exercised end-to-end by the workspace integration
//! tests and the `table7`/`fig7` binaries):
//!
//! ```no_run
//! use dtc_core::prelude::*;
//!
//! // Two data centers 900 km apart, Table VI parameters.
//! let cs = CaseStudy::paper();
//! let spec = cs.two_dc_spec(&dtc_geo::BRASILIA, 0.35, 100.0);
//! let model = CloudModel::build(&spec)?;
//! let report = model.evaluate(&EvalOptions::default())?;
//! assert!(report.availability > 0.99);
//!
//! // Or run several analyses against one state-space construction:
//! let reports = model.evaluate_all(
//!     &spec,
//!     &[AnalysisRequest::SteadyState, AnalysisRequest::Mttsf],
//!     &EvalOptions::default(),
//! )?;
//! assert_eq!(reports.len(), 2);
//! # Ok::<(), dtc_core::CloudError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod blocks;
pub mod economics;
pub mod error;
pub mod instrument;
pub mod metrics;
pub mod params;
pub mod scenarios;
pub mod sensitivity;
pub mod slo;
pub mod sweep;
pub mod system;

pub use analysis::{AnalysisReport, AnalysisRequest};
pub use economics::{CostBreakdown, CostModel};
pub use error::{CloudError, Result};
pub use metrics::{AvailabilityReport, EvalOptions};
pub use params::{ComponentParams, PaperParams, VmParams};
pub use scenarios::CaseStudy;
pub use slo::{SloTarget, DESIGN_SEARCH_KIND};
pub use system::{CloudModel, CloudSystemSpec, DataCenterSpec, PmSpec, SystemSummary};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::analysis::{
        availability_curves, availability_curves_with, first_steady_state,
        interval_probability, transient_probability_curve, AnalysisReport, AnalysisRequest,
        AvailabilityCurves,
    };
    pub use crate::blocks::{
        add_backup_transfer, add_direct_transfer, add_simple_component,
        add_simple_component_named, add_vm_behavior, InfraRefs,
    };
    pub use crate::economics::{CostBreakdown, CostModel};
    pub use crate::metrics::{AvailabilityReport, EvalOptions};
    pub use crate::params::{
        downtime_hours_per_year, nines, ComponentParams, PaperParams, VmParams,
    };
    pub use crate::scenarios::{
        figure7_scenarios, table_vii_scenarios, CaseStudy, Fig7Point, Scenario,
    };
    pub use crate::sensitivity::{
        availability_sensitivity, filtered_parameters, sensitivity_with_baseline, Parameter,
        SensitivityRow,
    };
    pub use crate::slo::{SloTarget, DESIGN_SEARCH_KIND};
    pub use crate::sweep::{
        evaluate_all_guarded, evaluate_all_shared, evaluate_guarded, evaluate_guarded_from,
        sweep_reports, sweep_reports_from, StructureRegistry, SweepOutcome,
    };
    pub use crate::system::{
        CloudModel, CloudSystemSpec, DataCenterSpec, PmSpec, SystemSummary,
    };
    pub use crate::{CloudError, Result};
}
