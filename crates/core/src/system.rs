//! Whole-system model assembly (the paper's Section IV-E, generalized).
//!
//! [`CloudSystemSpec`] describes a distributed IaaS deployment — data
//! centers with hot/warm physical machines, per-DC disaster and network
//! components, a backup server, and distance-derived migration times — and
//! [`CloudModel::build`] compiles it into one GSPN exactly following the
//! paper's block structure. The paper's Fig. 6 instance (two DCs × two PMs,
//! N = 4) is `CloudSystemSpec` with two symmetric data centers; the
//! generator supports any number of DCs and PMs.

use crate::analysis::{
    availability_curves_with, interval_probability, transient_probability_curve,
    AnalysisReport, AnalysisRequest, AvailabilityCurves,
};
use crate::blocks::{
    add_backup_transfer, add_direct_transfer, add_simple_component_named, add_vm_behavior,
    InfraRefs, SimpleComponent, TransferPath, VmBehavior,
};
use crate::error::{CloudError, Result};
use crate::metrics::{AvailabilityReport, EvalOptions};
use crate::params::{ComponentParams, VmParams};
use dtc_petri::expr::{BoolExpr, IntExpr};
use dtc_petri::model::{PetriNet, PetriNetBuilder, PlaceId};
use dtc_petri::reach::{explore_from, Solution, TangibleGraph, TangibleStructure};
use dtc_sim::{Estimate, SimConfig, Simulator, TimingOverrides};
use std::sync::Arc;

/// One physical machine.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PmSpec {
    /// VMs running on this PM at time zero (hot pool ⇒ > 0).
    pub initial_vms: u32,
    /// Maximum VMs this PM can host.
    pub capacity: u32,
}

impl PmSpec {
    /// A hot-pool PM (initially running `vms` VMs).
    pub fn hot(vms: u32, capacity: u32) -> Self {
        PmSpec { initial_vms: vms, capacity }
    }

    /// A warm-pool PM (powered, no VMs).
    pub fn warm(capacity: u32) -> Self {
        PmSpec { initial_vms: 0, capacity }
    }
}

/// One data center.
#[derive(Debug, Clone, PartialEq)]
pub struct DataCenterSpec {
    /// Label used in place names (paper uses `1`, `2`).
    pub label: String,
    /// Physical machines (hot pool + warm pool).
    pub pms: Vec<PmSpec>,
    /// Disaster occurrence/recovery, if disasters are modeled for this DC.
    pub disaster: Option<ComponentParams>,
    /// Folded switch+router+storage network component, if modeled.
    pub nas_net: Option<ComponentParams>,
    /// Mean time to restore one VM image from the Backup Server *into* this
    /// DC (the paper's `MTT_BK1`/`MTT_BK2`), if a backup path exists.
    pub backup_inbound_mtt_hours: Option<f64>,
}

/// A whole distributed cloud system.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudSystemSpec {
    /// Folded OS+PM parameters (identical PMs, per the paper).
    pub ospm: ComponentParams,
    /// VM failure/repair/boot timing.
    pub vm: VmParams,
    /// The data centers.
    pub data_centers: Vec<DataCenterSpec>,
    /// Backup server component, if present.
    pub backup: Option<ComponentParams>,
    /// `direct_mtt_hours[i][j]` = mean time to migrate one VM image from DC
    /// `i` to DC `j` (`None` = no direct link).
    pub direct_mtt_hours: Vec<Vec<Option<f64>>>,
    /// Minimum running VMs for the service to be up (the paper's `k`).
    pub min_running_vms: u32,
    /// Migrate out of a DC when its operational PM count falls below this
    /// (the paper's `l`; Table IV uses 1).
    pub migration_threshold: u32,
}

impl CloudSystemSpec {
    /// Total VMs in the system (`N`).
    pub fn total_vms(&self) -> u32 {
        self.data_centers.iter().flat_map(|dc| dc.pms.iter()).map(|pm| pm.initial_vms).sum()
    }

    /// Total PMs across all DCs.
    pub fn total_pms(&self) -> usize {
        self.data_centers.iter().map(|dc| dc.pms.len()).sum()
    }

    fn validate(&self) -> Result<()> {
        if self.data_centers.is_empty() {
            return Err(CloudError::BadSpec("no data centers".into()));
        }
        for dc in &self.data_centers {
            if dc.pms.is_empty() {
                return Err(CloudError::BadSpec(format!(
                    "data center {} has no physical machines",
                    dc.label
                )));
            }
            for pm in &dc.pms {
                if pm.capacity == 0 {
                    return Err(CloudError::BadSpec("PM with zero capacity".into()));
                }
                if pm.initial_vms > pm.capacity {
                    return Err(CloudError::BadSpec(format!(
                        "PM initial VMs {} exceed capacity {}",
                        pm.initial_vms, pm.capacity
                    )));
                }
            }
            if dc.backup_inbound_mtt_hours.is_some() && self.backup.is_none() {
                return Err(CloudError::BadSpec(format!(
                    "data center {} has a backup restore path but no backup server is specified",
                    dc.label
                )));
            }
        }
        let d = self.data_centers.len();
        if self.direct_mtt_hours.len() != d
            || self.direct_mtt_hours.iter().any(|row| row.len() != d)
        {
            return Err(CloudError::BadSpec(format!(
                "direct_mtt_hours must be a {d}x{d} matrix"
            )));
        }
        for (i, row) in self.direct_mtt_hours.iter().enumerate() {
            if row[i].is_some() {
                return Err(CloudError::BadSpec(format!(
                    "direct_mtt_hours[{i}][{i}] must be None (no self-link)"
                )));
            }
            for mtt in row.iter().flatten() {
                if !(mtt.is_finite() && *mtt > 0.0) {
                    return Err(CloudError::BadSpec(format!("invalid MTT {mtt}")));
                }
            }
        }
        if self.min_running_vms > self.total_vms() {
            return Err(CloudError::BadSpec(format!(
                "k = {} exceeds the total number of VMs {}",
                self.min_running_vms,
                self.total_vms()
            )));
        }
        if self.migration_threshold == 0 {
            return Err(CloudError::BadSpec("migration threshold l must be >= 1".into()));
        }
        Ok(())
    }
}

/// Handles to the per-data-center subnets of a built model.
#[derive(Debug, Clone)]
pub struct DataCenterModel {
    /// The `FailedVMS` pool place of this DC.
    pub pool: PlaceId,
    /// Disaster component, if modeled.
    pub disaster: Option<SimpleComponent>,
    /// Network component, if modeled.
    pub nas_net: Option<SimpleComponent>,
    /// OSPM components, one per PM.
    pub ospms: Vec<SimpleComponent>,
    /// VM behavior blocks, one per PM.
    pub vms: Vec<VmBehavior>,
}

/// The small, copyable facts a compiled model keeps about its spec.
///
/// [`CloudModel`] used to retain a full clone of the [`CloudSystemSpec`];
/// storing only this summary lets [`CloudModel::build`] borrow the spec, so
/// the single-flight hot path ([`crate::sweep::evaluate_guarded`]) performs
/// no per-evaluation clone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemSummary {
    /// Total VMs in the system (`N`).
    pub total_vms: u32,
    /// Minimum running VMs for the service to be up (`k`).
    pub min_running_vms: u32,
    /// Number of data centers.
    pub data_centers: usize,
    /// Physical machines across all DCs.
    pub total_pms: usize,
    /// Whether a backup server is modeled.
    pub has_backup: bool,
}

impl SystemSummary {
    /// Summarizes a specification.
    pub fn of(spec: &CloudSystemSpec) -> SystemSummary {
        SystemSummary {
            total_vms: spec.total_vms(),
            min_running_vms: spec.min_running_vms,
            data_centers: spec.data_centers.len(),
            total_pms: spec.total_pms(),
            has_backup: spec.backup.is_some(),
        }
    }
}

/// The compiled GSPN with handles and metric expressions.
#[derive(Debug, Clone)]
pub struct CloudModel {
    summary: SystemSummary,
    net: PetriNet,
    dcs: Vec<DataCenterModel>,
    backup: Option<SimpleComponent>,
    transfers: Vec<TransferPath>,
    backup_transfers: Vec<TransferPath>,
}

impl CloudModel {
    /// Compiles a specification into a GSPN.
    ///
    /// Takes the spec by reference: the model keeps only a
    /// [`SystemSummary`], so building never clones the (potentially large)
    /// specification.
    ///
    /// # Errors
    ///
    /// [`CloudError::BadSpec`] for structural problems;
    /// [`CloudError::Petri`] if net construction fails (e.g. duplicate
    /// labels).
    pub fn build(spec: &CloudSystemSpec) -> Result<Self> {
        spec.validate()?;
        let mut b = PetriNetBuilder::new();
        let mut dcs: Vec<DataCenterModel> = Vec::with_capacity(spec.data_centers.len());

        // Global PM numbering 1..=P, matching the paper's OSPM_1..OSPM_4.
        let mut pm_counter = 0usize;
        for dc in &spec.data_centers {
            let label = &dc.label;
            let disaster = dc.disaster.map(|p| {
                add_simple_component_named(
                    &mut b,
                    &format!("DC_UP{label}"),
                    &format!("DC_DOWN{label}"),
                    &format!("DISASTER{label}"),
                    &format!("DC_RECOVERY{label}"),
                    p,
                )
            });
            let nas_net = dc.nas_net.map(|p| {
                add_simple_component_named(
                    &mut b,
                    &format!("NAS_NET_UP{label}"),
                    &format!("NAS_NET_DOWN{label}"),
                    &format!("NAS_NET_F{label}"),
                    &format!("NAS_NET_R{label}"),
                    p,
                )
            });
            let pool = b.place(format!("FailedVMS{label}"), 0);
            let mut ospms = Vec::with_capacity(dc.pms.len());
            let mut vms = Vec::with_capacity(dc.pms.len());
            for pm in &dc.pms {
                pm_counter += 1;
                let ospm = add_simple_component_named(
                    &mut b,
                    &format!("OSPM_UP{pm_counter}"),
                    &format!("OSPM_DOWN{pm_counter}"),
                    &format!("OSPM_F{pm_counter}"),
                    &format!("OSPM_R{pm_counter}"),
                    spec.ospm,
                );
                let infra = InfraRefs {
                    ospm_up: ospm.up,
                    nas_net_up: nas_net.as_ref().map(|c| c.up),
                    dc_up: disaster.as_ref().map(|c| c.up),
                };
                let vmb = add_vm_behavior(
                    &mut b,
                    &pm_counter.to_string(),
                    pm.initial_vms,
                    pm.capacity,
                    spec.vm,
                    &infra,
                    pool,
                );
                ospms.push(ospm);
                vms.push(vmb);
            }
            dcs.push(DataCenterModel { pool, disaster, nas_net, ospms, vms });
        }

        let backup = spec.backup.map(|p| {
            add_simple_component_named(&mut b, "BKP_UP", "BKP_DOWN", "BKP_F", "BKP_R", p)
        });

        // Guard fragments per DC.
        let pm_up_sum =
            |dc: &DataCenterModel| IntExpr::tokens_sum(dc.ospms.iter().map(|c| c.up));
        // Source DC lost too many PMs (paper: all PMs down, l = 1).
        let pm_deficit =
            |dc: &DataCenterModel| pm_up_sum(dc).lt(spec.migration_threshold as i64);
        // Source storage readable: network and DC alive (conjuncts only for
        // modeled components).
        let src_readable = |dc: &DataCenterModel| {
            let mut parts = Vec::new();
            if let Some(n) = &dc.nas_net {
                parts.push(IntExpr::tokens(n.up).gt(0));
            }
            if let Some(d) = &dc.disaster {
                parts.push(IntExpr::tokens(d.up).gt(0));
            }
            if parts.is_empty() {
                BoolExpr::always()
            } else {
                BoolExpr::And(parts)
            }
        };
        let src_unreadable = |dc: &DataCenterModel| {
            let mut parts = Vec::new();
            if let Some(n) = &dc.nas_net {
                parts.push(IntExpr::tokens(n.up).eq(0));
            }
            if let Some(d) = &dc.disaster {
                parts.push(IntExpr::tokens(d.up).eq(0));
            }
            if parts.is_empty() {
                BoolExpr::Const(false)
            } else {
                BoolExpr::Or(parts)
            }
        };
        // Destination can host: some PM up, network up, DC up (the paper's
        // `NOT((#OSPM_UP3+#OSPM_UP4)=0 OR #NAS_NET_UP2=0 OR #DC_UP2=0)`).
        let dest_operational = |dc: &DataCenterModel| {
            let mut parts = vec![pm_up_sum(dc).gt(0)];
            if let Some(n) = &dc.nas_net {
                parts.push(IntExpr::tokens(n.up).gt(0));
            }
            if let Some(d) = &dc.disaster {
                parts.push(IntExpr::tokens(d.up).gt(0));
            }
            BoolExpr::And(parts)
        };

        let mut transfers = Vec::new();
        let mut backup_transfers = Vec::new();
        for i in 0..dcs.len() {
            for j in 0..dcs.len() {
                if i == j {
                    continue;
                }
                let (from, to) =
                    (spec.data_centers[i].label.clone(), spec.data_centers[j].label.clone());
                if let Some(mtt) = spec.direct_mtt_hours[i][j] {
                    let guard = pm_deficit(&dcs[i])
                        .and(src_readable(&dcs[i]))
                        .and(dest_operational(&dcs[j]));
                    transfers.push(add_direct_transfer(
                        &mut b,
                        &from,
                        &to,
                        dcs[i].pool,
                        dcs[j].pool,
                        mtt,
                        guard,
                    ));
                }
                if let (Some(bkp), Some(mtt)) =
                    (&backup, spec.data_centers[j].backup_inbound_mtt_hours)
                {
                    let unreadable = src_unreadable(&dcs[i]);
                    // A DC whose storage can never become unreadable has no
                    // use for the backup path.
                    if unreadable != BoolExpr::Const(false) {
                        let guard = IntExpr::tokens(bkp.up)
                            .gt(0)
                            .and(unreadable)
                            .and(dest_operational(&dcs[j]));
                        backup_transfers.push(add_backup_transfer(
                            &mut b,
                            &from,
                            &to,
                            dcs[i].pool,
                            dcs[j].pool,
                            mtt,
                            guard,
                        ));
                    }
                }
            }
        }

        let net = b.build()?;
        Ok(CloudModel {
            summary: SystemSummary::of(spec),
            net,
            dcs,
            backup,
            transfers,
            backup_transfers,
        })
    }

    /// The compiled net.
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// Key facts about the specification this model was compiled from.
    pub fn summary(&self) -> &SystemSummary {
        &self.summary
    }

    /// Per-data-center handles.
    pub fn data_centers(&self) -> &[DataCenterModel] {
        &self.dcs
    }

    /// Backup-server handle, if present.
    pub fn backup(&self) -> Option<&SimpleComponent> {
        self.backup.as_ref()
    }

    /// Direct-transfer paths.
    pub fn transfers(&self) -> &[TransferPath] {
        &self.transfers
    }

    /// Backup-restore paths.
    pub fn backup_transfers(&self) -> &[TransferPath] {
        &self.backup_transfers
    }

    /// All `VM_UP` places across the system.
    pub fn vm_up_places(&self) -> Vec<PlaceId> {
        self.dcs.iter().flat_map(|dc| dc.vms.iter().map(|v| v.vm_up)).collect()
    }

    /// The paper's availability predicate
    /// `P{#VM_UP1 + … + #VM_UPn >= k}`.
    pub fn availability_expr(&self) -> BoolExpr {
        IntExpr::tokens_sum(self.vm_up_places()).ge(self.summary.min_running_vms as i64)
    }

    /// Total running VMs as an integer expression.
    pub fn running_vms_expr(&self) -> IntExpr {
        IntExpr::tokens_sum(self.vm_up_places())
    }

    /// Explores the tangible state space (the expensive step; reuse the
    /// returned graph to evaluate several metrics). Records an `explore`
    /// stage span in the [`dtc_obs::global`] registry, annotated with the
    /// state/edge counts when a request trace is active.
    pub fn state_space(&self, opts: &EvalOptions) -> Result<TangibleGraph> {
        self.state_space_from(opts, None)
    }

    /// Structural fingerprint of the compiled net (see
    /// [`dtc_petri::structural_fingerprint`]): equal fingerprints mean
    /// rate-only siblings whose state spaces can be shared through
    /// [`CloudModel::state_space_from`].
    pub fn net_fingerprint(&self) -> u64 {
        dtc_petri::structural_fingerprint(&self.net)
    }

    /// Like [`CloudModel::state_space`], but when `structure` is offered
    /// and matches this model's net (same structural fingerprint), the
    /// graph is produced by re-rating the shared structure — bit-identical
    /// to a fresh exploration, without touching the state space. A
    /// mismatched structure falls back to full exploration.
    ///
    /// Records an `explore` stage span only when an exploration actually
    /// runs (`re_rate` otherwise), and folds the taken path into the
    /// [`crate::instrument`] counters, so batch harnesses can pin "one
    /// exploration per structural group".
    pub fn state_space_from(
        &self,
        opts: &EvalOptions,
        structure: Option<&Arc<TangibleStructure>>,
    ) -> Result<TangibleGraph> {
        // Mirror explore_from's decision so the span names what actually
        // happens (the fingerprint check is microseconds on a net
        // description; exploration is the expensive part being avoided).
        let re_rating = structure.is_some_and(|s| {
            opts.reach.vanishing == dtc_petri::VanishingPolicy::Eliminate
                && s.num_states() <= opts.reach.max_states
                && s.matches(&self.net)
        });
        let _span = dtc_obs::stage_span(if re_rating { "re_rate" } else { "explore" });
        let mut explore_stats = dtc_petri::ExploreStats::default();
        let graph = explore_from(&self.net, &opts.reach, structure, &mut explore_stats)?;
        crate::instrument::record_explore(&explore_stats);
        let stats = graph.stats();
        dtc_obs::trace::attr_int("states", stats.tangible_states as i64);
        dtc_obs::trace::attr_int("edges", stats.edges as i64);
        Ok(graph)
    }

    /// Builds the state space, solves for steady state, and summarizes the
    /// paper's dependability metrics.
    pub fn evaluate(&self, opts: &EvalOptions) -> Result<AvailabilityReport> {
        let graph = self.state_space(opts)?;
        self.evaluate_on(&graph, opts)
    }

    /// Like [`CloudModel::evaluate`] but reusing an existing state space.
    pub fn evaluate_on(
        &self,
        graph: &TangibleGraph,
        opts: &EvalOptions,
    ) -> Result<AvailabilityReport> {
        let sol = graph.solve_with(opts.method, &opts.solver)?;
        Ok(self.steady_report(graph, &sol))
    }

    /// Assembles the steady-state report from an existing solution.
    fn steady_report(&self, graph: &TangibleGraph, sol: &Solution<'_>) -> AvailabilityReport {
        AvailabilityReport::new(
            sol.probability(&self.availability_expr()),
            sol.expected(&self.running_vms_expr()),
            self.summary.total_vms,
            graph.stats(),
            *sol.stats(),
        )
    }

    /// Runs every requested analysis against **one** state-space
    /// construction — the unified entry point behind catalogs, the cache,
    /// the CLI and `POST /v2/evaluate`.
    ///
    /// Exploration (the expensive step: ~126k tangible states for the
    /// paper's case study) happens exactly once, and analyses that need the
    /// steady-state solution (`SteadyState`, `CapacityThresholds`, `Cost`,
    /// `Sensitivity`) share a single solve. Reports come back in request
    /// order.
    ///
    /// `spec` must be the specification this model was compiled from. It
    /// is consulted by analyses that rebuild perturbed variants of the
    /// system — today only `Sensitivity`, whose baseline point reuses the
    /// set's shared steady solve instead of re-building the base model.
    /// The model keeps only a [`SystemSummary`], so the mismatch guard is
    /// a structural sanity check (VM/PM/DC counts, backup presence), not a
    /// full comparison: passing a same-shaped spec with different *rates*
    /// is not detected and yields rows whose baseline belongs to the built
    /// model — don't do that.
    pub fn evaluate_all(
        &self,
        spec: &CloudSystemSpec,
        requests: &[AnalysisRequest],
        opts: &EvalOptions,
    ) -> Result<Vec<AnalysisReport>> {
        let graph = self.state_space(opts)?;
        self.evaluate_all_on(spec, &graph, requests, opts)
    }

    /// Like [`CloudModel::evaluate_all`] but reusing an existing state
    /// space.
    pub fn evaluate_all_on(
        &self,
        spec: &CloudSystemSpec,
        graph: &TangibleGraph,
        requests: &[AnalysisRequest],
        opts: &EvalOptions,
    ) -> Result<Vec<AnalysisReport>> {
        if SystemSummary::of(spec) != self.summary {
            return Err(CloudError::BadSpec(
                "evaluate_all was given a structurally different spec than the model was \
                 built from"
                    .into(),
            ));
        }
        let needs_steady = requests.iter().any(|r| {
            matches!(
                r,
                AnalysisRequest::SteadyState
                    | AnalysisRequest::CapacityThresholds
                    | AnalysisRequest::Cost { .. }
                    | AnalysisRequest::Sensitivity { .. }
            )
        });
        let steady_sol = if needs_steady {
            Some(graph.solve_with(opts.method, &opts.solver)?)
        } else {
            None
        };
        let steady = steady_sol.as_ref().map(|sol| self.steady_report(graph, sol));

        // One shared uniformization pass serves every `Transient` time
        // point and every `Interval` horizon in the set (one matrix build,
        // one power march), instead of one march per time point.
        let mut all_times: Vec<f64> = Vec::new();
        let mut all_horizons: Vec<f64> = Vec::new();
        for req in requests {
            match req {
                AnalysisRequest::Transient { time_points } => {
                    all_times.extend_from_slice(time_points)
                }
                AnalysisRequest::Interval { horizon_hours } => {
                    all_horizons.push(*horizon_hours)
                }
                _ => {}
            }
        }
        let curves = if all_times.is_empty() && all_horizons.is_empty() {
            AvailabilityCurves::default()
        } else {
            // The march fans out over `opts.solver.threads` deterministic
            // workers — a scheduling knob only, never part of cache keys.
            availability_curves_with(
                graph,
                &self.availability_expr(),
                &all_times,
                &all_horizons,
                opts.solver.threads,
            )?
        };
        let (mut next_time, mut next_horizon) = (0usize, 0usize);

        let mut out = Vec::with_capacity(requests.len());
        for req in requests {
            out.push(match req {
                AnalysisRequest::SteadyState => {
                    AnalysisReport::SteadyState(steady.expect("steady solve ran"))
                }
                AnalysisRequest::Transient { time_points } => {
                    let availability =
                        curves.point[next_time..next_time + time_points.len()].to_vec();
                    next_time += time_points.len();
                    AnalysisReport::Transient { time_points: time_points.clone(), availability }
                }
                AnalysisRequest::Interval { horizon_hours } => {
                    let availability = curves.interval[next_horizon];
                    next_horizon += 1;
                    AnalysisReport::Interval { horizon_hours: *horizon_hours, availability }
                }
                AnalysisRequest::Mttsf => AnalysisReport::Mttsf {
                    hours: dtc_obs::span!("mttsf", self.mean_time_to_service_failure(graph)?),
                },
                AnalysisRequest::CapacityThresholds => AnalysisReport::CapacityThresholds {
                    availability: self
                        .threshold_curve(graph, steady_sol.as_ref().expect("steady solve ran")),
                },
                AnalysisRequest::Cost { model } => AnalysisReport::Cost {
                    breakdown: model
                        .annual_cost_for(&self.summary, &steady.expect("steady solve ran")),
                },
                AnalysisRequest::Simulation { batches, seed } => {
                    // No silent clamping: the requested batch count is part
                    // of the cache identity, so execution must honor it.
                    if *batches < 2 {
                        return Err(CloudError::BadSpec(
                            "simulation needs at least 2 batches for a confidence interval"
                                .into(),
                        ));
                    }
                    let cfg = SimConfig {
                        replications: *batches as usize,
                        seed: *seed,
                        ..SimConfig::default()
                    };
                    let est = dtc_obs::span!(
                        "simulation",
                        self.simulate_availability(&cfg, &TimingOverrides::new())?
                    );
                    AnalysisReport::Simulation {
                        mean: est.mean,
                        half_width: est.half_width,
                        replications: est.replications,
                        confidence: est.confidence,
                    }
                }
                AnalysisRequest::Sensitivity { parameters, rel_step } => {
                    // The baseline availability comes from the set's shared
                    // steady solve — only the perturbed models (two per
                    // parameter) are built and solved here.
                    let base =
                        steady.as_ref().expect("steady solve ran for sensitivity").availability;
                    let params = crate::sensitivity::filtered_parameters(spec, parameters);
                    let _span = dtc_obs::stage_span("sensitivity");
                    // The perturbed jobs are rate-only siblings of this
                    // model, so they re-rate the already-explored structure
                    // instead of rebuilding the state space per job.
                    let rows = crate::sensitivity::sensitivity_with_baseline(
                        spec,
                        &params,
                        base,
                        opts,
                        *rel_step,
                        opts.resolved_sweep_threads(),
                        Some(graph.structure()),
                    )?;
                    AnalysisReport::Sensitivity { rel_step: *rel_step, rows }
                }
            });
        }
        Ok(out)
    }

    /// Estimates availability by discrete-event simulation (optionally with
    /// non-exponential timing overrides) — the cross-validation path.
    pub fn simulate_availability(
        &self,
        cfg: &SimConfig,
        overrides: &TimingOverrides,
    ) -> Result<Estimate> {
        let sim = Simulator::with_overrides(&self.net, overrides)?;
        Ok(sim.steady_probability(&self.availability_expr(), cfg)?)
    }

    /// Mean time to first service failure (the whole-system MTTF): the
    /// expected time, starting from the fully-up initial marking, until the
    /// number of running VMs first drops below `k`.
    ///
    /// Computed by marking every service-down tangible state absorbing and
    /// solving the sparse first-passage system iteratively, so it scales to
    /// the full case-study graphs.
    pub fn mean_time_to_service_failure(&self, graph: &TangibleGraph) -> Result<f64> {
        let expr = self.availability_expr();
        let down: Vec<bool> = graph
            .states()
            .iter()
            .map(|m| !expr.eval(&|p: dtc_petri::PlaceId| m[p.index()]))
            .collect();
        let tau = dtc_markov::mean_time_to_absorption_iterative(
            graph.ctmc(),
            &down,
            &dtc_markov::SolverOptions::default(),
        )
        .map_err(dtc_petri::PetriError::from)?;
        Ok(graph.initial_distribution().iter().map(|&(i, p)| p * tau[i]).sum())
    }

    /// Availability for **every** service threshold `k = 0..=N` from a
    /// single steady-state solve: entry `k` is `P{running VMs ≥ k}`.
    ///
    /// Useful for capacity planning — the paper fixes `k = 2`, but the
    /// whole curve costs nothing extra once the chain is solved.
    pub fn availability_by_threshold(&self, graph: &TangibleGraph) -> Result<Vec<f64>> {
        let sol = graph.solve()?;
        Ok(self.threshold_curve(graph, &sol))
    }

    /// The threshold curve from an existing steady-state solution.
    fn threshold_curve(&self, graph: &TangibleGraph, sol: &Solution<'_>) -> Vec<f64> {
        let n = self.summary.total_vms as usize;
        let running = self.running_vms_expr();
        // Tally P{running = j} once, then suffix-sum.
        let mut mass = vec![0.0f64; n + 1];
        for (m, p) in graph.states().iter().zip(sol.probabilities()) {
            let j = running.value(&|q: dtc_petri::PlaceId| m[q.index()]) as usize;
            mass[j.min(n)] += p;
        }
        let mut out = vec![0.0f64; n + 1];
        let mut acc = 0.0;
        for k in (0..=n).rev() {
            acc += mass[k];
            out[k] = acc.min(1.0);
        }
        out
    }

    /// Point availability `A(t)` at each requested time, starting from the
    /// initial marking (all components up, VMs on the hot pool).
    ///
    /// The curve starts at 1 and relaxes toward the steady-state
    /// availability; its shape shows how quickly the deployment reaches its
    /// long-run regime.
    pub fn transient_availability(
        &self,
        graph: &TangibleGraph,
        times: &[f64],
    ) -> Result<Vec<f64>> {
        transient_probability_curve(graph, &self.availability_expr(), times)
    }

    /// Expected interval availability over `[0, horizon]` hours — the
    /// SLA-window metric (`horizon = 8760` gives "expected uptime fraction
    /// in the first year of operation").
    pub fn interval_availability(
        &self,
        graph: &TangibleGraph,
        horizon_hours: f64,
    ) -> Result<f64> {
        interval_probability(graph, &self.availability_expr(), horizon_hours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PaperParams;

    fn tiny_spec() -> CloudSystemSpec {
        // 1 DC, 1 PM, 2 VMs, no disaster/network/backup: pure PM+VM model.
        CloudSystemSpec {
            ospm: ComponentParams::new(1000.0, 12.0),
            vm: VmParams { mttf_hours: 2880.0, mttr_hours: 0.5, start_hours: 1.0 / 12.0 },
            data_centers: vec![DataCenterSpec {
                label: "1".into(),
                pms: vec![PmSpec::hot(2, 2)],
                disaster: None,
                nas_net: None,
                backup_inbound_mtt_hours: None,
            }],
            backup: None,
            direct_mtt_hours: vec![vec![None]],
            min_running_vms: 2,
            migration_threshold: 1,
        }
    }

    fn two_dc_spec() -> CloudSystemSpec {
        let p = PaperParams::table_vi();
        let mk_dc = |label: &str, hot: bool| DataCenterSpec {
            label: label.into(),
            pms: vec![if hot { PmSpec::hot(2, 2) } else { PmSpec::warm(2) }],
            disaster: Some(p.disaster(100.0)),
            nas_net: Some(p.nas_net_folded().unwrap()),
            backup_inbound_mtt_hours: Some(2.0),
        };
        CloudSystemSpec {
            ospm: p.ospm_folded().unwrap(),
            vm: p.vm_params(),
            data_centers: vec![mk_dc("1", true), mk_dc("2", false)],
            backup: Some(p.backup),
            direct_mtt_hours: vec![vec![None, Some(3.0)], vec![Some(3.0), None]],
            min_running_vms: 2,
            migration_threshold: 1,
        }
    }

    #[test]
    fn tiny_model_builds_and_solves() {
        let model = CloudModel::build(&tiny_spec()).unwrap();
        let report = model.evaluate(&EvalOptions::default()).unwrap();
        // Bound: can't beat the PM's own availability; should stay close.
        let a_pm = 1000.0 / 1012.0;
        assert!(report.availability < a_pm);
        assert!(report.availability > a_pm - 0.01, "{}", report.availability);
        assert!(report.nines > 1.0);
        assert!(report.tangible_states > 0);
        assert!(report.expected_running_vms > 1.9);
    }

    #[test]
    fn paper_names_present_in_two_dc_model() {
        let model = CloudModel::build(&two_dc_spec()).unwrap();
        let net = model.net();
        for name in [
            "OSPM_UP1",
            "OSPM_UP2",
            "DC_UP1",
            "DC_UP2",
            "NAS_NET_UP1",
            "NAS_NET_UP2",
            "BKP_UP",
            "FailedVMS1",
            "FailedVMS2",
            "VM_UP1",
            "TRP_12",
            "TBP_21",
        ] {
            assert!(net.place(name).is_some(), "missing place {name}");
        }
        for name in ["DISASTER1", "TRI_12", "TRE_21", "TBI_12", "TBE_12", "VM_Subs1"] {
            assert!(net.transition(name).is_some(), "missing transition {name}");
        }
    }

    #[test]
    fn two_dc_beats_one_dc_availability() {
        // The paper's core claim: a second (warm) DC lifts availability
        // under disasters.
        let two = CloudModel::build(&two_dc_spec()).unwrap();
        let report_two = two.evaluate(&EvalOptions::default()).unwrap();

        let p = PaperParams::table_vi();
        let one_spec = CloudSystemSpec {
            ospm: p.ospm_folded().unwrap(),
            vm: p.vm_params(),
            data_centers: vec![DataCenterSpec {
                label: "1".into(),
                pms: vec![PmSpec::hot(2, 2)],
                disaster: Some(p.disaster(100.0)),
                nas_net: Some(p.nas_net_folded().unwrap()),
                backup_inbound_mtt_hours: None,
            }],
            backup: None,
            direct_mtt_hours: vec![vec![None]],
            min_running_vms: 2,
            migration_threshold: 1,
        };
        let one = CloudModel::build(&one_spec).unwrap();
        let report_one = one.evaluate(&EvalOptions::default()).unwrap();
        assert!(
            report_two.availability > report_one.availability,
            "two-DC {} should beat one-DC {}",
            report_two.availability,
            report_one.availability
        );
        // One-DC, one-PM with disasters: disaster term (~0.9901) times the
        // PM series (~0.9879) puts it near 0.978.
        assert!((report_one.availability - 0.978).abs() < 0.005, "{}", report_one.availability);
        // The warm second DC should lift availability past the disaster
        // ceiling of a single site.
        assert!(report_two.availability > 0.9901, "{}", report_two.availability);
    }

    #[test]
    fn vm_tokens_conserved_across_state_space() {
        let model = CloudModel::build(&two_dc_spec()).unwrap();
        let graph = model.state_space(&EvalOptions::default()).unwrap();
        let n = model.summary().total_vms;
        // Collect every place that can hold VM tokens.
        let mut token_places: Vec<PlaceId> = model.vm_up_places();
        for dc in model.data_centers() {
            token_places.push(dc.pool);
            for v in &dc.vms {
                token_places.push(v.vm_down);
                token_places.push(v.vm_stg);
            }
        }
        for t in model.transfers().iter().chain(model.backup_transfers()) {
            token_places.push(t.in_flight);
        }
        for m in graph.states() {
            let total: u32 = token_places.iter().map(|p| m[p.index()]).sum();
            assert_eq!(total, n, "token leak in marking {m:?}");
        }
    }

    #[test]
    fn bad_specs_rejected() {
        let mut s = tiny_spec();
        s.data_centers.clear();
        assert!(matches!(CloudModel::build(&s), Err(CloudError::BadSpec(_))));

        let mut s = tiny_spec();
        s.min_running_vms = 10;
        assert!(matches!(CloudModel::build(&s), Err(CloudError::BadSpec(_))));

        let mut s = tiny_spec();
        s.direct_mtt_hours = vec![vec![Some(1.0)]];
        assert!(matches!(CloudModel::build(&s), Err(CloudError::BadSpec(_))));

        let mut s = tiny_spec();
        s.data_centers[0].backup_inbound_mtt_hours = Some(1.0);
        assert!(matches!(CloudModel::build(&s), Err(CloudError::BadSpec(_))));

        let mut s = tiny_spec();
        s.migration_threshold = 0;
        assert!(matches!(CloudModel::build(&s), Err(CloudError::BadSpec(_))));
    }

    #[test]
    fn system_mttf_consistent_with_availability() {
        // For an (approximately) alternating-renewal system,
        // A ≈ MTTF / (MTTF + MDT): check the MTTF lands in a band implied
        // by availability and plausible repair times.
        let model = CloudModel::build(&tiny_spec()).unwrap();
        let graph = model.state_space(&EvalOptions::default()).unwrap();
        let mttf = model.mean_time_to_service_failure(&graph).unwrap();
        // k = 2 of 2 VMs on one PM: the first VM or PM failure kills
        // service, so the time to first outage is min(VM, VM, OSPM) with
        // tiny_spec's OSPM MTTF of 1000 h: rate = 2/2880 + 1/1000.
        let expect = 1.0 / (2.0 / 2880.0 + 1.0 / 1000.0);
        assert!(
            (mttf - expect).abs() / expect < 1e-6,
            "MTTF {mttf} vs competing-risk value {expect}"
        );
    }

    #[test]
    fn two_dc_raises_availability_not_mttf() {
        // The warm DC does not delay the *first* outage (the migration
        // itself is an outage when all VMs were in DC1) — it shortens the
        // repair. MTTF should be essentially the single-DC value.
        let one = CloudModel::build(&tiny_spec()).unwrap();
        let g1 = one.state_space(&EvalOptions::default()).unwrap();
        let two = CloudModel::build(&two_dc_spec()).unwrap();
        let g2 = two.state_space(&EvalOptions::default()).unwrap();
        let mttf_one = one.mean_time_to_service_failure(&g1).unwrap();
        let mttf_two = two.mean_time_to_service_failure(&g2).unwrap();
        // Both in the hundreds of hours; within 2x of each other.
        assert!(mttf_one > 100.0 && mttf_two > 100.0);
        assert!(
            mttf_two < mttf_one * 2.0 && mttf_two > mttf_one / 2.0,
            "{mttf_one} vs {mttf_two}"
        );
    }

    #[test]
    fn availability_by_threshold_is_monotone_and_consistent() {
        let model = CloudModel::build(&tiny_spec()).unwrap();
        let graph = model.state_space(&EvalOptions::default()).unwrap();
        let curve = model.availability_by_threshold(&graph).unwrap();
        // N = 2 VMs -> entries for k = 0, 1, 2.
        assert_eq!(curve.len(), 3);
        assert!((curve[0] - 1.0).abs() < 1e-12, "k=0 is always satisfied");
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "monotone in k: {curve:?}");
        }
        // Entry k=2 must equal the spec's evaluated availability (k=2).
        let report = model.evaluate_on(&graph, &EvalOptions::default()).unwrap();
        assert!((curve[2] - report.availability).abs() < 1e-10);
    }

    #[test]
    fn transient_availability_decays_to_steady_state() {
        let model = CloudModel::build(&tiny_spec()).unwrap();
        let graph = model.state_space(&EvalOptions::default()).unwrap();
        let steady = model.evaluate_on(&graph, &EvalOptions::default()).unwrap().availability;
        let times = [0.0, 10.0, 100.0, 1000.0, 100_000.0];
        let curve = model.transient_availability(&graph, &times).unwrap();
        assert!((curve[0] - 1.0).abs() < 1e-9, "starts fully up: {curve:?}");
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "monotone decay: {curve:?}");
        }
        assert!((curve[4] - steady).abs() < 1e-6, "{} vs {steady}", curve[4]);
    }

    #[test]
    fn interval_availability_brackets_point_values() {
        let model = CloudModel::build(&tiny_spec()).unwrap();
        let graph = model.state_space(&EvalOptions::default()).unwrap();
        let steady = model.evaluate_on(&graph, &EvalOptions::default()).unwrap().availability;
        let year = model.interval_availability(&graph, 8760.0).unwrap();
        // Starting all-up, the first-year average beats steady state but is
        // below 1.
        assert!(year > steady, "{year} vs steady {steady}");
        assert!(year < 1.0);
        let long = model.interval_availability(&graph, 5e6).unwrap();
        assert!((long - steady).abs() < 1e-4, "{long} vs {steady}");
    }

    #[test]
    fn simulation_cross_validates_numeric() {
        let model = CloudModel::build(&tiny_spec()).unwrap();
        let report = model.evaluate(&EvalOptions::default()).unwrap();
        let cfg = SimConfig {
            warmup: 2_000.0,
            horizon: 150_000.0,
            replications: 8,
            seed: 13,
            confidence: 0.99,
        };
        let est = model.simulate_availability(&cfg, &TimingOverrides::new()).unwrap();
        assert!(
            est.covers(report.availability),
            "simulation CI {:?} misses numeric {}",
            est.interval(),
            report.availability
        );
    }

    #[test]
    fn evaluate_all_steady_state_is_bit_identical_to_evaluate() {
        // The golden contract of the unified API: routing a steady-state
        // request through `evaluate_all` must reproduce `evaluate` exactly
        // (same solver path, same rounding), not merely approximately.
        let spec = tiny_spec();
        let model = CloudModel::build(&spec).unwrap();
        let opts = EvalOptions::default();
        let direct = model.evaluate(&opts).unwrap();
        let unified =
            model.evaluate_all(&spec, &[AnalysisRequest::SteadyState], &opts).unwrap();
        assert_eq!(unified.len(), 1);
        assert_eq!(unified[0], AnalysisReport::SteadyState(direct));
    }

    #[test]
    fn evaluate_all_union_matches_single_metric_calls() {
        let spec = tiny_spec();
        let model = CloudModel::build(&spec).unwrap();
        let opts = EvalOptions::default();
        let graph = model.state_space(&opts).unwrap();
        let requests = [
            AnalysisRequest::SteadyState,
            AnalysisRequest::Mttsf,
            AnalysisRequest::CapacityThresholds,
            AnalysisRequest::Interval { horizon_hours: 8760.0 },
            AnalysisRequest::Transient { time_points: vec![0.0, 100.0] },
            AnalysisRequest::Cost { model: crate::economics::CostModel::default() },
        ];
        let reports = model.evaluate_all_on(&spec, &graph, &requests, &opts).unwrap();
        assert_eq!(reports.len(), requests.len());
        for (req, rep) in requests.iter().zip(&reports) {
            assert_eq!(req.kind(), rep.kind(), "reports come back in request order");
        }
        let steady = crate::analysis::first_steady_state(&reports).unwrap();
        match &reports[1] {
            AnalysisReport::Mttsf { hours } => {
                let direct = model.mean_time_to_service_failure(&graph).unwrap();
                assert!((hours - direct).abs() < 1e-12);
            }
            other => panic!("expected mttsf, got {other:?}"),
        }
        match &reports[2] {
            AnalysisReport::CapacityThresholds { availability } => {
                assert_eq!(availability.len(), model.summary().total_vms as usize + 1);
                // Entry k (the spec's threshold) agrees with the steady report.
                let k = model.summary().min_running_vms as usize;
                assert!((availability[k] - steady.availability).abs() < 1e-10);
            }
            other => panic!("expected capacity curve, got {other:?}"),
        }
        match &reports[4] {
            AnalysisReport::Transient { availability, .. } => {
                assert!((availability[0] - 1.0).abs() < 1e-9, "starts fully up");
            }
            other => panic!("expected transient curve, got {other:?}"),
        }
        match &reports[5] {
            AnalysisReport::Cost { breakdown } => {
                assert!(breakdown.total() > 0.0);
            }
            other => panic!("expected cost, got {other:?}"),
        }
    }

    #[test]
    fn evaluate_all_sensitivity_matches_standalone_sweep() {
        // The unified pipeline's sensitivity rows must be bit-identical to
        // the standalone sweep: same baseline (the shared steady solve
        // produces the exact availability `availability_sensitivity`
        // computes itself), same perturbed evaluations, same ranking.
        let spec = tiny_spec();
        let model = CloudModel::build(&spec).unwrap();
        let opts = EvalOptions::default();
        let reports = model
            .evaluate_all(
                &spec,
                &[AnalysisRequest::SteadyState, AnalysisRequest::default_sensitivity()],
                &opts,
            )
            .unwrap();
        let standalone =
            crate::sensitivity::availability_sensitivity(&spec, &opts, 0.05, 2).unwrap();
        match &reports[1] {
            AnalysisReport::Sensitivity { rel_step, rows } => {
                assert_eq!(*rel_step, 0.05);
                assert_eq!(*rows, standalone);
            }
            other => panic!("expected sensitivity, got {other:?}"),
        }

        // A filter narrows the rows without changing their values.
        let reports = model
            .evaluate_all(
                &spec,
                &[AnalysisRequest::Sensitivity {
                    parameters: vec!["ospm_mttr".into()],
                    rel_step: 0.05,
                }],
                &opts,
            )
            .unwrap();
        match &reports[0] {
            AnalysisReport::Sensitivity { rows, .. } => {
                assert_eq!(rows.len(), 1);
                let standalone_row = standalone
                    .iter()
                    .find(|r| r.parameter == crate::sensitivity::Parameter::OspmMttr)
                    .unwrap();
                assert_eq!(&rows[0], standalone_row);
            }
            other => panic!("expected sensitivity, got {other:?}"),
        }

        // A bad step surfaces as an error, not a panic.
        let bad = model.evaluate_all(
            &spec,
            &[AnalysisRequest::Sensitivity { parameters: vec![], rel_step: 2.0 }],
            &opts,
        );
        assert!(matches!(bad, Err(CloudError::BadSpec(_))));
    }

    #[test]
    fn evaluate_all_rejects_a_mismatched_spec() {
        let spec = tiny_spec();
        let model = CloudModel::build(&spec).unwrap();
        let other = two_dc_spec();
        assert!(matches!(
            model.evaluate_all(
                &other,
                &[AnalysisRequest::SteadyState],
                &EvalOptions::default()
            ),
            Err(CloudError::BadSpec(_))
        ));
    }

    #[test]
    fn summary_reflects_the_spec() {
        let model = CloudModel::build(&two_dc_spec()).unwrap();
        let s = model.summary();
        assert_eq!(s.total_vms, 2);
        assert_eq!(s.min_running_vms, 2);
        assert_eq!(s.data_centers, 2);
        assert_eq!(s.total_pms, 2);
        assert!(s.has_backup);
    }
}
