//! Error type for model construction and evaluation.

use std::fmt;

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, CloudError>;

/// Errors from building or evaluating cloud dependability models.
#[derive(Debug, Clone, PartialEq)]
pub enum CloudError {
    /// The system specification is structurally invalid.
    BadSpec(String),
    /// Error from the RBD folding layer.
    Rbd(dtc_rbd::RbdError),
    /// Error from the Petri-net analysis layer.
    Petri(dtc_petri::PetriError),
    /// Error from the simulation layer.
    Sim(dtc_sim::SimError),
    /// A panic escaped the model pipeline while evaluating a scenario; the
    /// sweep harness converts it into a per-scenario error so one bad spec
    /// cannot poison a whole batch.
    Panicked(String),
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::BadSpec(msg) => write!(f, "invalid system spec: {msg}"),
            CloudError::Rbd(e) => write!(f, "rbd: {e}"),
            CloudError::Petri(e) => write!(f, "petri: {e}"),
            CloudError::Sim(e) => write!(f, "sim: {e}"),
            CloudError::Panicked(msg) => write!(f, "evaluation panicked: {msg}"),
        }
    }
}

impl std::error::Error for CloudError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CloudError::BadSpec(_) | CloudError::Panicked(_) => None,
            CloudError::Rbd(e) => Some(e),
            CloudError::Petri(e) => Some(e),
            CloudError::Sim(e) => Some(e),
        }
    }
}

impl From<dtc_rbd::RbdError> for CloudError {
    fn from(e: dtc_rbd::RbdError) -> Self {
        CloudError::Rbd(e)
    }
}

impl From<dtc_petri::PetriError> for CloudError {
    fn from(e: dtc_petri::PetriError) -> Self {
        CloudError::Petri(e)
    }
}

impl From<dtc_sim::SimError> for CloudError {
    fn from(e: dtc_sim::SimError) -> Self {
        CloudError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_and_sources() {
        let e: CloudError = dtc_rbd::RbdError::EmptyComposition.into();
        assert!(e.source().is_some());
        let e: CloudError = dtc_petri::PetriError::EmptyNet.into();
        assert!(e.to_string().contains("petri"));
        let e: CloudError = dtc_sim::SimError::ImmediateLivelock.into();
        assert!(e.to_string().contains("sim"));
        assert!(CloudError::BadSpec("x".into()).source().is_none());
    }
}
