//! Dependability parameters — the paper's Table VI and case-study constants.
//!
//! All times are in **hours** unless a name says otherwise. The component
//! MTTF/MTTR values are quoted verbatim from Table VI of the paper, which in
//! turn sourced them from Kim et al. (PRDC'09), Cisco dependability sheets,
//! and a MegaPath SLA (\[19\]–\[22\] in the paper).

/// A repairable component's exponential parameters, in hours.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ComponentParams {
    /// Mean time to failure.
    pub mttf_hours: f64,
    /// Mean time to repair.
    pub mttr_hours: f64,
}

impl ComponentParams {
    /// Creates a parameter pair.
    ///
    /// # Panics
    ///
    /// Panics unless both values are finite and positive.
    pub fn new(mttf_hours: f64, mttr_hours: f64) -> Self {
        assert!(
            mttf_hours.is_finite() && mttf_hours > 0.0,
            "MTTF must be positive, got {mttf_hours}"
        );
        assert!(
            mttr_hours.is_finite() && mttr_hours > 0.0,
            "MTTR must be positive, got {mttr_hours}"
        );
        ComponentParams { mttf_hours, mttr_hours }
    }

    /// Steady-state availability `MTTF/(MTTF+MTTR)`.
    pub fn availability(&self) -> f64 {
        self.mttf_hours / (self.mttf_hours + self.mttr_hours)
    }
}

/// Virtual-machine timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VmParams {
    /// Mean time to failure of a running VM.
    pub mttf_hours: f64,
    /// Mean time to repair a failed VM.
    pub mttr_hours: f64,
    /// Mean time to start (boot) a VM.
    pub start_hours: f64,
}

/// Hours in a (non-leap) year; the paper quotes disaster times in years and
/// repair times in hours.
pub const HOURS_PER_YEAR: f64 = 8760.0;

/// One row of the paper's Table VI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableViRow {
    /// Component name as printed in the paper.
    pub component: &'static str,
    /// MTTF in hours.
    pub mttf_hours: f64,
    /// MTTR in hours.
    pub mttr_hours: f64,
}

/// The paper's Table VI, verbatim.
pub const TABLE_VI: [TableViRow; 7] = [
    TableViRow { component: "Operating System (OS)", mttf_hours: 4000.0, mttr_hours: 1.0 },
    TableViRow {
        component: "Hardware of Physical Machine (PM)",
        mttf_hours: 1000.0,
        mttr_hours: 12.0,
    },
    TableViRow { component: "Switch", mttf_hours: 430_000.0, mttr_hours: 4.0 },
    TableViRow { component: "Router", mttf_hours: 14_077_473.0, mttr_hours: 4.0 },
    TableViRow { component: "NAS", mttf_hours: 20_000_000.0, mttr_hours: 2.0 },
    TableViRow { component: "VM", mttf_hours: 2880.0, mttr_hours: 0.5 },
    TableViRow { component: "Backup Server", mttf_hours: 50_000.0, mttr_hours: 0.5 },
];

/// Component-level inputs for the hierarchical models, prefilled with
/// Table VI. Override fields to study other hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperParams {
    /// Operating system.
    pub os: ComponentParams,
    /// Physical-machine hardware.
    pub pm: ComponentParams,
    /// Network switch.
    pub switch: ComponentParams,
    /// Router.
    pub router: ComponentParams,
    /// Network-attached storage.
    pub nas: ComponentParams,
    /// Virtual machine (MTTF/MTTR; start time below).
    pub vm: ComponentParams,
    /// Backup server.
    pub backup: ComponentParams,
    /// VM boot time in hours (paper: five minutes).
    pub vm_start_hours: f64,
    /// Data-center recovery time after a disaster (paper: one year).
    pub dc_recovery_hours: f64,
    /// VM image size in gigabytes (paper: 4 GB).
    pub vm_size_gb: f64,
    /// Minimum running VMs for the system to be operational (paper: 2).
    pub min_running_vms: u32,
}

impl PaperParams {
    /// Table VI plus the case-study constants of Section V.
    pub fn table_vi() -> Self {
        PaperParams {
            os: ComponentParams::new(4000.0, 1.0),
            pm: ComponentParams::new(1000.0, 12.0),
            switch: ComponentParams::new(430_000.0, 4.0),
            router: ComponentParams::new(14_077_473.0, 4.0),
            nas: ComponentParams::new(20_000_000.0, 2.0),
            vm: ComponentParams::new(2880.0, 0.5),
            backup: ComponentParams::new(50_000.0, 0.5),
            vm_start_hours: 5.0 / 60.0,
            dc_recovery_hours: HOURS_PER_YEAR,
            vm_size_gb: 4.0,
            min_running_vms: 2,
        }
    }

    /// VM timing bundle.
    pub fn vm_params(&self) -> VmParams {
        VmParams {
            mttf_hours: self.vm.mttf_hours,
            mttr_hours: self.vm.mttr_hours,
            start_hours: self.vm_start_hours,
        }
    }

    /// Disaster component for a mean time between disasters in **years**
    /// (the paper sweeps 100, 200, 300) and the configured recovery time.
    pub fn disaster(&self, mean_years: f64) -> ComponentParams {
        ComponentParams::new(mean_years * HOURS_PER_YEAR, self.dc_recovery_hours)
    }

    /// The folded OS+PM series (paper Fig. 5) as SIMPLE_COMPONENT params.
    pub fn ospm_folded(&self) -> crate::error::Result<ComponentParams> {
        let block = dtc_rbd::Block::series([
            dtc_rbd::Block::exponential("OS", self.os.mttf_hours, self.os.mttr_hours),
            dtc_rbd::Block::exponential("PM", self.pm.mttf_hours, self.pm.mttr_hours),
        ]);
        let folded = dtc_rbd::fold(&block)?;
        Ok(ComponentParams::new(folded.mttf, folded.mttr))
    }

    /// The folded switch+router+NAS series (paper Section IV-D) as
    /// SIMPLE_COMPONENT params.
    pub fn nas_net_folded(&self) -> crate::error::Result<ComponentParams> {
        let block = dtc_rbd::Block::series([
            dtc_rbd::Block::exponential(
                "Switch",
                self.switch.mttf_hours,
                self.switch.mttr_hours,
            ),
            dtc_rbd::Block::exponential(
                "Router",
                self.router.mttf_hours,
                self.router.mttr_hours,
            ),
            dtc_rbd::Block::exponential("NAS", self.nas.mttf_hours, self.nas.mttr_hours),
        ]);
        let folded = dtc_rbd::fold(&block)?;
        Ok(ComponentParams::new(folded.mttf, folded.mttr))
    }
}

/// Converts an availability into "number of nines", the paper's Fig. 7
/// y-axis: `nines = -log10(1 - A)`.
///
/// Perfect availability maps to `f64::INFINITY`.
pub fn nines(availability: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&availability),
        "availability must be in [0,1], got {availability}"
    );
    if availability >= 1.0 {
        f64::INFINITY
    } else {
        -(1.0 - availability).log10()
    }
}

/// Converts availability to expected downtime in hours per year.
pub fn downtime_hours_per_year(availability: f64) -> f64 {
    (1.0 - availability) * HOURS_PER_YEAR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vi_matches_paper() {
        let p = PaperParams::table_vi();
        assert_eq!(p.os.mttf_hours, 4000.0);
        assert_eq!(p.pm.mttr_hours, 12.0);
        assert_eq!(p.router.mttf_hours, 14_077_473.0);
        assert_eq!(p.vm.mttr_hours, 0.5);
        assert_eq!(p.min_running_vms, 2);
        assert!((p.vm_start_hours - 1.0 / 12.0).abs() < 1e-12);
        assert_eq!(TABLE_VI.len(), 7);
    }

    #[test]
    fn disaster_params() {
        let p = PaperParams::table_vi();
        let d = p.disaster(100.0);
        assert_eq!(d.mttf_hours, 876_000.0);
        assert_eq!(d.mttr_hours, 8760.0);
        assert!((d.availability() - 100.0 / 101.0).abs() < 1e-12);
    }

    #[test]
    fn ospm_fold_reproduces_series_availability() {
        let p = PaperParams::table_vi();
        let ospm = p.ospm_folded().unwrap();
        let expect = (4000.0 / 4001.0) * (1000.0 / 1012.0);
        assert!((ospm.availability() - expect).abs() < 1e-12);
    }

    #[test]
    fn nas_net_fold_is_highly_available() {
        let p = PaperParams::table_vi();
        let nn = p.nas_net_folded().unwrap();
        assert!(nn.availability() > 0.99998);
        assert!(nn.mttf_hours > 300_000.0);
    }

    #[test]
    fn nines_examples_from_table_vii() {
        // Paper: A=0.9997317 -> 3.57 nines.
        assert!((nines(0.9997317) - 3.5714).abs() < 0.01);
        // A=0.9842914 -> 1.80 nines.
        assert!((nines(0.9842914) - 1.8038).abs() < 0.01);
        assert_eq!(nines(1.0), f64::INFINITY);
        assert!((nines(0.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn downtime_conversion() {
        assert!((downtime_hours_per_year(0.9990) - 8.76).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "MTTF")]
    fn bad_params_panic() {
        ComponentParams::new(0.0, 1.0);
    }
}
