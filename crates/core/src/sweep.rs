//! Parallel evaluation of scenario batches.
//!
//! The Figure 7 sweep solves 45 independent models; this module fans the
//! work out over a scoped thread pool (`std::thread::scope`) with a shared
//! work queue, collecting per-scenario reports (or errors) in input order.
//!
//! Each scenario is additionally isolated with `catch_unwind`: a panic
//! while building or solving one model (for example a non-finite rate that
//! trips a builder assertion) becomes a [`CloudError::Panicked`] for that
//! scenario instead of poisoning the whole batch.

use crate::analysis::{AnalysisReport, AnalysisRequest};
use crate::error::CloudError;
use crate::metrics::{AvailabilityReport, EvalOptions};
use crate::system::{CloudModel, CloudSystemSpec};
use dtc_petri::TangibleStructure;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Result of evaluating one scenario in a sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Index into the input slice.
    pub index: usize,
    /// The evaluation result.
    pub report: Result<AvailabilityReport, CloudError>,
}

/// Builds and evaluates one spec, converting panics into errors.
///
/// The single-spec entry point used by callers that manage their own
/// fan-out (e.g. single-flight evaluation in `dtc-engine`), with the same
/// panic isolation the batch harness applies per scenario.
pub fn evaluate_guarded(
    spec: &CloudSystemSpec,
    opts: &EvalOptions,
) -> Result<AvailabilityReport, CloudError> {
    guard(|| CloudModel::build(spec).and_then(|model| model.evaluate(opts)))
}

/// Like [`evaluate_guarded`], but re-rating `structure` instead of
/// exploring when it matches the spec's compiled net (see
/// [`CloudModel::state_space_from`]). Results are bit-identical either way;
/// a mismatched structure silently falls back to full exploration.
pub fn evaluate_guarded_from(
    spec: &CloudSystemSpec,
    opts: &EvalOptions,
    structure: Option<&Arc<TangibleStructure>>,
) -> Result<AvailabilityReport, CloudError> {
    guard(|| {
        let model = CloudModel::build(spec)?;
        let graph = model.state_space_from(opts, structure)?;
        model.evaluate_on(&graph, opts)
    })
}

/// Like [`evaluate_guarded`], but also returning the explored
/// [`TangibleStructure`] so rate-only siblings (a sensitivity study's
/// perturbed jobs) can be re-rated from it.
pub(crate) fn evaluate_guarded_with_structure(
    spec: &CloudSystemSpec,
    opts: &EvalOptions,
) -> Result<(AvailabilityReport, Arc<TangibleStructure>), CloudError> {
    guard(|| {
        let model = CloudModel::build(spec)?;
        let graph = model.state_space_from(opts, None)?;
        let report = model.evaluate_on(&graph, opts)?;
        Ok((report, Arc::clone(graph.structure())))
    })
}

/// Builds one spec and runs a whole analysis set against a single
/// state-space construction ([`CloudModel::evaluate_all`]), with the same
/// panic isolation as [`evaluate_guarded`]. The multi-metric entry point
/// the engine's single-flight executor calls.
pub fn evaluate_all_guarded(
    spec: &CloudSystemSpec,
    requests: &[AnalysisRequest],
    opts: &EvalOptions,
) -> Result<Vec<AnalysisReport>, CloudError> {
    guard(|| CloudModel::build(spec).and_then(|model| model.evaluate_all(spec, requests, opts)))
}

/// Batch-scoped pool of explored structures, keyed by structural
/// fingerprint ([`CloudModel::net_fingerprint`]).
///
/// A batch executor creates one registry per batch and routes every job
/// through [`evaluate_all_shared`]: the first job of each structural group
/// explores and publishes its structure; every later sibling re-rates it.
/// Re-rated graphs are bit-identical to freshly explored ones, so
/// concurrent first-comers racing on the same fingerprint cost at most a
/// redundant exploration — never a different result.
///
/// Structure sharing is an execution detail (like thread counts): it must
/// never leak into cache keys or report bytes.
#[derive(Debug, Default)]
pub struct StructureRegistry {
    inner: Mutex<HashMap<u64, Arc<TangibleStructure>>>,
}

impl StructureRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The structure previously published for `fingerprint`, if any.
    pub fn get(&self, fingerprint: u64) -> Option<Arc<TangibleStructure>> {
        self.inner.lock().expect("registry mutex poisoned").get(&fingerprint).cloned()
    }

    /// Publishes `structure` for `fingerprint`; the first publication wins.
    pub fn insert(&self, fingerprint: u64, structure: Arc<TangibleStructure>) {
        self.inner
            .lock()
            .expect("registry mutex poisoned")
            .entry(fingerprint)
            .or_insert(structure);
    }

    /// Number of distinct structural groups seen so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry mutex poisoned").len()
    }

    /// Whether no structure has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Like [`evaluate_all_guarded`], but sharing explorations across a batch
/// through `registry`: if a structure with this spec's fingerprint was
/// already published, the state space is re-rated from it (bit-identical,
/// no exploration); otherwise this job explores and publishes its structure
/// for later siblings.
pub fn evaluate_all_shared(
    spec: &CloudSystemSpec,
    requests: &[AnalysisRequest],
    opts: &EvalOptions,
    registry: &StructureRegistry,
) -> Result<Vec<AnalysisReport>, CloudError> {
    guard(|| {
        let model = CloudModel::build(spec)?;
        let fingerprint = model.net_fingerprint();
        let shared = registry.get(fingerprint);
        let graph = model.state_space_from(opts, shared.as_ref())?;
        if shared.is_none() {
            registry.insert(fingerprint, Arc::clone(graph.structure()));
        }
        model.evaluate_all_on(spec, &graph, requests, opts)
    })
}

/// Converts panics inside `f` into [`CloudError::Panicked`].
fn guard<T>(f: impl FnOnce() -> Result<T, CloudError>) -> Result<T, CloudError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(CloudError::Panicked(msg))
        }
    }
}

/// Evaluates every spec, spreading work over `threads` worker threads
/// (clamped to at least 1). Results are returned in input order; individual
/// failures — including panics inside the model pipeline — are captured per
/// scenario instead of aborting the batch.
pub fn sweep_reports(
    specs: &[CloudSystemSpec],
    opts: &EvalOptions,
    threads: usize,
) -> Vec<SweepOutcome> {
    sweep_reports_from(specs, opts, threads, None)
}

/// Like [`sweep_reports`], but offering every job a shared
/// [`TangibleStructure`] to re-rate instead of exploring (see
/// [`CloudModel::state_space_from`]). Jobs whose net does not match the
/// structure fall back to full exploration, so a mixed batch is correct —
/// just slower for the outliers. Results are bit-identical to
/// [`sweep_reports`] either way.
pub fn sweep_reports_from(
    specs: &[CloudSystemSpec],
    opts: &EvalOptions,
    threads: usize,
    structure: Option<&Arc<TangibleStructure>>,
) -> Vec<SweepOutcome> {
    let threads = threads.max(1).min(specs.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<SweepOutcome>>> = Mutex::new(vec![None; specs.len()]);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let report = evaluate_guarded_from(&specs[i], opts, structure);
                let mut slots = results.lock().expect("results mutex poisoned");
                slots[i] = Some(SweepOutcome { index: i, report });
            });
        }
    });

    results
        .into_inner()
        .expect("results mutex poisoned")
        .into_iter()
        .map(|o| o.expect("every index filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ComponentParams, VmParams};
    use crate::system::{DataCenterSpec, PmSpec};

    fn tiny(mttf: f64) -> CloudSystemSpec {
        CloudSystemSpec {
            ospm: ComponentParams::new(mttf, 12.0),
            vm: VmParams { mttf_hours: 2880.0, mttr_hours: 0.5, start_hours: 0.1 },
            data_centers: vec![DataCenterSpec {
                label: "1".into(),
                pms: vec![PmSpec::hot(1, 1)],
                disaster: None,
                nas_net: None,
                backup_inbound_mtt_hours: None,
            }],
            backup: None,
            direct_mtt_hours: vec![vec![None]],
            min_running_vms: 1,
            migration_threshold: 1,
        }
    }

    #[test]
    fn sweep_preserves_order_and_monotonicity() {
        let specs: Vec<_> = [500.0, 1000.0, 2000.0, 4000.0].map(tiny).into();
        let out = sweep_reports(&specs, &EvalOptions::default(), 4);
        assert_eq!(out.len(), 4);
        let mut prev = 0.0;
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.index, i);
            let a = o.report.as_ref().unwrap().availability;
            assert!(a > prev, "availability should rise with PM MTTF");
            prev = a;
        }
    }

    #[test]
    fn sweep_captures_individual_failures() {
        let mut bad = tiny(1000.0);
        bad.min_running_vms = 99;
        let specs = vec![tiny(1000.0), bad];
        let out = sweep_reports(&specs, &EvalOptions::default(), 2);
        assert!(out[0].report.is_ok());
        assert!(out[1].report.is_err());
    }

    #[test]
    fn single_thread_works() {
        let specs = vec![tiny(1000.0)];
        let out = sweep_reports(&specs, &EvalOptions::default(), 0);
        assert!(out[0].report.is_ok());
    }

    #[test]
    fn panicking_scenario_becomes_error_not_batch_poison() {
        // A NaN MTTF sails past spec validation (the ComponentParams value
        // is forged with a struct literal, skipping `new`) and trips the
        // positive-rate assertion inside the Petri-net builder — a panic.
        let mut evil = tiny(1000.0);
        evil.ospm = ComponentParams { mttf_hours: f64::NAN, mttr_hours: 12.0 };
        let specs = vec![tiny(1000.0), evil, tiny(2000.0)];
        let out = sweep_reports(&specs, &EvalOptions::default(), 2);
        assert!(out[0].report.is_ok());
        assert!(
            matches!(&out[1].report, Err(CloudError::Panicked(msg)) if msg.contains("positive")),
            "expected Panicked, got {:?}",
            out[1].report
        );
        assert!(out[2].report.is_ok(), "batch must survive a panicking scenario");
    }
}
