//! Parallel evaluation of scenario batches.
//!
//! The Figure 7 sweep solves 45 independent models; this module fans the
//! work out over a scoped thread pool (crossbeam) with a shared work queue,
//! collecting per-scenario reports (or errors) in input order.

use crate::error::CloudError;
use crate::metrics::{AvailabilityReport, EvalOptions};
use crate::system::{CloudModel, CloudSystemSpec};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Result of evaluating one scenario in a sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Index into the input slice.
    pub index: usize,
    /// The evaluation result.
    pub report: Result<AvailabilityReport, CloudError>,
}

/// Evaluates every spec, spreading work over `threads` worker threads
/// (clamped to at least 1). Results are returned in input order; individual
/// failures are captured per scenario instead of aborting the batch.
pub fn sweep_reports(
    specs: &[CloudSystemSpec],
    opts: &EvalOptions,
    threads: usize,
) -> Vec<SweepOutcome> {
    let threads = threads.max(1).min(specs.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<SweepOutcome>>> = Mutex::new(vec![None; specs.len()]);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let report = CloudModel::build(specs[i].clone())
                    .and_then(|model| model.evaluate(opts));
                results.lock()[i] = Some(SweepOutcome { index: i, report });
            });
        }
    })
    .expect("sweep worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|o| o.expect("every index filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ComponentParams, VmParams};
    use crate::system::{DataCenterSpec, PmSpec};

    fn tiny(mttf: f64) -> CloudSystemSpec {
        CloudSystemSpec {
            ospm: ComponentParams::new(mttf, 12.0),
            vm: VmParams { mttf_hours: 2880.0, mttr_hours: 0.5, start_hours: 0.1 },
            data_centers: vec![DataCenterSpec {
                label: "1".into(),
                pms: vec![PmSpec::hot(1, 1)],
                disaster: None,
                nas_net: None,
                backup_inbound_mtt_hours: None,
            }],
            backup: None,
            direct_mtt_hours: vec![vec![None]],
            min_running_vms: 1,
            migration_threshold: 1,
        }
    }

    #[test]
    fn sweep_preserves_order_and_monotonicity() {
        let specs: Vec<_> = [500.0, 1000.0, 2000.0, 4000.0].map(tiny).into();
        let out = sweep_reports(&specs, &EvalOptions::default(), 4);
        assert_eq!(out.len(), 4);
        let mut prev = 0.0;
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.index, i);
            let a = o.report.as_ref().unwrap().availability;
            assert!(a > prev, "availability should rise with PM MTTF");
            prev = a;
        }
    }

    #[test]
    fn sweep_captures_individual_failures() {
        let mut bad = tiny(1000.0);
        bad.min_running_vms = 99;
        let specs = vec![tiny(1000.0), bad];
        let out = sweep_reports(&specs, &EvalOptions::default(), 2);
        assert!(out[0].report.is_ok());
        assert!(out[1].report.is_err());
    }

    #[test]
    fn single_thread_works() {
        let specs = vec![tiny(1000.0)];
        let out = sweep_reports(&specs, &EvalOptions::default(), 0);
        assert!(out[0].report.is_ok());
    }
}
