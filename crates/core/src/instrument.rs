//! Process-wide counters for state-space construction.
//!
//! Structure/rate separation promises that a batch of structurally
//! identical models (a sensitivity study's ±5% jobs, a catalog grid, a
//! search space) costs **one** exploration per structural group, with every
//! sibling produced by re-rating the shared [`dtc_petri::TangibleStructure`].
//! These counters let integration tests pin that contract end to end —
//! run a fig7 sensitivity set, assert explorations advanced by exactly 1
//! while re-rates advanced by two per parameter — without threading a
//! stats object through every layer (the same pattern
//! `dtc_markov::instrument` uses for builds/marches).
//!
//! The counters live in the [`dtc_obs::global`] registry, so a `/metrics`
//! scrape sees them alongside the solver counters:
//!
//! * `dtc_core_explorations_total`
//! * `dtc_core_re_rates_total`
//! * `dtc_core_rerate_fallbacks_total`
//!
//! Counters are cumulative for the process. Tests that assert on deltas
//! should run in their own integration-test binary so concurrent tests in
//! the same process cannot interleave extra evaluations.

use dtc_obs::Counter;
use std::sync::{Arc, OnceLock};

fn core_counter<'a>(
    cell: &'a OnceLock<Arc<Counter>>,
    name: &'static str,
    help: &'static str,
) -> &'a Counter {
    cell.get_or_init(|| dtc_obs::global().counter(name, help, &[]))
}

fn explorations_counter() -> &'static Counter {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    core_counter(
        &C,
        "dtc_core_explorations_total",
        "Full tangible state-space explorations since process start.",
    )
}

fn re_rates_counter() -> &'static Counter {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    core_counter(
        &C,
        "dtc_core_re_rates_total",
        "Graphs produced by re-rating a shared structure since process start.",
    )
}

fn fallbacks_counter() -> &'static Counter {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    core_counter(
        &C,
        "dtc_core_rerate_fallbacks_total",
        "Offered structures rejected (fingerprint mismatch or incompatible \
         options), falling back to full exploration, since process start.",
    )
}

/// Total full state-space explorations since process start.
pub fn explorations() -> u64 {
    explorations_counter().value()
}

/// Total graphs produced by re-rating a shared structure since process
/// start.
pub fn re_rates() -> u64 {
    re_rates_counter().value()
}

/// Total re-rate fallbacks (structure offered but rejected) since process
/// start.
pub fn rerate_fallbacks() -> u64 {
    fallbacks_counter().value()
}

/// Folds one [`dtc_petri::ExploreStats`] delta into the global counters.
pub(crate) fn record_explore(stats: &dtc_petri::ExploreStats) {
    if stats.explorations > 0 {
        explorations_counter().add(stats.explorations);
    }
    if stats.re_rates > 0 {
        re_rates_counter().add(stats.re_rates);
    }
    if stats.fallbacks > 0 {
        fallbacks_counter().add(stats.fallbacks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone_and_scraped() {
        let e0 = explorations();
        let r0 = re_rates();
        let f0 = rerate_fallbacks();
        record_explore(&dtc_petri::ExploreStats { explorations: 1, re_rates: 2, fallbacks: 3 });
        assert!(explorations() > e0);
        assert!(re_rates() >= r0 + 2);
        assert!(rerate_fallbacks() >= f0 + 3);
        let text = dtc_obs::global().render();
        assert!(text.contains("dtc_core_explorations_total"), "scrape: {text}");
        assert!(text.contains("dtc_core_re_rates_total"), "scrape: {text}");
    }
}
