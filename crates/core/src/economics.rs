//! Cost modeling on top of the dependability metrics.
//!
//! The paper motivates disaster tolerance with SLA penalties ("penalties
//! may be applied if the defined availability level is not satisfied").
//! This module turns an [`crate::AvailabilityReport`] into money so that
//! candidate architectures can be compared on expected **annual cost**:
//! downtime penalties versus the capital/operating cost of extra sites,
//! machines and WAN bandwidth.

use crate::metrics::AvailabilityReport;
use crate::params::HOURS_PER_YEAR;
use crate::system::{CloudSystemSpec, SystemSummary};

/// Cost-rate assumptions, all in the same currency unit.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostModel {
    /// Revenue lost / SLA penalty per hour of service outage.
    pub downtime_cost_per_hour: f64,
    /// Annual fixed cost of operating one data-center site.
    pub site_cost_per_year: f64,
    /// Annual cost per physical machine (power, amortized hardware).
    pub pm_cost_per_year: f64,
    /// Annual cost of the backup server and its replication traffic.
    pub backup_cost_per_year: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Round-number defaults in USD: a mid-size business service.
        CostModel {
            downtime_cost_per_hour: 10_000.0,
            site_cost_per_year: 200_000.0,
            pm_cost_per_year: 8_000.0,
            backup_cost_per_year: 30_000.0,
        }
    }
}

/// Annual cost breakdown for one architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Expected SLA/downtime cost per year.
    pub downtime: f64,
    /// Site + machine + backup infrastructure cost per year.
    pub infrastructure: f64,
}

impl CostBreakdown {
    /// Total expected annual cost.
    pub fn total(&self) -> f64 {
        self.downtime + self.infrastructure
    }
}

impl CostModel {
    /// Expected annual cost of running `spec` given its evaluated `report`.
    pub fn annual_cost(
        &self,
        spec: &CloudSystemSpec,
        report: &AvailabilityReport,
    ) -> CostBreakdown {
        self.annual_cost_for(&SystemSummary::of(spec), report)
    }

    /// Like [`CostModel::annual_cost`], but from a compiled model's
    /// [`SystemSummary`] — the path [`crate::CloudModel::evaluate_all`]
    /// uses, since a built model no longer retains its full spec.
    pub fn annual_cost_for(
        &self,
        summary: &SystemSummary,
        report: &AvailabilityReport,
    ) -> CostBreakdown {
        let downtime = report.downtime_hours_per_year * self.downtime_cost_per_hour;
        let sites = summary.data_centers as f64 * self.site_cost_per_year;
        let pms = summary.total_pms as f64 * self.pm_cost_per_year;
        let backup = if summary.has_backup { self.backup_cost_per_year } else { 0.0 };
        CostBreakdown { downtime, infrastructure: sites + pms + backup }
    }

    /// The downtime cost per year implied by an availability level alone.
    pub fn downtime_cost(&self, availability: f64) -> f64 {
        (1.0 - availability) * HOURS_PER_YEAR * self.downtime_cost_per_hour
    }

    /// Break-even downtime-cost rate between two architectures: the hourly
    /// outage cost above which the higher-availability option `b` is
    /// cheaper despite `extra_infra` additional annual infrastructure
    /// spend. Returns `None` if `b` is not actually more available.
    pub fn break_even_rate(
        availability_a: f64,
        availability_b: f64,
        extra_infra: f64,
    ) -> Option<f64> {
        let saved_hours = (availability_b - availability_a) * HOURS_PER_YEAR;
        if saved_hours <= 0.0 {
            return None;
        }
        Some(extra_infra / saved_hours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_markov::{Method, SolveStats};
    use dtc_petri::ReachStats;

    fn report(availability: f64) -> AvailabilityReport {
        AvailabilityReport::new(
            availability,
            2.0,
            2,
            ReachStats::default(),
            SolveStats { iterations: 1, residual: 0.0, method: Method::Direct },
        )
    }

    fn one_dc_spec() -> CloudSystemSpec {
        use crate::params::{ComponentParams, VmParams};
        use crate::system::{DataCenterSpec, PmSpec};
        CloudSystemSpec {
            ospm: ComponentParams::new(1000.0, 10.0),
            vm: VmParams { mttf_hours: 2880.0, mttr_hours: 0.5, start_hours: 0.1 },
            data_centers: vec![DataCenterSpec {
                label: "1".into(),
                pms: vec![PmSpec::hot(2, 2), PmSpec::warm(2)],
                disaster: None,
                nas_net: None,
                backup_inbound_mtt_hours: None,
            }],
            backup: None,
            direct_mtt_hours: vec![vec![None]],
            min_running_vms: 1,
            migration_threshold: 1,
        }
    }

    #[test]
    fn annual_cost_combines_terms() {
        let cm = CostModel {
            downtime_cost_per_hour: 1000.0,
            site_cost_per_year: 100_000.0,
            pm_cost_per_year: 5_000.0,
            backup_cost_per_year: 10_000.0,
        };
        let spec = one_dc_spec();
        let r = report(0.999); // 8.76 h/year downtime
        let cost = cm.annual_cost(&spec, &r);
        assert!((cost.downtime - 8760.0).abs() < 1e-6);
        // 1 site + 2 PMs, no backup.
        assert!((cost.infrastructure - 110_000.0).abs() < 1e-9);
        assert!((cost.total() - 118_760.0).abs() < 1e-6);
    }

    #[test]
    fn backup_charged_only_when_present() {
        let cm = CostModel::default();
        let mut spec = one_dc_spec();
        let r = report(0.999);
        let without = cm.annual_cost(&spec, &r);
        spec.backup = Some(crate::params::ComponentParams::new(50_000.0, 0.5));
        // (direct_mtt and paths unchanged; only the component's presence
        // drives the cost term.)
        let with = cm.annual_cost(&spec, &r);
        assert!(
            (with.infrastructure - without.infrastructure - cm.backup_cost_per_year).abs()
                < 1e-9
        );
    }

    #[test]
    fn break_even_rate_math() {
        // b saves 8.76 h/year (0.999 -> 0.9999…); extra infra 87 600 =>
        // break-even at 10 000 per hour... construct simply:
        let rate = CostModel::break_even_rate(0.999, 0.9995, 43_800.0).unwrap();
        // saved hours = 0.0005 * 8760 = 4.38 h/year (tolerance allows for
        // the cancellation error in 0.9995 - 0.999).
        assert!((rate - 10_000.0).abs() < 1e-5, "{rate}");
        assert!(CostModel::break_even_rate(0.999, 0.998, 1.0).is_none());
    }

    #[test]
    fn downtime_cost_scales_linearly() {
        let cm = CostModel::default();
        let a = cm.downtime_cost(0.99);
        let b = cm.downtime_cost(0.98);
        assert!((b / a - 2.0).abs() < 1e-9);
    }
}
