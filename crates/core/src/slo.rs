//! Service-level objectives for SLO-driven design search.
//!
//! The paper evaluates fixed architectures and reads off availability and
//! cost; design search inverts the question — "what is the cheapest
//! architecture that meets four nines?". An [`SloTarget`] names the
//! constraint side of that inversion: a steady-state availability floor
//! and an optional annual cost ceiling a candidate must satisfy to be
//! *feasible*. The search subsystem (`dtc-search`) enumerates candidates,
//! evaluates them through the shared cache, and filters with
//! [`SloTarget::is_met`].

use crate::error::{CloudError, Result};
use crate::params::nines;

/// The request kind under which design searches travel through catalogs
/// and HTTP bodies (`[search]` sections, `POST /v2/search`). Searches are
/// batch-level — they orchestrate many per-scenario analyses — so this is
/// deliberately *not* an [`crate::AnalysisRequest`] variant: per-spec
/// cache identity stays untouched by the search layer above it.
pub const DESIGN_SEARCH_KIND: &str = "design_search";

/// A service-level objective: the feasibility constraints of a design
/// search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloTarget {
    /// Minimum steady-state availability a candidate must reach
    /// (e.g. `0.9999` for "four nines"). Must lie in `(0, 1)`.
    pub availability_floor: f64,
    /// Optional annual cost ceiling in dollars per year; `None` means
    /// cost is unconstrained (the frontier still ranks by cost).
    pub cost_ceiling: Option<f64>,
}

impl SloTarget {
    /// A validated target.
    ///
    /// # Errors
    ///
    /// Rejects floors outside `(0, 1)` and non-positive or non-finite
    /// ceilings with [`CloudError::BadSpec`].
    pub fn new(availability_floor: f64, cost_ceiling: Option<f64>) -> Result<SloTarget> {
        if !(availability_floor > 0.0 && availability_floor < 1.0) {
            return Err(CloudError::BadSpec(format!(
                "SLO availability floor must lie in (0, 1), got {availability_floor}"
            )));
        }
        if let Some(ceiling) = cost_ceiling {
            if !ceiling.is_finite() || ceiling <= 0.0 {
                return Err(CloudError::BadSpec(format!(
                    "SLO cost ceiling must be positive and finite, got {ceiling}"
                )));
            }
        }
        Ok(SloTarget { availability_floor, cost_ceiling })
    }

    /// Whether a candidate with this steady-state availability and annual
    /// cost satisfies the objective. Boundary values pass: the floor and
    /// ceiling are inclusive.
    pub fn is_met(&self, availability: f64, annual_cost: f64) -> bool {
        availability >= self.availability_floor
            && self.cost_ceiling.is_none_or(|ceiling| annual_cost <= ceiling)
    }

    /// The floor expressed as a number of nines (`0.9999` → `4.0`),
    /// for display.
    pub fn floor_nines(&self) -> f64 {
        nines(self.availability_floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_bounds() {
        assert!(SloTarget::new(0.9999, None).is_ok());
        assert!(SloTarget::new(0.5, Some(1e6)).is_ok());
        for bad in [0.0, 1.0, -0.1, 1.5, f64::NAN] {
            assert!(SloTarget::new(bad, None).is_err(), "floor {bad} must be rejected");
        }
        for bad in [0.0, -5.0, f64::INFINITY, f64::NAN] {
            assert!(SloTarget::new(0.99, Some(bad)).is_err(), "ceiling {bad} must be rejected");
        }
    }

    #[test]
    fn feasibility_is_inclusive() {
        let slo = SloTarget::new(0.9999, Some(500_000.0)).unwrap();
        assert!(slo.is_met(0.9999, 500_000.0));
        assert!(slo.is_met(0.99995, 100.0));
        assert!(!slo.is_met(0.99989, 100.0));
        assert!(!slo.is_met(0.99999, 500_000.1));

        let unbounded = SloTarget::new(0.99, None).unwrap();
        assert!(unbounded.is_met(0.995, f64::MAX));
    }

    #[test]
    fn floor_nines_matches_metric() {
        let slo = SloTarget::new(0.9999, None).unwrap();
        assert!((slo.floor_nines() - 4.0).abs() < 1e-9);
    }
}
