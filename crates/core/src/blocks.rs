//! The paper's SPN building blocks (Section IV).
//!
//! Three generators add subnets to a shared [`PetriNetBuilder`]:
//!
//! * [`add_simple_component`] — Fig. 2 / Table I: a two-state repairable
//!   component (`X_ON`/`X_OFF`, exponential failure and repair, single
//!   server).
//! * [`add_vm_behavior`] — Fig. 3 / Tables II–III: the VMs hosted by one
//!   physical machine, with immediate flush-to-pool on infrastructure
//!   failure and immediate adoption from the pool under capacity.
//! * [`add_direct_transfer`] / [`add_backup_transfer`] — Fig. 4 / Tables
//!   IV–V: inter-data-center VM migration and Backup-Server restore paths.
//!
//! Guard expressions are built by [`infra_down_expr`]/[`infra_up_expr`] in
//! exactly the shape of the paper's Table II, and render identically through
//! [`dtc_petri::NetDisplay`].

use crate::params::{ComponentParams, VmParams};
use dtc_petri::expr::{BoolExpr, IntExpr};
use dtc_petri::model::{PetriNetBuilder, PlaceId, ServerSemantics, TransitionId};

/// Handle to a generated SIMPLE_COMPONENT subnet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleComponent {
    /// The `X_UP` place (1 token initially).
    pub up: PlaceId,
    /// The `X_DOWN` place.
    pub down: PlaceId,
    /// The failure transition.
    pub fail: TransitionId,
    /// The repair transition.
    pub repair: TransitionId,
}

/// Adds a SIMPLE_COMPONENT named `X` (places `X_UP`, `X_DOWN`; transitions
/// `X_Failure`, `X_Repair`), both transitions exponential single-server, as
/// in the paper's Fig. 2 and Table I.
pub fn add_simple_component(
    b: &mut PetriNetBuilder,
    name: &str,
    params: ComponentParams,
) -> SimpleComponent {
    add_simple_component_named(
        b,
        &format!("{name}_UP"),
        &format!("{name}_DOWN"),
        &format!("{name}_Failure"),
        &format!("{name}_Repair"),
        params,
    )
}

/// [`add_simple_component`] with every place/transition name spelled out,
/// so composed models can reproduce the paper's exact identifiers
/// (`OSPM_UP1`, `DC_UP2`, `DISASTER1`, …).
pub fn add_simple_component_named(
    b: &mut PetriNetBuilder,
    up_name: &str,
    down_name: &str,
    fail_name: &str,
    repair_name: &str,
    params: ComponentParams,
) -> SimpleComponent {
    let up = b.place(up_name, 1);
    let down = b.place(down_name, 0);
    let fail = b
        .timed_delay(fail_name, params.mttf_hours, ServerSemantics::Single)
        .input(up)
        .output(down)
        .done();
    let repair = b
        .timed_delay(repair_name, params.mttr_hours, ServerSemantics::Single)
        .input(down)
        .output(up)
        .done();
    SimpleComponent { up, down, fail, repair }
}

/// References to the infrastructure a PM's VMs depend on. `None` entries
/// drop the corresponding conjunct from the guards (e.g. a model without
/// disasters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InfraRefs {
    /// `OSPM_UP` place of the hosting physical machine.
    pub ospm_up: PlaceId,
    /// `NAS_NET_UP` place of the data center's network, if modeled.
    pub nas_net_up: Option<PlaceId>,
    /// `DC_UP` place of the data center's disaster component, if modeled.
    pub dc_up: Option<PlaceId>,
}

/// Table II guard: `(#OSPM_UP=0) OR (#NAS_NET_UP=0) OR (#DC_UP=0)`.
pub fn infra_down_expr(infra: &InfraRefs) -> BoolExpr {
    let mut parts = vec![IntExpr::tokens(infra.ospm_up).eq(0)];
    if let Some(p) = infra.nas_net_up {
        parts.push(IntExpr::tokens(p).eq(0));
    }
    if let Some(p) = infra.dc_up {
        parts.push(IntExpr::tokens(p).eq(0));
    }
    BoolExpr::Or(parts)
}

/// Table II guard: `(#OSPM_UP>0) AND (#NAS_NET_UP>0) AND (#DC_UP>0)`.
pub fn infra_up_expr(infra: &InfraRefs) -> BoolExpr {
    let mut parts = vec![IntExpr::tokens(infra.ospm_up).gt(0)];
    if let Some(p) = infra.nas_net_up {
        parts.push(IntExpr::tokens(p).gt(0));
    }
    if let Some(p) = infra.dc_up {
        parts.push(IntExpr::tokens(p).gt(0));
    }
    BoolExpr::And(parts)
}

/// Handle to a generated VM_BEHAVIOR subnet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmBehavior {
    /// Operational VMs (`VM_UP`).
    pub vm_up: PlaceId,
    /// Failed VMs awaiting repair (`VM_DOWN`).
    pub vm_down: PlaceId,
    /// Repaired/adopted VMs booting (`VM_STG`, merging the paper's
    /// `VM_RDY`/`VM_STRTD` — see DESIGN.md §2).
    pub vm_stg: PlaceId,
    /// VM failure transition (infinite server).
    pub vm_f: TransitionId,
    /// VM repair transition (infinite server).
    pub vm_r: TransitionId,
    /// VM start transition (single server).
    pub vm_strt: TransitionId,
    /// Immediate adoption from the pool (`VM_Subs`).
    pub vm_subs: TransitionId,
}

/// Adds a VM_BEHAVIOR subnet for one physical machine.
///
/// * `suffix` — instance label, e.g. `"1"` (names become `VM_UP1` etc.).
/// * `initial_vms` — tokens initially in `VM_UP` (the PM's hot VMs).
/// * `capacity` — maximum VMs this PM hosts; enforced as a guard on
///   `VM_Subs` (`#VM_UP + #VM_DOWN + #VM_STG < capacity`).
/// * `pool` — the data center's `FailedVMS` pool place.
///
/// # Panics
///
/// Panics if `initial_vms > capacity` or `capacity == 0`.
pub fn add_vm_behavior(
    b: &mut PetriNetBuilder,
    suffix: &str,
    initial_vms: u32,
    capacity: u32,
    vm: VmParams,
    infra: &InfraRefs,
    pool: PlaceId,
) -> VmBehavior {
    assert!(capacity > 0, "PM capacity must be positive");
    assert!(
        initial_vms <= capacity,
        "initial VMs ({initial_vms}) exceed capacity ({capacity})"
    );
    let vm_up = b.place(format!("VM_UP{suffix}"), initial_vms);
    let vm_down = b.place(format!("VM_DOWN{suffix}"), 0);
    let vm_stg = b.place(format!("VM_STG{suffix}"), 0);

    let vm_f = b
        .timed_delay(format!("VM_F{suffix}"), vm.mttf_hours, ServerSemantics::Infinite)
        .input(vm_up)
        .output(vm_down)
        .done();
    let vm_r = b
        .timed_delay(format!("VM_R{suffix}"), vm.mttr_hours, ServerSemantics::Infinite)
        .input(vm_down)
        .output(vm_stg)
        .done();
    let vm_strt = b
        .timed_delay(format!("VM_STRT{suffix}"), vm.start_hours, ServerSemantics::Single)
        .input(vm_stg)
        .output(vm_up)
        .done();

    let down = infra_down_expr(infra);
    b.immediate(format!("FPM_UP{suffix}")).input(vm_up).output(pool).guard(down.clone()).done();
    b.immediate(format!("FPM_DW{suffix}"))
        .input(vm_down)
        .output(pool)
        .guard(down.clone())
        .done();
    b.immediate(format!("FPM_ST{suffix}")).input(vm_stg).output(pool).guard(down).done();

    let capacity_free = IntExpr::tokens_sum([vm_up, vm_down, vm_stg]).lt(capacity as i64);
    let vm_subs = b
        .immediate(format!("VM_Subs{suffix}"))
        .input(pool)
        .output(vm_stg)
        .guard(infra_up_expr(infra).and(capacity_free))
        .done();

    VmBehavior { vm_up, vm_down, vm_stg, vm_f, vm_r, vm_strt, vm_subs }
}

/// Handle to one direction of a transfer path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferPath {
    /// In-flight place (`TRP_ij` / `TBP_ij`).
    pub in_flight: PlaceId,
    /// The immediate enabling transition (`TRI_ij` / `TBI_ij`).
    pub start: TransitionId,
    /// The exponential transfer transition (`TRE_ij` / `TBE_ij`).
    pub transfer: TransitionId,
}

/// Adds the direct data-center-to-data-center migration path `i → j`
/// (paper transitions `TRI_ij` + `TRE_ij`): an immediate guarded move from
/// `pool_from` into an in-flight place, then an exponential transfer with
/// mean `mtt_hours` (single server — transfers are serialized on the link)
/// into `pool_to`.
pub fn add_direct_transfer(
    b: &mut PetriNetBuilder,
    from: &str,
    to: &str,
    pool_from: PlaceId,
    pool_to: PlaceId,
    mtt_hours: f64,
    guard: BoolExpr,
) -> TransferPath {
    let in_flight = b.place(format!("TRP_{from}{to}"), 0);
    let start = b
        .immediate(format!("TRI_{from}{to}"))
        .input(pool_from)
        .output(in_flight)
        .guard(guard)
        .done();
    let transfer = b
        .timed_delay(format!("TRE_{from}{to}"), mtt_hours, ServerSemantics::Single)
        .input(in_flight)
        .output(pool_to)
        .done();
    TransferPath { in_flight, start, transfer }
}

/// Adds the Backup-Server restore path into data center `j` (paper
/// transitions `TBI_ij` + `TBE_ij`), used when the source data center's
/// storage is unreadable (disaster or network failure): the Backup Server
/// pushes its copy of each image to the destination with mean `mtt_hours`.
pub fn add_backup_transfer(
    b: &mut PetriNetBuilder,
    from: &str,
    to: &str,
    pool_from: PlaceId,
    pool_to: PlaceId,
    mtt_hours: f64,
    guard: BoolExpr,
) -> TransferPath {
    let in_flight = b.place(format!("TBP_{from}{to}"), 0);
    let start = b
        .immediate(format!("TBI_{from}{to}"))
        .input(pool_from)
        .output(in_flight)
        .guard(guard)
        .done();
    let transfer = b
        .timed_delay(format!("TBE_{from}{to}"), mtt_hours, ServerSemantics::Single)
        .input(in_flight)
        .output(pool_to)
        .done();
    TransferPath { in_flight, start, transfer }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_petri::reach::{explore, ReachOptions};

    fn vm_params() -> VmParams {
        VmParams { mttf_hours: 2880.0, mttr_hours: 0.5, start_hours: 1.0 / 12.0 }
    }

    #[test]
    fn simple_component_availability_matches_closed_form() {
        let mut b = PetriNetBuilder::new();
        let c = add_simple_component(&mut b, "DC", ComponentParams::new(876_000.0, 8760.0));
        let net = b.build().unwrap();
        let g = explore(&net, &ReachOptions::default()).unwrap();
        let sol = g.solve().unwrap();
        let a = sol.probability(&IntExpr::tokens(c.up).gt(0));
        assert!((a - 100.0 / 101.0).abs() < 1e-10);
    }

    #[test]
    fn guard_expressions_render_like_the_paper() {
        let mut b = PetriNetBuilder::new();
        let ospm = add_simple_component(&mut b, "OSPM1", ComponentParams::new(100.0, 1.0));
        let nas = add_simple_component(&mut b, "NAS_NET1", ComponentParams::new(100.0, 1.0));
        let dc = add_simple_component(&mut b, "DC1", ComponentParams::new(100.0, 1.0));
        let infra =
            InfraRefs { ospm_up: ospm.up, nas_net_up: Some(nas.up), dc_up: Some(dc.up) };
        let net_b = infra_down_expr(&infra);
        let pool = b.place("POOL", 0);
        let _ = pool;
        let net = b.build().unwrap();
        let shown = net.display_expr(&net_b).to_string();
        assert_eq!(shown, "((#OSPM1_UP=0) OR (#NAS_NET1_UP=0) OR (#DC1_UP=0))");
    }

    #[test]
    fn vm_behavior_flushes_on_infra_failure() {
        // One PM with infra; in every tangible state with OSPM down, the VM
        // places must be empty (tokens flushed to the pool).
        let mut b = PetriNetBuilder::new();
        let ospm = add_simple_component(&mut b, "OSPM1", ComponentParams::new(1000.0, 12.0));
        let pool = b.place("POOL_1", 0);
        let infra = InfraRefs { ospm_up: ospm.up, nas_net_up: None, dc_up: None };
        let vmb = add_vm_behavior(&mut b, "1", 2, 2, vm_params(), &infra, pool);
        let net = b.build().unwrap();
        let g = explore(&net, &ReachOptions::default()).unwrap();
        for m in g.states() {
            let ospm_down = m[ospm.up.index()] == 0;
            if ospm_down {
                assert_eq!(m[vmb.vm_up.index()], 0, "VM_UP tokens on dead PM: {m:?}");
                assert_eq!(m[vmb.vm_down.index()], 0);
                assert_eq!(m[vmb.vm_stg.index()], 0);
                assert_eq!(m[pool.index()], 2);
            }
            // Token conservation.
            let total = m[vmb.vm_up.index()]
                + m[vmb.vm_down.index()]
                + m[vmb.vm_stg.index()]
                + m[pool.index()];
            assert_eq!(total, 2);
        }
        // Availability of >=1 VM is below the PM's own availability.
        let sol = g.solve().unwrap();
        let a_vm = sol.probability(&IntExpr::tokens(vmb.vm_up).ge(1));
        let a_pm = sol.probability(&IntExpr::tokens(ospm.up).gt(0));
        assert!(a_vm < a_pm);
        assert!(a_vm > 0.97, "sanity: {a_vm}");
    }

    #[test]
    fn capacity_guard_blocks_adoption() {
        // Two PMs share a pool; PM1 starts with 2 VMs (at capacity), PM2
        // empty with capacity 1. Initial marking resolution must keep pool
        // tokens only when no capacity anywhere.
        let mut b = PetriNetBuilder::new();
        let ospm1 = add_simple_component(&mut b, "OSPM1", ComponentParams::new(1000.0, 12.0));
        let ospm2 = add_simple_component(&mut b, "OSPM2", ComponentParams::new(1000.0, 12.0));
        let pool = b.place("POOL_1", 3);
        let infra1 = InfraRefs { ospm_up: ospm1.up, nas_net_up: None, dc_up: None };
        let infra2 = InfraRefs { ospm_up: ospm2.up, nas_net_up: None, dc_up: None };
        let vmb1 = add_vm_behavior(&mut b, "1", 0, 2, vm_params(), &infra1, pool);
        let vmb2 = add_vm_behavior(&mut b, "2", 0, 1, vm_params(), &infra2, pool);
        let net = b.build().unwrap();
        let g = explore(&net, &ReachOptions::default()).unwrap();
        for m in g.states() {
            let pm1 = m[vmb1.vm_up.index()] + m[vmb1.vm_down.index()] + m[vmb1.vm_stg.index()];
            let pm2 = m[vmb2.vm_up.index()] + m[vmb2.vm_down.index()] + m[vmb2.vm_stg.index()];
            assert!(pm1 <= 2, "PM1 over capacity: {m:?}");
            assert!(pm2 <= 1, "PM2 over capacity: {m:?}");
            // Pool non-empty only if every live PM is full.
            if m[pool.index()] > 0 {
                let pm1_can = m[ospm1.up.index()] > 0 && pm1 < 2;
                let pm2_can = m[ospm2.up.index()] > 0 && pm2 < 1;
                assert!(!pm1_can && !pm2_can, "pool tokens with free capacity: {m:?}");
            }
        }
    }

    #[test]
    fn direct_transfer_moves_pool_tokens() {
        // Pool tokens drain through the in-flight place when the guard holds.
        let mut b = PetriNetBuilder::new();
        let src = b.place("POOL_1", 2);
        let dst = b.place("POOL_2", 0);
        let gate = add_simple_component(&mut b, "GATE", ComponentParams::new(10.0, 10.0));
        let path = add_direct_transfer(
            &mut b,
            "1",
            "2",
            src,
            dst,
            5.0,
            IntExpr::tokens(gate.up).eq(0),
        );
        let net = b.build().unwrap();
        let g = explore(&net, &ReachOptions::default()).unwrap();
        let sol = g.solve().unwrap();
        // Tokens end up in POOL_2 eventually (no way back), so steady state
        // has everything in dst.
        assert!((sol.expected_tokens(dst) - 2.0).abs() < 1e-6);
        assert!(sol.expected_tokens(src).abs() < 1e-9);
        assert!(sol.expected_tokens(path.in_flight).abs() < 1e-9);
    }

    #[test]
    fn transfer_is_single_server() {
        // With 2 tokens in flight the transfer rate must stay 1/mtt (ss),
        // not 2/mtt: verify via the generator matrix of a tiny net.
        let mut b = PetriNetBuilder::new();
        let src = b.place("S", 2);
        let dst = b.place("D", 0);
        b.timed_delay("TRE", 4.0, ServerSemantics::Single).input(src).output(dst).done();
        let net = b.build().unwrap();
        let g = explore(&net, &ReachOptions::default()).unwrap();
        let idx2 = g.state_index(&[2, 0]).unwrap();
        let idx1 = g.state_index(&[1, 1]).unwrap();
        let q = g.ctmc().generator();
        assert!((q.get(idx2, idx1) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceed capacity")]
    fn overfull_pm_panics() {
        let mut b = PetriNetBuilder::new();
        let ospm = add_simple_component(&mut b, "OSPM1", ComponentParams::new(1.0, 1.0));
        let pool = b.place("POOL", 0);
        let infra = InfraRefs { ospm_up: ospm.up, nas_net_up: None, dc_up: None };
        add_vm_behavior(&mut b, "1", 3, 2, vm_params(), &infra, pool);
    }
}
