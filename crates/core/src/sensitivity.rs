//! Parameter sensitivity analysis.
//!
//! For a deployment design, the actionable question after "what is the
//! availability?" is "**which knob moves it most?**" This module computes
//! elasticities — `∂ ln A / ∂ ln θ`, the percentage availability change per
//! percent parameter change — by central finite differences over rebuilt
//! models, evaluated in parallel. Elasticities are the standard sensitivity
//! measure in the dependability literature (and directly comparable across
//! parameters with different units).

use crate::error::Result;
use crate::metrics::EvalOptions;
use crate::sweep::sweep_reports;
use crate::system::CloudSystemSpec;

/// One tunable scalar of a [`CloudSystemSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parameter {
    /// Folded OS+PM mean time to failure.
    OspmMttf,
    /// Folded OS+PM mean time to repair.
    OspmMttr,
    /// VM mean time to failure.
    VmMttf,
    /// VM mean time to repair.
    VmMttr,
    /// VM boot time.
    VmStart,
    /// Backup-server MTTF.
    BackupMttf,
    /// Backup-server MTTR.
    BackupMttr,
    /// Network (NAS_NET) MTTF of one data center.
    NasMttf(usize),
    /// Network MTTR of one data center.
    NasMttr(usize),
    /// Disaster mean time of one data center.
    DisasterMttf(usize),
    /// Disaster recovery time of one data center.
    DisasterMttr(usize),
    /// Direct migration MTT on one link.
    DirectMtt(usize, usize),
    /// Backup restore MTT into one data center.
    BackupMtt(usize),
}

impl std::fmt::Display for Parameter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parameter::OspmMttf => write!(f, "OSPM MTTF"),
            Parameter::OspmMttr => write!(f, "OSPM MTTR"),
            Parameter::VmMttf => write!(f, "VM MTTF"),
            Parameter::VmMttr => write!(f, "VM MTTR"),
            Parameter::VmStart => write!(f, "VM start time"),
            Parameter::BackupMttf => write!(f, "Backup MTTF"),
            Parameter::BackupMttr => write!(f, "Backup MTTR"),
            Parameter::NasMttf(d) => write!(f, "NAS_NET MTTF (DC {})", d + 1),
            Parameter::NasMttr(d) => write!(f, "NAS_NET MTTR (DC {})", d + 1),
            Parameter::DisasterMttf(d) => write!(f, "disaster mean time (DC {})", d + 1),
            Parameter::DisasterMttr(d) => write!(f, "DC recovery time (DC {})", d + 1),
            Parameter::DirectMtt(i, j) => write!(f, "MTT DC{} -> DC{}", i + 1, j + 1),
            Parameter::BackupMtt(d) => write!(f, "MTT backup -> DC{}", d + 1),
        }
    }
}

/// The sensitivity of availability to one parameter.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// Which parameter was perturbed.
    pub parameter: Parameter,
    /// Its value in the base specification.
    pub base_value: f64,
    /// `∂ ln A / ∂ ln θ` (central difference).
    pub elasticity: f64,
    /// `∂ U / ∂ ln θ` where `U = 1 − A` — the unavailability shift per
    /// percent change, often easier to read for highly available systems.
    pub unavailability_shift: f64,
}

/// Every applicable parameter of `spec`.
pub fn applicable_parameters(spec: &CloudSystemSpec) -> Vec<Parameter> {
    let mut out = vec![
        Parameter::OspmMttf,
        Parameter::OspmMttr,
        Parameter::VmMttf,
        Parameter::VmMttr,
        Parameter::VmStart,
    ];
    if spec.backup.is_some() {
        out.push(Parameter::BackupMttf);
        out.push(Parameter::BackupMttr);
    }
    for (d, dc) in spec.data_centers.iter().enumerate() {
        if dc.nas_net.is_some() {
            out.push(Parameter::NasMttf(d));
            out.push(Parameter::NasMttr(d));
        }
        if dc.disaster.is_some() {
            out.push(Parameter::DisasterMttf(d));
            out.push(Parameter::DisasterMttr(d));
        }
        if dc.backup_inbound_mtt_hours.is_some() {
            out.push(Parameter::BackupMtt(d));
        }
    }
    for i in 0..spec.data_centers.len() {
        for j in 0..spec.data_centers.len() {
            if spec.direct_mtt_hours[i][j].is_some() {
                out.push(Parameter::DirectMtt(i, j));
            }
        }
    }
    out
}

/// Reads the current value of `param` in `spec`.
pub fn parameter_value(spec: &CloudSystemSpec, param: &Parameter) -> f64 {
    match param {
        Parameter::OspmMttf => spec.ospm.mttf_hours,
        Parameter::OspmMttr => spec.ospm.mttr_hours,
        Parameter::VmMttf => spec.vm.mttf_hours,
        Parameter::VmMttr => spec.vm.mttr_hours,
        Parameter::VmStart => spec.vm.start_hours,
        Parameter::BackupMttf => spec.backup.expect("backup present").mttf_hours,
        Parameter::BackupMttr => spec.backup.expect("backup present").mttr_hours,
        Parameter::NasMttf(d) => spec.data_centers[*d].nas_net.expect("nas present").mttf_hours,
        Parameter::NasMttr(d) => spec.data_centers[*d].nas_net.expect("nas present").mttr_hours,
        Parameter::DisasterMttf(d) => {
            spec.data_centers[*d].disaster.expect("disaster present").mttf_hours
        }
        Parameter::DisasterMttr(d) => {
            spec.data_centers[*d].disaster.expect("disaster present").mttr_hours
        }
        Parameter::DirectMtt(i, j) => spec.direct_mtt_hours[*i][*j].expect("link present"),
        Parameter::BackupMtt(d) => {
            spec.data_centers[*d].backup_inbound_mtt_hours.expect("path present")
        }
    }
}

/// Returns `spec` with `param` multiplied by `factor`.
pub fn scale_parameter(
    spec: &CloudSystemSpec,
    param: &Parameter,
    factor: f64,
) -> CloudSystemSpec {
    use crate::params::ComponentParams;
    let mut s = spec.clone();
    match param {
        Parameter::OspmMttf => {
            s.ospm = ComponentParams::new(s.ospm.mttf_hours * factor, s.ospm.mttr_hours)
        }
        Parameter::OspmMttr => {
            s.ospm = ComponentParams::new(s.ospm.mttf_hours, s.ospm.mttr_hours * factor)
        }
        Parameter::VmMttf => s.vm.mttf_hours *= factor,
        Parameter::VmMttr => s.vm.mttr_hours *= factor,
        Parameter::VmStart => s.vm.start_hours *= factor,
        Parameter::BackupMttf => {
            let b = s.backup.expect("backup present");
            s.backup = Some(ComponentParams::new(b.mttf_hours * factor, b.mttr_hours));
        }
        Parameter::BackupMttr => {
            let b = s.backup.expect("backup present");
            s.backup = Some(ComponentParams::new(b.mttf_hours, b.mttr_hours * factor));
        }
        Parameter::NasMttf(d) => {
            let c = s.data_centers[*d].nas_net.expect("nas present");
            s.data_centers[*d].nas_net =
                Some(ComponentParams::new(c.mttf_hours * factor, c.mttr_hours));
        }
        Parameter::NasMttr(d) => {
            let c = s.data_centers[*d].nas_net.expect("nas present");
            s.data_centers[*d].nas_net =
                Some(ComponentParams::new(c.mttf_hours, c.mttr_hours * factor));
        }
        Parameter::DisasterMttf(d) => {
            let c = s.data_centers[*d].disaster.expect("disaster present");
            s.data_centers[*d].disaster =
                Some(ComponentParams::new(c.mttf_hours * factor, c.mttr_hours));
        }
        Parameter::DisasterMttr(d) => {
            let c = s.data_centers[*d].disaster.expect("disaster present");
            s.data_centers[*d].disaster =
                Some(ComponentParams::new(c.mttf_hours, c.mttr_hours * factor));
        }
        Parameter::DirectMtt(i, j) => {
            let v = s.direct_mtt_hours[*i][*j].expect("link present");
            s.direct_mtt_hours[*i][*j] = Some(v * factor);
        }
        Parameter::BackupMtt(d) => {
            let v = s.data_centers[*d].backup_inbound_mtt_hours.expect("path");
            s.data_centers[*d].backup_inbound_mtt_hours = Some(v * factor);
        }
    }
    s
}

/// Computes availability elasticities for every applicable parameter of
/// `spec` by central differences with relative step `rel_step` (e.g. 0.05
/// = ±5%), evaluating the perturbed models on `threads` workers.
///
/// Rows are sorted by descending `|elasticity|`.
///
/// # Errors
///
/// Propagates the first model-evaluation error encountered.
pub fn availability_sensitivity(
    spec: &CloudSystemSpec,
    opts: &EvalOptions,
    rel_step: f64,
    threads: usize,
) -> Result<Vec<SensitivityRow>> {
    assert!(rel_step > 0.0 && rel_step < 1.0, "rel_step must be in (0,1)");
    let params = applicable_parameters(spec);
    let mut jobs: Vec<CloudSystemSpec> = Vec::with_capacity(params.len() * 2 + 1);
    jobs.push(spec.clone());
    for p in &params {
        jobs.push(scale_parameter(spec, p, 1.0 + rel_step));
        jobs.push(scale_parameter(spec, p, 1.0 - rel_step));
    }
    let outcomes = sweep_reports(&jobs, opts, threads);
    let avail = |i: usize| -> Result<f64> {
        outcomes[i].report.as_ref().map(|r| r.availability).map_err(Clone::clone)
    };
    let base = avail(0)?;
    let mut rows = Vec::with_capacity(params.len());
    for (k, p) in params.iter().enumerate() {
        let up = avail(1 + 2 * k)?;
        let down = avail(2 + 2 * k)?;
        let dlna = (up - down) / base;
        let dlnt = 2.0 * rel_step;
        rows.push(SensitivityRow {
            parameter: p.clone(),
            base_value: parameter_value(spec, p),
            elasticity: dlna / dlnt,
            unavailability_shift: -(up - down) / dlnt,
        });
    }
    rows.sort_by(|a, b| b.elasticity.abs().total_cmp(&a.elasticity.abs()));
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ComponentParams, VmParams};
    use crate::system::{DataCenterSpec, PmSpec};

    fn spec() -> CloudSystemSpec {
        CloudSystemSpec {
            ospm: ComponentParams::new(1000.0, 12.0),
            vm: VmParams { mttf_hours: 2880.0, mttr_hours: 0.5, start_hours: 0.1 },
            data_centers: vec![DataCenterSpec {
                label: "1".into(),
                pms: vec![PmSpec::hot(2, 2)],
                disaster: Some(ComponentParams::new(876_000.0, 8760.0)),
                nas_net: Some(ComponentParams::new(400_000.0, 4.0)),
                backup_inbound_mtt_hours: None,
            }],
            backup: None,
            direct_mtt_hours: vec![vec![None]],
            min_running_vms: 1,
            migration_threshold: 1,
        }
    }

    #[test]
    fn parameter_enumeration_and_roundtrip() {
        let s = spec();
        let params = applicable_parameters(&s);
        assert!(params.contains(&Parameter::OspmMttf));
        assert!(params.contains(&Parameter::DisasterMttf(0)));
        assert!(!params.iter().any(|p| matches!(p, Parameter::BackupMttf)));
        for p in &params {
            let v = parameter_value(&s, p);
            let scaled = scale_parameter(&s, p, 2.0);
            assert!((parameter_value(&scaled, p) - 2.0 * v).abs() < 1e-9, "{p}");
        }
    }

    #[test]
    fn elasticity_signs_are_physical() {
        let s = spec();
        let rows = availability_sensitivity(&s, &EvalOptions::default(), 0.05, 2).unwrap();
        let get = |p: &Parameter| {
            rows.iter().find(|r| &r.parameter == p).expect("row exists").elasticity
        };
        // Longer MTTFs help; longer repair/boot times hurt.
        assert!(get(&Parameter::OspmMttf) > 0.0);
        assert!(get(&Parameter::DisasterMttf(0)) > 0.0);
        assert!(get(&Parameter::OspmMttr) < 0.0);
        assert!(get(&Parameter::DisasterMttr(0)) < 0.0);
        assert!(get(&Parameter::VmMttr) < 0.0);
    }

    #[test]
    fn infrastructure_dominates_vm_timing_for_single_dc() {
        // Unavailability here is split between the PM series (~1.2e-2) and
        // the disaster (~9.9e-3); VM repair/boot timing is orders of
        // magnitude less important. The ranking must reflect that.
        let s = spec();
        let rows = availability_sensitivity(&s, &EvalOptions::default(), 0.05, 2).unwrap();
        let top = &rows[0];
        assert!(
            matches!(
                top.parameter,
                Parameter::OspmMttf
                    | Parameter::OspmMttr
                    | Parameter::DisasterMttf(0)
                    | Parameter::DisasterMttr(0)
            ),
            "top parameter was {}",
            top.parameter
        );
        let rank_of =
            |p: &Parameter| rows.iter().position(|r| &r.parameter == p).expect("row exists");
        // Both infrastructure knobs outrank the VM boot time.
        assert!(rank_of(&Parameter::OspmMttf) < rank_of(&Parameter::VmStart));
        assert!(rank_of(&Parameter::DisasterMttf(0)) < rank_of(&Parameter::VmStart));
    }

    #[test]
    #[should_panic(expected = "rel_step")]
    fn bad_step_panics() {
        let _ = availability_sensitivity(&spec(), &EvalOptions::default(), 1.5, 1);
    }
}
