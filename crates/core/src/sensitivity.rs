//! Parameter sensitivity analysis.
//!
//! For a deployment design, the actionable question after "what is the
//! availability?" is "**which knob moves it most?**" This module computes
//! elasticities — `∂ ln A / ∂ ln θ`, the percentage availability change per
//! percent parameter change — by central finite differences over rebuilt
//! models, evaluated in parallel. Elasticities are the standard sensitivity
//! measure in the dependability literature (and directly comparable across
//! parameters with different units).
//!
//! Every [`Parameter`] has a stable snake_case **key** (`"ospm_mttf"`,
//! `"nas_mttr_1"`, `"direct_mtt_1_2"`, …) used by catalogs, the CLI and the
//! HTTP API to name parameters in filters and reports; keys round-trip
//! through [`Parameter::from_key`]. Accessors that take a parameter the
//! spec may not have ([`parameter_value`], [`scale_parameter`]) return
//! `None` for absent parameters — callers skip them instead of panicking,
//! so a filter written for one architecture can be applied to another.
//!
//! # Examples
//!
//! Rank every knob of a one-data-center deployment by how strongly it
//! moves steady-state availability:
//!
//! ```
//! use dtc_core::prelude::*;
//!
//! let spec = CloudSystemSpec {
//!     ospm: ComponentParams::new(1000.0, 12.0),
//!     vm: VmParams { mttf_hours: 2880.0, mttr_hours: 0.5, start_hours: 0.1 },
//!     data_centers: vec![DataCenterSpec {
//!         label: "1".into(),
//!         pms: vec![PmSpec::hot(1, 1)],
//!         disaster: None,
//!         nas_net: None,
//!         backup_inbound_mtt_hours: None,
//!     }],
//!     backup: None,
//!     direct_mtt_hours: vec![vec![None]],
//!     min_running_vms: 1,
//!     migration_threshold: 1,
//! };
//! let rows = availability_sensitivity(&spec, &EvalOptions::default(), 0.05, 2)?;
//! assert!(!rows.is_empty());
//! // Rows come back ranked by |elasticity|, strongest first…
//! for pair in rows.windows(2) {
//!     assert!(pair[0].elasticity.abs() >= pair[1].elasticity.abs());
//! }
//! // …and longer repair times always hurt availability.
//! let mttr = rows
//!     .iter()
//!     .find(|r| r.parameter == dtc_core::sensitivity::Parameter::OspmMttr)
//!     .expect("OSPM MTTR applies to every spec");
//! assert!(mttr.elasticity < 0.0);
//! assert_eq!(mttr.parameter.key(), "ospm_mttr");
//! # Ok::<(), CloudError>(())
//! ```

use crate::error::{CloudError, Result};
use crate::metrics::EvalOptions;
use crate::sweep::{evaluate_guarded_with_structure, sweep_reports_from};
use crate::system::CloudSystemSpec;
use dtc_petri::TangibleStructure;
use std::sync::Arc;

/// The default central-difference step used by the unified analysis API
/// (±5% around the base point).
pub const DEFAULT_REL_STEP: f64 = 0.05;

/// One tunable scalar of a [`CloudSystemSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parameter {
    /// Folded OS+PM mean time to failure.
    OspmMttf,
    /// Folded OS+PM mean time to repair.
    OspmMttr,
    /// VM mean time to failure.
    VmMttf,
    /// VM mean time to repair.
    VmMttr,
    /// VM boot time.
    VmStart,
    /// Backup-server MTTF.
    BackupMttf,
    /// Backup-server MTTR.
    BackupMttr,
    /// Network (NAS_NET) MTTF of one data center.
    NasMttf(usize),
    /// Network MTTR of one data center.
    NasMttr(usize),
    /// Disaster mean time of one data center.
    DisasterMttf(usize),
    /// Disaster recovery time of one data center.
    DisasterMttr(usize),
    /// Direct migration MTT on one link.
    DirectMtt(usize, usize),
    /// Backup restore MTT into one data center.
    BackupMtt(usize),
}

/// The family names (keys with data-center/link indices stripped) every
/// parameter key belongs to. A filter entry naming a family selects every
/// indexed instance (`"nas_mttf"` matches `nas_mttf_1`, `nas_mttf_2`, …).
pub const PARAMETER_FAMILIES: [&str; 13] = [
    "ospm_mttf",
    "ospm_mttr",
    "vm_mttf",
    "vm_mttr",
    "vm_start",
    "backup_mttf",
    "backup_mttr",
    "nas_mttf",
    "nas_mttr",
    "disaster_mttf",
    "disaster_mttr",
    "direct_mtt",
    "backup_mtt",
];

impl Parameter {
    /// The stable snake_case key used by catalogs, the CLI and the HTTP
    /// API. Data-center and link indices are 1-based, matching the paper's
    /// `DC1`/`DC2` naming.
    pub fn key(&self) -> String {
        match self {
            Parameter::OspmMttf => "ospm_mttf".into(),
            Parameter::OspmMttr => "ospm_mttr".into(),
            Parameter::VmMttf => "vm_mttf".into(),
            Parameter::VmMttr => "vm_mttr".into(),
            Parameter::VmStart => "vm_start".into(),
            Parameter::BackupMttf => "backup_mttf".into(),
            Parameter::BackupMttr => "backup_mttr".into(),
            Parameter::NasMttf(d) => format!("nas_mttf_{}", d + 1),
            Parameter::NasMttr(d) => format!("nas_mttr_{}", d + 1),
            Parameter::DisasterMttf(d) => format!("disaster_mttf_{}", d + 1),
            Parameter::DisasterMttr(d) => format!("disaster_mttr_{}", d + 1),
            Parameter::DirectMtt(i, j) => format!("direct_mtt_{}_{}", i + 1, j + 1),
            Parameter::BackupMtt(d) => format!("backup_mtt_{}", d + 1),
        }
    }

    /// The key without its indices — one of [`PARAMETER_FAMILIES`].
    pub fn family(&self) -> &'static str {
        match self {
            Parameter::OspmMttf => "ospm_mttf",
            Parameter::OspmMttr => "ospm_mttr",
            Parameter::VmMttf => "vm_mttf",
            Parameter::VmMttr => "vm_mttr",
            Parameter::VmStart => "vm_start",
            Parameter::BackupMttf => "backup_mttf",
            Parameter::BackupMttr => "backup_mttr",
            Parameter::NasMttf(_) => "nas_mttf",
            Parameter::NasMttr(_) => "nas_mttr",
            Parameter::DisasterMttf(_) => "disaster_mttf",
            Parameter::DisasterMttr(_) => "disaster_mttr",
            Parameter::DirectMtt(..) => "direct_mtt",
            Parameter::BackupMtt(_) => "backup_mtt",
        }
    }

    /// Parses a key produced by [`Parameter::key`] (indices are 1-based).
    pub fn from_key(key: &str) -> Option<Parameter> {
        let fixed = match key {
            "ospm_mttf" => Some(Parameter::OspmMttf),
            "ospm_mttr" => Some(Parameter::OspmMttr),
            "vm_mttf" => Some(Parameter::VmMttf),
            "vm_mttr" => Some(Parameter::VmMttr),
            "vm_start" => Some(Parameter::VmStart),
            "backup_mttf" => Some(Parameter::BackupMttf),
            "backup_mttr" => Some(Parameter::BackupMttr),
            _ => None,
        };
        if fixed.is_some() {
            return fixed;
        }
        // 1-based index suffix → 0-based data-center index. Only the
        // canonical spelling parses: usize::from_str alone would also
        // accept "+1" and "01", minting aliases of "nas_mttf_1" that pass
        // filter validation but never string-match the canonical key (and
        // would key cache entries differently for the same request).
        let parse_index = |s: &str| -> Option<usize> {
            let canonical = !s.is_empty()
                && s.bytes().all(|b| b.is_ascii_digit())
                && !(s.len() > 1 && s.starts_with('0'));
            if !canonical {
                return None;
            }
            s.parse::<usize>().ok()?.checked_sub(1)
        };
        let indexed = |prefix: &str| key.strip_prefix(prefix).and_then(parse_index);
        if let Some(d) = indexed("nas_mttf_") {
            return Some(Parameter::NasMttf(d));
        }
        if let Some(d) = indexed("nas_mttr_") {
            return Some(Parameter::NasMttr(d));
        }
        if let Some(d) = indexed("disaster_mttf_") {
            return Some(Parameter::DisasterMttf(d));
        }
        if let Some(d) = indexed("disaster_mttr_") {
            return Some(Parameter::DisasterMttr(d));
        }
        if let Some(d) = indexed("backup_mtt_") {
            return Some(Parameter::BackupMtt(d));
        }
        if let Some(rest) = key.strip_prefix("direct_mtt_") {
            let (i, j) = rest.split_once('_')?;
            return Some(Parameter::DirectMtt(parse_index(i)?, parse_index(j)?));
        }
        None
    }

    /// Whether a filter entry selects this parameter: an exact key match
    /// (`"nas_mttf_2"`) or a family match (`"nas_mttf"` selects every DC's
    /// NAS MTTF).
    pub fn matches_filter_entry(&self, entry: &str) -> bool {
        entry == self.family() || entry == self.key()
    }
}

/// Whether `entry` is a usable parameter-filter entry: a family name from
/// [`PARAMETER_FAMILIES`] or a fully indexed key ([`Parameter::from_key`]).
/// Layers that parse filters (catalogs, HTTP) reject anything else so a
/// typo fails loudly instead of silently matching nothing.
pub fn is_valid_filter_entry(entry: &str) -> bool {
    PARAMETER_FAMILIES.contains(&entry) || Parameter::from_key(entry).is_some()
}

impl std::fmt::Display for Parameter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parameter::OspmMttf => write!(f, "OSPM MTTF"),
            Parameter::OspmMttr => write!(f, "OSPM MTTR"),
            Parameter::VmMttf => write!(f, "VM MTTF"),
            Parameter::VmMttr => write!(f, "VM MTTR"),
            Parameter::VmStart => write!(f, "VM start time"),
            Parameter::BackupMttf => write!(f, "Backup MTTF"),
            Parameter::BackupMttr => write!(f, "Backup MTTR"),
            Parameter::NasMttf(d) => write!(f, "NAS_NET MTTF (DC {})", d + 1),
            Parameter::NasMttr(d) => write!(f, "NAS_NET MTTR (DC {})", d + 1),
            Parameter::DisasterMttf(d) => write!(f, "disaster mean time (DC {})", d + 1),
            Parameter::DisasterMttr(d) => write!(f, "DC recovery time (DC {})", d + 1),
            Parameter::DirectMtt(i, j) => write!(f, "MTT DC{} -> DC{}", i + 1, j + 1),
            Parameter::BackupMtt(d) => write!(f, "MTT backup -> DC{}", d + 1),
        }
    }
}

/// The sensitivity of availability to one parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityRow {
    /// Which parameter was perturbed.
    pub parameter: Parameter,
    /// Its value in the base specification.
    pub base_value: f64,
    /// `∂ ln A / ∂ ln θ` (central difference).
    pub elasticity: f64,
    /// `∂ U / ∂ ln θ` where `U = 1 − A` — the unavailability shift per
    /// percent change, often easier to read for highly available systems.
    pub unavailability_shift: f64,
}

/// Every applicable parameter of `spec`. Parameters the spec does not
/// model (no backup server, no NAS component on some DC, no link between a
/// DC pair) are simply not enumerated.
pub fn applicable_parameters(spec: &CloudSystemSpec) -> Vec<Parameter> {
    let mut out = vec![
        Parameter::OspmMttf,
        Parameter::OspmMttr,
        Parameter::VmMttf,
        Parameter::VmMttr,
        Parameter::VmStart,
    ];
    if spec.backup.is_some() {
        out.push(Parameter::BackupMttf);
        out.push(Parameter::BackupMttr);
    }
    for (d, dc) in spec.data_centers.iter().enumerate() {
        if dc.nas_net.is_some() {
            out.push(Parameter::NasMttf(d));
            out.push(Parameter::NasMttr(d));
        }
        if dc.disaster.is_some() {
            out.push(Parameter::DisasterMttf(d));
            out.push(Parameter::DisasterMttr(d));
        }
        if dc.backup_inbound_mtt_hours.is_some() {
            out.push(Parameter::BackupMtt(d));
        }
    }
    for i in 0..spec.data_centers.len() {
        for j in 0..spec.data_centers.len() {
            if spec.direct_mtt_hours[i][j].is_some() {
                out.push(Parameter::DirectMtt(i, j));
            }
        }
    }
    out
}

/// The applicable parameters of `spec` selected by `filter` (each entry an
/// exact key or a family name; see [`Parameter::matches_filter_entry`]).
/// An empty filter selects everything. Entries that match nothing on this
/// spec — a `"backup_mttf"` filter on an architecture without a backup
/// server, an out-of-range DC index — select nothing rather than erroring,
/// so one filter can be applied across heterogeneous catalog scenarios.
pub fn filtered_parameters(spec: &CloudSystemSpec, filter: &[String]) -> Vec<Parameter> {
    let all = applicable_parameters(spec);
    if filter.is_empty() {
        return all;
    }
    all.into_iter()
        .filter(|p| filter.iter().any(|entry| p.matches_filter_entry(entry)))
        .collect()
}

/// Reads the current value of `param` in `spec`, or `None` if the spec
/// does not model that parameter (absent backup/NAS/disaster component,
/// out-of-range data-center index, missing link).
pub fn parameter_value(spec: &CloudSystemSpec, param: &Parameter) -> Option<f64> {
    match param {
        Parameter::OspmMttf => Some(spec.ospm.mttf_hours),
        Parameter::OspmMttr => Some(spec.ospm.mttr_hours),
        Parameter::VmMttf => Some(spec.vm.mttf_hours),
        Parameter::VmMttr => Some(spec.vm.mttr_hours),
        Parameter::VmStart => Some(spec.vm.start_hours),
        Parameter::BackupMttf => spec.backup.map(|b| b.mttf_hours),
        Parameter::BackupMttr => spec.backup.map(|b| b.mttr_hours),
        Parameter::NasMttf(d) => {
            spec.data_centers.get(*d).and_then(|dc| dc.nas_net).map(|c| c.mttf_hours)
        }
        Parameter::NasMttr(d) => {
            spec.data_centers.get(*d).and_then(|dc| dc.nas_net).map(|c| c.mttr_hours)
        }
        Parameter::DisasterMttf(d) => {
            spec.data_centers.get(*d).and_then(|dc| dc.disaster).map(|c| c.mttf_hours)
        }
        Parameter::DisasterMttr(d) => {
            spec.data_centers.get(*d).and_then(|dc| dc.disaster).map(|c| c.mttr_hours)
        }
        Parameter::DirectMtt(i, j) => {
            spec.direct_mtt_hours.get(*i).and_then(|row| row.get(*j)).copied().flatten()
        }
        Parameter::BackupMtt(d) => {
            spec.data_centers.get(*d).and_then(|dc| dc.backup_inbound_mtt_hours)
        }
    }
}

/// Returns `spec` with `param` multiplied by `factor`, or `None` if the
/// spec does not model that parameter — callers **skip** absent
/// parameters; nothing here panics on a mismatched architecture.
pub fn scale_parameter(
    spec: &CloudSystemSpec,
    param: &Parameter,
    factor: f64,
) -> Option<CloudSystemSpec> {
    use crate::params::ComponentParams;
    // Existence check up front: the arms below may then index freely.
    parameter_value(spec, param)?;
    let mut s = spec.clone();
    match param {
        Parameter::OspmMttf => {
            s.ospm = ComponentParams::new(s.ospm.mttf_hours * factor, s.ospm.mttr_hours)
        }
        Parameter::OspmMttr => {
            s.ospm = ComponentParams::new(s.ospm.mttf_hours, s.ospm.mttr_hours * factor)
        }
        Parameter::VmMttf => s.vm.mttf_hours *= factor,
        Parameter::VmMttr => s.vm.mttr_hours *= factor,
        Parameter::VmStart => s.vm.start_hours *= factor,
        Parameter::BackupMttf => {
            let b = s.backup.expect("checked above");
            s.backup = Some(ComponentParams::new(b.mttf_hours * factor, b.mttr_hours));
        }
        Parameter::BackupMttr => {
            let b = s.backup.expect("checked above");
            s.backup = Some(ComponentParams::new(b.mttf_hours, b.mttr_hours * factor));
        }
        Parameter::NasMttf(d) => {
            let c = s.data_centers[*d].nas_net.expect("checked above");
            s.data_centers[*d].nas_net =
                Some(ComponentParams::new(c.mttf_hours * factor, c.mttr_hours));
        }
        Parameter::NasMttr(d) => {
            let c = s.data_centers[*d].nas_net.expect("checked above");
            s.data_centers[*d].nas_net =
                Some(ComponentParams::new(c.mttf_hours, c.mttr_hours * factor));
        }
        Parameter::DisasterMttf(d) => {
            let c = s.data_centers[*d].disaster.expect("checked above");
            s.data_centers[*d].disaster =
                Some(ComponentParams::new(c.mttf_hours * factor, c.mttr_hours));
        }
        Parameter::DisasterMttr(d) => {
            let c = s.data_centers[*d].disaster.expect("checked above");
            s.data_centers[*d].disaster =
                Some(ComponentParams::new(c.mttf_hours, c.mttr_hours * factor));
        }
        Parameter::DirectMtt(i, j) => {
            let v = s.direct_mtt_hours[*i][*j].expect("checked above");
            s.direct_mtt_hours[*i][*j] = Some(v * factor);
        }
        Parameter::BackupMtt(d) => {
            let v = s.data_centers[*d].backup_inbound_mtt_hours.expect("checked above");
            s.data_centers[*d].backup_inbound_mtt_hours = Some(v * factor);
        }
    }
    Some(s)
}

/// Computes availability elasticities for `params` around an
/// already-known baseline availability, evaluating only the **perturbed**
/// models (two per parameter) on `threads` workers.
///
/// This is the engine behind both [`availability_sensitivity`] and the
/// unified analysis pipeline
/// ([`crate::CloudModel::evaluate_all_on`]), where the baseline
/// availability comes from the analysis set's shared steady-state solve —
/// the base point is **not** rebuilt or re-solved here.
///
/// Parameters absent from `spec` are skipped. Rows are sorted by
/// descending `|elasticity|`.
///
/// Perturbing a rate never changes the net's structure, so when the
/// caller offers the baseline's explored [`TangibleStructure`], every
/// perturbed job re-rates it instead of re-exploring — bit-identical
/// results (see [`crate::CloudModel::state_space_from`]), one exploration
/// for the whole study. Pass `None` to explore per job.
///
/// # Errors
///
/// [`CloudError::BadSpec`] if `rel_step` is outside `(0, 1)` or the
/// baseline availability is not a probability; otherwise the first
/// model-evaluation error encountered.
pub fn sensitivity_with_baseline(
    spec: &CloudSystemSpec,
    params: &[Parameter],
    base_availability: f64,
    opts: &EvalOptions,
    rel_step: f64,
    threads: usize,
    structure: Option<&Arc<TangibleStructure>>,
) -> Result<Vec<SensitivityRow>> {
    if !(rel_step > 0.0 && rel_step < 1.0) {
        return Err(CloudError::BadSpec(format!(
            "sensitivity rel_step {rel_step} must be in (0, 1)"
        )));
    }
    if !(base_availability > 0.0 && base_availability <= 1.0) {
        return Err(CloudError::BadSpec(format!(
            "sensitivity baseline availability {base_availability} must be in (0, 1]"
        )));
    }
    // Only parameters the spec actually models contribute jobs.
    let params: Vec<&Parameter> =
        params.iter().filter(|p| parameter_value(spec, p).is_some()).collect();
    let jobs = perturbed_jobs(spec, &params, rel_step);
    let outcomes = sweep_reports_from(&jobs, opts, threads, structure);
    let avail = |i: usize| -> Result<f64> {
        outcomes[i].report.as_ref().map(|r| r.availability).map_err(Clone::clone)
    };
    assemble_rows(spec, &params, base_availability, rel_step, |k| {
        Ok((avail(2 * k)?, avail(2 * k + 1)?))
    })
}

/// The perturbed specs for `params`, in (up, down) pairs, parameter order.
fn perturbed_jobs(
    spec: &CloudSystemSpec,
    params: &[&Parameter],
    rel_step: f64,
) -> Vec<CloudSystemSpec> {
    let mut jobs = Vec::with_capacity(params.len() * 2);
    for p in params {
        jobs.push(scale_parameter(spec, p, 1.0 + rel_step).expect("parameter present"));
        jobs.push(scale_parameter(spec, p, 1.0 - rel_step).expect("parameter present"));
    }
    jobs
}

/// Turns per-parameter (up, down) availabilities into ranked rows.
fn assemble_rows(
    spec: &CloudSystemSpec,
    params: &[&Parameter],
    base_availability: f64,
    rel_step: f64,
    mut pair: impl FnMut(usize) -> Result<(f64, f64)>,
) -> Result<Vec<SensitivityRow>> {
    let mut rows = Vec::with_capacity(params.len());
    for (k, p) in params.iter().enumerate() {
        let (up, down) = pair(k)?;
        let dlna = (up - down) / base_availability;
        let dlnt = 2.0 * rel_step;
        rows.push(SensitivityRow {
            parameter: (*p).clone(),
            base_value: parameter_value(spec, p).expect("parameter present"),
            elasticity: dlna / dlnt,
            unavailability_shift: -(up - down) / dlnt,
        });
    }
    rows.sort_by(|a, b| b.elasticity.abs().total_cmp(&a.elasticity.abs()));
    Ok(rows)
}

/// Computes availability elasticities for every applicable parameter of
/// `spec` by central differences with relative step `rel_step` (e.g. 0.05
/// = ±5%), evaluating the perturbed models on `threads` workers.
///
/// Rows are sorted by descending `|elasticity|`.
///
/// # Errors
///
/// Propagates the first model-evaluation error encountered.
pub fn availability_sensitivity(
    spec: &CloudSystemSpec,
    opts: &EvalOptions,
    rel_step: f64,
    threads: usize,
) -> Result<Vec<SensitivityRow>> {
    assert!(rel_step > 0.0 && rel_step < 1.0, "rel_step must be in (0,1)");
    let owned = applicable_parameters(spec);
    let params: Vec<&Parameter> = owned.iter().collect();
    // The base point runs first and keeps its explored structure: every
    // perturbed job is a rate-only sibling, so the whole study costs one
    // exploration, with the 2·|params| perturbed graphs re-rated from it
    // (bit-identical to exploring each — see
    // [`crate::CloudModel::state_space_from`]).
    let (base_report, structure) = evaluate_guarded_with_structure(spec, opts)?;
    let base = base_report.availability;
    if !(base > 0.0 && base <= 1.0) {
        return Err(CloudError::BadSpec(format!(
            "sensitivity baseline availability {base} must be in (0, 1]"
        )));
    }
    let jobs = perturbed_jobs(spec, &params, rel_step);
    let outcomes = sweep_reports_from(&jobs, opts, threads, Some(&structure));
    let avail = |i: usize| -> Result<f64> {
        outcomes[i].report.as_ref().map(|r| r.availability).map_err(Clone::clone)
    };
    assemble_rows(spec, &params, base, rel_step, |k| Ok((avail(2 * k)?, avail(2 * k + 1)?)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ComponentParams, VmParams};
    use crate::system::{DataCenterSpec, PmSpec};

    fn spec() -> CloudSystemSpec {
        CloudSystemSpec {
            ospm: ComponentParams::new(1000.0, 12.0),
            vm: VmParams { mttf_hours: 2880.0, mttr_hours: 0.5, start_hours: 0.1 },
            data_centers: vec![DataCenterSpec {
                label: "1".into(),
                pms: vec![PmSpec::hot(2, 2)],
                disaster: Some(ComponentParams::new(876_000.0, 8760.0)),
                nas_net: Some(ComponentParams::new(400_000.0, 4.0)),
                backup_inbound_mtt_hours: None,
            }],
            backup: None,
            direct_mtt_hours: vec![vec![None]],
            min_running_vms: 1,
            migration_threshold: 1,
        }
    }

    #[test]
    fn parameter_enumeration_and_roundtrip() {
        let s = spec();
        let params = applicable_parameters(&s);
        assert!(params.contains(&Parameter::OspmMttf));
        assert!(params.contains(&Parameter::DisasterMttf(0)));
        assert!(!params.iter().any(|p| matches!(p, Parameter::BackupMttf)));
        for p in &params {
            let v = parameter_value(&s, p).expect("applicable parameters have values");
            let scaled = scale_parameter(&s, p, 2.0).expect("applicable parameters scale");
            assert!((parameter_value(&scaled, p).unwrap() - 2.0 * v).abs() < 1e-9, "{p}");
        }
    }

    #[test]
    fn keys_round_trip_for_every_applicable_parameter() {
        let mut wide = spec();
        wide.backup = Some(ComponentParams::new(10_000.0, 2.0));
        wide.data_centers.push(DataCenterSpec {
            label: "2".into(),
            pms: vec![PmSpec::warm(2)],
            disaster: Some(ComponentParams::new(876_000.0, 8760.0)),
            nas_net: Some(ComponentParams::new(400_000.0, 4.0)),
            backup_inbound_mtt_hours: Some(2.0),
        });
        wide.direct_mtt_hours = vec![vec![None, Some(3.0)], vec![Some(3.0), None]];
        for p in applicable_parameters(&wide) {
            let key = p.key();
            assert_eq!(Parameter::from_key(&key), Some(p.clone()), "{key}");
            assert!(p.matches_filter_entry(&key));
            assert!(p.matches_filter_entry(p.family()));
            assert!(is_valid_filter_entry(&key));
            assert!(is_valid_filter_entry(p.family()));
        }
        assert_eq!(Parameter::from_key("direct_mtt_1_2"), Some(Parameter::DirectMtt(0, 1)));
        assert_eq!(Parameter::from_key("nas_mttf_0"), None, "indices are 1-based");
        assert_eq!(Parameter::from_key("vm_mtff"), None);
        // Only the canonical spelling parses — no sign/zero-prefixed
        // aliases of the same parameter (they would pass filter validation
        // yet never match the canonical key).
        assert_eq!(Parameter::from_key("nas_mttf_+1"), None);
        assert_eq!(Parameter::from_key("nas_mttf_01"), None);
        assert_eq!(Parameter::from_key("direct_mtt_+1_2"), None);
        assert_eq!(Parameter::from_key("direct_mtt_1_+2"), None);
        assert_eq!(Parameter::from_key("direct_mtt_01_2"), None);
        assert_eq!(Parameter::from_key("backup_mtt_"), None);
        assert_eq!(Parameter::from_key("nas_mttf_10"), Some(Parameter::NasMttf(9)));
        assert!(!is_valid_filter_entry("nas_mttf_01"));
        assert!(!is_valid_filter_entry("vm_mtff"));
        assert!(is_valid_filter_entry("direct_mtt"), "bare families are valid filters");
    }

    #[test]
    fn absent_parameters_are_skipped_not_panicked() {
        // The spec has no backup server, no second DC, no links.
        let s = spec();
        for p in [
            Parameter::BackupMttf,
            Parameter::BackupMttr,
            Parameter::NasMttf(5),
            Parameter::DisasterMttr(1),
            Parameter::BackupMtt(0),
            Parameter::DirectMtt(0, 0),
            Parameter::DirectMtt(3, 7),
        ] {
            assert_eq!(parameter_value(&s, &p), None, "{p}");
            assert!(scale_parameter(&s, &p, 1.1).is_none(), "{p}");
        }
        // A filter naming only absent parameters selects nothing (and the
        // sweep then produces zero rows) instead of failing.
        let none = filtered_parameters(&s, &["backup_mttf".to_string()]);
        assert!(none.is_empty());
        let rows = sensitivity_with_baseline(
            &s,
            &[Parameter::BackupMttf],
            0.99,
            &EvalOptions::default(),
            0.05,
            1,
            None,
        )
        .unwrap();
        assert!(rows.is_empty(), "absent parameters are skipped");
    }

    #[test]
    fn filters_select_by_key_and_family() {
        let s = spec();
        let by_key = filtered_parameters(&s, &["nas_mttr_1".to_string()]);
        assert_eq!(by_key, vec![Parameter::NasMttr(0)]);
        let by_family =
            filtered_parameters(&s, &["vm_mttf".to_string(), "disaster_mttf".to_string()]);
        assert_eq!(by_family, vec![Parameter::VmMttf, Parameter::DisasterMttf(0)]);
        let all = filtered_parameters(&s, &[]);
        assert_eq!(all, applicable_parameters(&s), "empty filter selects everything");
    }

    #[test]
    fn elasticity_signs_are_physical() {
        let s = spec();
        let rows = availability_sensitivity(&s, &EvalOptions::default(), 0.05, 2).unwrap();
        let get = |p: &Parameter| {
            rows.iter().find(|r| &r.parameter == p).expect("row exists").elasticity
        };
        // Longer MTTFs help; longer repair/boot times hurt.
        assert!(get(&Parameter::OspmMttf) > 0.0);
        assert!(get(&Parameter::DisasterMttf(0)) > 0.0);
        assert!(get(&Parameter::OspmMttr) < 0.0);
        assert!(get(&Parameter::DisasterMttr(0)) < 0.0);
        assert!(get(&Parameter::VmMttr) < 0.0);
    }

    #[test]
    fn infrastructure_dominates_vm_timing_for_single_dc() {
        // Unavailability here is split between the PM series (~1.2e-2) and
        // the disaster (~9.9e-3); VM repair/boot timing is orders of
        // magnitude less important. The ranking must reflect that.
        let s = spec();
        let rows = availability_sensitivity(&s, &EvalOptions::default(), 0.05, 2).unwrap();
        let top = &rows[0];
        assert!(
            matches!(
                top.parameter,
                Parameter::OspmMttf
                    | Parameter::OspmMttr
                    | Parameter::DisasterMttf(0)
                    | Parameter::DisasterMttr(0)
            ),
            "top parameter was {}",
            top.parameter
        );
        let rank_of =
            |p: &Parameter| rows.iter().position(|r| &r.parameter == p).expect("row exists");
        // Both infrastructure knobs outrank the VM boot time.
        assert!(rank_of(&Parameter::OspmMttf) < rank_of(&Parameter::VmStart));
        assert!(rank_of(&Parameter::DisasterMttf(0)) < rank_of(&Parameter::VmStart));
    }

    #[test]
    fn baseline_form_matches_full_sweep() {
        // sensitivity_with_baseline seeded with the true baseline must
        // reproduce availability_sensitivity bit for bit: same perturbed
        // evaluations, same ordering.
        let s = spec();
        let opts = EvalOptions::default();
        let full = availability_sensitivity(&s, &opts, 0.05, 2).unwrap();
        let base = crate::sweep::evaluate_guarded(&s, &opts).unwrap().availability;
        let seeded = sensitivity_with_baseline(
            &s,
            &applicable_parameters(&s),
            base,
            &opts,
            0.05,
            2,
            None,
        )
        .unwrap();
        assert_eq!(full, seeded);
    }

    #[test]
    #[should_panic(expected = "rel_step")]
    fn bad_step_panics() {
        let _ = availability_sensitivity(&spec(), &EvalOptions::default(), 1.5, 1);
    }

    #[test]
    fn bad_step_and_baseline_are_errors_in_the_unified_form() {
        let s = spec();
        let params = applicable_parameters(&s);
        let opts = EvalOptions::default();
        for bad in [0.0, 1.0, -0.1, f64::NAN] {
            assert!(matches!(
                sensitivity_with_baseline(&s, &params, 0.99, &opts, bad, 1, None),
                Err(CloudError::BadSpec(_))
            ));
        }
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(matches!(
                sensitivity_with_baseline(&s, &params, bad, &opts, 0.05, 1, None),
                Err(CloudError::BadSpec(_))
            ));
        }
    }
}
