//! Evaluation options and the dependability report.

use crate::params::{downtime_hours_per_year, nines};
use dtc_markov::{Method, SolveStats, SolverOptions};
use dtc_petri::reach::{ReachOptions, ReachStats};
use std::fmt;

/// Knobs for the numeric evaluation pipeline.
#[derive(Debug, Clone, Default)]
pub struct EvalOptions {
    /// Steady-state solution method.
    pub method: Method,
    /// Solver iteration/tolerance options. `solver.threads` also sets the
    /// worker count for the parallel march/power kernels; like
    /// `sweep_threads` it is a pure scheduling knob (bit-identical results
    /// at every value) and is excluded from cache identity.
    pub solver: SolverOptions,
    /// Reachability exploration options.
    pub reach: ReachOptions,
    /// Worker threads for analyses that fan out over rebuilt models
    /// (today: the sensitivity sweep's perturbed points). `0` means one
    /// per available core. Purely a scheduling knob — it cannot change any
    /// number, so it is *not* part of the evaluation cache identity.
    pub sweep_threads: usize,
}

impl EvalOptions {
    /// Resolves [`EvalOptions::sweep_threads`]: `0` becomes the number of
    /// available cores.
    pub fn resolved_sweep_threads(&self) -> usize {
        if self.sweep_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            self.sweep_threads
        }
    }
}

/// The paper's dependability metrics for one system configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityReport {
    /// Steady-state availability `P{running VMs >= k}`.
    pub availability: f64,
    /// `-log10(1 - A)` — the paper's Fig. 7 unit.
    pub nines: f64,
    /// Expected downtime in hours per year.
    pub downtime_hours_per_year: f64,
    /// Expected number of running VMs `E[Σ #VM_UP]`.
    pub expected_running_vms: f64,
    /// Capacity-oriented availability `E[running]/N`.
    pub capacity_oriented_availability: f64,
    /// Tangible states explored.
    pub tangible_states: usize,
    /// Rate-matrix edges.
    pub edges: usize,
    /// Vanishing markings eliminated.
    pub vanishing_markings: usize,
    /// Solver statistics.
    pub solve: SolveStats,
}

impl AvailabilityReport {
    /// Assembles a report from raw metric values.
    pub fn new(
        availability: f64,
        expected_running_vms: f64,
        total_vms: u32,
        reach: ReachStats,
        solve: SolveStats,
    ) -> Self {
        // Numerical solutions can overshoot 1.0 by rounding; clamp.
        let availability = availability.clamp(0.0, 1.0);
        AvailabilityReport {
            availability,
            nines: nines(availability),
            downtime_hours_per_year: downtime_hours_per_year(availability),
            expected_running_vms,
            capacity_oriented_availability: if total_vms == 0 {
                0.0
            } else {
                expected_running_vms / total_vms as f64
            },
            tangible_states: reach.tangible_states,
            edges: reach.edges,
            vanishing_markings: reach.vanishing_markings,
            solve,
        }
    }
}

impl fmt::Display for AvailabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "availability            : {:.7}", self.availability)?;
        writeln!(f, "number of nines         : {:.2}", self.nines)?;
        writeln!(f, "downtime (h/year)       : {:.2}", self.downtime_hours_per_year)?;
        writeln!(f, "E[running VMs]          : {:.4}", self.expected_running_vms)?;
        writeln!(f, "COA                     : {:.6}", self.capacity_oriented_availability)?;
        writeln!(
            f,
            "state space             : {} tangible / {} vanishing / {} edges",
            self.tangible_states, self.vanishing_markings, self.edges
        )?;
        write!(
            f,
            "solver                  : {} ({} iterations, residual {:.2e})",
            self.solve.method, self.solve.iterations, self.solve.residual
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_petri::reach::ReachStats;

    fn stats() -> (ReachStats, SolveStats) {
        (
            ReachStats { tangible_states: 10, vanishing_markings: 3, edges: 25 },
            SolveStats { iterations: 100, residual: 1e-13, method: Method::GaussSeidel },
        )
    }

    #[test]
    fn report_derives_metrics() {
        let (r, s) = stats();
        let rep = AvailabilityReport::new(0.999, 3.8, 4, r, s);
        assert!((rep.nines - 3.0).abs() < 1e-9);
        assert!((rep.downtime_hours_per_year - 8.76).abs() < 1e-9);
        assert!((rep.capacity_oriented_availability - 0.95).abs() < 1e-12);
        assert_eq!(rep.tangible_states, 10);
    }

    #[test]
    fn report_clamps_rounding_overshoot() {
        let (r, s) = stats();
        let rep = AvailabilityReport::new(1.0 + 1e-15, 4.0, 4, r, s);
        assert_eq!(rep.availability, 1.0);
        assert!(rep.nines.is_infinite());
    }

    #[test]
    fn display_contains_key_lines() {
        let (r, s) = stats();
        let rep = AvailabilityReport::new(0.99, 2.0, 2, r, s);
        let text = rep.to_string();
        assert!(text.contains("availability"));
        assert!(text.contains("nines"));
        assert!(text.contains("gauss-seidel"));
    }

    #[test]
    fn zero_vms_does_not_divide_by_zero() {
        let (r, s) = stats();
        let rep = AvailabilityReport::new(0.5, 0.0, 0, r, s);
        assert_eq!(rep.capacity_oriented_availability, 0.0);
    }
}
