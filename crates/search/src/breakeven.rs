//! Break-even disaster rates between frontier neighbors.
//!
//! Two architectures on the frontier differ in how their availability
//! responds to the disaster rate: a single-site design degrades quickly
//! as disasters become frequent, a two-site design barely moves. The
//! *break-even disaster rate* is where their steady-state availability
//! curves cross — on one side the cheaper architecture is also the more
//! available one and strictly dominates; on the other, the richer
//! architecture's extra infrastructure starts buying real availability.
//!
//! The crossing is found by bisection on the **mean time between
//! disasters** (in log space, since plausible means span 1 to 10⁴
//! years): each probe rebuilds both specs with every data center's
//! disaster MTTF replaced by the probe mean (recovery time kept) and
//! evaluates them through the same shared cache as the search itself, so
//! probes at already-seen rates are hits and repeated searches re-use
//! the whole bisection.

use crate::SearchOptions;
use dtc_core::analysis::{first_steady_state, AnalysisRequest};
use dtc_core::params::HOURS_PER_YEAR;
use dtc_core::ComponentParams;
use dtc_engine::{run_batch, EvalCache, RunOptions, Scenario};
use std::sync::Arc;

/// Probe range: mean time between disasters from 1 year to 10 000 years.
/// Outside this span the model is either disaster-dominated or
/// disaster-free — no plausible deployment question lives there.
const MIN_YEARS: f64 = 1.0;
/// Upper end of the probe range (see [`MIN_YEARS`]).
const MAX_YEARS: f64 = 10_000.0;
/// Hard cap on bisection iterations (each costs two CTMC solves).
const MAX_ITERATIONS: usize = 32;
/// Stop once the bracket is this tight (relative). A 0.1% bracket on the
/// disaster mean is far below the precision of any such estimate, and
/// every halving costs two model solves — tighter would be waste.
const REL_TOLERANCE: f64 = 1e-3;

/// The result of one break-even bisection.
#[derive(Debug, Clone, Copy)]
pub struct BreakEvenOutcome {
    /// Mean time between disasters (years) where the two availability
    /// curves cross, or `None` if they do not cross inside the probed
    /// range (or a probe failed to evaluate).
    pub crossing_years: Option<f64>,
    /// Spec evaluations spent (each probe evaluates both specs).
    pub probes: usize,
}

/// Bisects the disaster mean-time at which the availabilities of `a` and
/// `b` cross, evaluating probe specs through `cache`.
pub fn break_even_years(
    a: &Scenario,
    b: &Scenario,
    analyses: &[AnalysisRequest],
    cache: &Arc<EvalCache>,
    opts: &SearchOptions,
) -> BreakEvenOutcome {
    let _span = dtc_obs::trace::trace_span("break_even");
    dtc_obs::trace::attr_str("cheaper", &a.name);
    dtc_obs::trace::attr_str("richer", &b.name);

    let mut probes = 0usize;
    let mut diff_at = |years: f64| -> Option<f64> {
        probes += 2;
        diff_at_years(a, b, years, analyses, cache, opts)
    };

    let (mut lo, mut hi) = (MIN_YEARS, MAX_YEARS);
    let (Some(d_lo), Some(d_hi)) = (diff_at(lo), diff_at(hi)) else {
        return BreakEvenOutcome { crossing_years: None, probes };
    };
    let mut d_lo = d_lo;
    if d_lo == 0.0 {
        return BreakEvenOutcome { crossing_years: Some(lo), probes };
    }
    if d_hi == 0.0 {
        return BreakEvenOutcome { crossing_years: Some(hi), probes };
    }
    if d_lo.signum() == d_hi.signum() {
        // No crossing in range: one architecture is at least as available
        // at every plausible disaster rate.
        return BreakEvenOutcome { crossing_years: None, probes };
    }

    for _ in 0..MAX_ITERATIONS {
        let mid = (lo.ln() + hi.ln()) / 2.0;
        let mid = mid.exp();
        if (hi - lo) / lo < REL_TOLERANCE {
            break;
        }
        let Some(d_mid) = diff_at(mid) else {
            return BreakEvenOutcome { crossing_years: None, probes };
        };
        if d_mid == 0.0 {
            return BreakEvenOutcome { crossing_years: Some(mid), probes };
        }
        if d_mid.signum() == d_lo.signum() {
            lo = mid;
            d_lo = d_mid;
        } else {
            hi = mid;
        }
    }
    BreakEvenOutcome { crossing_years: Some(((lo.ln() + hi.ln()) / 2.0).exp()), probes }
}

/// `A_a(years) − A_b(years)`: both specs rebuilt at the probe disaster
/// mean and evaluated through the cache. `None` if either evaluation
/// fails.
fn diff_at_years(
    a: &Scenario,
    b: &Scenario,
    years: f64,
    analyses: &[AnalysisRequest],
    cache: &Arc<EvalCache>,
    opts: &SearchOptions,
) -> Option<f64> {
    let probes = vec![probe_scenario(a, years), probe_scenario(b, years)];
    let run_opts =
        RunOptions { threads: 2, eval: opts.eval.clone(), analyses: analyses.to_vec() };
    let result = run_batch(&probes, cache, &run_opts);
    let avail = |i: usize| -> Option<f64> {
        let reports = result.outcomes[i].reports.as_ref().ok()?;
        Some(first_steady_state(reports)?.availability)
    };
    Some(avail(0)? - avail(1)?)
}

/// A copy of `scenario` with every data center's disaster mean replaced
/// by `years` (recovery time kept). DCs modeled without disasters stay
/// disaster-free.
fn probe_scenario(scenario: &Scenario, years: f64) -> Scenario {
    let mut spec = scenario.spec.clone();
    for dc in &mut spec.data_centers {
        if let Some(disaster) = &dc.disaster {
            dc.disaster =
                Some(ComponentParams::new(years * HOURS_PER_YEAR, disaster.mttr_hours));
        }
    }
    Scenario {
        name: format!("{}@disaster_years={years}", scenario.name),
        spec,
        disaster_years: Some(years),
        ..scenario.clone()
    }
}
