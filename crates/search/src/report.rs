//! Rendering a [`SearchReport`]: canonical JSON, ranked table, CSV.
//!
//! [`report_to_value`] is the canonical document: it contains **only
//! deterministic fields** (no solve times, no cache provenance), so the
//! `dtc search --format json` body and the `POST /v2/search` response
//! are bit-identical for the same catalog and config. Run statistics go
//! to stderr ([`render_run_summary`]) and `/v1/stats` instead.

use crate::{BreakEven, Candidate, SearchReport};
use dtc_engine::output::Format;
use dtc_engine::search_to_value;
use dtc_engine::value::Value;
use std::fmt::Write as _;

/// The canonical, deterministic JSON document for a search report.
pub fn report_to_value(report: &SearchReport) -> Value {
    let candidates: Vec<Value> = report.candidates.iter().map(candidate_to_value).collect();
    let failed: Vec<Value> = report
        .failed
        .iter()
        .map(|f| {
            Value::object([
                ("name", Value::Str(f.name.clone())),
                ("error", Value::Str(f.error.clone())),
            ])
        })
        .collect();
    let frontier: Vec<Value> = report.frontier.iter().map(|n| Value::Str(n.clone())).collect();
    let break_even: Vec<Value> = report.break_even.iter().map(break_even_to_value).collect();

    // The value tree has no null: an infeasible search simply omits the
    // "recommendation" key.
    let mut root = match Value::object([
        ("kind", Value::Str(dtc_core::slo::DESIGN_SEARCH_KIND.into())),
        ("catalog", Value::Str(report.catalog.clone())),
        ("search", search_to_value(&report.config)),
        ("candidates", Value::Array(candidates)),
        ("failed", Value::Array(failed)),
        ("frontier", Value::Array(frontier)),
        ("break_even", Value::Array(break_even)),
        (
            "summary",
            Value::object([
                ("candidates", Value::Int(report.candidates.len() as i64)),
                ("failed", Value::Int(report.failed.len() as i64)),
                ("distinct_specs", Value::Int(report.distinct_specs as i64)),
                ("feasible", Value::Int(report.feasible_count() as i64)),
                ("frontier_size", Value::Int(report.frontier.len() as i64)),
            ]),
        ),
    ]) {
        Value::Table(t) => t,
        _ => unreachable!("Value::object returns a table"),
    };
    if let Some(c) = report.recommended() {
        root.insert(
            "recommendation".into(),
            Value::object([
                ("name", Value::Str(c.name.clone())),
                ("availability", Value::Float(c.availability)),
                ("total_cost", Value::Float(c.cost.total())),
            ]),
        );
    }
    Value::Table(root)
}

fn candidate_to_value(c: &Candidate) -> Value {
    let mut t = std::collections::BTreeMap::new();
    t.insert("name".into(), Value::Str(c.name.clone()));
    t.insert("key".into(), Value::Str(c.key.clone()));
    if let Some(secondary) = &c.secondary {
        t.insert("secondary".into(), Value::Str(secondary.clone()));
    }
    if let Some(alpha) = c.alpha {
        t.insert("alpha".into(), Value::Float(alpha));
    }
    if let Some(years) = c.disaster_years {
        t.insert("disaster_years".into(), Value::Float(years));
    }
    if let Some(machines) = c.machines {
        t.insert("machines".into(), Value::Int(machines as i64));
    }
    t.insert("availability".into(), Value::Float(c.availability));
    t.insert("nines".into(), Value::Float(c.nines));
    t.insert("downtime_hours_per_year".into(), Value::Float(c.downtime_hours_per_year));
    t.insert(
        "cost".into(),
        Value::object([
            ("downtime", Value::Float(c.cost.downtime)),
            ("infrastructure", Value::Float(c.cost.infrastructure)),
            ("total", Value::Float(c.cost.total())),
        ]),
    );
    t.insert("feasible".into(), Value::Bool(c.feasible));
    t.insert("on_frontier".into(), Value::Bool(c.on_frontier));
    Value::Table(t)
}

fn break_even_to_value(b: &BreakEven) -> Value {
    let mut t = std::collections::BTreeMap::new();
    t.insert("cheaper".into(), Value::Str(b.cheaper.clone()));
    t.insert("richer".into(), Value::Str(b.richer.clone()));
    t.insert("crossed".into(), Value::Bool(b.disaster_years.is_some()));
    if let Some(y) = b.disaster_years {
        t.insert("disaster_years".into(), Value::Float(y));
        t.insert("disaster_rate_per_year".into(), Value::Float(1.0 / y));
    }
    Value::Table(t)
}

/// Renders the report in the requested CLI format. JSON output is the
/// canonical document ([`report_to_value`]), byte-identical to the
/// `POST /v2/search` response body.
pub fn render(report: &SearchReport, format: Format) -> String {
    match format {
        Format::Table => render_table(report),
        Format::Csv => render_csv(report),
        Format::Json => report_to_value(report).to_json(),
    }
}

fn render_table(report: &SearchReport) -> String {
    let mut out = String::new();
    let slo = &report.config.slo;
    let _ = writeln!(
        out,
        "design search over {:?}: availability floor {} ({:.2} nines){}",
        report.catalog,
        slo.availability_floor,
        slo.floor_nines(),
        match slo.cost_ceiling {
            Some(c) => format!(", cost ceiling ${c:.0}/y"),
            None => ", no cost ceiling".into(),
        },
    );
    let name_width = report.candidates.iter().map(|c| c.name.len()).max().unwrap_or(4).max(4);
    let _ = writeln!(
        out,
        "{:<name_width$}  {:>12} {:>7} {:>13} {:>13} {:>13}  {:>8} {:>8}",
        "name",
        "availability",
        "nines",
        "downtime $/y",
        "infra $/y",
        "total $/y",
        "feasible",
        "frontier",
    );
    let _ = writeln!(out, "{}", "-".repeat(name_width + 2 + 12 + 8 + 14 * 3 + 9 + 9));
    for c in &report.candidates {
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>12.7} {:>7.3} {:>13.0} {:>13.0} {:>13.0}  {:>8} {:>8}",
            c.name,
            c.availability,
            c.nines,
            c.cost.downtime,
            c.cost.infrastructure,
            c.cost.total(),
            if c.feasible { "yes" } else { "-" },
            if c.on_frontier { "*" } else { "" },
        );
    }
    for f in &report.failed {
        let _ = writeln!(out, "{:<name_width$}  FAILED: {}", f.name, f.error);
    }
    let _ = writeln!(
        out,
        "\nfeasible: {}/{}; frontier: {}",
        report.feasible_count(),
        report.candidates.len(),
        if report.frontier.is_empty() {
            "(empty)".to_string()
        } else {
            report.frontier.join(" -> ")
        },
    );
    match report.recommended() {
        Some(c) => {
            let _ = writeln!(
                out,
                "recommendation: {} (availability {:.7}, total ${:.0}/y)",
                c.name,
                c.availability,
                c.cost.total(),
            );
        }
        None => {
            let _ = writeln!(out, "recommendation: none — no candidate meets the SLO");
        }
    }
    for b in &report.break_even {
        match b.disaster_years {
            Some(y) => {
                let _ = writeln!(
                    out,
                    "break-even {} vs {}: availabilities cross at one disaster every \
                     {y:.1} years ({:.4}/year)",
                    b.cheaper,
                    b.richer,
                    1.0 / y,
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "break-even {} vs {}: no crossing in 1..10000 years",
                    b.cheaper, b.richer,
                );
            }
        }
    }
    out
}

fn render_csv(report: &SearchReport) -> String {
    let mut out = String::from(
        "name,secondary,alpha,disaster_years,machines,availability,nines,\
         downtime_hours_per_year,downtime_cost,infrastructure_cost,total_cost,feasible,\
         on_frontier\n",
    );
    for c in &report.candidates {
        let opt_f = |v: Option<f64>| v.map(|x| x.to_string()).unwrap_or_default();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{}",
            csv_escape(&c.name),
            csv_escape(c.secondary.as_deref().unwrap_or("")),
            opt_f(c.alpha),
            opt_f(c.disaster_years),
            c.machines.map(|m| m.to_string()).unwrap_or_default(),
            c.availability,
            c.nines,
            c.downtime_hours_per_year,
            c.cost.downtime,
            c.cost.infrastructure,
            c.cost.total(),
            c.feasible,
            c.on_frontier,
        );
    }
    out
}

fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// One-line run summary (for stderr): candidates, dedup/cache savings,
/// break-even probes, solve time.
pub fn render_run_summary(report: &SearchReport) -> String {
    format!(
        "{} candidate(s), {} distinct spec(s): {} solved, {} from cache, {} deduplicated; \
         {} break-even probe(s); solve time {}ms",
        report.candidates.len() + report.failed.len(),
        report.distinct_specs,
        report.stats.evaluated,
        report.stats.cached,
        report.stats.deduplicated,
        report.stats.probe_evaluations,
        report.stats.solve_ms,
    )
}
