//! `search_bench` — the tracked design-search benchmark.
//!
//! ```text
//! cargo run --release -p dtc-search --bin search_bench [-- options]
//!
//! options:
//!   --out FILE       write the JSON document here (default BENCH_search.json
//!                    at the repo root; `-` for stdout only)
//!   --smoke          shrunken seconds-scale grid (CI; does not overwrite the
//!                    tracked document unless --out says so)
//!   --threads N      worker threads (default: available cores)
//! ```

use dtc_search::bench::{run, validate_search_bench_doc, SearchBenchConfig, BENCH_PATH};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = SearchBenchConfig::default();
    let mut out: Option<String> = None;
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(path) => out = Some(path.clone()),
                None => die("--out needs a value"),
            },
            "--smoke" => smoke = true,
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.threads = n,
                None => die("--threads needs a number"),
            },
            other => die(&format!("unknown option {other:?}")),
        }
    }
    if smoke {
        // Seconds-scale grid for CI: same architecture family, fewer points.
        config.secondaries = vec!["Brasilia".into(), "Tokio".into()];
        config.alphas = vec![0.35, 0.45];
        config.disaster_years = vec![50.0, 100.0, 200.0];
    }

    eprintln!(
        "search_bench: {} candidate(s){}…",
        config.candidates(),
        if smoke { " (smoke grid)" } else { "" }
    );
    let started = std::time::Instant::now();
    let doc = match run(&config) {
        Ok(doc) => doc,
        Err(e) => die(&format!("benchmark failed: {e}")),
    };
    if let Err(e) = validate_search_bench_doc(&doc) {
        die(&format!("benchmark produced an invalid document: {e}"));
    }
    let json = doc.to_json();
    let path = out.as_deref().unwrap_or(if smoke { "-" } else { BENCH_PATH });
    if path == "-" {
        println!("{json}");
    } else if let Err(e) = std::fs::write(path, format!("{json}\n")) {
        die(&format!("cannot write {path}: {e}"));
    } else {
        println!("{json}");
        eprintln!("search_bench: wrote {path} in {:.1}s", started.elapsed().as_secs_f64());
    }
}

fn die(msg: &str) -> ! {
    eprintln!("search_bench: {msg}");
    std::process::exit(2);
}
