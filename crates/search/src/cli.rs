//! The `dtc search` command.
//!
//! ```text
//! dtc search <catalog.toml|.json> [options]   search a catalog's grid
//! dtc search search7 [options]                bundled Table VII-derived space
//! dtc search fig7 [options]                   bundled Figure 7 sweep as a space
//! dtc search table7 [options]                 bundled Table VII baselines
//!
//! options:
//!   --slo FLOOR                availability floor, e.g. 0.9999
//!                              (overrides the catalog's [search] section)
//!   --cost-ceiling DOLLARS     annual cost ceiling (overrides [search])
//!   --format table|csv|json    output format (default table)
//!   --threads N                worker threads (default: available cores)
//!   --solver NAME              power|jacobi|gauss-seidel|sor|direct
//!   --cache FILE               persistent JSON evaluation cache
//!   --cache-cap N              cap resident cache entries
//!   --no-break-even            skip break-even bisections
//!   --break-even-pairs N       cap bisected frontier pairs (default 4)
//! ```
//!
//! The report goes to stdout; the run summary (cache savings, probe
//! counts, solve time) goes to stderr so `--format json` output stays the
//! canonical document.

use crate::report::{render, render_run_summary};
use crate::{run_search, SearchConfig, SearchOptions};
use dtc_core::SloTarget;
use dtc_engine::cache::method_from_name;
use dtc_engine::{Catalog, EngineError, EvalCache, Format, Result};
use std::path::PathBuf;
use std::sync::Arc;

/// Usage text for `dtc search` (also embedded in the serve binary's help).
pub const SEARCH_USAGE: &str = "\
dtc search — SLO-driven design search over a scenario catalog

usage:
  dtc search <catalog.toml|.json> [options]   search a catalog's scenario grid
  dtc search search7 [options]                bundled Table VII-derived space
  dtc search fig7 [options]                   bundled Figure 7 sweep as a space
  dtc search table7 [options]                 bundled Table VII baselines

options:
  --slo FLOOR                availability floor, e.g. 0.9999
                             (overrides the catalog's [search] section)
  --cost-ceiling DOLLARS     annual cost ceiling (overrides [search])
  --format table|csv|json    output format (default table)
  --threads N                worker threads (default: available cores)
  --solver NAME              power|jacobi|gauss-seidel|sor|direct
  --cache FILE               persistent JSON evaluation cache
  --cache-cap N              cap resident cache entries (oldest evicted)
  --no-break-even            skip break-even bisections between frontier pairs
  --break-even-pairs N       cap bisected frontier pairs (default 4)
";

#[derive(Debug)]
struct SearchCliOptions {
    format: Format,
    opts: SearchOptions,
    slo_floor: Option<f64>,
    cost_ceiling: Option<f64>,
    no_break_even: bool,
    break_even_pairs: Option<usize>,
    cache_path: Option<PathBuf>,
    cache_cap: Option<usize>,
}

fn parse_args(args: &[String]) -> Result<(SearchCliOptions, Vec<String>)> {
    let mut opts = SearchCliOptions {
        format: Format::Table,
        opts: SearchOptions::default(),
        slo_floor: None,
        cost_ceiling: None,
        no_break_even: false,
        break_even_pairs: None,
        cache_path: None,
        cache_cap: None,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String> {
            it.next()
                .cloned()
                .ok_or_else(|| EngineError::Schema(format!("{name} needs a value")))
        };
        let parse_f64 = |name: &str, v: String| -> Result<f64> {
            v.parse()
                .map_err(|_| EngineError::Schema(format!("{name} expects a number, got {v:?}")))
        };
        let parse_usize = |name: &str, v: String| -> Result<usize> {
            v.parse()
                .map_err(|_| EngineError::Schema(format!("{name} expects a number, got {v:?}")))
        };
        match arg.as_str() {
            "--slo" => opts.slo_floor = Some(parse_f64("--slo", take("--slo")?)?),
            "--cost-ceiling" => {
                opts.cost_ceiling = Some(parse_f64("--cost-ceiling", take("--cost-ceiling")?)?)
            }
            "--format" => {
                let v = take("--format")?;
                opts.format = Format::from_name(&v).ok_or_else(|| {
                    EngineError::Schema(format!("unknown format {v:?} (table, csv or json)"))
                })?;
            }
            "--threads" => opts.opts.threads = parse_usize("--threads", take("--threads")?)?,
            "--solver" => {
                let v = take("--solver")?;
                opts.opts.eval.method = method_from_name(&v).ok_or_else(|| {
                    EngineError::Schema(format!(
                        "unknown solver {v:?} (power, jacobi, gauss-seidel, sor or direct)"
                    ))
                })?;
            }
            "--cache" => opts.cache_path = Some(PathBuf::from(take("--cache")?)),
            "--cache-cap" => {
                opts.cache_cap = Some(parse_usize("--cache-cap", take("--cache-cap")?)?)
            }
            "--no-break-even" => opts.no_break_even = true,
            "--break-even-pairs" => {
                opts.break_even_pairs =
                    Some(parse_usize("--break-even-pairs", take("--break-even-pairs")?)?)
            }
            "--help" | "-h" => positional.push("help".into()),
            other if other.starts_with("--") => {
                return Err(EngineError::Schema(format!("unknown option {other}")));
            }
            other => positional.push(other.to_string()),
        }
    }
    Ok((opts, positional))
}

/// Resolves a positional catalog argument: a bundled alias or a file path.
fn load_catalog(arg: &str) -> Result<Catalog> {
    match arg {
        "search7" => Ok(crate::catalogs::search7()),
        "table7" => Ok(dtc_engine::catalogs::table7()),
        "fig7" => Ok(dtc_engine::catalogs::fig7()),
        path => Catalog::from_path(std::path::Path::new(path)),
    }
}

/// Merges the catalog's `[search]` section with CLI overrides. A config
/// must come from somewhere: a catalog without `[search]` needs `--slo`.
fn resolve_config(catalog: &Catalog, cli: &SearchCliOptions) -> Result<SearchConfig> {
    let mut config = match (&catalog.search, cli.slo_floor) {
        (Some(section), _) => section.clone(),
        (None, Some(floor)) => SearchConfig {
            slo: SloTarget::new(floor, cli.cost_ceiling)
                .map_err(|e| EngineError::Schema(format!("--slo: {e}")))?,
            cost: dtc_core::economics::CostModel::default(),
            break_even: true,
            max_break_even_pairs: 4,
        },
        (None, None) => {
            return Err(EngineError::Schema(format!(
                "catalog {:?} has no [search] section; pass --slo FLOOR (and optionally \
                 --cost-ceiling) to define the SLO target",
                catalog.name
            )))
        }
    };
    if let Some(floor) = cli.slo_floor {
        config.slo = SloTarget::new(floor, cli.cost_ceiling.or(config.slo.cost_ceiling))
            .map_err(|e| EngineError::Schema(format!("--slo: {e}")))?;
    } else if let Some(ceiling) = cli.cost_ceiling {
        config.slo = SloTarget::new(config.slo.availability_floor, Some(ceiling))
            .map_err(|e| EngineError::Schema(format!("--cost-ceiling: {e}")))?;
    }
    if let Some(pairs) = cli.break_even_pairs {
        config.max_break_even_pairs = pairs;
        config.break_even = pairs > 0;
    }
    if cli.no_break_even {
        config.break_even = false;
    }
    Ok(config)
}

fn dispatch(args: &[String]) -> Result<()> {
    let (cli, positional) = parse_args(args)?;
    let Some(arg) = positional.first() else {
        println!("{SEARCH_USAGE}");
        return Ok(());
    };
    if arg == "help" {
        println!("{SEARCH_USAGE}");
        return Ok(());
    }
    let catalog = load_catalog(arg)?;
    let config = resolve_config(&catalog, &cli)?;
    let cache = Arc::new(EvalCache::open_lenient(cli.cache_path.clone(), cli.cache_cap));
    eprintln!(
        "searching catalog {:?}: availability floor {}{}…",
        catalog.name,
        config.slo.availability_floor,
        match config.slo.cost_ceiling {
            Some(c) => format!(", cost ceiling ${c:.0}/y"),
            None => String::new(),
        },
    );
    let report = run_search(&catalog, &config, &cache, &cli.opts)?;
    cache.persist()?;
    eprintln!("{}", render_run_summary(&report));
    print!("{}", render(&report, cli.format));
    Ok(())
}

/// CLI entry point for `dtc search`; returns the process exit code.
pub fn run_search_cli(args: &[String]) -> i32 {
    match dispatch(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("dtc search: {e}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn option_parsing() {
        let (opts, positional) = parse_args(&strs(&[
            "--slo",
            "0.9999",
            "--cost-ceiling",
            "1500000",
            "--format",
            "json",
            "--break-even-pairs",
            "2",
            "search7",
        ]))
        .unwrap();
        assert_eq!(opts.slo_floor, Some(0.9999));
        assert_eq!(opts.cost_ceiling, Some(1_500_000.0));
        assert_eq!(opts.format, Format::Json);
        assert_eq!(opts.break_even_pairs, Some(2));
        assert_eq!(positional, vec!["search7".to_string()]);

        assert!(parse_args(&strs(&["--slo", "high"])).is_err());
        assert!(parse_args(&strs(&["--wat"])).is_err());
    }

    #[test]
    fn config_resolution() {
        // A catalog without [search] needs --slo.
        let catalog = dtc_engine::catalogs::table7();
        assert!(catalog.search.is_none());
        let (no_slo, _) = parse_args(&strs(&["table7"])).unwrap();
        assert!(resolve_config(&catalog, &no_slo).is_err());

        let (cli, _) = parse_args(&strs(&["--slo", "0.999", "table7"])).unwrap();
        let config = resolve_config(&catalog, &cli).unwrap();
        assert_eq!(config.slo.availability_floor, 0.999);
        assert!(config.break_even);

        // --no-break-even wins over everything.
        let (cli, _) =
            parse_args(&strs(&["--slo", "0.999", "--no-break-even", "table7"])).unwrap();
        assert!(!resolve_config(&catalog, &cli).unwrap().break_even);

        // The bundled search space carries its own [search] section, and
        // CLI flags override it.
        let search7 = crate::catalogs::search7();
        let section = search7.search.clone().expect("search7 has [search]");
        let (plain, _) = parse_args(&strs(&["search7"])).unwrap();
        assert_eq!(resolve_config(&search7, &plain).unwrap(), section);
        let (override_floor, _) = parse_args(&strs(&["--slo", "0.99", "search7"])).unwrap();
        let config = resolve_config(&search7, &override_floor).unwrap();
        assert_eq!(config.slo.availability_floor, 0.99);
    }

    #[test]
    fn bad_invocations_exit_nonzero() {
        assert_eq!(run_search_cli(&strs(&["/no/such/catalog.toml"])), 2);
        assert_eq!(run_search_cli(&strs(&["--wat"])), 2);
        assert_eq!(run_search_cli(&[]), 0, "no argument prints usage");
        assert_eq!(run_search_cli(&strs(&["help"])), 0);
    }
}
