//! The tracked design-search benchmark behind the `search_bench` binary.
//!
//! Runs one cold and one warm search over a Figure 7-derived candidate
//! grid (the paper's two-DC architecture family: secondary city × α ×
//! disaster rate × pool size, plus a single-site baseline swept over
//! the disaster axis so the cost/availability frontier keeps both
//! tiers and the break-even bisection has a pair to probe) against a
//! single shared in-memory cache,
//! and summarizes both passes as a JSON document written to
//! `BENCH_search.json` at the repo root — candidate counts, solve times,
//! and the cache-stat deltas that prove the warm pass re-evaluated
//! nothing.
//!
//! [`validate_search_bench_doc`] is the schema contract: the binary
//! validates what it writes, and the CI smoke test validates a fresh
//! seconds-scale run (a shrunken grid) without pinning any timings.

use crate::{run_search, SearchOptions};
use dtc_engine::value::Value;
use dtc_engine::{Catalog, EngineError, EvalCache, Result};
use std::fmt::Write as _;
use std::sync::Arc;

/// Knobs for one benchmark run: the candidate grid and the SLO floor.
#[derive(Debug, Clone)]
pub struct SearchBenchConfig {
    /// Secondary cities to sweep.
    pub secondaries: Vec<String>,
    /// Network-quality α values to sweep.
    pub alphas: Vec<f64>,
    /// Mean times between disasters (years) to sweep.
    pub disaster_years: Vec<f64>,
    /// PM pool sizes to sweep (per side of the two-DC architecture).
    pub machines: Vec<i64>,
    /// Availability floor for the SLO.
    pub availability_floor: f64,
    /// Downtime price ($/hour) — nonzero so infrastructure and downtime
    /// genuinely compete and the frontier keeps several members.
    pub downtime_cost_per_hour: f64,
    /// Worker threads (`0` = one per core).
    pub threads: usize,
}

impl Default for SearchBenchConfig {
    fn default() -> Self {
        SearchBenchConfig {
            secondaries: ["Brasilia", "Recife", "NewYork", "Calcutta", "Tokio"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            alphas: vec![0.25, 0.35, 0.45, 0.55, 0.65],
            disaster_years: vec![25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0],
            machines: vec![1],
            availability_floor: 0.99,
            downtime_cost_per_hour: 1000.0,
            threads: 0,
        }
    }
}

impl SearchBenchConfig {
    /// Number of candidates the grid expands to: the two-DC product grid
    /// plus one single-site baseline per disaster mean.
    pub fn candidates(&self) -> usize {
        self.secondaries.len()
            * self.alphas.len()
            * self.disaster_years.len()
            * self.machines.len()
            + self.disaster_years.len()
    }

    /// Synthesizes the benchmark catalog (TOML) for this grid.
    pub fn catalog(&self) -> Result<Catalog> {
        let join_f64 =
            |xs: &[f64]| xs.iter().map(|x| format!("{x:?}")).collect::<Vec<_>>().join(", ");
        let mut toml = String::from(
            "[catalog]\n\
             name = \"search_bench\"\n\
             description = \"Figure 7-derived design-search benchmark grid\"\n\n\
             [search]\n",
        );
        let _ = writeln!(toml, "availability_floor = {:?}", self.availability_floor);
        let _ = writeln!(toml, "max_break_even_pairs = 2");
        let _ = writeln!(toml, "\n[search.cost]");
        let _ = writeln!(toml, "downtime_cost_per_hour = {:?}", self.downtime_cost_per_hour);
        let _ = writeln!(toml, "\n[[scenario]]");
        let _ = writeln!(toml, "name = \"fig7\"");
        let _ = writeln!(toml, "kind = \"two_dc\"");
        let _ = writeln!(
            toml,
            "secondary = [{}]",
            self.secondaries.iter().map(|s| format!("{s:?}")).collect::<Vec<_>>().join(", ")
        );
        let _ = writeln!(toml, "alpha = [{}]", join_f64(&self.alphas));
        let _ = writeln!(toml, "disaster_years = [{}]", join_f64(&self.disaster_years));
        let _ = writeln!(
            toml,
            "machines = [{}]",
            self.machines.iter().map(|m| m.to_string()).collect::<Vec<_>>().join(", ")
        );
        // The single-site baseline: cheaper and less available than any
        // two-DC point, so the frontier keeps both tiers and break-even
        // has a genuine crossing to bisect.
        let _ = writeln!(toml, "\n[[scenario]]");
        let _ = writeln!(toml, "name = \"solo\"");
        let _ = writeln!(toml, "kind = \"custom\"");
        let _ = writeln!(toml, "min_running_vms = 1");
        let _ = writeln!(toml, "disaster_years = [{}]", join_f64(&self.disaster_years));
        let _ = writeln!(toml, "\n[[scenario.dc]]");
        let _ = writeln!(toml, "site = \"Rio de Janeiro\"");
        let _ = writeln!(toml, "hot_pms = 1");
        let _ = writeln!(toml, "vms_per_pm = 2");
        let _ = writeln!(toml, "pm_capacity = 2");
        let _ = writeln!(toml, "backup_link = false");
        Catalog::from_toml_str(&toml)
    }
}

/// Runs the benchmark: cold search, then a warm re-run against the same
/// cache, and the summary document.
///
/// # Errors
///
/// Fails on an invalid grid (catalog expansion) or if any candidate fails
/// to evaluate — a partially-failed grid would make timings incomparable
/// across runs.
pub fn run(config: &SearchBenchConfig) -> Result<Value> {
    let catalog = config.catalog()?;
    let search = catalog.search.clone().expect("bench catalog declares [search]");
    let cache = Arc::new(EvalCache::in_memory());
    let opts = SearchOptions { threads: config.threads, ..SearchOptions::default() };

    let cold = run_search(&catalog, &search, &cache, &opts)?;
    if !cold.failed.is_empty() {
        return Err(EngineError::Schema(format!(
            "{} candidate(s) failed to evaluate; benchmark grid must be fully solvable \
             (first: {})",
            cold.failed.len(),
            cold.failed[0].error
        )));
    }
    let after_cold = cache.stats();
    let warm = run_search(&catalog, &search, &cache, &opts)?;
    let after_warm = cache.stats();

    let pass = |r: &crate::SearchReport| {
        Value::object([
            ("solve_ms", Value::Int(r.stats.solve_ms as i64)),
            ("evaluated", Value::Int(r.stats.evaluated as i64)),
            ("cached", Value::Int(r.stats.cached as i64)),
            ("deduplicated", Value::Int(r.stats.deduplicated as i64)),
            ("probe_evaluations", Value::Int(r.stats.probe_evaluations as i64)),
        ])
    };
    let mut doc = match Value::object([
        ("bench", Value::Str("search: cold and warm design search over a fig7 grid".into())),
        ("command", Value::Str("cargo run --release -p dtc-search --bin search_bench".into())),
        ("candidates", Value::Int(cold.candidates.len() as i64)),
        ("distinct_specs", Value::Int(cold.distinct_specs as i64)),
        ("availability_floor", Value::Float(search.slo.availability_floor)),
        ("feasible", Value::Int(cold.feasible_count() as i64)),
        ("frontier_size", Value::Int(cold.frontier.len() as i64)),
        ("break_even_pairs", Value::Int(cold.break_even.len() as i64)),
        ("cold", pass(&cold)),
        ("warm", pass(&warm)),
        (
            "cache",
            Value::object([
                ("entries", Value::Int(after_warm.entries as i64)),
                ("hits", Value::Int(after_warm.hits as i64)),
                ("misses", Value::Int(after_warm.misses as i64)),
                ("warm_hits_delta", Value::Int((after_warm.hits - after_cold.hits) as i64)),
                (
                    "warm_misses_delta",
                    Value::Int((after_warm.misses - after_cold.misses) as i64),
                ),
            ]),
        ),
    ]) {
        Value::Table(t) => t,
        _ => unreachable!("Value::object returns a table"),
    };
    // No null in the value tree: an infeasible grid omits the key.
    if let Some(name) = &cold.recommendation {
        doc.insert("recommendation".into(), Value::Str(name.clone()));
    }
    Ok(Value::Table(doc))
}

/// Validates the shape of a `BENCH_search.json` document — required
/// fields, types, and internal consistency (counts add up, the warm pass
/// evaluated nothing new) — without pinning any timings, so it holds on
/// any machine.
pub fn validate_search_bench_doc(doc: &Value) -> std::result::Result<(), String> {
    let int = |key: &str| -> std::result::Result<i64, String> {
        doc.get(key).and_then(Value::as_i64).ok_or(format!("missing integer field {key:?}"))
    };
    for key in ["bench", "command"] {
        doc.get(key).and_then(Value::as_str).ok_or(format!("missing string field {key:?}"))?;
    }
    let floor = doc
        .get("availability_floor")
        .and_then(Value::as_f64)
        .ok_or("missing availability_floor")?;
    if !(floor > 0.0 && floor < 1.0) {
        return Err(format!("availability_floor {floor} outside (0, 1)"));
    }
    let candidates = int("candidates")?;
    let distinct = int("distinct_specs")?;
    if candidates <= 0 {
        return Err("candidates must be positive".into());
    }
    if !(0 < distinct && distinct <= candidates) {
        return Err(format!("distinct_specs {distinct} outside 1..={candidates}"));
    }
    let feasible = int("feasible")?;
    if !(0..=candidates).contains(&feasible) {
        return Err(format!("feasible {feasible} outside 0..={candidates}"));
    }
    let frontier = int("frontier_size")?;
    if !(1..=candidates).contains(&frontier) {
        return Err(format!("frontier_size {frontier} outside 1..={candidates}"));
    }
    if !matches!(doc.get("recommendation"), Some(Value::Str(_)) | None) {
        return Err("recommendation must be a string (or absent)".into());
    }
    int("break_even_pairs")?;

    let pass = |name: &str| -> std::result::Result<(i64, i64, i64), String> {
        let p = doc.get(name).ok_or(format!("missing {name:?} object"))?;
        let field = |key: &str| -> std::result::Result<i64, String> {
            let v =
                p.get(key).and_then(Value::as_i64).ok_or(format!("missing {name}.{key}"))?;
            if v < 0 {
                return Err(format!("{name}.{key} {v} is negative"));
            }
            Ok(v)
        };
        field("solve_ms")?;
        field("probe_evaluations")?;
        Ok((field("evaluated")?, field("cached")?, field("deduplicated")?))
    };
    let (cold_eval, cold_cached, cold_dedup) = pass("cold")?;
    if cold_eval + cold_cached + cold_dedup != candidates {
        return Err(format!(
            "cold pass accounts for {} of {candidates} candidates",
            cold_eval + cold_cached + cold_dedup
        ));
    }
    let (warm_eval, warm_cached, warm_dedup) = pass("warm")?;
    if warm_eval != 0 {
        return Err(format!("warm pass evaluated {warm_eval} candidate(s); caching is broken"));
    }
    if warm_cached + warm_dedup != candidates {
        return Err(format!(
            "warm pass accounts for {} of {candidates} candidates",
            warm_cached + warm_dedup
        ));
    }

    let cache = doc.get("cache").ok_or("missing \"cache\" object")?;
    for key in ["entries", "hits", "misses", "warm_hits_delta", "warm_misses_delta"] {
        let v = cache.get(key).and_then(Value::as_i64).ok_or(format!("missing cache.{key}"))?;
        if v < 0 {
            return Err(format!("cache.{key} {v} is negative"));
        }
    }
    if cache.get("warm_misses_delta").and_then(Value::as_i64) != Some(0) {
        return Err("warm pass must not miss the cache".into());
    }
    Ok(())
}

/// Where the tracked benchmark document lives: `BENCH_search.json` at the
/// repo root, next to `BENCH_serve.json`.
pub const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_search.json");

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_doc() -> Value {
        Value::from_json(
            r#"{
              "bench": "search", "command": "cargo run",
              "candidates": 8, "distinct_specs": 6, "availability_floor": 0.9999,
              "feasible": 3, "frontier_size": 2, "recommendation": "a",
              "break_even_pairs": 1,
              "cold": {"solve_ms": 100, "evaluated": 6, "cached": 0, "deduplicated": 2,
                       "probe_evaluations": 10},
              "warm": {"solve_ms": 1, "evaluated": 0, "cached": 6, "deduplicated": 2,
                       "probe_evaluations": 10},
              "cache": {"entries": 10, "hits": 20, "misses": 10,
                        "warm_hits_delta": 10, "warm_misses_delta": 0}
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn valid_doc_passes() {
        validate_search_bench_doc(&minimal_doc()).unwrap();
    }

    #[test]
    fn inconsistent_docs_fail() {
        let mut doc = minimal_doc();
        if let Value::Table(t) = &mut doc {
            t.remove("frontier_size");
        }
        assert!(validate_search_bench_doc(&doc).unwrap_err().contains("frontier_size"));

        // A warm pass that re-evaluated anything means caching is broken.
        let mut doc = minimal_doc();
        if let Value::Table(t) = &mut doc {
            if let Some(Value::Table(warm)) = t.get_mut("warm") {
                warm.insert("evaluated".into(), Value::Int(3));
                warm.insert("cached".into(), Value::Int(3));
            }
        }
        assert!(validate_search_bench_doc(&doc).unwrap_err().contains("caching is broken"));

        let mut doc = minimal_doc();
        if let Value::Table(t) = &mut doc {
            if let Some(Value::Table(cold)) = t.get_mut("cold") {
                cold.insert("evaluated".into(), Value::Int(1));
            }
        }
        assert!(validate_search_bench_doc(&doc).unwrap_err().contains("accounts for"));

        let mut doc = minimal_doc();
        if let Value::Table(t) = &mut doc {
            if let Some(Value::Table(cache)) = t.get_mut("cache") {
                cache.insert("warm_misses_delta".into(), Value::Int(2));
            }
        }
        assert!(validate_search_bench_doc(&doc).unwrap_err().contains("must not miss"));
    }

    #[test]
    fn default_grid_is_several_hundred_candidates() {
        let config = SearchBenchConfig::default();
        assert!(config.candidates() >= 200, "got {}", config.candidates());
        let catalog = config.catalog().unwrap();
        assert_eq!(catalog.expand().unwrap().len(), config.candidates());
        assert!(catalog.search.is_some());
    }
}
