//! Cost/availability Pareto-frontier extraction.
//!
//! A candidate architecture is described by the point
//! `(annual cost, steady-state availability)`; lower cost and higher
//! availability are both better. The frontier is the set of
//! *non-dominated* points — no other candidate is at least as good on
//! both axes and strictly better on one. The frontier is what a design
//! search hands back: every point off it is a strictly worse buy than
//! some point on it.
//!
//! The extraction is a single sort + sweep (`O(n log n)`), and the
//! returned order is deterministic: ascending cost, descending
//! availability. The property harness in `tests/frontier_props.rs` pins
//! non-domination, completeness and insertion-order independence over
//! seeded random candidate sets.

/// Whether point `p` dominates point `q`, where a point is
/// `(cost, availability)`: `p` is no worse on both axes and strictly
/// better on at least one. Equal points do not dominate each other, so
/// exact duplicates can share the frontier.
pub fn dominates(p: (f64, f64), q: (f64, f64)) -> bool {
    p.0 <= q.0 && p.1 >= q.1 && (p.0 < q.0 || p.1 > q.1)
}

/// Indices of the non-dominated points among `points`
/// (`(cost, availability)` pairs), ordered by ascending cost, then
/// descending availability, then index.
///
/// Points with a non-finite coordinate are never on the frontier (a NaN
/// cost cannot be meaningfully ranked). Exact duplicates of a frontier
/// point are all kept: neither dominates the other, and dropping one
/// would make the result depend on insertion order.
pub fn pareto_frontier(points: &[(f64, f64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len())
        .filter(|&i| points[i].0.is_finite() && points[i].1.is_finite())
        .collect();
    order.sort_by(|&a, &b| {
        points[a]
            .0
            .total_cmp(&points[b].0)
            .then(points[b].1.total_cmp(&points[a].1))
            .then(a.cmp(&b))
    });

    // Sweep in cost order: a point joins the frontier iff it strictly
    // improves availability over everything cheaper — or exactly ties the
    // frontier point that last did (a duplicate). Anything else is
    // dominated by that last frontier point.
    let mut frontier = Vec::new();
    let mut best: Option<(f64, f64)> = None;
    for i in order {
        let (cost, avail) = points[i];
        match best {
            None => {
                frontier.push(i);
                best = Some((cost, avail));
            }
            Some((best_cost, best_avail)) => {
                if avail > best_avail {
                    frontier.push(i);
                    best = Some((cost, avail));
                } else if avail == best_avail && cost == best_cost {
                    frontier.push(i);
                }
            }
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_is_its_own_frontier() {
        assert_eq!(pareto_frontier(&[(10.0, 0.9)]), vec![0]);
    }

    #[test]
    fn dominated_points_are_dropped() {
        // (cost, availability): index 1 is cheaper AND more available
        // than 0; index 2 is the expensive high-availability corner.
        let pts = [(10.0, 0.90), (5.0, 0.95), (20.0, 0.99)];
        assert_eq!(pareto_frontier(&pts), vec![1, 2]);
        assert!(dominates(pts[1], pts[0]));
        assert!(!dominates(pts[1], pts[2]));
    }

    #[test]
    fn equal_cost_keeps_only_higher_availability() {
        let pts = [(5.0, 0.90), (5.0, 0.95)];
        assert_eq!(pareto_frontier(&pts), vec![1]);
    }

    #[test]
    fn exact_duplicates_both_survive() {
        let pts = [(5.0, 0.95), (5.0, 0.95), (1.0, 0.5)];
        assert_eq!(pareto_frontier(&pts), vec![2, 0, 1]);
    }

    #[test]
    fn non_finite_points_are_excluded() {
        let pts = [(f64::NAN, 0.99), (5.0, f64::INFINITY), (5.0, 0.9)];
        assert_eq!(pareto_frontier(&pts), vec![2]);
    }

    #[test]
    fn equal_points_do_not_dominate_each_other() {
        assert!(!dominates((5.0, 0.9), (5.0, 0.9)));
    }
}
