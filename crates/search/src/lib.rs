//! # dtc-search — SLO-driven design search
//!
//! The paper evaluates fixed disaster-tolerant architectures and reads
//! off availability and cost; this crate answers the inverse question:
//! *what is the cheapest architecture that meets the SLO?*
//!
//! A search takes a catalog whose expanded scenario grid **is** the
//! candidate space (hot/warm PM pool sizes via the `machines` axis,
//! secondary-DC city choice, α, disaster rates — the knobs the engine
//! already expresses) plus a [`SearchConfig`] (`[search]` section:
//! availability floor, optional annual cost ceiling, cost model). Every
//! candidate is evaluated through the shared [`EvalCache`] batch executor
//! — in-batch dedup and single-flight apply unchanged — and the result
//! is:
//!
//! * every candidate, ranked by cost (the CLI's table),
//! * the **feasible set** (candidates meeting the SLO),
//! * the cost/availability **Pareto frontier** ([`frontier`]),
//! * the **cheapest-feasible recommendation**, and
//! * **break-even disaster rates** between adjacent frontier neighbors
//!   ([`breakeven`]): the mean-time-between-disasters at which the two
//!   architectures' availabilities cross.
//!
//! The same [`SearchReport`] is rendered by the `dtc search` CLI and
//! returned by `POST /v2/search` on `dtc-serve`; its canonical JSON
//! ([`report::report_to_value`]) contains only deterministic fields, so
//! the two transports produce bit-identical documents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod breakeven;
pub mod cli;
pub mod frontier;
pub mod report;

use dtc_core::analysis::{first_steady_state, AnalysisReport, AnalysisRequest};
use dtc_core::economics::CostBreakdown;
use dtc_core::metrics::EvalOptions;
use dtc_engine::{run_batch, Catalog, EngineError, EvalCache, RunOptions, Scenario};
use std::collections::HashMap;
use std::sync::Arc;

pub use dtc_engine::SearchConfig;

/// The bundled search space, baked into the binary like the engine's
/// `table7`/`fig7` catalogs.
pub mod catalogs {
    use dtc_engine::Catalog;

    /// TOML source of the bundled Table VII-derived search space.
    pub const SEARCH7_TOML: &str = include_str!("../catalogs/search7.toml");

    /// The Table VII-derived search space: the paper's architecture
    /// families (single-DC and two-DC) with swept pool sizes, secondary
    /// cities, α and disaster rates, plus a `[search]` section asking for
    /// the cheapest four-nines design.
    pub fn search7() -> Catalog {
        Catalog::from_toml_str(SEARCH7_TOML).expect("bundled search7 catalog parses")
    }
}

/// Execution knobs for one search (scheduling only — nothing here can
/// change a number in the report).
#[derive(Debug, Clone, Default)]
pub struct SearchOptions {
    /// Worker threads for the candidate fan-out (`0` = one per core).
    pub threads: usize,
    /// Numeric evaluation options (part of every candidate's cache key).
    pub eval: EvalOptions,
}

/// One evaluated candidate architecture.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Scenario name from catalog expansion (unique within the search).
    pub name: String,
    /// Content-addressed spec key (32 hex chars).
    pub key: String,
    /// Secondary-DC site name, if the template had one.
    pub secondary: Option<String>,
    /// Network-quality α, if applicable.
    pub alpha: Option<f64>,
    /// Mean time between disasters, years.
    pub disaster_years: Option<f64>,
    /// PM pool size, when the template swept it.
    pub machines: Option<u32>,
    /// Steady-state availability.
    pub availability: f64,
    /// `-log10(1 - A)`.
    pub nines: f64,
    /// Expected downtime, hours per year.
    pub downtime_hours_per_year: f64,
    /// Annual cost split (downtime vs infrastructure).
    pub cost: CostBreakdown,
    /// Whether the candidate meets the SLO (floor and ceiling inclusive).
    pub feasible: bool,
    /// Whether the candidate is on the cost/availability Pareto frontier.
    pub on_frontier: bool,
}

/// A candidate whose evaluation failed; it is excluded from the frontier
/// and the feasible set but reported so a bad corner of the grid is
/// visible instead of silently missing.
#[derive(Debug, Clone)]
pub struct FailedCandidate {
    /// Scenario name.
    pub name: String,
    /// The evaluation error, stringified.
    pub error: String,
}

/// The break-even disaster rate between two adjacent frontier
/// architectures.
#[derive(Debug, Clone)]
pub struct BreakEven {
    /// The cheaper frontier neighbor.
    pub cheaper: String,
    /// The more expensive (higher-availability) frontier neighbor.
    pub richer: String,
    /// Mean time between disasters (years) at which the two availability
    /// curves cross; `None` when they do not cross inside the probed
    /// range (one architecture dominates at every plausible rate).
    pub disaster_years: Option<f64>,
    /// Spec evaluations spent on the bisection.
    pub probes: usize,
}

/// Non-deterministic run statistics (solve times, cache provenance).
/// Deliberately *not* part of the canonical report JSON so CLI and HTTP
/// bodies stay bit-identical; the CLI prints them to stderr and the
/// server tracks them in `/v1/stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchRunStats {
    /// Candidate specs actually solved (batch misses).
    pub evaluated: usize,
    /// Candidates answered from the cache store.
    pub cached: usize,
    /// Candidates folded onto an identical spec in the batch.
    pub deduplicated: usize,
    /// Spec evaluations spent on break-even bisections.
    pub probe_evaluations: usize,
    /// Wall-clock solve time for the candidate batch, milliseconds.
    pub solve_ms: u64,
}

/// The complete result of one design search.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Catalog name the candidate space came from.
    pub catalog: String,
    /// The search configuration that produced this report.
    pub config: SearchConfig,
    /// Every evaluated candidate, ranked by ascending total cost, then
    /// descending availability, then name.
    pub candidates: Vec<Candidate>,
    /// Candidates whose evaluation failed.
    pub failed: Vec<FailedCandidate>,
    /// Names of the frontier members, cheapest first (their full rows are
    /// in [`SearchReport::candidates`] with `on_frontier = true`).
    pub frontier: Vec<String>,
    /// The cheapest feasible candidate, if the feasible set is non-empty.
    pub recommendation: Option<String>,
    /// Break-even disaster rates between adjacent frontier neighbors.
    pub break_even: Vec<BreakEven>,
    /// Distinct spec keys among the candidates (the dedup denominator).
    pub distinct_specs: usize,
    /// Run statistics (excluded from the canonical JSON).
    pub stats: SearchRunStats,
}

impl SearchReport {
    /// Number of feasible candidates.
    pub fn feasible_count(&self) -> usize {
        self.candidates.iter().filter(|c| c.feasible).count()
    }

    /// The full row of the recommended candidate, if any.
    pub fn recommended(&self) -> Option<&Candidate> {
        let name = self.recommendation.as_deref()?;
        self.candidates.iter().find(|c| c.name == name)
    }
}

/// The analysis set every candidate is evaluated under: steady state plus
/// the search's cost model. Fixed so CLI and HTTP searches share cache
/// entries (and so a search never perturbs the cache identity of plain
/// evaluations that happen to request the same pair).
pub fn search_analyses(config: &SearchConfig) -> Vec<AnalysisRequest> {
    vec![AnalysisRequest::SteadyState, AnalysisRequest::Cost { model: config.cost }]
}

/// Runs a design search: expands the catalog into candidates, evaluates
/// them all through `cache` (deduped, single-flight), extracts the
/// feasible set / frontier / recommendation, and bisects break-even
/// disaster rates between frontier neighbors.
///
/// # Errors
///
/// Fails on an invalid catalog (expansion errors) — but *not* on
/// individual candidate evaluation failures, which are reported in
/// [`SearchReport::failed`].
pub fn run_search(
    catalog: &Catalog,
    config: &SearchConfig,
    cache: &Arc<EvalCache>,
    opts: &SearchOptions,
) -> Result<SearchReport, EngineError> {
    let _span = dtc_obs::trace::trace_span("design_search");
    dtc_obs::trace::attr_str("catalog", &catalog.name);
    dtc_obs::trace::attr_float("availability_floor", config.slo.availability_floor);

    let scenarios = catalog.expand()?;
    dtc_obs::trace::attr_int("candidates", scenarios.len() as i64);
    let analyses = search_analyses(config);
    let run_opts = RunOptions {
        threads: opts.threads,
        eval: opts.eval.clone(),
        analyses: analyses.clone(),
    };
    let result = run_batch(&scenarios, cache, &run_opts);
    let distinct_specs = scenarios.len() - result.deduplicated;

    let mut candidates = Vec::with_capacity(scenarios.len());
    let mut failed = Vec::new();
    for (scenario, outcome) in scenarios.iter().zip(&result.outcomes) {
        match &outcome.reports {
            Err(e) => failed
                .push(FailedCandidate { name: scenario.name.clone(), error: e.to_string() }),
            Ok(reports) => {
                let steady = first_steady_state(reports).ok_or_else(|| {
                    EngineError::Schema(format!(
                        "{}: evaluation returned no steady-state report",
                        scenario.name
                    ))
                })?;
                let cost = reports
                    .iter()
                    .find_map(|r| match r {
                        AnalysisReport::Cost { breakdown } => Some(*breakdown),
                        _ => None,
                    })
                    .ok_or_else(|| {
                        EngineError::Schema(format!(
                            "{}: evaluation returned no cost report",
                            scenario.name
                        ))
                    })?;
                candidates.push(Candidate {
                    name: scenario.name.clone(),
                    key: outcome.key.0.clone(),
                    secondary: scenario.secondary.clone(),
                    alpha: scenario.alpha,
                    disaster_years: scenario.disaster_years,
                    machines: scenario.machines,
                    availability: steady.availability,
                    nines: steady.nines,
                    downtime_hours_per_year: steady.downtime_hours_per_year,
                    cost,
                    feasible: config.slo.is_met(steady.availability, cost.total()),
                    on_frontier: false,
                });
            }
        }
    }

    // Frontier over the evaluated candidates, then the deterministic
    // ranking: ascending cost, descending availability, name.
    {
        let _frontier_span = dtc_obs::trace::trace_span("frontier");
        let points: Vec<(f64, f64)> =
            candidates.iter().map(|c| (c.cost.total(), c.availability)).collect();
        for i in frontier::pareto_frontier(&points) {
            candidates[i].on_frontier = true;
        }
        dtc_obs::trace::attr_int(
            "frontier_size",
            candidates.iter().filter(|c| c.on_frontier).count() as i64,
        );
    }
    candidates.sort_by(|a, b| {
        a.cost
            .total()
            .total_cmp(&b.cost.total())
            .then(b.availability.total_cmp(&a.availability))
            .then(a.name.cmp(&b.name))
    });
    let frontier: Vec<String> =
        candidates.iter().filter(|c| c.on_frontier).map(|c| c.name.clone()).collect();
    let recommendation = candidates.iter().find(|c| c.feasible).map(|c| c.name.clone());

    // Break-even bisection between adjacent frontier neighbors, cheapest
    // pairs first, capped by the config.
    let mut break_even = Vec::new();
    let mut probe_evaluations = 0usize;
    if config.break_even && frontier.len() >= 2 {
        let by_name: HashMap<&str, &Scenario> =
            scenarios.iter().map(|s| (s.name.as_str(), s)).collect();
        for pair in frontier.windows(2).take(config.max_break_even_pairs) {
            let (a, b) = (&pair[0], &pair[1]);
            let (sa, sb) = (by_name[a.as_str()], by_name[b.as_str()]);
            let outcome = breakeven::break_even_years(sa, sb, &analyses, cache, opts);
            probe_evaluations += outcome.probes;
            break_even.push(BreakEven {
                cheaper: a.clone(),
                richer: b.clone(),
                disaster_years: outcome.crossing_years,
                probes: outcome.probes,
            });
        }
    }

    Ok(SearchReport {
        catalog: catalog.name.clone(),
        config: config.clone(),
        candidates,
        failed,
        frontier,
        recommendation,
        break_even,
        distinct_specs,
        stats: SearchRunStats {
            evaluated: result.evaluated,
            cached: result.cached,
            deduplicated: result.deduplicated,
            probe_evaluations,
            solve_ms: result.solve_time.as_millis() as u64,
        },
    })
}
