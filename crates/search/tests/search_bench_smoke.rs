//! Seconds-scale benchmark smoke: the shrunken `--smoke` grid must run
//! end to end and produce a document that satisfies the
//! `BENCH_search.json` schema contract — the same validator the binary
//! applies to what it writes, so the tracked document can never rot
//! without CI noticing.

use dtc_search::bench::{run, validate_search_bench_doc, SearchBenchConfig};

#[test]
fn smoke_grid_satisfies_the_bench_schema() {
    // The binary's --smoke grid, verbatim.
    let config = SearchBenchConfig {
        secondaries: vec!["Brasilia".into(), "Tokio".into()],
        alphas: vec![0.35, 0.45],
        disaster_years: vec![50.0, 100.0, 200.0],
        ..SearchBenchConfig::default()
    };
    assert_eq!(config.candidates(), 15, "smoke grid stays seconds-scale");

    let doc = run(&config).expect("smoke benchmark runs");
    validate_search_bench_doc(&doc)
        .unwrap_or_else(|e| panic!("invalid document: {e}\n{}", doc.to_json()));

    // Beyond the schema: the smoke grid's cardinality survives into the
    // document, so a silently-shrunken run can't pass.
    assert_eq!(doc.get("candidates").and_then(|v| v.as_i64()), Some(15));
}
