//! Property harness for the cost/availability Pareto frontier.
//!
//! Seeded (fully deterministic) random point sets, checked for the three
//! properties that define a frontier:
//!
//! 1. **Non-domination** — no frontier member is dominated by any point;
//! 2. **Completeness** — every excluded point is dominated by some
//!    frontier member;
//! 3. **Order independence** — permuting the input selects the same set
//!    of *points* (indices differ, values do not).

use dtc_search::frontier::{dominates, pareto_frontier};

/// xorshift64*: tiny, seeded, good enough to scatter points. No external
/// RNG crates and no wall-clock seeding — every run sees the same sets.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, 1).
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn usize(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// A cost/availability cloud with deliberate structure: clustered costs
/// (ties happen), availabilities pushed toward 1, and a few exact
/// duplicate points (the frontier keeps duplicates of its members).
fn point_cloud(rng: &mut Rng, n: usize) -> Vec<(f64, f64)> {
    let mut points: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            let cost = (rng.usize(40) as f64) * 12_500.0 + rng.f64() * 100.0;
            let avail = 1.0 - 10f64.powf(-(1.0 + 4.0 * rng.f64()));
            (cost, avail)
        })
        .collect();
    for _ in 0..n / 10 {
        let copy = points[rng.usize(points.len())];
        points.push(copy);
    }
    points
}

fn sorted_points(points: &[(f64, f64)], indices: &[usize]) -> Vec<(f64, f64)> {
    let mut selected: Vec<(f64, f64)> = indices.iter().map(|&i| points[i]).collect();
    selected.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    selected
}

#[test]
fn frontier_members_are_never_dominated() {
    let mut rng = Rng(0x5EED_0001);
    for round in 0..50 {
        let points = point_cloud(&mut rng, 60);
        let frontier = pareto_frontier(&points);
        assert!(!frontier.is_empty(), "round {round}: non-empty input has a frontier");
        for &i in &frontier {
            for (j, &q) in points.iter().enumerate() {
                assert!(
                    !dominates(q, points[i]),
                    "round {round}: frontier point {i} {:?} is dominated by {j} {q:?}",
                    points[i]
                );
            }
        }
    }
}

#[test]
fn every_excluded_point_is_dominated_by_a_frontier_member() {
    let mut rng = Rng(0x5EED_0002);
    for round in 0..50 {
        let points = point_cloud(&mut rng, 60);
        let frontier = pareto_frontier(&points);
        let on: std::collections::HashSet<usize> = frontier.iter().copied().collect();
        for (j, &q) in points.iter().enumerate() {
            if on.contains(&j) {
                continue;
            }
            // A point can be excluded while an identical twin is kept
            // (both coordinates equal): that twin does not *dominate* it,
            // so accept either a dominating member or an equal member.
            let covered = frontier.iter().any(|&i| dominates(points[i], q) || points[i] == q);
            assert!(
                covered,
                "round {round}: excluded point {j} {q:?} is neither dominated nor \
                 duplicated by the frontier"
            );
        }
    }
}

#[test]
fn frontier_is_insertion_order_independent() {
    let mut rng = Rng(0x5EED_0003);
    for round in 0..50 {
        let points = point_cloud(&mut rng, 60);
        let baseline = sorted_points(&points, &pareto_frontier(&points));

        // Fisher–Yates with the same deterministic generator.
        let mut shuffled = points.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.usize(i + 1));
        }
        let permuted = sorted_points(&shuffled, &pareto_frontier(&shuffled));
        assert_eq!(
            baseline, permuted,
            "round {round}: permuting the candidate order changed the frontier"
        );
    }
}

#[test]
fn non_finite_points_are_ignored_not_propagated() {
    let mut rng = Rng(0x5EED_0004);
    let mut points = point_cloud(&mut rng, 30);
    let clean = sorted_points(&points, &pareto_frontier(&points));
    points.push((f64::NAN, 0.999));
    points.push((1.0, f64::INFINITY));
    points.push((f64::NEG_INFINITY, 0.5));
    let with_junk = sorted_points(&points, &pareto_frontier(&points));
    assert_eq!(clean, with_junk, "non-finite candidates must not join the frontier");
}
