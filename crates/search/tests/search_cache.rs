//! End-to-end search semantics on a deliberately tiny candidate space:
//! cache reuse (the "immediate re-run is answered from cache" claim,
//! asserted via cache-stats deltas rather than wall clock), bit-identical
//! canonical JSON across runs, batch-dedup counters, and a real
//! break-even crossing between the two frontier architectures.

use dtc_engine::output::Format;
use dtc_engine::{Catalog, EvalCache};
use dtc_search::report::{render, report_to_value};
use dtc_search::{run_search, SearchOptions};
use std::sync::Arc;

/// Two architectures whose availability curves genuinely cross inside
/// the probed disaster range: a one-site hot+warm pair ("spare", cheap,
/// melts when the site is lost often) versus a two-site warm-standby
/// ("dr", richer, barely notices the disaster rate). Infrastructure-
/// weighted downtime pricing keeps both on the cost/availability
/// frontier so the bisection has a pair to work on.
const CROSSING_TOML: &str = r#"
[catalog]
name = "crossing"

[search]
availability_floor = 0.99
break_even = true
max_break_even_pairs = 4

[search.cost]
downtime_cost_per_hour = 1000.0

[[scenario]]
name = "spare"
kind = "custom"
min_running_vms = 1
disaster_years = [100.0]

[[scenario.dc]]
site = "Rio de Janeiro"
hot_pms = 1
warm_pms = 1
vms_per_pm = 1
pm_capacity = 1
backup_link = false

[[scenario]]
name = "dr"
kind = "custom"
min_running_vms = 1
alpha = [0.85]
disaster_years = [100.0]
backup_site = "Sao Paulo"

[[scenario.dc]]
site = "Rio de Janeiro"
hot_pms = 1
vms_per_pm = 1
pm_capacity = 1
nas_net = false

[[scenario.dc]]
site = "Brasilia"
warm_pms = 1
vms_per_pm = 1
pm_capacity = 1
nas_net = false
"#;

#[test]
fn rerun_is_pure_cache_hits_with_bit_identical_json_and_a_real_crossing() {
    let catalog = Catalog::from_toml_str(CROSSING_TOML).expect("test catalog parses");
    let config = catalog.search.clone().expect("test catalog has [search]");
    let cache = Arc::new(EvalCache::in_memory());
    let opts = SearchOptions::default();

    // Cold run: every distinct spec is a solve, nothing comes from cache.
    let cold = run_search(&catalog, &config, &cache, &opts).expect("cold search runs");
    assert_eq!(cold.candidates.len(), 2);
    assert!(cold.failed.is_empty(), "{:?}", cold.failed);
    assert_eq!(cold.distinct_specs, 2);
    assert_eq!(cold.stats.evaluated, 2, "cold run solves both specs");
    assert_eq!(cold.stats.cached, 0);
    let after_cold = cache.stats();
    assert_eq!(after_cold.misses, 2 + cold.stats.probe_evaluations);

    // Both architectures are on the frontier (cost-ordered), the
    // recommendation is the cheapest feasible candidate, and the two
    // availability curves cross at a plausible disaster mean — one
    // disaster every few hundred years, strictly inside (1, 10000).
    assert_eq!(cold.frontier.len(), 2, "frontier: {:?}", cold.frontier);
    assert!(cold.frontier[0].starts_with("spare"), "cheap tier first: {:?}", cold.frontier);
    assert!(cold.frontier[1].starts_with("dr"), "{:?}", cold.frontier);
    let cheapest_feasible = cold.candidates.iter().find(|c| c.feasible).map(|c| c.name.clone());
    assert_eq!(cold.recommendation, cheapest_feasible);
    assert_eq!(cold.break_even.len(), 1);
    let crossing = cold.break_even[0]
        .disaster_years
        .expect("spare and dr availabilities cross inside the probed range");
    assert!(
        (100.0..2000.0).contains(&crossing),
        "crossing at one disaster per {crossing} years is implausible"
    );
    assert!(cold.stats.probe_evaluations >= 6, "bisection probed: {:?}", cold.stats);

    // Warm run on the same cache: zero new solves — candidates AND every
    // bisection probe are answered from the store. This is the
    // "immediate re-run is served from cache" acceptance, pinned by
    // cache-stats deltas instead of wall-clock.
    let warm = run_search(&catalog, &config, &cache, &opts).expect("warm search runs");
    assert_eq!(warm.stats.evaluated, 0, "warm run must not solve anything");
    assert_eq!(warm.stats.cached, 2);
    let after_warm = cache.stats();
    assert_eq!(after_warm.misses, after_cold.misses, "no new misses on the warm run");
    assert!(
        after_warm.hits >= after_cold.hits + 2 + warm.stats.probe_evaluations,
        "warm hits {} vs cold {}: candidates + probes must all hit",
        after_warm.hits,
        after_cold.hits
    );

    // The canonical document is deterministic: cold and warm runs render
    // byte-identical JSON (run statistics are deliberately outside it).
    assert_eq!(
        report_to_value(&cold).to_json(),
        report_to_value(&warm).to_json(),
        "canonical JSON must not depend on cache provenance"
    );
    assert_eq!(render(&cold, Format::Json), report_to_value(&cold).to_json());

    // Batch-dedup effectiveness counters (surfaced by `dtc cache stats`
    // and /v1/stats): two runs of 2 candidates plus 2-spec probe batches.
    let expected_probe_candidates = cold.stats.probe_evaluations + warm.stats.probe_evaluations;
    assert_eq!(after_warm.batch_candidates, 4 + expected_probe_candidates);
    assert_eq!(
        after_warm.batch_distinct, after_warm.batch_candidates,
        "no in-batch dupes here"
    );
}

#[test]
fn csv_and_table_render_every_candidate() {
    let catalog = Catalog::from_toml_str(CROSSING_TOML).expect("test catalog parses");
    let mut config = catalog.search.clone().expect("[search] present");
    config.break_even = false;
    let cache = Arc::new(EvalCache::in_memory());
    let report =
        run_search(&catalog, &config, &cache, &SearchOptions::default()).expect("search runs");

    let csv = render(&report, Format::Csv);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + report.candidates.len(), "header + one row per candidate");
    assert!(lines[0].starts_with("name,secondary,alpha,"));

    let table = render(&report, Format::Table);
    for c in &report.candidates {
        assert!(table.contains(&c.name), "table misses {}", c.name);
    }
    assert!(table.contains("recommendation:"), "{table}");
}
