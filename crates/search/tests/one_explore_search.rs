//! The one-exploration-per-structural-group contract on the bundled
//! search7 space: evaluating all ~213 candidates costs one full
//! state-space exploration per distinct net structure (one per
//! architecture tier × marking variant), with every other candidate's
//! graph re-rated from its group's shared structure — and the resulting
//! report is byte-identical to the unshared per-spec evaluation path.
//!
//! This file deliberately holds a single test: the `dtc_core::instrument`
//! counters are process-wide, and Rust runs every test of one binary in
//! the same process — a sibling test evaluating models concurrently would
//! pollute the deltas. One test per binary means one process, so the
//! deltas are exact. Break-even bisection is disabled because each probe
//! batch carries its own batch-scoped structure registry; the pinned
//! claim is about the candidate batch.

use dtc_core::instrument;
use dtc_core::CloudModel;
use dtc_engine::EvalCache;
use dtc_search::report::report_to_value;
use dtc_search::{catalogs, run_search, search_analyses, SearchOptions};
use std::collections::HashSet;
use std::sync::Arc;

#[test]
fn search7_explores_once_per_structural_group() {
    let catalog = catalogs::search7();
    let mut config = catalog.search.clone().expect("search7 has a [search] section");
    config.break_even = false;

    // The expected group count, from the specs alone: distinct structural
    // fingerprints across the expanded candidates (building a model
    // compiles the net but explores nothing).
    let scenarios = catalog.expand().expect("search7 expands");
    assert!(scenarios.len() >= 200, "search7 is the ~213-candidate space");
    let groups: HashSet<u64> = scenarios
        .iter()
        .map(|s| CloudModel::build(&s.spec).expect("candidate builds").net_fingerprint())
        .collect();
    assert!(
        groups.len() < scenarios.len() / 4,
        "the grid must be rate-dominated: {} groups / {} candidates",
        groups.len(),
        scenarios.len()
    );

    let cache = Arc::new(EvalCache::in_memory());
    let opts = SearchOptions::default();
    let explorations0 = instrument::explorations();
    let re_rates0 = instrument::re_rates();
    let fallbacks0 = instrument::rerate_fallbacks();
    let report = run_search(&catalog, &config, &cache, &opts).expect("search runs");
    let explorations = instrument::explorations() - explorations0;
    let re_rates = instrument::re_rates() - re_rates0;
    let fallbacks = instrument::rerate_fallbacks() - fallbacks0;

    assert!(report.failed.is_empty(), "{:?}", report.failed);
    assert_eq!(report.candidates.len(), scenarios.len());
    assert_eq!(report.stats.evaluated, report.distinct_specs, "cold run solves every spec");
    assert_eq!(
        explorations as usize,
        groups.len(),
        "exactly one exploration per structural group"
    );
    assert_eq!(
        re_rates as usize,
        report.distinct_specs - groups.len(),
        "every other candidate re-rates its group's structure"
    );
    assert_eq!(fallbacks, 0, "a rate-only grid never mismatches a structure");

    // Structure sharing is invisible in the report: spot-check candidates
    // across the grid (every 17th plus the recommendation) against the
    // unshared path, which explores each spec from scratch. Availability
    // must agree bit for bit — re-rating is exact, not approximate.
    let analyses = search_analyses(&config);
    let mut checked = 0;
    for scenario in scenarios.iter().step_by(17) {
        let unshared =
            dtc_core::sweep::evaluate_all_guarded(&scenario.spec, &analyses, &opts.eval)
                .expect("unshared evaluation runs");
        let steady = dtc_core::analysis::first_steady_state(&unshared).unwrap();
        let candidate = report
            .candidates
            .iter()
            .find(|c| c.name == scenario.name)
            .expect("candidate reported");
        assert_eq!(
            candidate.availability.to_bits(),
            steady.availability.to_bits(),
            "{}: shared-structure availability must match the unshared path",
            scenario.name
        );
        checked += 1;
    }
    assert!(checked >= 10, "spot check covers the grid: {checked}");

    // The canonical report is deterministic: a rerun from a cold cache
    // reproduces it byte for byte (run statistics live outside it).
    let rerun = run_search(&catalog, &config, &Arc::new(EvalCache::in_memory()), &opts)
        .expect("rerun runs");
    assert_eq!(report_to_value(&report).to_json(), report_to_value(&rerun).to_json());
}
