//! Regenerates the paper's model-definition artifacts (Figs. 2–6, Tables
//! I–V) directly from the constructed nets, so the printed structure is the
//! structure the solvers run.
//!
//! ```sh
//! cargo run --release -p dtc-bench --bin describe_models          # blocks
//! cargo run --release -p dtc-bench --bin describe_models -- --full # + Fig. 6
//! ```

use dtc_core::blocks::{add_simple_component, add_vm_behavior, InfraRefs};
use dtc_core::prelude::*;
use dtc_geo::BRASILIA;
use dtc_petri::{NetDisplay, PetriNetBuilder};

fn main() {
    let params = PaperParams::table_vi();

    println!("=== Fig. 2 / Table I — SIMPLE_COMPONENT (instantiated for OSPM) ===\n");
    {
        let mut b = PetriNetBuilder::new();
        let ospm = params.ospm_folded().expect("folds");
        add_simple_component(&mut b, "OSPM", ospm);
        let net = b.build().expect("builds");
        println!("{}", NetDisplay::new(&net));
    }

    println!("=== Fig. 5 — RBD folding feeding the SPN layer ===\n");
    {
        let ospm = params.ospm_folded().expect("folds");
        let nas = params.nas_net_folded().expect("folds");
        println!("OS (4000 h / 1 h) ⊕ PM (1000 h / 12 h)  [series]");
        println!(
            "  -> OSPM_F delay = {:.3} h, OSPM_R delay = {:.3} h\n",
            ospm.mttf_hours, ospm.mttr_hours
        );
        println!("Switch ⊕ Router ⊕ NAS  [series]");
        println!(
            "  -> NAS_NET_F delay = {:.1} h, NAS_NET_R delay = {:.3} h\n",
            nas.mttf_hours, nas.mttr_hours
        );
    }

    println!("=== Fig. 3 / Tables II–III — VM_BEHAVIOR (one PM with full infra) ===\n");
    {
        let mut b = PetriNetBuilder::new();
        let ospm = add_simple_component(&mut b, "OSPM1", params.ospm_folded().expect("folds"));
        let nas =
            add_simple_component(&mut b, "NAS_NET1", params.nas_net_folded().expect("folds"));
        let dc = add_simple_component(&mut b, "DC1", params.disaster(100.0));
        let pool = b.place("FailedVMS", 0);
        let infra =
            InfraRefs { ospm_up: ospm.up, nas_net_up: Some(nas.up), dc_up: Some(dc.up) };
        add_vm_behavior(&mut b, "1", 2, 2, params.vm_params(), &infra, pool);
        let net = b.build().expect("builds");
        println!("{}", NetDisplay::new(&net));
    }

    let full = std::env::args().any(|a| a == "--full");
    let cs = CaseStudy::paper();
    let spec = cs.two_dc_spec(&BRASILIA, 0.35, 100.0);
    let model = CloudModel::build(&spec).expect("builds");

    println!("=== Fig. 4 / Tables IV–V — TRANSMISSION_COMPONENT guards ===\n");
    {
        let net = model.net();
        for name in ["TRI_12", "TRI_21", "TBI_12", "TBI_21"] {
            let t = net.transition(name).expect("transmission transition");
            let def = net.transition_def(t);
            println!("{name}: {}", net.display_expr(&def.guard));
        }
        println!();
        for name in ["TRE_12", "TRE_21", "TBE_12", "TBE_21"] {
            let t = net.transition(name).expect("transfer transition");
            let def = net.transition_def(t);
            if let dtc_petri::TransitionKind::Timed { rate, semantics } = def.kind {
                println!(
                    "{name}: exp, delay = {:.3} h (MTT), markup constant, concurrency {semantics}",
                    1.0 / rate
                );
            }
        }
        println!();
    }

    if full {
        println!("=== Fig. 6 — full two-data-center model (Rio–Brasília instance) ===\n");
        println!("{}", NetDisplay::new(model.net()));
        println!(
            "availability metric: P{{{}}}",
            model.net().display_expr(&model.availability_expr())
        );
    } else {
        println!(
            "(run with --full to print the complete Fig. 6 net: {} places, {} transitions)",
            model.net().num_places(),
            model.net().num_transitions()
        );
    }
}
