//! Ablation: exponential vs deterministic VM-transfer times.
//!
//! The CTMC pipeline must model the migration time (MTT) as exponential;
//! real WAN bulk transfers are closer to deterministic. Simulating both on
//! the same model quantifies the modeling error the exponential assumption
//! introduces — at several distances, since the effect grows with MTT.
//!
//! ```sh
//! cargo run --release -p dtc-bench --bin ablation_deterministic_mtt
//! ```

use dtc_core::prelude::*;
use dtc_geo::{BRASILIA, NEW_YORK, TOKYO};
use dtc_sim::{Distribution, SimConfig, TimingOverrides};

fn main() {
    let cs = CaseStudy::paper();
    let cfg = SimConfig {
        warmup: 50_000.0,
        horizon: 4_000_000.0,
        replications: 10,
        seed: 0x4D77,
        confidence: 0.95,
    };

    println!(
        "{:<10} {:>9} | {:>12} {:>12} | {:>12} {:>12} | {:>12}",
        "pair", "MTT (h)", "exp mean", "±hw", "det mean", "±hw", "Δ downtime h/y"
    );
    dtc_bench::rule(104);
    for city in [BRASILIA, NEW_YORK, TOKYO] {
        // Reduced model (one PM per DC, k=1) keeps 10 long replications fast.
        let mut spec = cs.two_dc_spec(&city, 0.35, 100.0);
        for dc in &mut spec.data_centers {
            dc.pms.truncate(1);
        }
        spec.min_running_vms = 1;
        let mtt = spec.direct_mtt_hours[0][1].expect("link exists");
        let bk1 = spec.data_centers[0].backup_inbound_mtt_hours.expect("backup");
        let bk2 = spec.data_centers[1].backup_inbound_mtt_hours.expect("backup");
        let model = CloudModel::build(&spec).expect("builds");

        let exp = model
            .simulate_availability(&cfg, &TimingOverrides::new())
            .expect("exponential run");

        let mut det = TimingOverrides::new();
        det.set("TRE_12", Distribution::Deterministic { value: mtt });
        det.set("TRE_21", Distribution::Deterministic { value: mtt });
        det.set("TBE_12", Distribution::Deterministic { value: bk2 });
        det.set("TBE_21", Distribution::Deterministic { value: bk1 });
        let det_est = model.simulate_availability(&cfg, &det).expect("deterministic run");

        println!(
            "{:<10} {:>9.2} | {:>12.7} {:>12.2e} | {:>12.7} {:>12.2e} | {:>12.2}",
            city.name,
            mtt,
            exp.mean,
            exp.half_width,
            det_est.mean,
            det_est.half_width,
            (exp.mean - det_est.mean) * 8760.0
        );
    }
    println!(
        "\nReading: swapping exponential transfers for deterministic ones\n\
         moves availability by only a few hours of downtime per year in\n\
         either direction — two orders of magnitude below the distance\n\
         effect itself (~500 h/year between Brasilia and Tokyo here) —\n\
         supporting the paper's exponential-MTT simplification."
    );
}
