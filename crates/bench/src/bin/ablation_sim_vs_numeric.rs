//! Ablation: discrete-event simulation vs numeric CTMC solution.
//!
//! For a ladder of models, checks that the simulator's 99% confidence
//! interval covers the numeric steady-state availability, and reports how
//! simulation effort trades against interval width.
//!
//! ```sh
//! cargo run --release -p dtc-bench --bin ablation_sim_vs_numeric
//! ```

use dtc_core::prelude::*;
use dtc_sim::{SimConfig, TimingOverrides};
use std::time::Instant;

fn main() {
    let cs = CaseStudy::paper();
    let models = [
        ("single-PM", CloudModel::build(&cs.single_dc_spec(1)).expect("builds")),
        ("2-PM", CloudModel::build(&cs.single_dc_spec(2)).expect("builds")),
        ("4-PM", CloudModel::build(&cs.single_dc_spec(4)).expect("builds")),
    ];

    for (label, model) in &models {
        let numeric = model.evaluate(&EvalOptions::default()).expect("numeric");
        println!("\n=== {label}: numeric availability {:.7} ===", numeric.availability);
        println!(
            "{:>12} {:>10} {:>14} {:>12} {:>8} {:>10}",
            "horizon (h)", "reps", "estimate", "half-width", "covers", "time"
        );
        for (horizon, reps) in [(200_000.0, 8), (800_000.0, 8), (3_200_000.0, 8)] {
            let cfg = SimConfig {
                warmup: 20_000.0,
                horizon,
                replications: reps,
                seed: 0xDC2013,
                confidence: 0.99,
            };
            let t0 = Instant::now();
            match model.simulate_availability(&cfg, &TimingOverrides::new()) {
                Ok(est) => println!(
                    "{:>12.0e} {:>10} {:>14.7} {:>12.2e} {:>8} {:>10.1?}",
                    horizon,
                    reps,
                    est.mean,
                    est.half_width,
                    est.covers(numeric.availability),
                    t0.elapsed()
                ),
                Err(e) => println!("{horizon:>12.0e} failed: {e}"),
            }
        }
    }
    println!(
        "\nReading: disasters strike every ~876,000 h on average, so horizons\n\
         shorter than that see almost no disasters — the estimate is then\n\
         biased above the true availability by nearly the whole disaster\n\
         term, and the replication CI (built from a heavily skewed sample)\n\
         cannot flag it. Coverage only becomes reliable once the horizon\n\
         spans several disaster periods. This rare-event wall is exactly why\n\
         the paper solves these models numerically; simulation earns its\n\
         keep for validation and non-exponential timing (see\n\
         ablation_deterministic_mtt)."
    );
}
