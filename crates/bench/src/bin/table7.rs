//! Regenerates the paper's **Table VII** — availability of the eight
//! baseline architectures — and prints paper-vs-measured side by side.
//!
//! Thin wrapper over the scenario engine: the architectures come from the
//! bundled `table7` catalog (which carries the paper's published values as
//! `expect_availability`), evaluation runs through the content-addressed
//! cache, and the five two-data-center rows solve the full Fig. 6 model
//! (~126 000 tangible states each) — expect a few minutes of wall-clock
//! time. Equivalent CLI: `dtc table7`.
//!
//! ```sh
//! cargo run --release -p dtc-bench --bin table7
//! ```

use dtc_engine::prelude::*;

fn main() {
    let catalog = dtc_engine::catalogs::table7();
    let scenarios = catalog.expand().expect("bundled catalog expands");
    let opts =
        RunOptions { threads: RunOptions::default().threads.min(4), ..Default::default() };
    eprintln!("evaluating {} architectures on {} threads…", scenarios.len(), opts.threads);
    let cache = std::sync::Arc::new(EvalCache::in_memory());
    let result = run_batch(&scenarios, &cache, &opts);
    eprintln!("{}", render_summary(&result));

    println!("Table VII — availability of the baseline architectures");
    print!("{}", render(&scenarios, &result, Format::Table));

    println!("\nShape checks (see DESIGN.md §5):");
    let avail: Vec<f64> = result
        .outcomes
        .iter()
        .map(|o| o.steady().map(|r| r.availability).unwrap_or(f64::NAN))
        .collect();
    let check = |label: &str, ok: bool| {
        println!("  [{}] {label}", if ok { "ok" } else { "VIOLATED" });
    };
    check("single-DC ordering: 1 PM < 2 PM < 4 PM", avail[0] < avail[1] && avail[1] < avail[2]);
    check(
        "every two-DC architecture beats every single-DC one",
        avail[3..].iter().all(|a| *a > avail[2]),
    );
    check(
        "two-DC availability decreases with distance (Brasilia…Tokio)",
        avail[3..].windows(2).all(|w| w[0] > w[1]),
    );
}
