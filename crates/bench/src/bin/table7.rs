//! Regenerates the paper's **Table VII** — availability of the eight
//! baseline architectures — and prints paper-vs-measured side by side.
//!
//! The five two-data-center rows solve the full Fig. 6 model (~126 000
//! tangible states each); expect a few minutes of wall-clock time.
//!
//! ```sh
//! cargo run --release -p dtc-bench --bin table7
//! ```

use dtc_bench::{pct_delta, rule, PAPER_TABLE_VII};
use dtc_core::prelude::*;
use std::time::Instant;

fn main() {
    let cs = CaseStudy::paper();
    let scenarios = table_vii_scenarios(&cs);
    let specs: Vec<CloudSystemSpec> = scenarios.iter().map(|s| s.spec.clone()).collect();

    let t0 = Instant::now();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(4);
    eprintln!("evaluating {} architectures on {threads} threads…", specs.len());
    let outcomes = sweep_reports(&specs, &EvalOptions::default(), threads);
    eprintln!("done in {:?}\n", t0.elapsed());

    println!("Table VII — availability of the baseline architectures");
    println!(
        "{:<52} {:>12} {:>7} | {:>12} {:>7} | {:>9}",
        "Architecture", "paper A", "nines", "measured A", "nines", "ΔA"
    );
    rule(110);
    for (scenario, outcome) in scenarios.iter().zip(&outcomes) {
        let paper = PAPER_TABLE_VII
            .iter()
            .find(|row| row.name == scenario.name)
            .expect("every scenario has a paper row");
        match &outcome.report {
            Ok(r) => println!(
                "{:<52} {:>12.7} {:>7.2} | {:>12.7} {:>7.2} | {:>9}",
                scenario.name,
                paper.availability,
                paper.nines,
                r.availability,
                r.nines,
                pct_delta(r.availability, paper.availability)
            ),
            Err(e) => println!("{:<52} FAILED: {e}", scenario.name),
        }
    }

    println!("\nShape checks (see DESIGN.md §5):");
    let avail: Vec<f64> = outcomes
        .iter()
        .map(|o| o.report.as_ref().map(|r| r.availability).unwrap_or(f64::NAN))
        .collect();
    let check = |label: &str, ok: bool| {
        println!("  [{}] {label}", if ok { "ok" } else { "VIOLATED" });
    };
    check("single-DC ordering: 1 PM < 2 PM < 4 PM", avail[0] < avail[1] && avail[1] < avail[2]);
    check(
        "every two-DC architecture beats every single-DC one",
        avail[3..].iter().all(|a| *a > avail[2]),
    );
    check(
        "two-DC availability decreases with distance (Brasilia…Tokio)",
        avail[3..].windows(2).all(|w| w[0] > w[1]),
    );
}
