//! Build once, re-rate many: exploration share before/after structure
//! sharing, recorded as `BENCH_rerate.json` at the repo root.
//!
//! Rate-only batches dominate this repo's workloads: a sensitivity study
//! perturbs one rate at a time (two jobs per parameter, identical net
//! structure), and a search grid varies disaster rates and WAN delays
//! across a handful of architecture tiers. Before this optimization every
//! job re-explored the tangible state space from scratch; now the first
//! job of each structural group explores and publishes its
//! [`dtc_petri::TangibleStructure`], and every sibling re-rates it —
//! bit-identical graphs (asserted here, not assumed) at the cost of one
//! rate evaluation per recorded transition firing.
//!
//! Two sections:
//!
//! * **sensitivity** — the perturbed-job sweep of the paper's case study
//!   (full mode: the ~126k-state Fig. 7 Brasilia model, a four-parameter
//!   filter; smoke: the Table VII one-machine row, all parameters), run
//!   once with the baseline's shared structure and once without.
//! * **search** — the bundled search7 candidate grid (smoke: every 8th
//!   candidate) through the batch executor (shared) versus per-spec
//!   unshared evaluation on the same worker-pool shape.
//!
//! Exploration counts come from the process-wide `dtc_core::instrument`
//! counters, so the recorded "explorations before/after" are measured,
//! not derived.
//!
//! Usage: `cargo run --release -p dtc-bench --bin rerate_bench [--smoke]`
//!
//! `--smoke` swaps in the small models/grids (seconds-scale, for CI) and
//! does NOT write `BENCH_rerate.json`.

use dtc_core::instrument;
use dtc_core::prelude::*;
use dtc_core::sensitivity::scale_parameter;
use dtc_core::sweep::{evaluate_all_guarded, sweep_reports_from};
use dtc_engine::value::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Availability bits of every successful outcome, for exact comparison.
fn availability_bits(outcomes: &[SweepOutcome]) -> Vec<u64> {
    outcomes
        .iter()
        .map(|o| o.report.as_ref().expect("job evaluates").availability.to_bits())
        .collect()
}

/// Counter deltas around `f`: (explorations, re_rates, wall seconds, result).
fn measured<T>(f: impl FnOnce() -> T) -> (u64, u64, f64, T) {
    let e0 = instrument::explorations();
    let r0 = instrument::re_rates();
    let t0 = Instant::now();
    let out = f();
    let seconds = t0.elapsed().as_secs_f64();
    (instrument::explorations() - e0, instrument::re_rates() - r0, seconds, out)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let opts = EvalOptions::default();

    // ── Sensitivity: perturbed jobs share the baseline's structure ──────
    let scenario = if smoke {
        dtc_engine::catalogs::table7()
            .expand()
            .expect("bundled table7 catalog expands")
            .into_iter()
            .find(|s| s.machines == Some(1))
            .expect("table7 has the one-machine row")
    } else {
        dtc_engine::catalogs::fig7()
            .expand()
            .expect("bundled fig7 catalog expands")
            .into_iter()
            .next()
            .expect("fig7 has scenarios")
    };
    // Full mode trims the parameter set: the bench measures exploration
    // share, and four knobs (eight perturbed jobs) already dwarf the
    // one-time exploration without turning the unshared arm into a
    // half-hour run on the ~126k-state model.
    let filter: Vec<String> = if smoke {
        Vec::new()
    } else {
        ["ospm_mttf", "ospm_mttr", "vm_mttf", "disaster_mttf_1"].map(String::from).to_vec()
    };
    let params = filtered_parameters(&scenario.spec, &filter);
    assert!(!params.is_empty(), "scenario has sensitivity knobs");
    let rel_step = 0.05;
    let mut jobs = Vec::with_capacity(params.len() * 2);
    for p in &params {
        jobs.push(scale_parameter(&scenario.spec, p, 1.0 + rel_step).expect("present"));
        jobs.push(scale_parameter(&scenario.spec, p, 1.0 - rel_step).expect("present"));
    }

    let model = CloudModel::build(&scenario.spec).expect("scenario compiles");
    let t0 = Instant::now();
    let graph = model.state_space(&opts).expect("state space");
    let explore_seconds = t0.elapsed().as_secs_f64();
    println!(
        "sensitivity: {} ({} states, {} jobs, {} cores; one exploration {explore_seconds:.2}s)",
        scenario.name,
        graph.num_states(),
        jobs.len(),
        cores
    );

    let (shared_explores, shared_rerates, shared_seconds, shared) =
        measured(|| sweep_reports_from(&jobs, &opts, cores, Some(graph.structure())));
    let (unshared_explores, unshared_rerates, unshared_seconds, unshared) =
        measured(|| sweep_reports_from(&jobs, &opts, cores, None));
    assert_eq!(
        availability_bits(&shared),
        availability_bits(&unshared),
        "re-rated jobs must match explored jobs bit for bit"
    );
    assert_eq!(shared_explores, 0, "every perturbed job re-rates");
    assert_eq!(shared_rerates as usize, jobs.len());
    assert_eq!(unshared_explores as usize, jobs.len());
    assert_eq!(unshared_rerates, 0);
    // Exploration's share of each arm's wall clock, from the measured
    // single-exploration time (the shared arm's one exploration happened
    // above, outside both timings; amortize it into its share).
    let share_before = ((jobs.len() as f64 * explore_seconds) / unshared_seconds).min(1.0);
    let share_after = explore_seconds / (explore_seconds + shared_seconds);
    let sensitivity_speedup = unshared_seconds / shared_seconds;
    println!(
        "  shared {shared_seconds:.2}s (0 explorations) vs unshared {unshared_seconds:.2}s \
         ({} explorations): {sensitivity_speedup:.2}x, exploration share {:.0}% -> {:.0}%",
        jobs.len(),
        100.0 * share_before,
        100.0 * share_after
    );

    // ── Search grid: the executor shares one exploration per tier ───────
    let catalog = dtc_search::catalogs::search7();
    let config = catalog.search.clone().expect("search7 has a [search] section");
    let all = catalog.expand().expect("search7 expands");
    let candidates: Vec<_> = if smoke { all.iter().step_by(8).cloned().collect() } else { all };
    let analyses = dtc_search::search_analyses(&config);
    let run_opts = dtc_engine::RunOptions {
        threads: cores,
        eval: opts.clone(),
        analyses: analyses.clone(),
    };

    let cache = std::sync::Arc::new(dtc_engine::EvalCache::in_memory());
    let (batch_explores, batch_rerates, batch_seconds, batch) =
        measured(|| dtc_engine::run_batch(&candidates, &cache, &run_opts));
    assert!(batch.outcomes.iter().all(|o| o.reports.is_ok()));

    // The pre-sharing arm: the same worker-pool shape and the same
    // in-batch dedup (the executor folded identical specs before this
    // optimization too), just no structure registry.
    let mut unique: Vec<usize> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        for (i, c) in candidates.iter().enumerate() {
            let canonical =
                dtc_engine::canonical_encoding_with(&c.spec, &run_opts.eval, &analyses);
            if seen.insert(canonical) {
                unique.push(i);
            }
        }
    }
    let (flat_explores, flat_rerates, flat_seconds, flat) = measured(|| {
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<Vec<AnalysisReport>>>> =
            Mutex::new(vec![None; unique.len()]);
        std::thread::scope(|scope| {
            for _ in 0..cores.max(1) {
                scope.spawn(|| loop {
                    let u = next.fetch_add(1, Ordering::Relaxed);
                    if u >= unique.len() {
                        break;
                    }
                    let spec = &candidates[unique[u]].spec;
                    let reports = evaluate_all_guarded(spec, &analyses, &opts)
                        .expect("candidate evaluates");
                    results.lock().unwrap()[u] = Some(reports);
                });
            }
        });
        results.into_inner().unwrap().into_iter().map(|o| o.unwrap()).collect::<Vec<_>>()
    });
    for (&i, unshared) in unique.iter().zip(&flat) {
        assert_eq!(
            format!("{:?}", batch.outcomes[i].reports.as_ref().unwrap()),
            format!("{unshared:?}"),
            "shared and unshared candidate reports must be byte-identical"
        );
    }
    assert_eq!(flat_rerates, 0);
    let search_speedup = flat_seconds / batch_seconds;
    println!(
        "search: {} candidates, {} structural groups; shared {batch_seconds:.2}s \
         ({batch_explores} explorations, {batch_rerates} re-rates) vs unshared \
         {flat_seconds:.2}s ({flat_explores} explorations): {search_speedup:.2}x",
        candidates.len(),
        batch_explores,
    );

    if smoke {
        println!("smoke mode: skipping BENCH_rerate.json");
        return;
    }
    let doc = Value::object([
        ("bench", Value::Str("rerate: build once, re-rate many".into())),
        ("command", Value::Str("cargo run --release -p dtc-bench --bin rerate_bench".into())),
        ("cores", Value::Int(cores as i64)),
        (
            "sensitivity",
            Value::object([
                ("scenario", Value::Str(scenario.name.clone())),
                ("states", Value::Int(graph.num_states() as i64)),
                ("parameters", Value::Int(params.len() as i64)),
                ("perturbed_jobs", Value::Int(jobs.len() as i64)),
                ("explore_seconds", Value::Float(explore_seconds)),
                ("shared_seconds", Value::Float(shared_seconds)),
                ("unshared_seconds", Value::Float(unshared_seconds)),
                ("explorations_before", Value::Int(unshared_explores as i64)),
                ("explorations_after", Value::Int(shared_explores as i64)),
                ("re_rates_after", Value::Int(shared_rerates as i64)),
                ("exploration_share_before", Value::Float(share_before)),
                ("exploration_share_after", Value::Float(share_after)),
                ("speedup", Value::Float(sensitivity_speedup)),
            ]),
        ),
        (
            "search",
            Value::object([
                ("catalog", Value::Str("search7".into())),
                ("candidates", Value::Int(candidates.len() as i64)),
                ("structural_groups", Value::Int(batch_explores as i64)),
                ("shared_seconds", Value::Float(batch_seconds)),
                ("unshared_seconds", Value::Float(flat_seconds)),
                ("explorations_before", Value::Int(flat_explores as i64)),
                ("explorations_after", Value::Int(batch_explores as i64)),
                ("re_rates_after", Value::Int(batch_rerates as i64)),
                ("speedup", Value::Float(search_speedup)),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rerate.json");
    std::fs::write(path, doc.to_json() + "\n").expect("write BENCH_rerate.json");
    println!("wrote {path}");
}
