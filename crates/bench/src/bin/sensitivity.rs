//! Parameter-sensitivity study: which knob moves availability most?
//!
//! Computes availability elasticities (`∂ ln A / ∂ ln θ`, ±5% central
//! differences) for every parameter of two deployments: the 4-PM single-DC
//! architecture and a reduced Rio–Brasília two-DC system. Extends the
//! paper's analysis (which varies α and the disaster rate only) to all
//! model inputs.
//!
//! ```sh
//! cargo run --release -p dtc-bench --bin sensitivity
//! ```

use dtc_core::prelude::*;
use dtc_geo::BRASILIA;

fn print_rows(rows: &[SensitivityRow]) {
    println!(
        "{:<28} {:>14} {:>12} {:>16}",
        "parameter", "base value (h)", "elasticity", "ΔU per +1% (1e-6)"
    );
    dtc_bench::rule(74);
    for r in rows {
        println!(
            "{:<28} {:>14.3} {:>12.5} {:>16.3}",
            r.parameter.to_string(),
            r.base_value,
            r.elasticity,
            // unavailability_shift is per ln-unit; scale to per +1%.
            -r.unavailability_shift * 0.01 * 1e6
        );
    }
}

fn main() {
    let cs = CaseStudy::paper();
    let opts = EvalOptions::default();

    println!("=== 4 machines, one data center ===\n");
    let spec = cs.single_dc_spec(4);
    let rows = availability_sensitivity(&spec, &opts, 0.05, 4).expect("sensitivity");
    print_rows(&rows);

    println!("\n=== Rio–Brasília two-DC (reduced: 1 PM/DC, k=1) ===\n");
    let mut spec = cs.two_dc_spec(&BRASILIA, 0.35, 100.0);
    for dc in &mut spec.data_centers {
        dc.pms.truncate(1);
    }
    spec.min_running_vms = 1;
    let rows = availability_sensitivity(&spec, &opts, 0.05, 4).expect("sensitivity");
    print_rows(&rows);

    println!(
        "\nReading: in the single-DC system the disaster and the PM series\n\
         dominate; adding the failover DC demotes the disaster parameters\n\
         and promotes the migration times (MTT) and the backup server —\n\
         the design lever shifts from hardware to the network, which is\n\
         the paper's core argument."
    );
}
