//! Ablation: the migration policy knob `l` and the value of each recovery
//! mechanism.
//!
//! Compares, on the Rio–Brasília deployment (reduced to one PM per DC so
//! all variants solve in seconds):
//!
//! * no second data center at all,
//! * two DCs but **no** migration links (the warm DC only helps if VMs are
//!   already there — they never are),
//! * migration on total PM outage (`l = 1`, the paper's Table IV guard),
//! * no backup server vs backup server,
//!
//! quantifying how much each mechanism contributes to availability.
//!
//! ```sh
//! cargo run --release -p dtc-bench --bin ablation_migration_policy
//! ```

use dtc_core::prelude::*;
use dtc_geo::BRASILIA;

fn reduced(cs: &CaseStudy) -> CloudSystemSpec {
    let mut spec = cs.two_dc_spec(&BRASILIA, 0.35, 100.0);
    for dc in &mut spec.data_centers {
        dc.pms.truncate(1);
    }
    spec.min_running_vms = 1;
    spec
}

fn main() {
    let cs = CaseStudy::paper();
    let opts = EvalOptions::default();
    let mut rows: Vec<(String, AvailabilityReport)> = Vec::new();

    // 1. Single DC (drop the second site entirely).
    {
        let mut spec = reduced(&cs);
        spec.data_centers.truncate(1);
        spec.direct_mtt_hours = vec![vec![None]];
        spec.data_centers[0].backup_inbound_mtt_hours = None;
        spec.backup = None;
        let r = CloudModel::build(&spec).unwrap().evaluate(&opts).unwrap();
        rows.push(("single DC (no failover site)".into(), r));
    }

    // 2. Two DCs, no migration of any kind.
    {
        let mut spec = reduced(&cs);
        spec.direct_mtt_hours = vec![vec![None, None], vec![None, None]];
        for dc in &mut spec.data_centers {
            dc.backup_inbound_mtt_hours = None;
        }
        spec.backup = None;
        let r = CloudModel::build(&spec).unwrap().evaluate(&opts).unwrap();
        rows.push(("two DCs, no migration links".into(), r));
    }

    // 3. Direct migration only (no backup server).
    {
        let mut spec = reduced(&cs);
        for dc in &mut spec.data_centers {
            dc.backup_inbound_mtt_hours = None;
        }
        spec.backup = None;
        let r = CloudModel::build(&spec).unwrap().evaluate(&opts).unwrap();
        rows.push(("direct migration, no backup server".into(), r));
    }

    // 4. The paper's full mechanism set (l = 1).
    {
        let spec = reduced(&cs);
        let r = CloudModel::build(&spec).unwrap().evaluate(&opts).unwrap();
        rows.push(("direct migration + backup server (paper)".into(), r));
    }

    println!("mechanism ablation — Rio–Brasília, α=0.35, 100-year disasters, k=1\n");
    println!(
        "{:<42} {:>12} {:>7} {:>14} {:>8}",
        "configuration", "availability", "nines", "downtime h/yr", "states"
    );
    dtc_bench::rule(88);
    for (name, r) in &rows {
        println!(
            "{:<42} {:>12.7} {:>7.2} {:>14.2} {:>8}",
            name, r.availability, r.nines, r.downtime_hours_per_year, r.tangible_states
        );
    }

    let base = rows[0].1.nines;
    println!("\nnines gained over the single-DC baseline:");
    for (name, r) in rows.iter().skip(1) {
        println!("  {:+.3}  {name}", r.nines - base);
    }
    println!(
        "\nReading: the warm site is worthless without migration links; the\n\
         backup server matters exactly in the disaster/network-failure cases\n\
         where the source NAS is unreadable."
    );
}
