//! Regenerates the paper's **Figure 7** — the availability *increase* (in
//! number of nines) of every case-study configuration over its per-pair
//! baseline (α = 0.35, disaster mean time = 100 years).
//!
//! 45 full-size models are solved (5 city pairs × 3 α × 3 disaster means);
//! expect ~10 minutes of wall-clock time in release mode.
//!
//! ```sh
//! cargo run --release -p dtc-bench --bin fig7
//! ```

use dtc_core::prelude::*;
use dtc_core::scenarios::{ALPHAS, DISASTER_YEARS, SECONDARY_CITIES};
use std::time::Instant;

fn main() {
    let cs = CaseStudy::paper();
    let points = figure7_scenarios(&cs);
    let specs: Vec<CloudSystemSpec> = points.iter().map(|p| p.spec.clone()).collect();

    let t0 = Instant::now();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(4);
    eprintln!("evaluating {} configurations on {threads} threads…", specs.len());
    let outcomes = sweep_reports(&specs, &EvalOptions::default(), threads);
    eprintln!("done in {:?}\n", t0.elapsed());

    let nines_of = |idx: usize| -> f64 {
        outcomes[idx].report.as_ref().map(|r| r.nines).unwrap_or(f64::NAN)
    };
    let avail_of = |idx: usize| -> f64 {
        outcomes[idx].report.as_ref().map(|r| r.availability).unwrap_or(f64::NAN)
    };

    // Index points by (city, alpha, years).
    let find = |city: &str, alpha: f64, years: f64| -> usize {
        points
            .iter()
            .position(|p| p.city.name == city && p.alpha == alpha && p.disaster_years == years)
            .expect("point exists")
    };

    println!("Figure 7 — availability increase over the per-pair baseline");
    println!("(baseline: α = 0.35, disaster mean time = 100 years; Δ in number of nines)\n");
    println!(
        "{:<10} {:>6} | {:>10} {:>10} {:>10} | {:>8}",
        "pair", "α", "100 y", "200 y", "300 y", "base A"
    );
    dtc_bench::rule(66);
    for city in SECONDARY_CITIES {
        let base = find(city.name, 0.35, 100.0);
        let base_nines = nines_of(base);
        for alpha in ALPHAS {
            let deltas: Vec<String> = DISASTER_YEARS
                .iter()
                .map(|&y| format!("{:+.3}", nines_of(find(city.name, alpha, y)) - base_nines))
                .collect();
            if alpha == 0.35 {
                println!(
                    "{:<10} {:>6.2} | {:>10} {:>10} {:>10} | {:>8.6}",
                    city.name, alpha, deltas[0], deltas[1], deltas[2], avail_of(base)
                );
            } else {
                println!(
                    "{:<10} {:>6.2} | {:>10} {:>10} {:>10} |",
                    "", alpha, deltas[0], deltas[1], deltas[2]
                );
            }
        }
    }

    // The paper's headline observations, checked mechanically.
    println!("\nShape checks (paper Section V):");
    let check = |label: &str, ok: bool| {
        println!("  [{}] {label}", if ok { "ok" } else { "VIOLATED" });
    };
    // 1. Best configuration: Brasília, α = 0.45, 300-year disasters.
    let mut best: (f64, String) = (f64::NEG_INFINITY, String::new());
    for p in &points {
        let idx = find(p.city.name, p.alpha, p.disaster_years);
        let n = nines_of(idx);
        if n > best.0 {
            best = (n, format!("{} α={} disaster={}y", p.city.name, p.alpha, p.disaster_years));
        }
    }
    check(
        &format!("highest availability is Brasilia/α=0.45/300y (got {})", best.1),
        best.1.contains("Brasilia") && best.1.contains("0.45") && best.1.contains("300"),
    );
    // 2. Δnines from α grows with distance (network dominates far pairs).
    let alpha_gain = |city: &str| nines_of(find(city, 0.45, 100.0)) - nines_of(find(city, 0.35, 100.0));
    check(
        "α improvement larger for Tokio than for Brasilia",
        alpha_gain("Tokio") > alpha_gain("Brasilia"),
    );
    // 3. Monotone in both knobs for every pair.
    let monotone = SECONDARY_CITIES.iter().all(|c| {
        ALPHAS.windows(2).all(|aw| {
            DISASTER_YEARS.iter().all(|&y| {
                nines_of(find(c.name, aw[1], y)) >= nines_of(find(c.name, aw[0], y)) - 1e-6
            })
        }) && DISASTER_YEARS.windows(2).all(|yw| {
            ALPHAS.iter().all(|&a| {
                nines_of(find(c.name, a, yw[1])) >= nines_of(find(c.name, a, yw[0])) - 1e-6
            })
        })
    });
    check("availability monotone in α and disaster mean time for every pair", monotone);
}
