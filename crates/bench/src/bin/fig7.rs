//! Regenerates the paper's **Figure 7** — the availability *increase* (in
//! number of nines) of every case-study configuration over its per-pair
//! baseline (α = 0.35, disaster mean time = 100 years).
//!
//! Thin wrapper over the scenario engine: the 45 configurations (5 city
//! pairs × 3 α × 3 disaster means) come from the bundled `fig7` catalog;
//! the five baselines are shared grid points, so the executor's dedup
//! serves them from one evaluation each. Expect ~10 minutes of wall-clock
//! time in release mode. Equivalent CLI: `dtc fig7`.
//!
//! ```sh
//! cargo run --release -p dtc-bench --bin fig7
//! ```

use dtc_engine::cli::render_fig7_grid;
use dtc_engine::prelude::*;

fn main() {
    let catalog = dtc_engine::catalogs::fig7();
    let scenarios = catalog.expand().expect("bundled catalog expands");
    let opts =
        RunOptions { threads: RunOptions::default().threads.min(4), ..Default::default() };
    eprintln!("evaluating {} configurations on {} threads…", scenarios.len(), opts.threads);
    let cache = std::sync::Arc::new(EvalCache::in_memory());
    let result = run_batch(&scenarios, &cache, &opts);
    eprintln!("{}", render_summary(&result));

    print!("{}", render_fig7_grid(&scenarios, &result.outcomes));

    let nines_at = |sec: &str, alpha: f64, years: f64| -> f64 {
        scenarios
            .iter()
            .position(|s| {
                s.secondary.as_deref() == Some(sec)
                    && s.alpha == Some(alpha)
                    && s.disaster_years == Some(years)
            })
            .and_then(|i| result.outcomes[i].steady().map(|r| r.nines))
            .unwrap_or(f64::NAN)
    };
    // Derive the axes from the expanded catalog (first-appearance order) so
    // the shape checks follow fig7.toml if its grid is ever edited.
    fn distinct<T: PartialEq>(items: impl Iterator<Item = T>) -> Vec<T> {
        items.fold(Vec::new(), |mut acc, x| {
            if !acc.contains(&x) {
                acc.push(x);
            }
            acc
        })
    }
    let pairs = distinct(scenarios.iter().filter_map(|s| s.secondary.as_deref()));
    let alphas = distinct(scenarios.iter().filter_map(|s| s.alpha));
    let years = distinct(scenarios.iter().filter_map(|s| s.disaster_years));

    // The paper's headline observations, checked mechanically.
    println!("\nShape checks (paper Section V):");
    let check = |label: &str, ok: bool| {
        println!("  [{}] {label}", if ok { "ok" } else { "VIOLATED" });
    };
    // 1. Best configuration: Brasília, α = 0.45, 300-year disasters.
    let mut best: (f64, String) = (f64::NEG_INFINITY, String::new());
    for &pair in &pairs {
        for &a in &alphas {
            for &y in &years {
                let n = nines_at(pair, a, y);
                if n > best.0 {
                    best = (n, format!("{pair} α={a} disaster={y}y"));
                }
            }
        }
    }
    check(
        &format!("highest availability is Brasilia/α=0.45/300y (got {})", best.1),
        best.1.contains("Brasilia") && best.1.contains("0.45") && best.1.contains("300"),
    );
    // 2. Δnines from α grows with distance (network dominates far pairs).
    let alpha_gain = |pair: &str| nines_at(pair, 0.45, 100.0) - nines_at(pair, 0.35, 100.0);
    check(
        "α improvement larger for Tokio than for Brasilia",
        alpha_gain("Tokio") > alpha_gain("Brasilia"),
    );
    // 3. Monotone in both knobs for every pair.
    let monotone = pairs.iter().all(|pair| {
        alphas.windows(2).all(|aw| {
            years.iter().all(|&y| nines_at(pair, aw[1], y) >= nines_at(pair, aw[0], y) - 1e-6)
        }) && years.windows(2).all(|yw| {
            alphas.iter().all(|&a| nines_at(pair, a, yw[1]) >= nines_at(pair, a, yw[0]) - 1e-6)
        })
    });
    check("availability monotone in α and disaster mean time for every pair", monotone);
}
