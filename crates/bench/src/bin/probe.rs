use dtc_core::prelude::*;
use std::time::Instant;

fn main() {
    let cs = CaseStudy::paper();
    let spec = cs.two_dc_spec(&dtc_geo::BRASILIA, 0.35, 100.0);
    let model = CloudModel::build(&spec).unwrap();
    let t0 = Instant::now();
    let graph = model.state_space(&EvalOptions::default()).unwrap();
    println!(
        "explore: {:?}  states={} edges={}",
        t0.elapsed(),
        graph.num_states(),
        graph.stats().edges
    );
    let t1 = Instant::now();
    let report = model.evaluate_on(&graph, &EvalOptions::default()).unwrap();
    println!("solve:   {:?}", t1.elapsed());
    println!("{report}");
}
