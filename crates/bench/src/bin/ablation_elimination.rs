//! Ablation: exact vanishing-marking elimination vs keeping vanishing
//! markings as states with fast exponential approximations of the
//! immediate transitions.
//!
//! Shows the state-space inflation and the approximation error as the rate
//! factor grows — the reason GSPN tools eliminate vanishing markings
//! exactly.
//!
//! ```sh
//! cargo run --release -p dtc-bench --bin ablation_elimination
//! ```

use dtc_core::prelude::*;
use dtc_petri::{ReachOptions, VanishingPolicy};
use std::time::Instant;

fn main() {
    let cs = CaseStudy::paper();
    // The 2-PM single-DC architecture has plenty of immediate activity
    // (flushes + adoptions) while staying small enough to solve repeatedly.
    let model = CloudModel::build(&cs.single_dc_spec(2)).expect("builds");

    let exact_opts = EvalOptions::default();
    let t0 = Instant::now();
    let exact = model.evaluate(&exact_opts).expect("exact evaluation");
    let exact_time = t0.elapsed();
    println!("=== exact on-the-fly elimination ===");
    println!(
        "tangible states: {} (+{} vanishing eliminated), edges: {}",
        exact.tangible_states, exact.vanishing_markings, exact.edges
    );
    println!("availability: {:.9}  ({exact_time:?})\n", exact.availability);

    println!(
        "{:>12} {:>10} {:>10} {:>14} {:>12} {:>10}",
        "rate factor", "states", "edges", "availability", "|error|", "time"
    );
    for factor in [1e2, 1e3, 1e4, 1e5, 1e6] {
        let opts = EvalOptions {
            reach: ReachOptions {
                vanishing: VanishingPolicy::ApproximateRate(factor),
                ..Default::default()
            },
            ..Default::default()
        };
        let t0 = Instant::now();
        match model.evaluate(&opts) {
            Ok(r) => println!(
                "{:>12.0e} {:>10} {:>10} {:>14.9} {:>12.2e} {:>10.1?}",
                factor,
                r.tangible_states,
                r.edges,
                r.availability,
                (r.availability - exact.availability).abs(),
                t0.elapsed()
            ),
            Err(e) => println!("{factor:>12.0e} failed: {e}"),
        }
    }
    println!(
        "\nReading: keeping vanishing markings inflates the state space ~26x\n\
         (61 -> 1600 states here) and stiffens the generator, in exchange for\n\
         an approximation error that only vanishes as the rate factor grows —\n\
         exact elimination is both smaller and better."
    );
}
