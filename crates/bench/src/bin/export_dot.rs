//! Writes Graphviz DOT renderings of the paper's model figures to `./dot/`.
//!
//! ```sh
//! cargo run --release -p dtc-bench --bin export_dot
//! dot -Tpdf dot/fig6_full_model.dot -o fig6.pdf   # if graphviz is installed
//! ```

use dtc_core::blocks::{add_simple_component, add_vm_behavior, InfraRefs};
use dtc_core::prelude::*;
use dtc_geo::BRASILIA;
use dtc_petri::{to_dot, PetriNetBuilder};
use std::fs;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let out_dir = Path::new("dot");
    fs::create_dir_all(out_dir)?;
    let params = PaperParams::table_vi();

    // Fig. 2 — SIMPLE_COMPONENT.
    {
        let mut b = PetriNetBuilder::new();
        add_simple_component(&mut b, "X", ComponentParams::new(1000.0, 10.0));
        let net = b.build().expect("builds");
        fs::write(out_dir.join("fig2_simple_component.dot"), to_dot(&net))?;
    }

    // Fig. 3 — VM_BEHAVIOR with its infrastructure.
    {
        let mut b = PetriNetBuilder::new();
        let ospm = add_simple_component(&mut b, "OSPM1", params.ospm_folded().expect("folds"));
        let nas =
            add_simple_component(&mut b, "NAS_NET1", params.nas_net_folded().expect("folds"));
        let dc = add_simple_component(&mut b, "DC1", params.disaster(100.0));
        let pool = b.place("FailedVMS", 0);
        let infra =
            InfraRefs { ospm_up: ospm.up, nas_net_up: Some(nas.up), dc_up: Some(dc.up) };
        add_vm_behavior(&mut b, "1", 2, 2, params.vm_params(), &infra, pool);
        let net = b.build().expect("builds");
        fs::write(out_dir.join("fig3_vm_behavior.dot"), to_dot(&net))?;
    }

    // Figs. 4+6 — the full two-DC model (the transmission component is the
    // subgraph around TRP_/TBP_ places).
    {
        let cs = CaseStudy::paper();
        let model = CloudModel::build(&cs.two_dc_spec(&BRASILIA, 0.35, 100.0)).expect("builds");
        fs::write(out_dir.join("fig6_full_model.dot"), to_dot(model.net()))?;
    }

    println!("wrote dot/fig2_simple_component.dot");
    println!("wrote dot/fig3_vm_behavior.dot");
    println!("wrote dot/fig6_full_model.dot");
    println!("render with: dot -Tpdf dot/<file>.dot -o <file>.pdf");
    Ok(())
}
