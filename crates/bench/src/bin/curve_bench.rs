//! Per-point vs single-pass transient curves on the bundled Fig. 7 case
//! study, plus a thread axis over the parallel march kernels and the
//! O(states)-memory reward-projection mode, recorded as
//! `BENCH_curve.json` at the repo root.
//!
//! The per-point path re-runs uniformization from scratch for every time
//! point (`Ctmc::transient` once per `t`); the single-pass path builds the
//! uniformized matrix once and marches the power sequence once for the
//! whole grid (`Ctmc::transient_reward_curve`). On a uniform m-point grid
//! over `(0, T]` the per-point path marches `Σ Λ·tᵢ ≈ Λ·T·(m+1)/2` steps
//! against the single pass's `Λ·T`, so the expected speedup grows linearly
//! with the number of points.
//!
//! The thread axis re-runs the single pass at 1/2/4/8 worker threads.
//! The kernels are deterministic by construction (`dtc_markov::par`:
//! fixed row blocks, disjoint writes, block-ordered reductions), so the
//! bench asserts `max_abs_diff == 0.0` — bitwise, not a tolerance —
//! against the 1-thread run, and records the speedup honestly along with
//! the machine's core count.
//!
//! The projection section runs a 1000-point year-horizon curve in
//! reward-projection mode (`Ctmc::transient_reward_curve_projected`):
//! the march accumulates `r·π₀Pᵏ` scalars instead of materializing a
//! distribution vector per point, so the point accumulators cost
//! O(points) memory instead of O(points × states).
//!
//! Usage: `cargo run --release -p dtc-bench --bin curve_bench
//! [max_hours] [--trace] [--smoke] [--threads]`
//!
//! Default max_hours is 24; the full ~126k-state model costs a few
//! minutes per-point at 64 points — that cost is the point of the
//! comparison. `--smoke` swaps in the Table VII one-machine model and
//! small grids (seconds-scale, for CI) and does NOT write
//! `BENCH_curve.json`. `--threads` forces the thread axis (always on in
//! full mode). `--trace` collects the run's span tree and prints it to
//! stderr when the benchmark finishes.

use dtc_core::prelude::*;
use dtc_engine::value::Value;
use std::time::Instant;

/// Max |a - b| over two equal-length curves.
fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max)
}

fn main() {
    let mut trace = false;
    let mut smoke = false;
    let mut threads_axis = false;
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| match a.as_str() {
            "--trace" => {
                trace = true;
                false
            }
            "--smoke" => {
                smoke = true;
                false
            }
            "--threads" => {
                threads_axis = true;
                false
            }
            _ => true,
        })
        .collect();
    let max_hours: f64 =
        args.first().map(|a| a.parse().expect("max_hours must be a number")).unwrap_or(24.0);
    // The tracked JSON carries the thread axis; --smoke opts in explicitly.
    threads_axis |= !smoke;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let trace_ctx =
        trace.then(|| dtc_obs::trace::TraceContext::new(dtc_obs::trace::TraceId::generate()));
    let _trace_guard = trace_ctx.as_ref().map(dtc_obs::trace::install);
    let _root_span = trace_ctx.as_ref().map(|_| dtc_obs::trace::trace_span("curve_bench"));

    // Full mode benches the ~126k-state fig7 case study; --smoke swaps in
    // the Table VII one-machine row so the whole binary stays CI-sized.
    let scenario = if smoke {
        dtc_engine::catalogs::table7()
            .expand()
            .expect("bundled table7 catalog expands")
            .into_iter()
            .find(|s| s.machines == Some(1))
            .expect("table7 has the one-machine row")
    } else {
        dtc_engine::catalogs::fig7()
            .expand()
            .expect("bundled fig7 catalog expands")
            .into_iter()
            .next()
            .expect("fig7 has scenarios")
    };
    println!("scenario: {} ({} cores)", scenario.name, cores);
    let model = CloudModel::build(&scenario.spec).expect("scenario compiles");
    let t0 = Instant::now();
    let graph = model.state_space(&EvalOptions::default()).expect("state space");
    println!(
        "state space: {} states, {} edges in {:.1?}",
        graph.num_states(),
        graph.stats().edges,
        t0.elapsed()
    );
    let ctmc = graph.ctmc();
    let pi0 = graph.initial_pi0();
    let expr = model.availability_expr();
    let reward: Vec<f64> = graph
        .states()
        .iter()
        .map(|m| if expr.eval(&|p: dtc_petri::PlaceId| m[p.index()]) { 1.0 } else { 0.0 })
        .collect();

    // ── Per-point vs single-pass ────────────────────────────────────────
    let point_counts: &[usize] = if smoke { &[4, 16] } else { &[4, 16, 64] };
    let mut runs = Vec::new();
    println!(
        "{:>7} {:>15} {:>15} {:>9} {:>12}",
        "points", "per-point (s)", "one-pass (s)", "speedup", "max |Δ|"
    );
    for &points in point_counts {
        let times: Vec<f64> =
            (1..=points).map(|i| max_hours * i as f64 / points as f64).collect();

        let t0 = Instant::now();
        let mut per_point = Vec::with_capacity(points);
        for &t in &times {
            let pi = ctmc.transient(&pi0, t).expect("per-point transient");
            per_point.push(dtc_markov::dot(&pi, &reward));
        }
        let per_point_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let single_pass =
            ctmc.transient_reward_curve(&pi0, &times, &reward).expect("single-pass curve");
        let single_pass_s = t0.elapsed().as_secs_f64();

        let diff = max_abs_diff(&per_point, &single_pass);
        assert!(diff < 1e-12, "paths disagree by {diff:e}");
        let speedup = per_point_s / single_pass_s;
        println!(
            "{points:>7} {per_point_s:>15.3} {single_pass_s:>15.3} {speedup:>8.2}x {diff:>12.2e}"
        );
        runs.push(Value::object([
            ("points", Value::Int(points as i64)),
            ("per_point_seconds", Value::Float(per_point_s)),
            ("single_pass_seconds", Value::Float(single_pass_s)),
            ("speedup", Value::Float(speedup)),
            ("max_abs_diff", Value::Float(diff)),
        ]));
    }

    // ── Thread axis: single pass at 1/2/4/8 workers, bitwise-pinned ─────
    let mut thread_runs = Vec::new();
    let axis_points = *point_counts.last().unwrap();
    if threads_axis {
        let times: Vec<f64> =
            (1..=axis_points).map(|i| max_hours * i as f64 / axis_points as f64).collect();
        let counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
        println!("thread axis ({axis_points} points, {cores} cores):");
        println!("{:>8} {:>15} {:>12} {:>12}", "threads", "one-pass (s)", "speedup", "max |Δ|");
        let mut baseline: Option<(f64, Vec<Vec<f64>>)> = None;
        for &threads in counts {
            let opts = dtc_markov::PassOptions { threads, ..Default::default() };
            let t0 = Instant::now();
            let out = dtc_markov::uniformized_pass_with(ctmc, &pi0, &times, &[], &[], &opts)
                .expect("single-pass curve");
            let seconds = t0.elapsed().as_secs_f64();
            let (speedup, diff) = match &baseline {
                None => {
                    baseline = Some((seconds, out.distributions));
                    (1.0, 0.0)
                }
                Some((serial_s, serial_dists)) => {
                    // The determinism contract is bitwise, so the measured
                    // difference must be exactly zero — not merely small.
                    let diff = serial_dists
                        .iter()
                        .zip(&out.distributions)
                        .map(|(a, b)| max_abs_diff(a, b))
                        .fold(0.0f64, f64::max);
                    assert_eq!(
                        diff, 0.0,
                        "{threads}-thread march diverged from serial by {diff:e}"
                    );
                    (serial_s / seconds, diff)
                }
            };
            println!("{threads:>8} {seconds:>15.3} {speedup:>11.2}x {diff:>12.2e}");
            thread_runs.push(Value::object([
                ("threads", Value::Int(threads as i64)),
                ("single_pass_seconds", Value::Float(seconds)),
                ("speedup_vs_1_thread", Value::Float(speedup)),
                ("max_abs_diff", Value::Float(diff)),
            ]));
        }
    }

    // ── Reward projection: O(states) memory for dense year curves ───────
    // Check the mode against full-vector dots on a small grid of the main
    // scenario, then run a dense year-horizon curve on the Table VII
    // one-machine model — kept small because the point of projection is
    // the *accumulator* footprint (points × states × 8 bytes of
    // distribution vectors in full-vector mode), not raw march speed; on
    // the fig7 model the year march alone is Λ·8760 ≈ 450k steps.
    let check_points = 16usize;
    let check_times: Vec<f64> =
        (1..=check_points).map(|i| max_hours * i as f64 / check_points as f64).collect();
    let full = ctmc
        .transient_reward_curve(&pi0, &check_times, &reward)
        .expect("full-vector reference");
    let projected = ctmc
        .transient_reward_curve_projected(&pi0, &check_times, &reward, 0)
        .expect("projected curve");
    let check_diff = max_abs_diff(&full, &projected);
    assert!(check_diff < 1e-12, "projection drifted from full-vector by {check_diff:e}");

    let year_scenario = dtc_engine::catalogs::table7()
        .expand()
        .expect("bundled table7 catalog expands")
        .into_iter()
        .find(|s| s.machines == Some(1))
        .expect("table7 has the one-machine row");
    let year_model = CloudModel::build(&year_scenario.spec).expect("scenario compiles");
    let year_graph = year_model.state_space(&EvalOptions::default()).expect("state space");
    let year_expr = year_model.availability_expr();
    let year_reward: Vec<f64> = year_graph
        .states()
        .iter()
        .map(|m| if year_expr.eval(&|p: dtc_petri::PlaceId| m[p.index()]) { 1.0 } else { 0.0 })
        .collect();
    let year_pi0 = year_graph.initial_pi0();
    let year_points = if smoke { 200usize } else { 1000 };
    let year_hours = 8760.0;
    let year_times: Vec<f64> =
        (1..=year_points).map(|i| year_hours * i as f64 / year_points as f64).collect();
    let t0 = Instant::now();
    let year_curve = year_graph
        .ctmc()
        .transient_reward_curve_projected(&year_pi0, &year_times, &year_reward, 0)
        .expect("year-horizon projected curve");
    let projection_s = t0.elapsed().as_secs_f64();
    assert_eq!(year_curve.len(), year_points);
    assert!(year_curve.iter().all(|a| (0.0..=1.0 + 1e-9).contains(a)));
    let projection_bytes = year_points * 8;
    let full_vector_bytes = year_points * year_graph.num_states() * 8;
    println!(
        "projection: {year_points}-point year curve on {} ({} states) in {projection_s:.3} s \
         ({projection_bytes} B accumulators vs {full_vector_bytes} B full-vector; \
         check max |Δ| {check_diff:.2e})",
        year_scenario.name,
        year_graph.num_states()
    );

    if smoke {
        println!("smoke mode: skipping BENCH_curve.json");
    } else {
        let doc = Value::object([
            ("bench", Value::Str("curve: per-point vs single-pass uniformization".into())),
            (
                "command",
                Value::Str("cargo run --release -p dtc-bench --bin curve_bench".into()),
            ),
            ("scenario", Value::Str(scenario.name.clone())),
            ("states", Value::Int(graph.num_states() as i64)),
            ("transitions", Value::Int(ctmc.generator().nnz() as i64)),
            ("uniformization_rate_per_hour", Value::Float(ctmc.uniformization_rate())),
            ("grid", Value::Str(format!("uniform over (0, {max_hours}] hours"))),
            ("cores", Value::Int(cores as i64)),
            ("runs", Value::Array(runs)),
            (
                "threads_axis",
                Value::object([
                    ("points", Value::Int(axis_points as i64)),
                    ("runs", Value::Array(thread_runs)),
                ]),
            ),
            (
                "projection",
                Value::object([
                    ("check_points", Value::Int(check_points as i64)),
                    ("check_max_abs_diff", Value::Float(check_diff)),
                    ("scenario", Value::Str(year_scenario.name.clone())),
                    ("states", Value::Int(year_graph.num_states() as i64)),
                    ("year_points", Value::Int(year_points as i64)),
                    ("year_hours", Value::Float(year_hours)),
                    ("seconds", Value::Float(projection_s)),
                    ("accumulator_bytes", Value::Int(projection_bytes as i64)),
                    ("full_vector_bytes", Value::Int(full_vector_bytes as i64)),
                ]),
            ),
        ]);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_curve.json");
        std::fs::write(path, doc.to_json() + "\n").expect("write BENCH_curve.json");
        println!("wrote {path}");
    }

    drop(_root_span);
    if let Some(ctx) = &trace_ctx {
        eprint!("{}", dtc_obs::trace::render_text(&ctx.snapshot()));
    }
}
