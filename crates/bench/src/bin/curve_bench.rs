//! Per-point vs single-pass transient curves on the bundled Fig. 7 case
//! study, recorded as `BENCH_curve.json` at the repo root.
//!
//! The per-point path re-runs uniformization from scratch for every time
//! point (`Ctmc::transient` once per `t`); the single-pass path builds the
//! uniformized matrix once and marches the power sequence once for the
//! whole grid (`Ctmc::transient_reward_curve`). On a uniform m-point grid
//! over `(0, T]` the per-point path marches `Σ Λ·tᵢ ≈ Λ·T·(m+1)/2` steps
//! against the single pass's `Λ·T`, so the expected speedup grows linearly
//! with the number of points.
//!
//! Usage: `cargo run --release -p dtc-bench --bin curve_bench [max_hours] [--trace]`
//! (default 24; the full ~126k-state model costs a few minutes per-point
//! at 64 points — that cost is the point of the comparison). `--trace`
//! collects the run's span tree (state-space exploration, matrix builds,
//! marches) and prints it to stderr when the benchmark finishes.

use dtc_core::prelude::*;
use dtc_engine::value::Value;
use std::time::Instant;

fn main() {
    let mut trace = false;
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--trace" {
                trace = true;
                false
            } else {
                true
            }
        })
        .collect();
    let max_hours: f64 =
        args.first().map(|a| a.parse().expect("max_hours must be a number")).unwrap_or(24.0);
    let trace_ctx =
        trace.then(|| dtc_obs::trace::TraceContext::new(dtc_obs::trace::TraceId::generate()));
    let _trace_guard = trace_ctx.as_ref().map(dtc_obs::trace::install);
    let _root_span = trace_ctx.as_ref().map(|_| dtc_obs::trace::trace_span("curve_bench"));

    let scenario = dtc_engine::catalogs::fig7()
        .expand()
        .expect("bundled fig7 catalog expands")
        .into_iter()
        .next()
        .expect("fig7 has scenarios");
    println!("scenario: {}", scenario.name);
    let model = CloudModel::build(&scenario.spec).expect("scenario compiles");
    let t0 = Instant::now();
    let graph = model.state_space(&EvalOptions::default()).expect("state space");
    println!(
        "state space: {} states, {} edges in {:.1?}",
        graph.num_states(),
        graph.stats().edges,
        t0.elapsed()
    );
    let ctmc = graph.ctmc();
    let pi0 = graph.initial_pi0();
    let expr = model.availability_expr();
    let reward: Vec<f64> = graph
        .states()
        .iter()
        .map(|m| if expr.eval(&|p: dtc_petri::PlaceId| m[p.index()]) { 1.0 } else { 0.0 })
        .collect();

    let mut runs = Vec::new();
    println!(
        "{:>7} {:>15} {:>15} {:>9} {:>12}",
        "points", "per-point (s)", "one-pass (s)", "speedup", "max |Δ|"
    );
    for &points in &[4usize, 16, 64] {
        let times: Vec<f64> =
            (1..=points).map(|i| max_hours * i as f64 / points as f64).collect();

        let t0 = Instant::now();
        let mut per_point = Vec::with_capacity(points);
        for &t in &times {
            let pi = ctmc.transient(&pi0, t).expect("per-point transient");
            per_point.push(dtc_markov::dot(&pi, &reward));
        }
        let per_point_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let single_pass =
            ctmc.transient_reward_curve(&pi0, &times, &reward).expect("single-pass curve");
        let single_pass_s = t0.elapsed().as_secs_f64();

        let max_abs_diff = per_point
            .iter()
            .zip(&single_pass)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_abs_diff < 1e-12, "paths disagree by {max_abs_diff:e}");
        let speedup = per_point_s / single_pass_s;
        println!(
            "{points:>7} {per_point_s:>15.3} {single_pass_s:>15.3} {speedup:>8.2}x {max_abs_diff:>12.2e}"
        );
        runs.push(Value::object([
            ("points", Value::Int(points as i64)),
            ("per_point_seconds", Value::Float(per_point_s)),
            ("single_pass_seconds", Value::Float(single_pass_s)),
            ("speedup", Value::Float(speedup)),
            ("max_abs_diff", Value::Float(max_abs_diff)),
        ]));
    }

    let doc = Value::object([
        ("bench", Value::Str("curve: per-point vs single-pass uniformization".into())),
        ("command", Value::Str("cargo run --release -p dtc-bench --bin curve_bench".into())),
        ("scenario", Value::Str(scenario.name.clone())),
        ("states", Value::Int(graph.num_states() as i64)),
        ("transitions", Value::Int(ctmc.generator().nnz() as i64)),
        ("uniformization_rate_per_hour", Value::Float(ctmc.uniformization_rate())),
        ("grid", Value::Str(format!("uniform over (0, {max_hours}] hours"))),
        ("runs", Value::Array(runs)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_curve.json");
    std::fs::write(path, doc.to_json() + "\n").expect("write BENCH_curve.json");
    println!("wrote {path}");

    drop(_root_span);
    if let Some(ctx) = &trace_ctx {
        eprint!("{}", dtc_obs::trace::render_text(&ctx.snapshot()));
    }
}
