//! Ablation: steady-state solver choice (Gauss–Seidel vs SOR vs damped
//! Jacobi vs power vs dense direct) on the case-study models.
//!
//! Reports accuracy against the direct solve (where feasible) and
//! wall-clock time, on a small and a mid-size model.
//!
//! ```sh
//! cargo run --release -p dtc-bench --bin ablation_solvers
//! ```

use dtc_core::prelude::*;
use dtc_markov::{Method, SolverOptions};
use dtc_petri::IntExpr;
use std::time::Instant;

fn main() {
    let cs = CaseStudy::paper();

    // Small model: one-machine architecture (direct solve is exact there).
    let small = CloudModel::build(&cs.single_dc_spec(1)).expect("builds");
    // Mid model: four machines in one data center.
    let mid = CloudModel::build(&cs.single_dc_spec(4)).expect("builds");

    for (label, model) in [("single-PM architecture", &small), ("4-PM architecture", &mid)] {
        let graph = model.state_space(&EvalOptions::default()).expect("explores");
        println!(
            "\n=== {label}: {} states, {} edges ===",
            graph.num_states(),
            graph.stats().edges
        );
        println!(
            "{:<14} {:>12} {:>12} {:>14} {:>12}",
            "method", "time (ms)", "iterations", "availability", "|Δ vs direct|"
        );

        let expr = model.availability_expr();
        let t0 = Instant::now();
        let direct = graph.solve_with(Method::Direct, &SolverOptions::default());
        let direct_time = t0.elapsed();
        let reference = match &direct {
            Ok(sol) => {
                let a = sol.probability(&expr);
                println!(
                    "{:<14} {:>12.1} {:>12} {:>14.9} {:>12}",
                    "direct",
                    direct_time.as_secs_f64() * 1e3,
                    1,
                    a,
                    "-"
                );
                Some(a)
            }
            Err(e) => {
                println!("{:<14} failed: {e}", "direct");
                None
            }
        };

        for (method, relax) in [
            (Method::GaussSeidel, 1.0),
            (Method::Sor, 1.2),
            (Method::Sor, 0.8),
            (Method::Jacobi, 1.0),
            (Method::Power, 1.0),
        ] {
            let opts = SolverOptions { relaxation: relax, ..Default::default() };
            let t0 = Instant::now();
            match graph.solve_with(method, &opts) {
                Ok(sol) => {
                    let a = sol.probability(&expr);
                    let name = if method == Method::Sor {
                        format!("sor(ω={relax})")
                    } else {
                        method.to_string()
                    };
                    println!(
                        "{:<14} {:>12.1} {:>12} {:>14.9} {:>12}",
                        name,
                        t0.elapsed().as_secs_f64() * 1e3,
                        sol.stats().iterations,
                        a,
                        reference
                            .map(|r| format!("{:.2e}", (a - r).abs()))
                            .unwrap_or_else(|| "-".into())
                    );
                }
                Err(e) => {
                    println!("{:<14} failed after {:?}: {e}", method.to_string(), t0.elapsed())
                }
            }
        }

        // Also check one non-trivial expectation agrees across solvers.
        if let (Ok(d), Ok(gs)) = (
            graph.solve_with(Method::Direct, &SolverOptions::default()),
            graph.solve_with(Method::GaussSeidel, &SolverOptions::default()),
        ) {
            let e = IntExpr::tokens_sum(model.vm_up_places());
            let delta = (d.expected(&e) - gs.expected(&e)).abs();
            println!("E[running VMs] direct-vs-GS delta: {delta:.2e}");
        }
    }
}
