//! Regenerates the paper's **Table VI** (dependability parameters) from the
//! constants the models actually consume, plus the derived hierarchical
//! folds the SPN layer uses (the paper's Fig. 5 step).
//!
//! ```sh
//! cargo run --release -p dtc-bench --bin table6
//! ```

use dtc_core::params::{PaperParams, TABLE_VI};

fn main() {
    println!("Table VI — dependability parameters for components of Figure 1");
    println!("{:<36} {:>14} {:>10}", "Component", "MTTF (h)", "MTTR (h)");
    dtc_bench::rule(62);
    for row in TABLE_VI {
        println!("{:<36} {:>14} {:>10}", row.component, row.mttf_hours, row.mttr_hours);
    }

    let p = PaperParams::table_vi();
    println!("\nCase-study constants (Section V):");
    println!("  VM start time            : {:.4} h (5 minutes)", p.vm_start_hours);
    println!("  VM image size            : {} GB", p.vm_size_gb);
    println!("  minimum running VMs (k)  : {}", p.min_running_vms);
    println!("  DC recovery after disaster: {} h (1 year)", p.dc_recovery_hours);
    println!("  disaster mean times      : 100 / 200 / 300 years");
    println!("  network quality α        : 0.35 / 0.40 / 0.45");

    let ospm = p.ospm_folded().expect("Table VI folds");
    let nas_net = p.nas_net_folded().expect("Table VI folds");
    println!("\nHierarchical folds (RBD → SIMPLE_COMPONENT, Fig. 5):");
    println!(
        "  OSPM (OS ⊕ PM series)      : MTTF {:10.2} h, MTTR {:6.3} h, A = {:.6}",
        ospm.mttf_hours,
        ospm.mttr_hours,
        ospm.availability()
    );
    println!(
        "  NAS_NET (switch⊕router⊕NAS): MTTF {:10.0} h, MTTR {:6.3} h, A = {:.6}",
        nas_net.mttf_hours,
        nas_net.mttr_hours,
        nas_net.availability()
    );
}
