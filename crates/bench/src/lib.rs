//! Shared helpers for the experiment regenerators and ablation binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the DSN'13 paper
//! (see `DESIGN.md` §4 for the index); this library holds the paper's
//! published reference values and small formatting utilities so every
//! binary prints paper-vs-measured side by side.

/// A Table VII row as published in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Row label (abbreviated).
    pub name: &'static str,
    /// Availability as printed in the paper.
    pub availability: f64,
    /// Number of nines as printed in the paper.
    pub nines: f64,
}

/// The paper's Table VII, verbatim.
pub const PAPER_TABLE_VII: [PaperRow; 8] = [
    PaperRow { name: "Cloud system with one machine", availability: 0.9842914, nines: 1.80 },
    PaperRow {
        name: "Cloud system with two machines in one data center",
        availability: 0.9899101,
        nines: 1.99,
    },
    PaperRow {
        name: "Cloud system with four machines in one data center",
        availability: 0.9900631,
        nines: 2.00,
    },
    PaperRow {
        name: "Baseline architecture: Rio de janeiro - Brasilia",
        availability: 0.9997317,
        nines: 3.57,
    },
    PaperRow {
        name: "Baseline architecture: Rio de janeiro - Recife",
        availability: 0.9995968,
        nines: 3.39,
    },
    PaperRow {
        name: "Baseline architecture: Rio de janeiro - NewYork",
        availability: 0.9987753,
        nines: 2.91,
    },
    PaperRow {
        name: "Baseline architecture: Rio de janeiro - Calcutta",
        availability: 0.9977486,
        nines: 2.64,
    },
    PaperRow {
        name: "Baseline architecture: Rio de janeiro - Tokio",
        availability: 0.9972643,
        nines: 2.56,
    },
];

/// Prints a horizontal rule sized for the standard table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a ratio as a signed percentage string.
pub fn pct_delta(measured: f64, paper: f64) -> String {
    format!("{:+.3}%", (measured - paper) / paper * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_consistent_with_nines_definition() {
        for row in PAPER_TABLE_VII {
            let nines = -(1.0 - row.availability).log10();
            assert!(
                (nines - row.nines).abs() < 0.02,
                "{}: printed nines {} vs derived {nines}",
                row.name,
                row.nines
            );
        }
    }

    #[test]
    fn paper_rows_ordered_single_dc_then_two_dc() {
        assert!(PAPER_TABLE_VII[0].availability < PAPER_TABLE_VII[1].availability);
        assert!(PAPER_TABLE_VII[1].availability < PAPER_TABLE_VII[2].availability);
        // Two-DC rows decrease with distance.
        for w in PAPER_TABLE_VII[3..].windows(2) {
            assert!(w[0].availability > w[1].availability);
        }
    }

    #[test]
    fn pct_delta_formats() {
        assert_eq!(pct_delta(1.01, 1.0), "+1.000%");
    }
}
