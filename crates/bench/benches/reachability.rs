//! Criterion bench: tangible reachability-graph generation throughput,
//! including vanishing-marking elimination.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtc_petri::{explore, IntExpr, PetriNet, PetriNetBuilder, ReachOptions, ServerSemantics};
use std::time::Duration;

/// A closed tandem network of `stations` queues sharing `tokens` jobs —
/// state space C(tokens + stations - 1, stations - 1).
fn tandem(stations: usize, tokens: u32) -> PetriNet {
    let mut b = PetriNetBuilder::new();
    let places: Vec<_> = (0..stations)
        .map(|i| b.place(format!("Q{i}"), if i == 0 { tokens } else { 0 }))
        .collect();
    for i in 0..stations {
        let next = places[(i + 1) % stations];
        b.timed(format!("S{i}"), 1.0 + i as f64 * 0.3, ServerSemantics::Single)
            .input(places[i])
            .output(next)
            .done();
    }
    b.build().expect("valid tandem")
}

/// Tandem with immediate routing stages between queues (stresses the
/// vanishing eliminator).
fn tandem_with_routing(stations: usize, tokens: u32) -> PetriNet {
    let mut b = PetriNetBuilder::new();
    let queues: Vec<_> = (0..stations)
        .map(|i| b.place(format!("Q{i}"), if i == 0 { tokens } else { 0 }))
        .collect();
    let gates: Vec<_> = (0..stations).map(|i| b.place(format!("G{i}"), 0)).collect();
    for i in 0..stations {
        b.timed(format!("S{i}"), 1.0, ServerSemantics::Single)
            .input(queues[i])
            .output(gates[i])
            .done();
        // Weighted fork back into two destinations.
        let a = queues[(i + 1) % stations];
        let c = queues[(i + 2) % stations];
        b.immediate_weighted(format!("RA{i}"), 3.0, 0).input(gates[i]).output(a).done();
        b.immediate_weighted(format!("RB{i}"), 1.0, 0).input(gates[i]).output(c).done();
    }
    b.build().expect("valid routed tandem")
}

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);

    for &(stations, tokens) in &[(4usize, 8u32), (5, 10), (6, 10)] {
        let net = tandem(stations, tokens);
        group.bench_with_input(
            BenchmarkId::new("tandem", format!("{stations}x{tokens}")),
            &net,
            |b, net| b.iter(|| explore(net, &ReachOptions::default()).expect("explores")),
        );
    }
    for &(stations, tokens) in &[(4usize, 6u32), (5, 6)] {
        let net = tandem_with_routing(stations, tokens);
        group.bench_with_input(
            BenchmarkId::new("tandem_vanishing", format!("{stations}x{tokens}")),
            &net,
            |b, net| b.iter(|| explore(net, &ReachOptions::default()).expect("explores")),
        );
    }
    group.finish();
}

fn bench_metric_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("metric_eval");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    let net = tandem(5, 10);
    let graph = explore(&net, &ReachOptions::default()).expect("explores");
    let sol = graph.solve().expect("solves");
    let q0 = net.place("Q0").expect("place");
    let q1 = net.place("Q1").expect("place");
    let expr = IntExpr::tokens(q0).ge(3).and(IntExpr::tokens(q1).le(2));
    group.bench_function("probability_expr", |b| b.iter(|| sol.probability(&expr)));
    group.bench_function("expected_tokens", |b| b.iter(|| sol.expected_tokens(q0)));
    group.finish();
}

criterion_group!(benches, bench_exploration, bench_metric_evaluation);
criterion_main!(benches);
