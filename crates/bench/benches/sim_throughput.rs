//! Criterion bench: discrete-event simulator throughput (simulated hours
//! per wall-clock second) on nets with and without immediate transitions.

use criterion::{criterion_group, criterion_main, Criterion};
use dtc_petri::{IntExpr, PetriNetBuilder, ServerSemantics};
use dtc_sim::{SimConfig, Simulator};
use std::time::Duration;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);

    // Repairable component pair (pure timed net).
    {
        let mut b = PetriNetBuilder::new();
        let on1 = b.place("ON1", 1);
        let off1 = b.place("OFF1", 0);
        let on2 = b.place("ON2", 1);
        let off2 = b.place("OFF2", 0);
        b.timed_delay("F1", 1000.0, ServerSemantics::Single).input(on1).output(off1).done();
        b.timed_delay("R1", 10.0, ServerSemantics::Single).input(off1).output(on1).done();
        b.timed_delay("F2", 500.0, ServerSemantics::Single).input(on2).output(off2).done();
        b.timed_delay("R2", 5.0, ServerSemantics::Single).input(off2).output(on2).done();
        let net = b.build().expect("builds");
        let expr = IntExpr::tokens(on1).gt(0).and(IntExpr::tokens(on2).gt(0));
        let cfg = SimConfig {
            warmup: 100.0,
            horizon: 50_000.0,
            replications: 2,
            seed: 1,
            confidence: 0.95,
        };
        group.bench_function("two_components_50kh", |bch| {
            let sim = Simulator::new(&net).expect("sim");
            bch.iter(|| sim.steady_probability(&expr, &cfg).expect("estimates"))
        });
    }

    // Queue with immediate routing (stresses the settle loop).
    {
        let mut b = PetriNetBuilder::new();
        let q = b.place("Q", 0);
        let gate = b.place("GATE", 0);
        let pa = b.place("PA", 0);
        let pb = b.place("PB", 0);
        b.timed("ARR", 2.0, ServerSemantics::Single).output(q).inhibitor(q, 20).done();
        b.timed("SRV", 3.0, ServerSemantics::Single).input(q).output(gate).done();
        b.immediate_weighted("RA", 1.0, 0).input(gate).output(pa).done();
        b.immediate_weighted("RB", 3.0, 0).input(gate).output(pb).done();
        b.timed("DA", 5.0, ServerSemantics::Single).input(pa).done();
        b.timed("DB", 5.0, ServerSemantics::Single).input(pb).done();
        let net = b.build().expect("builds");
        let expr = IntExpr::tokens(q).ge(5);
        let cfg = SimConfig {
            warmup: 50.0,
            horizon: 20_000.0,
            replications: 2,
            seed: 2,
            confidence: 0.95,
        };
        group.bench_function("queue_with_routing_20kh", |bch| {
            let sim = Simulator::new(&net).expect("sim");
            bch.iter(|| sim.steady_probability(&expr, &cfg).expect("estimates"))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
