//! Criterion bench: RBD evaluation — availability, folding, cut sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtc_rbd::{fold, minimal_cut_sets, mttf_non_repairable, Block};
use std::time::Duration;

fn k_of_n_block(n: usize) -> Block {
    // Component availability ~0.7: reliable enough to be realistic, weak
    // enough that k-of-n Birnbaum differences stay far from the f64
    // cancellation floor even at n = 256.
    Block::k_of_n(
        n / 2 + 1,
        (0..n).map(|i| Block::exponential(format!("C{i}"), 20.0 + i as f64, 8.0)),
    )
}

fn layered(width: usize, depth: usize) -> Block {
    let mut layer: Vec<Block> = (0..width)
        .map(|i| Block::exponential(format!("L0_{i}"), 500.0 + i as f64 * 10.0, 4.0))
        .collect();
    for d in 1..depth {
        layer = (0..width)
            .map(|i| {
                if (d + i) % 2 == 0 {
                    Block::series(vec![layer[i % layer.len()].clone(), layer[(i + 1) % layer.len()].clone()])
                } else {
                    Block::parallel(vec![layer[i % layer.len()].clone(), layer[(i + 1) % layer.len()].clone()])
                }
            })
            .collect();
    }
    Block::series(layer)
}

fn bench_availability(c: &mut Criterion) {
    let mut group = c.benchmark_group("rbd_availability");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[8usize, 64, 256] {
        let block = k_of_n_block(n);
        group.bench_with_input(BenchmarkId::new("k_of_n", n), &block, |b, blk| {
            b.iter(|| blk.availability())
        });
    }
    let deep = layered(6, 5);
    group.bench_function("layered_6x5", |b| b.iter(|| deep.availability()));
    group.finish();
}

fn bench_fold_and_mttf(c: &mut Criterion) {
    let mut group = c.benchmark_group("rbd_fold");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    for &n in &[8usize, 32] {
        let block = k_of_n_block(n);
        group.bench_with_input(BenchmarkId::new("frequency_duration", n), &block, |b, blk| {
            b.iter(|| fold(blk).expect("folds"))
        });
    }
    let par = Block::parallel((0..3).map(|i| Block::exponential(format!("P{i}"), 900.0, 10.0)));
    group.bench_function("mttf_numeric_integration", |b| {
        b.iter(|| mttf_non_repairable(&par).expect("integrates"))
    });
    group.finish();
}

fn bench_cut_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("rbd_cut_sets");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    for &n in &[6usize, 10] {
        let block = k_of_n_block(n);
        group.bench_with_input(BenchmarkId::new("k_of_n", n), &block, |b, blk| {
            b.iter(|| minimal_cut_sets(blk))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_availability, bench_fold_and_mttf, bench_cut_sets);
criterion_main!(benches);
