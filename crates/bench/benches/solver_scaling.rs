//! Criterion bench: steady-state solver scaling with chain size.
//!
//! Birth–death chains are the canonical scalable CTMC; sizes span the range
//! the case-study models produce. Compares Gauss–Seidel against the dense
//! direct solver (small sizes only) and the power method.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtc_markov::{Ctmc, CtmcBuilder, Method, SolverOptions};
use std::time::Duration;

fn birth_death(n: usize) -> Ctmc {
    let mut b = CtmcBuilder::new(n);
    for i in 0..n - 1 {
        b.rate(i, i + 1, 1.0 + (i % 7) as f64 * 0.25);
        b.rate(i + 1, i, 2.0 + (i % 5) as f64 * 0.5);
    }
    b.build().expect("valid chain")
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady_state");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);

    for &n in &[64usize, 512, 4096] {
        let chain = birth_death(n);
        group.bench_with_input(BenchmarkId::new("gauss_seidel", n), &chain, |b, ch| {
            b.iter(|| {
                ch.steady_state_with(Method::GaussSeidel, &SolverOptions::default())
                    .expect("converges")
            })
        });
        group.bench_with_input(BenchmarkId::new("power", n), &chain, |b, ch| {
            let opts = SolverOptions { tolerance: 1e-10, ..Default::default() };
            b.iter(|| ch.steady_state_with(Method::Power, &opts).expect("converges"))
        });
        if n <= 512 {
            group.bench_with_input(BenchmarkId::new("direct", n), &chain, |b, ch| {
                b.iter(|| {
                    ch.steady_state_with(Method::Direct, &SolverOptions::default())
                        .expect("solves")
                })
            });
        }
    }
    group.finish();
}

fn bench_transient(c: &mut Criterion) {
    let mut group = c.benchmark_group("transient_uniformization");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[64usize, 512] {
        let chain = birth_death(n);
        let pi0: Vec<f64> = {
            let mut v = vec![0.0; n];
            v[0] = 1.0;
            v
        };
        group.bench_with_input(BenchmarkId::new("t=10", n), &chain, |b, ch| {
            b.iter(|| ch.transient(&pi0, 10.0).expect("transient"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_transient);
criterion_main!(benches);
