//! Criterion bench: the end-to-end paper pipeline — spec → GSPN →
//! reachability → CTMC solve → metrics — on the Table VII single-DC
//! architectures (the two-DC models are benchmarked once per run by the
//! `table7`/`fig7` binaries; they are too heavy for statistical sampling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtc_core::prelude::*;
use std::time::Duration;

fn bench_pipeline(c: &mut Criterion) {
    let cs = CaseStudy::paper();
    let mut group = c.benchmark_group("end_to_end");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);

    for machines in [1usize, 2, 4] {
        let spec = cs.single_dc_spec(machines);
        group.bench_with_input(
            BenchmarkId::new("single_dc", machines),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let model = CloudModel::build(&spec).expect("builds");
                    model.evaluate(&EvalOptions::default()).expect("evaluates")
                })
            },
        );
    }

    // Separate the phases for the 4-PM architecture.
    let model = CloudModel::build(&cs.single_dc_spec(4)).expect("builds");
    group.bench_function("explore_only_4pm", |b| {
        b.iter(|| model.state_space(&EvalOptions::default()).expect("explores"))
    });
    let graph = model.state_space(&EvalOptions::default()).expect("explores");
    group.bench_function("solve_only_4pm", |b| {
        b.iter(|| model.evaluate_on(&graph, &EvalOptions::default()).expect("solves"))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
