//! `DTC_LOG=debug` smoke over a real `dtc serve` subprocess: every stderr
//! line must be one valid JSON object with `ts_ms`/`level`/`target`/`msg`
//! fields, the startup line announces the bound address, and per-request
//! debug lines carry the request's trace ID — including one supplied by
//! the client.

use dtc_engine::value::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

/// Kills the server on every exit path, panicking or not.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn one_request(addr: &str, extra_headers: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let head = format!(
        "GET /healthz HTTP/1.1\r\nhost: test\r\n{extra_headers}connection: close\r\n\r\n"
    );
    stream.write_all(head.as_bytes()).expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    String::from_utf8_lossy(&raw).to_string()
}

#[test]
fn debug_log_lines_are_json_and_carry_trace_ids() {
    let child = Command::new(env!("CARGO_BIN_EXE_dtc"))
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "1"])
        .env("DTC_LOG", "debug")
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dtc serve");
    let mut child = KillOnDrop(child);
    let stderr = child.0.stderr.take().expect("stderr piped");

    // Ship stderr lines over a channel so the test can time out instead of
    // blocking forever if the server never says anything.
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let next_line = || -> String {
        rx.recv_timeout(Duration::from_secs(60)).expect("a log line within 60s")
    };

    // Every line the server emits must be one self-contained JSON object
    // with the standard envelope.
    let parse = |line: &str| -> Value {
        let doc = Value::from_json(line)
            .unwrap_or_else(|e| panic!("stderr line is not JSON ({e}): {line:?}"));
        for key in ["ts_ms", "level", "target", "msg"] {
            assert!(doc.get(key).is_some(), "log line lacks {key:?}: {line:?}");
        }
        assert_eq!(doc.get("target").and_then(Value::as_str), Some("dtc-serve"));
        doc
    };

    // The startup line announces the bound (ephemeral) address at info.
    let addr = loop {
        let line = next_line();
        let doc = parse(&line);
        if doc.get("msg").and_then(Value::as_str) == Some("listening") {
            assert_eq!(doc.get("level").and_then(Value::as_str), Some("info"));
            break doc
                .get("addr")
                .and_then(Value::as_str)
                .expect("listening line carries addr")
                .to_string();
        }
    };

    // A plain request logs a debug line with a generated trace id…
    let response = one_request(&addr, "");
    assert!(response.starts_with("HTTP/1.1 200 "), "{response}");
    let logged_id = loop {
        let doc = parse(&next_line());
        if doc.get("msg").and_then(Value::as_str) == Some("request") {
            assert_eq!(doc.get("level").and_then(Value::as_str), Some("debug"));
            assert_eq!(doc.get("path").and_then(Value::as_str), Some("/healthz"));
            assert_eq!(doc.get("status").and_then(Value::as_i64), Some(200));
            break doc
                .get("trace_id")
                .and_then(Value::as_str)
                .expect("request line carries trace_id")
                .to_string();
        }
    };
    assert_eq!(logged_id.len(), 32);
    assert!(logged_id.bytes().all(|b| b.is_ascii_hexdigit()));

    // …and a client-supplied X-Dtc-Trace-Id shows up verbatim in the log.
    let custom = "0123456789abcdef0123456789abcdef";
    let response = one_request(&addr, &format!("x-dtc-trace-id: {custom}\r\n"));
    assert!(response.starts_with("HTTP/1.1 200 "), "{response}");
    loop {
        let doc = parse(&next_line());
        if doc.get("msg").and_then(Value::as_str) == Some("request")
            && doc.get("trace_id").and_then(Value::as_str) == Some(custom)
        {
            break;
        }
    }
}
