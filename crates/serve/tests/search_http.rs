//! `POST /v2/search` end to end, including the golden pin: the bundled
//! search7 space's cheapest-four-nines pick, bit-identical between the
//! real `dtc search` binary and the HTTP route.
//!
//! The CLI run solves the whole space cold into a temp cache store; the
//! server then opens the same store, so the HTTP pass is answered
//! entirely from cache — which is itself an acceptance claim, asserted
//! through `/v1/stats` deltas rather than wall clock.

use dtc_engine::value::Value;
use dtc_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::Command;
use std::time::Duration;

fn config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        queue: 64,
        eval_threads: 1,
        cache_path: None,
        cache_cap: None,
    }
}

/// One connection-per-request HTTP exchange; returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let payload = body.unwrap_or("");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(payload.as_bytes()).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn int_at(v: &Value, a: &str, b: &str) -> i64 {
    v.get(a)
        .and_then(|x| x.get(b))
        .and_then(|x| x.as_i64())
        .unwrap_or_else(|| panic!("{a}.{b} missing in {}", v.to_json()))
}

/// The golden pin. search7's `[search]` section asks for the cheapest
/// four-nines design; only the active-active tier crosses 0.9999, and
/// only at its best WAN quality and rarest disasters — so the pick is a
/// fixed, named candidate. The CLI's `--format json` stdout and the
/// `POST /v2/search` response body must agree byte for byte.
#[test]
fn search7_cheapest_four_nines_pick_is_pinned_across_cli_and_http() {
    const PICK: &str = "aa-Brasilia[alpha=0.9,disaster_years=3200]";

    let dir = std::env::temp_dir().join(format!("dtc-search-http-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("search7-cache.json");
    let _ = std::fs::remove_file(&store);

    // 1. The real binary, cold: solves the whole 213-candidate space and
    //    persists every solve (break-even probes included) to the store.
    let output = Command::new(env!("CARGO_BIN_EXE_dtc"))
        .args(["search", "search7", "--format", "json", "--cache"])
        .arg(&store)
        .output()
        .expect("dtc binary runs");
    assert!(
        output.status.success(),
        "dtc search failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let cli_bytes = String::from_utf8(output.stdout).expect("UTF-8 stdout");
    let cli_doc = Value::from_json(&cli_bytes).expect("CLI emits valid JSON");
    assert_eq!(cli_doc.get("kind").and_then(|k| k.as_str()), Some("design_search"));
    assert_eq!(int_at(&cli_doc, "summary", "candidates"), 213, "the full bundled space ran");
    assert_eq!(
        cli_doc.get("recommendation").and_then(|r| r.get("name")).and_then(|n| n.as_str()),
        Some(PICK),
        "cheapest four-nines pick drifted: {}",
        cli_doc.get("recommendation").map(|r| r.to_json()).unwrap_or_default()
    );
    let rec_avail = cli_doc
        .get("recommendation")
        .and_then(|r| r.get("availability"))
        .and_then(|a| a.as_f64())
        .expect("recommendation availability");
    assert!(rec_avail >= 0.9999, "the pick must actually meet the floor: {rec_avail}");

    // 2. The HTTP route over the same store: POST the bundled catalog as
    //    a bare document (it carries its own [search] section).
    let mut cfg = config();
    cfg.cache_path = Some(store.clone());
    let server = Server::start(&cfg).expect("server starts");
    let addr = server.addr();
    let body = dtc_search::catalogs::search7().to_value().to_json();
    let (status, http_bytes) = request(addr, "POST", "/v2/search", Some(&body));
    assert_eq!(status, 200, "{http_bytes}");
    assert_eq!(http_bytes, cli_bytes, "CLI and HTTP must return byte-identical JSON");

    // 3. Cache-stats deltas prove the HTTP pass was answered entirely
    //    from the CLI run's store: zero misses, every candidate and every
    //    break-even probe a hit, and the batch-dedup counters exposed.
    let stats_body = request(addr, "GET", "/v1/stats", None).1;
    let stats = Value::from_json(&stats_body).expect("stats JSON");
    assert_eq!(
        int_at(&stats, "cache", "misses"),
        0,
        "warm search must not solve: {stats_body}"
    );
    assert!(int_at(&stats, "cache", "hits") >= 213, "{stats_body}");
    assert!(int_at(&stats, "cache", "batch_candidates") >= 213, "{stats_body}");
    assert!(
        int_at(&stats, "cache", "batch_distinct")
            <= int_at(&stats, "cache", "batch_candidates"),
        "{stats_body}"
    );

    // 4. Idempotence over HTTP: an immediate re-POST is byte-identical
    //    and still adds no misses.
    let (status, again) = request(addr, "POST", "/v2/search", Some(&body));
    assert_eq!(status, 200);
    assert_eq!(again, http_bytes, "re-POST must be byte-identical");
    let stats = Value::from_json(&request(addr, "GET", "/v1/stats", None).1).unwrap();
    assert_eq!(int_at(&stats, "cache", "misses"), 0);

    server.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_file(&store);
}

/// Route/error shapes for `/v2/search`, and the shared-parser behavior on
/// `/v2/evaluate`: a bare catalog document and the `{"catalog": …}`
/// envelope are both accepted, with one set of error messages.
#[test]
fn search_route_errors_and_shared_catalog_parser() {
    let server = Server::start(&config()).expect("server starts");
    let addr = server.addr();

    // A fast two-candidate space with an envelope-level [search] override.
    let catalog = r#"{
        "catalog": {"name": "mini"},
        "scenario": [
            {"name": "solo", "kind": "custom", "min_running_vms": 1,
             "disaster_years": [100.0],
             "dc": [{"site": "Rio de Janeiro", "hot_pms": 1, "vms_per_pm": 1,
                     "pm_capacity": 1, "backup_link": false}]},
            {"name": "spare", "kind": "custom", "min_running_vms": 1,
             "disaster_years": [100.0],
             "dc": [{"site": "Rio de Janeiro", "hot_pms": 1, "warm_pms": 1,
                     "vms_per_pm": 1, "pm_capacity": 1, "backup_link": false}]}
        ]
    }"#;

    // No [search] section and no envelope override → 400 naming the fix.
    let (status, body) = request(addr, "POST", "/v2/search", Some(catalog));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("[search]"), "{body}");

    // Envelope: same document plus a search config.
    let envelope = format!(
        "{{\"catalog\":{catalog},\"search\":{{\"availability_floor\":0.95,\"break_even\":false}}}}"
    );
    let (status, body) = request(addr, "POST", "/v2/search", Some(&envelope));
    assert_eq!(status, 200, "{body}");
    let doc = Value::from_json(&body).expect("search JSON");
    assert_eq!(int_at(&doc, "summary", "candidates"), 2);
    assert_eq!(
        doc.get("search").and_then(|s| s.get("availability_floor")).and_then(|f| f.as_f64()),
        Some(0.95)
    );
    let frontier = doc.get("frontier").and_then(|f| f.as_array()).expect("frontier");
    assert!(!frontier.is_empty());
    assert_eq!(doc.get("break_even").and_then(|b| b.as_array()).map(|b| b.len()), Some(0));

    // Malformed search override → 400 through the shared parser.
    let bad =
        format!("{{\"catalog\":{catalog},\"search\":{{\"availability_floor\":\"high\"}}}}");
    let (status, body) = request(addr, "POST", "/v2/search", Some(&bad));
    assert_eq!(status, 400);
    assert!(body.contains("availability_floor"), "{body}");

    // Wrong method and non-JSON bodies share the server's error shapes.
    let (status, _) = request(addr, "GET", "/v2/search", None);
    assert_eq!(status, 405);
    let (status, body) = request(addr, "POST", "/v2/search", Some("not json"));
    assert_eq!(status, 400);
    assert!(body.contains("body does not parse"), "{body}");

    // Satellite: /v2/evaluate accepts the same bare catalog document…
    let (status, bare_eval) = request(addr, "POST", "/v2/evaluate", Some(catalog));
    assert_eq!(status, 200, "{bare_eval}");
    let bare_doc = Value::from_json(&bare_eval).expect("evaluate JSON");
    let results = bare_doc.get("results").and_then(|r| r.as_array()).expect("results");
    assert_eq!(results.len(), 2);

    // …and the envelope form of the identical document returns the same
    // report unions (timings and cache provenance differ; numbers must
    // not — the second POST is a cache hit on the first's solves).
    let wrapped = format!("{{\"catalog\":{catalog}}}");
    let (status, env_eval) = request(addr, "POST", "/v2/evaluate", Some(&wrapped));
    assert_eq!(status, 200, "{env_eval}");
    let env_doc = Value::from_json(&env_eval).unwrap();
    let unions = |doc: &Value| -> Vec<String> {
        doc.get("results")
            .and_then(|r| r.as_array())
            .expect("results")
            .iter()
            .map(|r| {
                format!(
                    "{}:{}",
                    r.get("scenario").and_then(|s| s.as_str()).unwrap_or(""),
                    r.get("analyses").map(|a| a.to_json()).unwrap_or_default()
                )
            })
            .collect()
    };
    assert_eq!(
        unions(&env_doc),
        unions(&bare_doc),
        "bare and enveloped documents are the same request"
    );

    server.shutdown().expect("clean shutdown");
}
