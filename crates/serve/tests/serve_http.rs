//! End-to-end integration over real TCP: an ephemeral-port server,
//! concurrent identical `POST /v1/evaluate` requests whose stats prove
//! single-flight solving, route/error behavior, keep-alive, the eviction
//! cap, and a `loadgen` run reporting RPS and latency percentiles.

use dtc_engine::value::Value;
use dtc_serve::{loadgen, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        queue: 64,
        eval_threads: 1,
        cache_path: None,
        cache_cap: None,
    }
}

/// One connection-per-request HTTP exchange; returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let payload = body.unwrap_or("");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(payload.as_bytes()).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn get_json(addr: SocketAddr, path: &str) -> Value {
    let (status, body) = request(addr, "GET", path, None);
    assert_eq!(status, 200, "GET {path}: {body}");
    Value::from_json(&body).expect("valid JSON")
}

fn int_at(v: &Value, a: &str, b: &str) -> i64 {
    v.get(a)
        .and_then(|x| x.get(b))
        .and_then(|x| x.as_i64())
        .unwrap_or_else(|| panic!("{a}.{b} missing in {}", v.to_json()))
}

#[test]
fn concurrent_identical_posts_are_single_flight_and_loadgen_reports() {
    const CLIENTS: usize = 8;
    let server = Server::start(&config()).expect("server starts");
    let addr = server.addr();
    let catalog = loadgen::tiny_catalog_json();

    // Fire the same catalog from 8 threads at once over real sockets.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let (barrier, catalog) = (Arc::clone(&barrier), catalog.clone());
            std::thread::spawn(move || {
                barrier.wait();
                request(addr, "POST", "/v1/evaluate", Some(&catalog))
            })
        })
        .collect();
    let responses: Vec<(u16, String)> =
        handles.into_iter().map(|h| h.join().expect("client thread")).collect();

    // Every response is a 200 with the same correct report.
    let mut reports = Vec::new();
    for (status, body) in &responses {
        assert_eq!(*status, 200, "{body}");
        let doc = Value::from_json(body).expect("valid JSON");
        let results = doc.get("results").and_then(|r| r.as_array()).expect("results array");
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("status").and_then(|s| s.as_str()), Some("ok"));
        let report = results[0].get("report").expect("report present").clone();
        let availability =
            report.get("availability").and_then(|a| a.as_f64()).expect("availability");
        assert!((0.0..=1.0).contains(&availability));
        reports.push(report);
    }
    for r in &reports[1..] {
        assert_eq!(
            r.to_json(),
            reports[0].to_json(),
            "identical requests must yield identical reports"
        );
    }

    // The duplicated spec was solved exactly once: one miss, the other
    // seven calls were hits (stored entry or joined in-flight solve).
    let stats = get_json(addr, "/v1/stats");
    assert_eq!(int_at(&stats, "cache", "misses"), 1, "single-flight: one solve");
    assert_eq!(int_at(&stats, "cache", "hits"), (CLIENTS - 1) as i64);
    assert_eq!(int_at(&stats, "cache", "entries"), 1);
    assert_eq!(int_at(&stats, "server", "evaluations"), CLIENTS as i64);

    let keys = get_json(addr, "/v1/cache/keys");
    assert_eq!(keys.get("count").and_then(|c| c.as_i64()), Some(1));

    // loadgen against the same live server: everything is now a cache
    // hit, so this measures the HTTP + cache path end to end.
    let opts = loadgen::Options {
        addr: addr.to_string(),
        clients: 4,
        requests_per_client: 25,
        ..loadgen::Options::default()
    };
    let summary = loadgen::run(&opts);
    println!("{}", loadgen::render(&opts, &summary));
    assert_eq!(summary.total, 100);
    assert_eq!(summary.ok, 100, "no rejections below queue capacity");
    assert!(summary.rps > 0.0);
    assert!(summary.p50_ms > 0.0);
    assert!(summary.p95_ms >= summary.p50_ms);
    assert!(summary.p99_ms >= summary.p95_ms);

    // Still exactly one solve ever — the whole loadgen run hit the cache.
    let stats = get_json(addr, "/v1/stats");
    assert_eq!(int_at(&stats, "cache", "misses"), 1);
    assert_eq!(int_at(&stats, "queue", "rejected"), 0);

    server.shutdown().expect("clean shutdown");
}

#[test]
fn v2_runs_multi_analysis_set_from_one_state_space_construction() {
    let server = Server::start(&config()).expect("server starts");
    let addr = server.addr();

    let body = format!(
        "{{\"catalog\":{},\"analyses\":[\"steady_state\",\"mttsf\",\"capacity_thresholds\"]}}",
        loadgen::tiny_catalog_json()
    );
    let (status, text) = request(addr, "POST", "/v2/evaluate", Some(&body));
    assert_eq!(status, 200, "{text}");
    let doc = Value::from_json(&text).expect("valid JSON");

    // The response names the analysis set it ran.
    let kinds: Vec<&str> = doc
        .get("analyses")
        .and_then(|a| a.as_array())
        .expect("analyses array")
        .iter()
        .filter_map(|k| k.as_str())
        .collect();
    assert_eq!(kinds, ["steady_state", "mttsf", "capacity_thresholds"]);

    // One scenario, all three reports, each physically sensible.
    let results = doc.get("results").and_then(|r| r.as_array()).expect("results array");
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].get("status").and_then(|s| s.as_str()), Some("ok"));
    let analyses = results[0].get("analyses").and_then(|a| a.as_array()).expect("report union");
    assert_eq!(analyses.len(), 3);
    let availability =
        analyses[0].get("availability").and_then(|a| a.as_f64()).expect("steady availability");
    assert!((0.0..=1.0).contains(&availability));
    let mttsf = analyses[1].get("hours").and_then(|h| h.as_f64()).expect("mttsf hours");
    assert!(mttsf > 0.0, "mttsf {mttsf}");
    let curve: Vec<f64> = analyses[2]
        .get("availability")
        .and_then(|c| c.as_array())
        .expect("capacity curve")
        .iter()
        .filter_map(|x| x.as_f64())
        .collect();
    assert_eq!(curve.len(), 2, "1 VM -> thresholds k = 0, 1");
    assert!((curve[0] - 1.0).abs() < 1e-12, "k=0 always satisfied");
    assert!((curve[1] - availability).abs() < 1e-10, "k=1 equals steady availability");
    // The v1-compatible steady field rides along.
    assert_eq!(
        results[0].get("report").and_then(|r| r.get("availability")).and_then(|a| a.as_f64()),
        Some(availability)
    );

    // All three metrics came from ONE state-space construction: a single
    // cache miss (one solve), zero hits so far.
    let stats = get_json(addr, "/v1/stats");
    assert_eq!(int_at(&stats, "cache", "misses"), 1, "one solve for the whole set");
    assert_eq!(int_at(&stats, "cache", "entries"), 1);

    // Re-POSTing the same set is a pure cache hit…
    let (status, text2) = request(addr, "POST", "/v2/evaluate", Some(&body));
    assert_eq!(status, 200);
    let doc2 = Value::from_json(&text2).unwrap();
    let union_of = |d: &Value| {
        d.get("results").unwrap().as_array().unwrap()[0].get("analyses").unwrap().to_json()
    };
    assert_eq!(union_of(&doc2), union_of(&doc), "cached union is bit-identical");
    assert_eq!(
        doc2.get("results").unwrap().as_array().unwrap()[0]
            .get("source")
            .and_then(|s| s.as_str()),
        Some("cache")
    );
    let stats = get_json(addr, "/v1/stats");
    assert_eq!(int_at(&stats, "cache", "misses"), 1);
    assert_eq!(int_at(&stats, "cache", "hits"), 1);

    // …while the analyses fallback (omitted field → catalog's [analyses]
    // section → steady state) is a *different* cache identity.
    let v1_style = format!("{{\"catalog\":{}}}", loadgen::tiny_catalog_json());
    let (status, _) = request(addr, "POST", "/v2/evaluate", Some(&v1_style));
    assert_eq!(status, 200);
    let stats = get_json(addr, "/v1/stats");
    assert_eq!(int_at(&stats, "cache", "misses"), 2, "steady-only set solves separately");

    // Bad requests are 400s.
    let (status, text) = request(addr, "POST", "/v2/evaluate", Some("{\"analyses\":[]}"));
    assert_eq!(status, 400);
    assert!(text.contains("catalog"), "{text}");
    let bad_kind =
        format!("{{\"catalog\":{},\"analyses\":[\"wat\"]}}", loadgen::tiny_catalog_json());
    let (status, text) = request(addr, "POST", "/v2/evaluate", Some(&bad_kind));
    assert_eq!(status, 400);
    assert!(text.contains("wat"), "{text}");

    server.shutdown().expect("clean shutdown");
}

#[test]
fn v2_sensitivity_rides_one_cache_miss_and_matches_the_cli_pipeline() {
    let server = Server::start(&config()).expect("server starts");
    let addr = server.addr();

    let body = format!(
        "{{\"catalog\":{},\"analyses\":[\"steady_state\",\"sensitivity\"]}}",
        loadgen::tiny_catalog_json()
    );
    let (status, text) = request(addr, "POST", "/v2/evaluate", Some(&body));
    assert_eq!(status, 200, "{text}");
    let doc = Value::from_json(&text).expect("valid JSON");
    let result = doc.get("results").unwrap().as_array().unwrap()[0].clone();
    assert_eq!(result.get("status").and_then(|s| s.as_str()), Some("ok"));
    let analyses = result.get("analyses").and_then(|a| a.as_array()).expect("report union");
    assert_eq!(analyses.len(), 2);
    assert_eq!(analyses[1].get("kind").and_then(|k| k.as_str()), Some("sensitivity"));
    assert_eq!(analyses[1].get("rel_step").and_then(|r| r.as_f64()), Some(0.05));

    // The tiny one-PM/one-VM architecture has exactly the five core knobs,
    // ranked by |elasticity| descending.
    let rows = analyses[1].get("rows").and_then(|r| r.as_array()).expect("rows");
    assert_eq!(rows.len(), 5, "{text}");
    let elasticities: Vec<f64> =
        rows.iter().map(|r| r.get("elasticity").and_then(|e| e.as_f64()).unwrap()).collect();
    for pair in elasticities.windows(2) {
        assert!(pair[0].abs() >= pair[1].abs(), "ranked strongest-first: {elasticities:?}");
    }
    let keys: Vec<&str> =
        rows.iter().map(|r| r.get("parameter").and_then(|p| p.as_str()).unwrap()).collect();
    assert!(keys.contains(&"ospm_mttf") && keys.contains(&"vm_start"), "{keys:?}");

    // Steady state + the whole sensitivity sweep cost ONE cache miss: the
    // baseline reuses the set's shared steady solve; only perturbed
    // variants were built, and none of that shows up as extra misses.
    let stats = get_json(addr, "/v1/stats");
    assert_eq!(int_at(&stats, "cache", "misses"), 1, "one miss for steady + sensitivity");
    assert_eq!(int_at(&stats, "cache", "entries"), 1);

    // Parity with the CLI: `dtc run --analyses sensitivity` drives the
    // same run_batch pipeline — its report union must be bit-identical to
    // what came over HTTP.
    let catalog =
        dtc_engine::Catalog::from_json_str(&loadgen::tiny_catalog_json()).expect("parses");
    let scenarios = catalog.expand().unwrap();
    let opts = dtc_engine::RunOptions {
        analyses: vec![
            dtc_engine::prelude::AnalysisRequest::SteadyState,
            dtc_engine::prelude::AnalysisRequest::Sensitivity {
                parameters: vec![],
                rel_step: 0.05,
            },
        ],
        ..dtc_engine::RunOptions::default()
    };
    let cache = Arc::new(dtc_engine::EvalCache::in_memory());
    let local = dtc_engine::run_batch(&scenarios, &cache, &opts);
    let local_union: Vec<Value> =
        local.outcomes[0].analyses().iter().map(dtc_engine::analysis_report_to_value).collect();
    assert_eq!(
        Value::Array(local_union).to_json(),
        result.get("analyses").unwrap().to_json(),
        "HTTP and CLI pipelines return identical ranked rows"
    );

    // Re-POSTing is a pure hit with a bit-identical union.
    let (status, text2) = request(addr, "POST", "/v2/evaluate", Some(&body));
    assert_eq!(status, 200);
    let doc2 = Value::from_json(&text2).unwrap();
    assert_eq!(
        doc2.get("results").unwrap().as_array().unwrap()[0].get("analyses").unwrap().to_json(),
        result.get("analyses").unwrap().to_json()
    );
    let stats = get_json(addr, "/v1/stats");
    assert_eq!(int_at(&stats, "cache", "misses"), 1);

    server.shutdown().expect("clean shutdown");
}

#[test]
fn v2_transient_curve_pinned_and_time_points_keep_request_order() {
    // Per-point engine outputs for the tiny loadgen catalog, captured (17
    // significant digits) immediately before the single-pass curve engine
    // replaced the per-point path. The HTTP surface must keep reproducing
    // them.
    #![allow(clippy::excessive_precision)] // 17 digits as captured
    const A24: f64 = 9.88616333757290966e-1;
    const A168: f64 = 9.87592518683237275e-1;
    const A720: f64 = 9.87592518326670277e-1;
    const A8760: f64 = 9.87592518326670388e-1;
    const IA8760: f64 = 9.87606023114894427e-1;
    const TOL: f64 = 1e-12;

    let server = Server::start(&config()).expect("server starts");
    let addr = server.addr();

    // Unsorted `time_points` with a duplicate and a zero: the availability
    // array must follow the REQUEST order (the engine sorts internally,
    // but the response order is the caller's — see docs/HTTP_API.md).
    let body = format!(
        "{{\"catalog\":{},\"analyses\":[\
         {{\"kind\":\"transient\",\"time_points\":[8760.0,24.0,0.0,24.0,720.0,168.0]}},\
         {{\"kind\":\"interval\",\"horizon_hours\":8760.0}}]}}",
        loadgen::tiny_catalog_json()
    );
    let (status, text) = request(addr, "POST", "/v2/evaluate", Some(&body));
    assert_eq!(status, 200, "{text}");
    let doc = Value::from_json(&text).expect("valid JSON");
    let result = doc.get("results").unwrap().as_array().unwrap()[0].clone();
    assert_eq!(result.get("status").and_then(|s| s.as_str()), Some("ok"), "{text}");
    let analyses = result.get("analyses").and_then(|a| a.as_array()).expect("report union");
    assert_eq!(analyses.len(), 2);

    let floats = |v: &Value, key: &str| -> Vec<f64> {
        v.get(key)
            .and_then(|x| x.as_array())
            .unwrap_or_else(|| panic!("{key} missing in {}", v.to_json()))
            .iter()
            .filter_map(|x| x.as_f64())
            .collect()
    };
    assert_eq!(analyses[0].get("kind").and_then(|k| k.as_str()), Some("transient"));
    let echoed = floats(&analyses[0], "time_points");
    assert_eq!(echoed, vec![8760.0, 24.0, 0.0, 24.0, 720.0, 168.0], "request order echoed");
    let got = floats(&analyses[0], "availability");
    let want = [A8760, A24, 1.0, A24, A720, A168];
    assert_eq!(got.len(), want.len());
    for ((g, w), t) in got.iter().zip(&want).zip(&echoed) {
        assert!((g - w).abs() < TOL, "A({t}) drifted: {g:.17e} vs {w:.17e}");
    }
    assert_eq!(got[1], got[3], "duplicate time points yield identical values");
    assert_eq!(analyses[1].get("kind").and_then(|k| k.as_str()), Some("interval"));
    let ia = analyses[1].get("availability").and_then(|a| a.as_f64()).expect("interval value");
    assert!((ia - IA8760).abs() < TOL, "IA(8760) drifted: {ia:.17e}");

    // The whole 6-point curve + SLA window cost ONE cache miss (one
    // state-space construction, one uniformization pass behind it).
    let stats = get_json(addr, "/v1/stats");
    assert_eq!(int_at(&stats, "cache", "misses"), 1, "one miss for the whole curve set");

    // Re-POSTing the identical set is a pure hit with a bit-identical
    // union (the curve round-trips through the store).
    let (status, text2) = request(addr, "POST", "/v2/evaluate", Some(&body));
    assert_eq!(status, 200);
    let doc2 = Value::from_json(&text2).unwrap();
    let union_of = |d: &Value| {
        d.get("results").unwrap().as_array().unwrap()[0].get("analyses").unwrap().to_json()
    };
    assert_eq!(union_of(&doc2), union_of(&doc));
    let stats = get_json(addr, "/v1/stats");
    assert_eq!(int_at(&stats, "cache", "misses"), 1);
    assert_eq!(int_at(&stats, "cache", "hits"), 1);

    server.shutdown().expect("clean shutdown");
}

#[test]
fn model_dot_route_renders_bundled_scenarios() {
    let server = Server::start(&config()).expect("server starts");
    let addr = server.addr();

    // A table7 scenario by its human name, percent-encoded.
    let (status, dot) = request(
        addr,
        "GET",
        "/v2/model/dot?catalog=table7&scenario=Cloud%20system%20with%20one%20machine",
        None,
    );
    assert_eq!(status, 200, "{dot}");
    assert!(dot.starts_with("digraph petri {"), "{}", &dot[..dot.len().min(80)]);
    assert!(dot.contains("OSPM_UP1"), "single-DC model places present");
    assert!(!dot.contains("TRP_12"), "no migration subnet in a one-DC model");

    // A grid-expanded fig7 point: brackets/equals/commas in the name.
    let name = "fig7%5Bsecondary%3DBrasilia%2Calpha%3D0.35%2Cdisaster_years%3D100%5D";
    let (status, dot) = request(addr, "GET", &format!("/v2/model/dot?scenario={name}"), None);
    assert_eq!(status, 200, "{dot}");
    assert!(dot.contains("TRP_12"), "two-DC model has the transmission subnet");
    assert!(dot.contains("BKP_UP"), "backup server present");

    // Error shapes: missing param, unknown catalog, unknown scenario,
    // wrong method.
    let (status, body) = request(addr, "GET", "/v2/model/dot", None);
    assert_eq!(status, 400);
    assert!(body.contains("scenario"), "{body}");
    let (status, body) = request(addr, "GET", "/v2/model/dot?scenario=x&catalog=wat", None);
    assert_eq!(status, 400);
    assert!(body.contains("wat"), "{body}");
    let (status, body) = request(addr, "GET", "/v2/model/dot?scenario=nope", None);
    assert_eq!(status, 404);
    assert!(body.contains("nope"), "{body}");
    let (status, _) = request(addr, "POST", "/v2/model/dot?scenario=x", Some("{}"));
    assert_eq!(status, 405);

    server.shutdown().expect("clean shutdown");
}

#[test]
fn loadgen_mix_exercises_distinct_specs() {
    let server = Server::start(&config()).expect("server starts");
    let addr = server.addr();

    const MIX: usize = 3;
    let opts = loadgen::Options {
        addr: addr.to_string(),
        clients: 3,
        requests_per_client: 4,
        mix: MIX,
        ..loadgen::Options::default()
    };
    let summary = loadgen::run(&opts);
    assert_eq!(summary.total, 12);
    assert_eq!(summary.ok, 12, "all mixed requests succeed");

    // Exactly MIX distinct specs were solved; everything else hit.
    let stats = get_json(addr, "/v1/stats");
    assert_eq!(int_at(&stats, "cache", "misses"), MIX as i64);
    assert_eq!(int_at(&stats, "cache", "entries"), MIX as i64);

    server.shutdown().expect("clean shutdown");
}

#[test]
fn routes_and_error_paths() {
    let server = Server::start(&config()).expect("server starts");
    let addr = server.addr();

    let health = get_json(addr, "/healthz");
    assert_eq!(health.get("status").and_then(|s| s.as_str()), Some("ok"));

    let (status, body) = request(addr, "GET", "/nope", None);
    assert_eq!(status, 404, "{body}");
    let (status, _) = request(addr, "POST", "/healthz", Some("{}"));
    assert_eq!(status, 405);
    let (status, _) = request(addr, "GET", "/v1/evaluate", None);
    assert_eq!(status, 405);

    let (status, body) = request(addr, "POST", "/v1/evaluate", Some("this is not json"));
    assert_eq!(status, 400);
    assert!(body.contains("error"), "{body}");

    // Parses but does not expand: unknown city.
    let bad = r#"{"catalog":{"name":"x"},
                  "scenario":[{"name":"s","kind":"two_dc","secondary":"Oz"}]}"#;
    let (status, body) = request(addr, "POST", "/v1/evaluate", Some(bad));
    assert_eq!(status, 400);
    assert!(body.contains("Oz"), "{body}");

    server.shutdown().expect("clean shutdown");
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let server = Server::start(&config()).expect("server starts");
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let read_one = |stream: &mut TcpStream| -> String {
        // Header-then-body read keyed on content-length, since the
        // connection stays open.
        let mut raw = Vec::new();
        let mut byte = [0u8; 1];
        while !raw.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut byte).expect("header byte");
            raw.push(byte[0]);
        }
        let head = String::from_utf8_lossy(&raw).to_lowercase();
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length:"))
            .and_then(|v| v.trim().parse().ok())
            .expect("content-length header");
        let mut body = vec![0u8; length];
        stream.read_exact(&mut body).expect("body");
        String::from_utf8(body).expect("UTF-8 body")
    };

    for _ in 0..3 {
        stream.write_all(b"GET /healthz HTTP/1.1\r\nhost: test\r\n\r\n").unwrap();
        let body = read_one(&mut stream);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
    }
    drop(stream);

    let stats = get_json(addr, "/v1/stats");
    assert!(int_at(&stats, "server", "requests") >= 3);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn disk_backed_cache_persists_after_evaluation_without_shutdown() {
    let dir = std::env::temp_dir().join(format!("dtc-serve-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("store.json");
    let _ = std::fs::remove_file(&store);

    let mut cfg = config();
    cfg.cache_path = Some(store.clone());
    let server = Server::start(&cfg).expect("server starts");
    let (status, _) =
        request(server.addr(), "POST", "/v1/evaluate", Some(&loadgen::tiny_catalog_json()));
    assert_eq!(status, 200);

    // The store must already hold the solve — a `kill`ed server (the
    // normal way `dtc serve` stops) never reaches shutdown().
    let text = std::fs::read_to_string(&store).expect("store written after evaluation");
    let reloaded = dtc_engine::EvalCache::in_memory();
    reloaded.load_json(&text).expect("store parses");
    assert_eq!(reloaded.len(), 1, "solved entry persisted");

    server.shutdown().expect("clean shutdown");
    std::fs::remove_file(&store).unwrap();
}

#[test]
fn cache_cap_evicts_across_requests() {
    let mut cfg = config();
    cfg.cache_cap = Some(1);
    let server = Server::start(&cfg).expect("server starts");
    let addr = server.addr();

    let first = loadgen::tiny_catalog_json();
    // Same tiny architecture, different VM dependability → different key.
    let second = first.replace(
        "\"params\": {\"min_running_vms\": 1}",
        "\"params\": {\"min_running_vms\": 1, \"vm\": {\"mttf_hours\": 2000.0, \"mttr_hours\": 0.5}}",
    );
    assert_ne!(first, second);

    let (status, _) = request(addr, "POST", "/v1/evaluate", Some(&first));
    assert_eq!(status, 200);
    let (status, _) = request(addr, "POST", "/v1/evaluate", Some(&second));
    assert_eq!(status, 200);

    let stats = get_json(addr, "/v1/stats");
    assert_eq!(int_at(&stats, "cache", "entries"), 1, "cap of one holds");
    assert_eq!(int_at(&stats, "cache", "evictions"), 1, "first entry was evicted");
    assert_eq!(int_at(&stats, "cache", "misses"), 2);

    server.shutdown().expect("clean shutdown");
}
