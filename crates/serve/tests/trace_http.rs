//! Request-scoped tracing over real TCP: `?trace=1` inlines a span tree
//! whose solver nodes carry numerics attributes, the same tree is
//! retrievable by its `X-Dtc-Trace-Id` via the debug routes, inbound
//! trace IDs are honored, and **every** error shape — 400/404/405/413/431
//! and the acceptor's 503 shed — carries the trace-ID and duration
//! headers.

use dtc_engine::value::Value;
use dtc_serve::{loadgen, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One connection-per-request exchange with optional extra headers;
/// returns the whole response text.
fn raw_request_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &str,
    body: Option<&str>,
) -> String {
    let payload = body.unwrap_or("");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\n{extra_headers}content-length: {}\r\nconnection: close\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(payload.as_bytes()).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    String::from_utf8(raw).expect("UTF-8 response")
}

fn raw_request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> String {
    raw_request_with(addr, method, path, "", body)
}

fn status_of(text: &str) -> u16 {
    text.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line")
}

fn body_of(text: &str) -> String {
    text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default()
}

fn header_of(text: &str, name: &str) -> Option<String> {
    let prefix = format!("{name}: ");
    text.split_once("\r\n\r\n")?
        .0
        .lines()
        .find_map(|l| l.to_lowercase().strip_prefix(&prefix).map(str::to_string))
}

/// Depth-first search for a span node by name anywhere under `node`.
fn find_span<'a>(node: &'a Value, name: &str) -> Option<&'a Value> {
    if node.get("name").and_then(Value::as_str) == Some(name) {
        return Some(node);
    }
    node.get("children")?.as_array()?.iter().find_map(|child| find_span(child, name))
}

fn attr_i64(span: &Value, key: &str) -> Option<i64> {
    span.get("attrs")?.get(key)?.as_i64()
}

/// The standard traced workload: the tiny catalog with a steady-state and
/// a transient analysis, so one request exercises the stationary solver
/// (iterations/residual) *and* the uniformization path (truncation depth).
fn traced_body() -> String {
    format!(
        "{{\"catalog\":{},\"analyses\":[\"steady_state\",{{\"kind\":\"transient\",\"time_points\":[1.0,24.0]}}]}}",
        loadgen::tiny_catalog_json()
    )
}

#[test]
fn trace_tree_reaches_the_solver_and_is_retrievable_by_id() {
    let server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        queue: 16,
        eval_threads: 1,
        cache_path: None,
        cache_cap: None,
    })
    .expect("server starts");
    let addr = server.addr();

    let text = raw_request(addr, "POST", "/v2/evaluate?trace=1", Some(&traced_body()));
    assert_eq!(status_of(&text), 200, "{text}");
    let trace_id = header_of(&text, "x-dtc-trace-id").expect("trace-id header on 200");
    assert_eq!(trace_id.len(), 32, "trace id is 32 hex digits: {trace_id:?}");
    assert!(trace_id.bytes().all(|b| b.is_ascii_hexdigit()));

    // The inlined tree: request (still open at snapshot time) → evaluate
    // → scenario → the solver stages with their numerics attributes.
    let doc = Value::from_json(&body_of(&text)).expect("valid JSON");
    let tree = doc.get("trace").expect("?trace=1 inlines a trace object");
    assert_eq!(tree.get("trace_id").and_then(Value::as_str), Some(trace_id.as_str()));
    let roots = tree.get("spans").and_then(Value::as_array).expect("spans array");
    assert_eq!(roots.len(), 1, "one request root");
    let root = &roots[0];
    assert_eq!(root.get("name").and_then(Value::as_str), Some("request"));
    assert_eq!(
        root.get("open").and_then(Value::as_bool),
        Some(true),
        "the request root is snapshotted mid-flight"
    );

    let evaluate = find_span(root, "evaluate").expect("evaluate stage under the root");
    let scenario = find_span(evaluate, "scenario").expect("scenario span under evaluate");
    let explore = find_span(scenario, "explore").expect("explore nested under scenario");
    assert!(attr_i64(explore, "states").is_some_and(|n| n > 0), "explore carries state count");

    let solve = find_span(scenario, "stationary_solve").expect("stationary_solve span");
    assert!(attr_i64(solve, "iterations").is_some_and(|n| n > 0), "iteration count attr");
    assert!(
        solve
            .get("attrs")
            .and_then(|a| a.get("residual"))
            .and_then(Value::as_f64)
            .is_some_and(|r| r.is_finite() && r >= 0.0),
        "final residual attr"
    );

    let pass = find_span(scenario, "uniformized_pass").expect("uniformized_pass span");
    let build = find_span(pass, "uniformized_build").expect("uniformized_build under pass");
    assert!(attr_i64(build, "transitions").is_some_and(|n| n > 0));
    let march = find_span(pass, "march").expect("march under uniformized_pass");
    assert!(attr_i64(march, "truncation_k").is_some_and(|k| k > 0), "truncation depth attr");

    // The cache lookup landed in the tree as a zero-length event.
    assert!(find_span(scenario, "cache_lookup").is_some(), "cache outcome event");

    // The same tree, fetched later by ID from the retention store — now
    // with the request root finished and status/duration metadata.
    let fetched = raw_request(addr, "GET", &format!("/v2/debug/trace?id={trace_id}"), None);
    assert_eq!(status_of(&fetched), 200, "{fetched}");
    let stored = Value::from_json(&body_of(&fetched)).expect("valid JSON");
    assert_eq!(stored.get("trace_id").and_then(Value::as_str), Some(trace_id.as_str()));
    assert_eq!(stored.get("status").and_then(Value::as_i64), Some(200));
    assert!(stored.get("duration_us").and_then(Value::as_i64).is_some_and(|d| d > 0));
    let stored_root =
        &stored.get("trace").unwrap().get("spans").unwrap().as_array().unwrap()[0];
    assert!(stored_root.get("open").is_none(), "stored request root is finished");
    assert!(find_span(stored_root, "march").is_some(), "solver spans persisted");
    assert!(find_span(stored_root, "stationary_solve").is_some());

    // The listings know about it too.
    let listing = raw_request(addr, "GET", "/v2/debug/traces", None);
    assert_eq!(status_of(&listing), 200);
    let listing = Value::from_json(&body_of(&listing)).unwrap();
    let ids: Vec<&str> = listing
        .get("traces")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .filter_map(|t| t.get("trace_id").and_then(Value::as_str))
        .collect();
    assert!(ids.contains(&trace_id.as_str()), "ring lists the trace");
    let slow = raw_request(addr, "GET", "/v2/debug/slow", None);
    assert_eq!(status_of(&slow), 200);
    let slow = Value::from_json(&body_of(&slow)).unwrap();
    assert!(slow.get("count").and_then(Value::as_i64).is_some_and(|n| n >= 1));

    // An inbound X-Dtc-Trace-Id is honored and echoed verbatim.
    let custom = "00c0ffee00c0ffee00c0ffee00c0ffee";
    let text = raw_request_with(
        addr,
        "GET",
        "/healthz",
        &format!("x-dtc-trace-id: {custom}\r\n"),
        None,
    );
    assert_eq!(status_of(&text), 200);
    assert_eq!(header_of(&text, "x-dtc-trace-id").as_deref(), Some(custom));
    let fetched = raw_request(addr, "GET", &format!("/v2/debug/trace?id={custom}"), None);
    assert_eq!(status_of(&fetched), 200, "inbound ID is the retention key");

    // Unknown ID → 404; missing ?id= → 400.
    let missing = raw_request(addr, "GET", "/v2/debug/trace?id=feedface", None);
    assert_eq!(status_of(&missing), 404);
    let bad = raw_request(addr, "GET", "/v2/debug/trace", None);
    assert_eq!(status_of(&bad), 400);

    server.shutdown().expect("clean shutdown");
}

#[test]
fn every_error_shape_carries_trace_and_duration_headers() {
    let server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        queue: 1,
        eval_threads: 1,
        cache_path: None,
        cache_cap: None,
    })
    .expect("server starts");
    let addr = server.addr();

    let assert_stamped = |text: &str, expected: u16, what: &str| {
        assert_eq!(status_of(text), expected, "{what}: {text}");
        let id = header_of(text, "x-dtc-trace-id")
            .unwrap_or_else(|| panic!("{what}: no x-dtc-trace-id header in {text}"));
        assert!(
            !id.is_empty() && id.bytes().all(|b| b.is_ascii_hexdigit()),
            "{what}: trace id {id:?} is not hex"
        );
        let us = header_of(text, "x-dtc-duration-us")
            .unwrap_or_else(|| panic!("{what}: no x-dtc-duration-us header in {text}"));
        assert!(us.trim().parse::<u64>().is_ok(), "{what}: duration {us:?} not integer");
    };

    // Routed errors: bad body (400), unknown route (404), wrong method (405).
    let text = raw_request(addr, "POST", "/v2/evaluate", Some("{not json"));
    assert_stamped(&text, 400, "malformed body");
    let text = raw_request(addr, "GET", "/no/such/route", None);
    assert_stamped(&text, 404, "unknown route");
    let text = raw_request(addr, "DELETE", "/healthz", None);
    assert_stamped(&text, 405, "wrong method");

    // Read-layer rejections: oversized declared body (413), oversized
    // header section (431), unparsable request line (400).
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        stream
            .write_all(b"POST /v1/evaluate HTTP/1.1\r\ncontent-length: 4194305\r\n\r\n")
            .unwrap();
        let mut raw = Vec::new();
        let _ = stream.read_to_end(&mut raw);
        assert_stamped(&String::from_utf8_lossy(&raw), 413, "oversized body");
    }
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\n").unwrap();
        let _ = stream.write_all(&vec![b'a'; 20 * 1024]); // may hit EPIPE
        let mut raw = Vec::new();
        let _ = stream.read_to_end(&mut raw);
        assert_stamped(&String::from_utf8_lossy(&raw), 431, "oversized header");
    }
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let mut raw = Vec::new();
        let _ = stream.read_to_end(&mut raw);
        assert_stamped(&String::from_utf8_lossy(&raw), 400, "bad request line");
    }

    // The acceptor's 503 shed: pin the single worker with an idle
    // connection, fill the queue with another, then connect until shed.
    {
        let _pin_worker = TcpStream::connect(addr).unwrap();
        let _fill_queue = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let mut shed = None;
        for _ in 0..20 {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut raw = Vec::new();
            if stream.read_to_end(&mut raw).is_ok() {
                let text = String::from_utf8_lossy(&raw).to_string();
                if text.starts_with("HTTP/1.1 503 ") {
                    shed = Some(text);
                    break;
                }
            }
        }
        let text = shed.expect("never observed a 503 with worker pinned and queue full");
        assert_stamped(&text, 503, "queue shed");
    }
    std::thread::sleep(Duration::from_millis(200));

    server.shutdown().expect("clean shutdown");
}
