//! HTTP-level determinism of the parallel solver kernels: the same
//! `POST /v2/evaluate` transient request against servers running with
//! different `--eval-threads` must return byte-identical `results`
//! bodies, and both servers must store the evaluation under the **same
//! single cache key** — thread count is a pure scheduling knob that is
//! excluded from cache identity.

use dtc_engine::value::Value;
use dtc_serve::{loadgen, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn config(eval_threads: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        queue: 64,
        eval_threads,
        cache_path: None,
        cache_cap: None,
    }
}

/// One connection-per-request HTTP exchange; returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let payload = body.unwrap_or("");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(payload.as_bytes()).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

#[test]
fn eval_thread_count_changes_neither_results_nor_cache_identity() {
    // Two independent servers (separate in-memory caches): one solving
    // serially, one fanning the march kernels out over 4 threads.
    let serial = Server::start(&config(1)).expect("serial server starts");
    let parallel = Server::start(&config(4)).expect("parallel server starts");

    // A transient curve + SLA window: the request shape that actually
    // drives the parallel uniformization march.
    let body = format!(
        "{{\"catalog\":{},\"analyses\":[\
         {{\"kind\":\"transient\",\"time_points\":[24.0,168.0,720.0,8760.0]}},\
         {{\"kind\":\"interval\",\"horizon_hours\":8760.0}}]}}",
        loadgen::tiny_catalog_json()
    );
    let (status_s, text_s) = request(serial.addr(), "POST", "/v2/evaluate", Some(&body));
    let (status_p, text_p) = request(parallel.addr(), "POST", "/v2/evaluate", Some(&body));
    assert_eq!(status_s, 200, "{text_s}");
    assert_eq!(status_p, 200, "{text_p}");

    // Compare the `results` subtree — every number the caller can act on.
    // (The top-level `timings` object is wall-clock and legitimately
    // differs between runs, so the full bodies are not comparable.)
    let results = |text: &str| {
        Value::from_json(text)
            .expect("valid JSON")
            .get("results")
            .expect("results present")
            .to_json()
    };
    assert_eq!(
        results(&text_s),
        results(&text_p),
        "1-thread and 4-thread servers must return byte-identical results"
    );

    // Both servers computed (no cross-talk: separate caches, one miss
    // each) and filed the evaluation under the SAME single key: the
    // cache identity must not include the thread count, or a restarted
    // server with a different --eval-threads would cold-miss its own
    // persisted store.
    let keys = |addr: SocketAddr| -> Vec<String> {
        let (status, body) = request(addr, "GET", "/v1/cache/keys", None);
        assert_eq!(status, 200, "{body}");
        let doc = Value::from_json(&body).expect("valid JSON");
        assert_eq!(doc.get("count").and_then(|c| c.as_i64()), Some(1), "{body}");
        doc.get("keys")
            .and_then(|k| k.as_array())
            .expect("keys array")
            .iter()
            .filter_map(|k| k.as_str().map(str::to_string))
            .collect()
    };
    let (keys_s, keys_p) = (keys(serial.addr()), keys(parallel.addr()));
    assert_eq!(keys_s.len(), 1);
    assert_eq!(keys_s, keys_p, "cache key must be independent of eval_threads");

    serial.shutdown().expect("clean shutdown");
    parallel.shutdown().expect("clean shutdown");
}
