//! Seconds-scale smoke test for the serve benchmark: a real timed run
//! against an in-process server must produce a document that satisfies the
//! `BENCH_serve.json` schema. No numbers are pinned — machines differ; the
//! schema (field presence, finiteness, ordering, ratio ranges) must not.

use dtc_serve::bench::{run, validate_bench_doc, BenchConfig};

#[test]
fn a_short_bench_run_validates_its_own_schema() {
    let config = BenchConfig { duration: 1.0, clients: 2, mix: 2, threads: 2, queue: 32 };
    let doc = run(&config).expect("bench run succeeds");
    validate_bench_doc(&doc).unwrap_or_else(|e| panic!("schema violation: {e}\n{doc:?}"));

    // The knobs we set must round-trip into the doc.
    let int = |k: &str| doc.get(k).and_then(|v| v.as_i64()).expect("knob field");
    assert_eq!(int("clients"), 2);
    assert_eq!(int("mix"), 2);
    assert_eq!(int("server_threads"), 2);
    assert_eq!(int("queue_capacity"), 32);

    // A 1-second run with 2 clients against a warm in-process server does
    // real work: at least one request per client completed.
    let total = doc
        .get("requests")
        .and_then(|r| r.get("total"))
        .and_then(|v| v.as_i64())
        .expect("requests.total");
    assert!(total >= 2, "only {total} request(s) completed in a 1 s run");
}
