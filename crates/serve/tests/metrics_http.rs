//! `GET /metrics` over real TCP: a scripted cache hit/miss/evict, 431/413
//! rejections, keep-alive reuse and a forced 503 shed, with the scrape
//! asserted to move at every step — plus exposition-format validity,
//! histogram invariants, the `X-Dtc-Duration-Us` header and the v2
//! `timings` object.

use dtc_engine::value::Value;
use dtc_serve::{loadgen, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One connection-per-request exchange; returns the whole response text.
fn raw_request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> String {
    let payload = body.unwrap_or("");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(payload.as_bytes()).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    String::from_utf8(raw).expect("UTF-8 response")
}

fn status_of(text: &str) -> u16 {
    text.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line")
}

fn body_of(text: &str) -> String {
    text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default()
}

fn scrape(addr: SocketAddr) -> String {
    let text = raw_request(addr, "GET", "/metrics", None);
    assert_eq!(status_of(&text), 200, "{text}");
    assert!(
        text.to_lowercase().contains("content-type: text/plain; version=0.0.4"),
        "exposition content type missing: {}",
        text.lines().take(8).collect::<Vec<_>>().join(" | ")
    );
    body_of(&text)
}

/// The value of one fully-qualified sample line (`name{labels}` exact).
fn sample(text: &str, series: &str) -> f64 {
    text.lines()
        .find_map(|l| l.strip_prefix(series).and_then(|rest| rest.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("series {series:?} not in scrape:\n{text}"))
        .parse()
        .expect("sample value parses")
}

/// Structural validity of the whole scrape: HELP/TYPE headers precede their
/// samples, every sample line is `name{labels} value` with a parseable
/// value, and every histogram's `_bucket` series is cumulative, ends at
/// `+Inf`, and agrees with `_count`.
fn assert_valid_exposition(text: &str) {
    let mut typed: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let (name, kind) = (parts.next().unwrap(), parts.next().expect("TYPE kind"));
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE {kind} for {name}"
            );
            typed.insert(name, kind);
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad: {line}"));
        let name = series.split('{').next().unwrap();
        assert!(!name.is_empty(), "sample with empty name: {line}");
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| typed.get(base) == Some(&"histogram"))
            .unwrap_or(name);
        assert!(typed.contains_key(base), "sample {name} has no preceding TYPE header");
        if value != "+Inf" && value != "-Inf" {
            value.parse::<f64>().unwrap_or_else(|_| panic!("bad value in {line:?}"));
        }
    }

    // Histogram invariants for the request-latency family.
    for (name, kind) in &typed {
        if *kind != "histogram" {
            continue;
        }
        // Group bucket lines by their label set minus `le`.
        let mut by_series: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
        for line in text.lines() {
            let Some(rest) = line.strip_prefix(&format!("{name}_bucket{{")) else { continue };
            let (labels, value) = rest.rsplit_once(' ').expect("bucket line");
            let le_stripped: Vec<&str> = labels
                .trim_end_matches('}')
                .split(',')
                .filter(|kv| !kv.starts_with("le="))
                .collect();
            by_series
                .entry(le_stripped.join(","))
                .or_default()
                .push(value.parse().expect("bucket count"));
        }
        for (labels, cumulative) in by_series {
            for pair in cumulative.windows(2) {
                assert!(
                    pair[0] <= pair[1],
                    "{name}{{{labels}}} buckets not cumulative: {cumulative:?}"
                );
            }
            let count_series = if labels.is_empty() {
                format!("{name}_count")
            } else {
                format!("{name}_count{{{labels}}}")
            };
            let count = sample(text, &count_series);
            assert_eq!(
                *cumulative.last().unwrap(),
                count,
                "{name}{{{labels}}}: +Inf bucket must equal _count"
            );
        }
    }
}

#[test]
fn metrics_move_across_a_scripted_hit_miss_evict_431_413_503_sequence() {
    let server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        queue: 1,
        eval_threads: 1,
        cache_path: None,
        cache_cap: Some(1),
    })
    .expect("server starts");
    let addr = server.addr();

    // Baseline scrape is already structurally valid.
    let text = scrape(addr);
    assert_valid_exposition(&text);
    assert_eq!(sample(&text, "dtc_http_workers"), 1.0);
    assert_eq!(sample(&text, "dtc_http_queue_capacity"), 1.0);
    assert_eq!(sample(&text, "dtc_cache_hits_total"), 0.0);

    // Miss, hit, then a second spec that evicts the first (cap = 1).
    let first = loadgen::tiny_catalog_json();
    let second = loadgen::mix_catalog_json(0);
    for (body, expected) in [(&first, "miss"), (&first, "hit"), (&second, "evicting miss")] {
        let text = raw_request(addr, "POST", "/v1/evaluate", Some(body));
        assert_eq!(status_of(&text), 200, "{expected}: {text}");
        assert!(
            text.to_lowercase().contains("x-dtc-duration-us: "),
            "duration header missing on {expected}"
        );
    }
    let text = scrape(addr);
    assert_valid_exposition(&text);
    assert_eq!(sample(&text, "dtc_cache_misses_total"), 2.0);
    assert_eq!(sample(&text, "dtc_cache_hits_total"), 1.0);
    assert_eq!(sample(&text, "dtc_cache_evictions_total"), 1.0);
    assert_eq!(sample(&text, "dtc_cache_entries"), 1.0);
    assert_eq!(
        sample(&text, "dtc_http_requests_total{route=\"/v1/evaluate\",status=\"200\"}"),
        3.0
    );
    assert_eq!(sample(&text, "dtc_http_request_seconds_count{route=\"/v1/evaluate\"}"), 3.0);
    assert!(
        sample(&text, "dtc_http_request_seconds_sum{route=\"/v1/evaluate\"}") > 0.0,
        "three evaluations took nonzero time"
    );
    // Solver-stage spans from the global registry rode along.
    assert!(sample(&text, "dtc_stage_seconds_count{stage=\"explore\"}") >= 2.0);
    assert!(sample(&text, "dtc_stage_seconds_count{stage=\"stationary_solve\"}") >= 2.0);
    assert!(sample(&text, "dtc_solver_stationary_iterations_total") >= 1.0);

    // An unknown route lands in the bounded "other" label.
    assert_eq!(status_of(&raw_request(addr, "GET", "/nope", None)), 404);
    let text = scrape(addr);
    assert_eq!(sample(&text, "dtc_http_requests_total{route=\"other\",status=\"404\"}"), 1.0);

    // Oversized header section → 431; oversized declared body → 413.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\n").unwrap();
        let filler = vec![b'a'; 20 * 1024];
        let _ = stream.write_all(&filler); // may hit EPIPE once rejected
        let mut raw = Vec::new();
        let _ = stream.read_to_end(&mut raw);
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 431 "), "{text}");
    }
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        stream
            .write_all(b"POST /v1/evaluate HTTP/1.1\r\ncontent-length: 4194305\r\n\r\n")
            .unwrap();
        let mut raw = Vec::new();
        let _ = stream.read_to_end(&mut raw);
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 413 "), "{text}");
    }
    let text = scrape(addr);
    assert_eq!(sample(&text, "dtc_http_read_errors_total{kind=\"header_too_large\"}"), 1.0);
    assert_eq!(sample(&text, "dtc_http_read_errors_total{kind=\"body_too_large\"}"), 1.0);

    // Keep-alive: two requests on one connection count one reuse.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        for _ in 0..2 {
            stream.write_all(b"GET /healthz HTTP/1.1\r\nhost: test\r\n\r\n").unwrap();
            let mut raw = Vec::new();
            let mut byte = [0u8; 1];
            while !raw.ends_with(b"\r\n\r\n") {
                stream.read_exact(&mut byte).expect("header byte");
                raw.push(byte[0]);
            }
            let head = String::from_utf8_lossy(&raw).to_lowercase();
            let length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("content-length:"))
                .and_then(|v| v.trim().parse().ok())
                .expect("content-length");
            let mut body = vec![0u8; length];
            stream.read_exact(&mut body).expect("body");
        }
    }
    let text = scrape(addr);
    assert!(sample(&text, "dtc_http_keepalive_reuse_total") >= 1.0);

    // Force a 503: one idle connection pins the single worker, a second
    // fills the queue, so a further connection is shed by the acceptor.
    {
        let _pin_worker = TcpStream::connect(addr).unwrap();
        let _fill_queue = TcpStream::connect(addr).unwrap();
        // Give the worker a moment to pop the first connection.
        std::thread::sleep(Duration::from_millis(100));
        let mut shed = false;
        for _ in 0..20 {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut raw = Vec::new();
            if stream.read_to_end(&mut raw).is_ok()
                && String::from_utf8_lossy(&raw).starts_with("HTTP/1.1 503 ")
            {
                shed = true;
                break;
            }
        }
        assert!(shed, "never observed a 503 with worker pinned and queue full");
    }
    // The pinned/queued connections are dropped here; give the single
    // worker a moment to drain their EOFs before the final scrape.
    std::thread::sleep(Duration::from_millis(200));
    let text = scrape(addr);
    assert_valid_exposition(&text);
    assert!(sample(&text, "dtc_http_sheds_total") >= 1.0);

    // /v1/stats satellite: queue depth, uptime, totals and joins present.
    let stats_text = raw_request(addr, "GET", "/v1/stats", None);
    assert_eq!(status_of(&stats_text), 200);
    let stats = Value::from_json(&body_of(&stats_text)).expect("stats JSON");
    let int_at = |a: &str, b: &str| {
        stats.get(a).and_then(|x| x.get(b)).and_then(|x| x.as_i64()).expect("stats field")
    };
    assert!(int_at("queue", "depth") >= 0);
    assert!(int_at("cache", "joins") >= 0);
    assert!(int_at("server", "requests") > 0);
    assert!(
        stats
            .get("server")
            .and_then(|s| s.get("uptime_seconds"))
            .and_then(|u| u.as_f64())
            .expect("uptime")
            > 0.0
    );

    server.shutdown().expect("clean shutdown");
}

#[test]
fn v2_responses_carry_timings_and_duration_header() {
    let server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        queue: 16,
        eval_threads: 1,
        cache_path: None,
        cache_cap: None,
    })
    .expect("server starts");
    let addr = server.addr();

    let body = format!("{{\"catalog\":{}}}", loadgen::tiny_catalog_json());
    let text = raw_request(addr, "POST", "/v2/evaluate", Some(&body));
    assert_eq!(status_of(&text), 200, "{text}");

    let duration_us: i64 = text
        .to_lowercase()
        .lines()
        .find_map(|l| l.strip_prefix("x-dtc-duration-us: ").map(str::to_string))
        .expect("X-Dtc-Duration-Us header on v2")
        .trim()
        .parse()
        .expect("header is integer microseconds");
    assert!(duration_us > 0, "a real solve takes measurable time");

    let doc = Value::from_json(&body_of(&text)).expect("valid JSON");
    let timings = doc.get("timings").expect("v2 responses carry a timings object");
    let us = |key: &str| {
        timings.get(key).and_then(|v| v.as_i64()).unwrap_or_else(|| panic!("timings.{key}"))
    };
    let (expand, evaluate, persist, total) =
        (us("expand_us"), us("evaluate_us"), us("persist_us"), us("total_us"));
    assert!(expand >= 0 && evaluate > 0 && persist >= 0);
    assert!(
        total >= expand + evaluate + persist,
        "total {total} < expand {expand} + evaluate {evaluate} + persist {persist}"
    );

    // v1 keeps its response shape: no timings object.
    let v1 = raw_request(addr, "POST", "/v1/evaluate", Some(&loadgen::tiny_catalog_json()));
    assert_eq!(status_of(&v1), 200);
    let v1_doc = Value::from_json(&body_of(&v1)).expect("valid JSON");
    assert!(v1_doc.get("timings").is_none(), "v1 stays timings-free");
    assert!(v1.to_lowercase().contains("x-dtc-duration-us: "), "header is on every route");

    server.shutdown().expect("clean shutdown");
}
