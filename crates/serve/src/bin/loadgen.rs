//! Load-generation harness for `dtc-serve`; see `loadgen --help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(dtc_serve::cli::run_loadgen(&args));
}
