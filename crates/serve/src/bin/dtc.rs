//! The `dtc` command-line evaluator; see `dtc help`.
//!
//! Lives in `dtc-serve` (not `dtc-engine`) so the `serve` and `search`
//! commands can sit next to the batch commands: `serve` is handled here,
//! `search` is delegated to [`dtc_search::cli`], everything else to
//! [`dtc_engine::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("serve") => dtc_serve::cli::run_serve(&args[1..]),
        Some("search") => dtc_search::cli::run_search_cli(&args[1..]),
        _ => dtc_engine::cli::run_cli(&args),
    };
    std::process::exit(code);
}
