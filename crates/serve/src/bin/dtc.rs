//! The `dtc` command-line evaluator; see `dtc help`.
//!
//! Lives in `dtc-serve` (not `dtc-engine`) so the `serve` command can sit
//! next to the batch commands: `serve` is handled here, everything else is
//! delegated to [`dtc_engine::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("serve") => dtc_serve::cli::run_serve(&args[1..]),
        _ => dtc_engine::cli::run_cli(&args),
    };
    std::process::exit(code);
}
