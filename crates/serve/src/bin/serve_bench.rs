//! End-to-end serve benchmark: boots an in-process `dtc-serve`, drives it
//! with the loadgen harness under `--mix` for a wall-clock budget, and
//! writes the tracked `BENCH_serve.json` at the repo root.
//!
//! Usage: `cargo run --release -p dtc-serve --bin serve_bench
//! [duration_seconds] [clients] [mix]` (defaults: 10 s, 8 clients, mix 4).

use dtc_serve::bench::{self, BenchConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut config = BenchConfig::default();
    if let Some(a) = args.next() {
        config.duration = a.parse().expect("duration_seconds must be a number");
        assert!(
            config.duration.is_finite() && config.duration > 0.0,
            "duration_seconds must be positive"
        );
    }
    if let Some(a) = args.next() {
        config.clients = a.parse().expect("clients must be a number");
    }
    if let Some(a) = args.next() {
        config.mix = a.parse().expect("mix must be a number");
    }

    println!(
        "serve_bench: {} s, {} client(s), mix {}, {} server thread(s)",
        config.duration, config.clients, config.mix, config.threads
    );
    let doc = match bench::run(&config) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("serve_bench: {e}");
            std::process::exit(1);
        }
    };
    bench::validate_bench_doc(&doc).expect("benchmark doc validates its own schema");

    let get = |k: &str| doc.get(k).and_then(|v| v.as_f64()).unwrap_or(f64::NAN);
    println!(
        "rps {:.1}, p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, shed rate {:.3}, \
         cache hit ratio {:.3}",
        get("rps"),
        get("p50_ms"),
        get("p95_ms"),
        get("p99_ms"),
        get("shed_rate"),
        get("cache_hit_ratio"),
    );
    std::fs::write(bench::BENCH_PATH, doc.to_json() + "\n").expect("write BENCH_serve.json");
    println!("wrote {}", bench::BENCH_PATH);
}
