//! The end-to-end serve benchmark behind the `serve_bench` binary.
//!
//! Boots an in-process [`Server`] on an ephemeral port, drives it with the
//! [`crate::loadgen`] harness for a wall-clock budget under `--mix` (so the
//! cache-miss/solve path stays exercised, not just hits), and summarizes
//! the run as a JSON document — RPS, latency percentiles, shed rate and
//! cache hit ratio — written to `BENCH_serve.json` at the repo root and
//! tracked across PRs like `BENCH_curve.json`.
//!
//! [`validate_bench_doc`] is the schema contract: the binary validates what
//! it writes, and the CI smoke test validates a fresh seconds-scale run
//! without pinning any numbers.

use crate::loadgen;
use crate::{ServeConfig, ServeError, Server};
use dtc_engine::value::Value;

/// Knobs for one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Wall-clock load duration per client, seconds.
    pub duration: f64,
    /// Concurrent loadgen client threads.
    pub clients: usize,
    /// Distinct scenario bodies rotated through ([`loadgen::Options::mix`]).
    pub mix: usize,
    /// Server HTTP worker threads.
    pub threads: usize,
    /// Server accept-queue capacity.
    pub queue: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            duration: 10.0,
            clients: 8,
            mix: 4,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            queue: 128,
        }
    }
}

/// Runs the benchmark: in-process server, timed `--mix` load, summary doc.
///
/// # Errors
///
/// Fails if the server cannot start or if not a single request succeeded
/// (a summary whose percentiles are NaN would serialize as `null` and is
/// useless as a tracked benchmark).
pub fn run(config: &BenchConfig) -> Result<Value, ServeError> {
    let serve_config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: config.threads,
        queue: config.queue,
        eval_threads: 1,
        cache_path: None,
        cache_cap: None,
    };
    let server = Server::start(&serve_config)?;
    let opts = loadgen::Options {
        addr: server.addr().to_string(),
        clients: config.clients,
        mix: config.mix.max(1),
        duration: Some(config.duration),
        ..loadgen::Options::default()
    };
    let summary = loadgen::run(&opts);
    let cache = server.cache().stats();
    let sheds = server.sheds();
    let requests_served = server.requests_served();
    server.shutdown()?;
    if summary.ok == 0 {
        return Err(ServeError::Io(std::io::Error::other(format!(
            "no request succeeded in {} attempt(s); nothing to benchmark",
            summary.total
        ))));
    }

    let lookups = cache.hits + cache.misses;
    let doc = Value::object([
        ("bench", Value::Str("serve: timed loadgen against an in-process server".into())),
        ("command", Value::Str("cargo run --release -p dtc-serve --bin serve_bench".into())),
        ("duration_seconds", Value::Float(config.duration)),
        ("clients", Value::Int(config.clients as i64)),
        ("mix", Value::Int(config.mix as i64)),
        ("server_threads", Value::Int(config.threads as i64)),
        ("queue_capacity", Value::Int(config.queue as i64)),
        (
            "requests",
            Value::object([
                ("total", Value::Int(summary.total as i64)),
                ("ok", Value::Int(summary.ok as i64)),
                ("failed", Value::Int(summary.failed as i64)),
                (
                    "failures_by_status",
                    Value::object(
                        summary
                            .failures_by_status
                            .iter()
                            .map(|(k, n)| (k.clone(), Value::Int(*n as i64))),
                    ),
                ),
                ("served", Value::Int(requests_served as i64)),
            ]),
        ),
        ("rps", Value::Float(summary.rps)),
        ("p50_ms", Value::Float(summary.p50_ms)),
        ("p95_ms", Value::Float(summary.p95_ms)),
        ("p99_ms", Value::Float(summary.p99_ms)),
        ("shed_rate", Value::Float(sheds as f64 / summary.total.max(1) as f64)),
        (
            "cache",
            Value::object([
                ("hits", Value::Int(cache.hits as i64)),
                ("misses", Value::Int(cache.misses as i64)),
                ("joins", Value::Int(cache.joins as i64)),
                ("evictions", Value::Int(cache.evictions as i64)),
                ("entries", Value::Int(cache.entries as i64)),
            ]),
        ),
        (
            "cache_hit_ratio",
            Value::Float(if lookups > 0 { cache.hits as f64 / lookups as f64 } else { 0.0 }),
        ),
    ]);
    Ok(doc)
}

/// Validates the shape of a `BENCH_serve.json` document — required fields,
/// types, and internal consistency (counts add up, ratios in `[0, 1]`,
/// percentiles finite and ordered) — without pinning any numbers, so it
/// holds on any machine.
pub fn validate_bench_doc(doc: &Value) -> Result<(), String> {
    let str_field = |key: &str| -> Result<&str, String> {
        doc.get(key).and_then(Value::as_str).ok_or(format!("missing string field {key:?}"))
    };
    let num = |key: &str| -> Result<f64, String> {
        let v = doc
            .get(key)
            .and_then(Value::as_f64)
            .ok_or(format!("missing numeric field {key:?}"))?;
        if !v.is_finite() {
            return Err(format!("field {key:?} is not finite"));
        }
        Ok(v)
    };
    str_field("bench")?;
    str_field("command")?;
    if num("duration_seconds")? <= 0.0 {
        return Err("duration_seconds must be positive".into());
    }
    num("clients")?;
    num("mix")?;

    let requests = doc.get("requests").ok_or("missing \"requests\" object")?;
    let req_num = |key: &str| -> Result<i64, String> {
        requests.get(key).and_then(Value::as_i64).ok_or(format!("missing requests.{key}"))
    };
    let (total, ok, failed) = (req_num("total")?, req_num("ok")?, req_num("failed")?);
    if total != ok + failed {
        return Err(format!("requests.total {total} != ok {ok} + failed {failed}"));
    }
    if total <= 0 {
        return Err("requests.total must be positive".into());
    }
    let by_status = requests
        .get("failures_by_status")
        .and_then(Value::as_table)
        .ok_or("missing requests.failures_by_status object")?;
    let breakdown: i64 = by_status.values().filter_map(Value::as_i64).sum();
    if by_status.values().any(|v| v.as_i64().is_none_or(|n| n < 0)) {
        return Err("failures_by_status values must be non-negative integers".into());
    }
    if breakdown != failed {
        return Err(format!(
            "failures_by_status sums to {breakdown} but requests.failed is {failed}"
        ));
    }

    if num("rps")? < 0.0 {
        return Err("rps must be non-negative".into());
    }
    let (p50, p95, p99) = (num("p50_ms")?, num("p95_ms")?, num("p99_ms")?);
    if !(0.0 <= p50 && p50 <= p95 && p95 <= p99) {
        return Err(format!("percentiles must be ordered: p50 {p50}, p95 {p95}, p99 {p99}"));
    }
    for ratio in ["shed_rate", "cache_hit_ratio"] {
        let v = num(ratio)?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("{ratio} {v} outside [0, 1]"));
        }
    }

    let cache = doc.get("cache").ok_or("missing \"cache\" object")?;
    for key in ["hits", "misses", "joins", "evictions", "entries"] {
        let v = cache.get(key).and_then(Value::as_i64).ok_or(format!("missing cache.{key}"))?;
        if v < 0 {
            return Err(format!("cache.{key} {v} is negative"));
        }
    }
    Ok(())
}

/// Where the tracked benchmark document lives: `BENCH_serve.json` at the
/// repo root, next to `BENCH_curve.json`.
pub const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_doc() -> Value {
        Value::from_json(
            r#"{
              "bench": "serve", "command": "cargo run",
              "duration_seconds": 1.0, "clients": 2, "mix": 2,
              "requests": {"total": 10, "ok": 9, "failed": 1,
                           "failures_by_status": {"503": 1}, "served": 9},
              "rps": 10.0, "p50_ms": 1.0, "p95_ms": 2.0, "p99_ms": 3.0,
              "shed_rate": 0.1, "cache_hit_ratio": 0.5,
              "cache": {"hits": 5, "misses": 5, "joins": 1, "evictions": 0, "entries": 2}
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn valid_doc_passes() {
        validate_bench_doc(&minimal_doc()).unwrap();
    }

    #[test]
    fn inconsistent_docs_fail() {
        let mut doc = minimal_doc();
        if let Value::Table(t) = &mut doc {
            t.remove("rps");
        }
        assert!(validate_bench_doc(&doc).unwrap_err().contains("rps"));

        let mut doc = minimal_doc();
        if let Value::Table(t) = &mut doc {
            t.insert("shed_rate".into(), Value::Float(1.5));
        }
        assert!(validate_bench_doc(&doc).unwrap_err().contains("shed_rate"));

        let mut doc = minimal_doc();
        if let Value::Table(t) = &mut doc {
            t.insert("p95_ms".into(), Value::Float(99.0));
        }
        assert!(validate_bench_doc(&doc).unwrap_err().contains("ordered"));

        let mut doc = minimal_doc();
        if let Value::Table(t) = &mut doc {
            let requests = t.get_mut("requests").unwrap();
            if let Value::Table(r) = requests {
                r.insert("failed".into(), Value::Int(7));
            }
        }
        assert!(validate_bench_doc(&doc).unwrap_err().contains("total"));

        // The per-status breakdown must account for every failure.
        let mut doc = minimal_doc();
        if let Value::Table(t) = &mut doc {
            let requests = t.get_mut("requests").unwrap();
            if let Value::Table(r) = requests {
                r.insert("failures_by_status".into(), Value::object([("503", Value::Int(9))]));
            }
        }
        assert!(validate_bench_doc(&doc).unwrap_err().contains("failures_by_status"));
    }
}
