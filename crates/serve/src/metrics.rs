//! Server-local HTTP metrics and the `GET /metrics` scrape assembly.
//!
//! Every [`crate::Server`] owns one [`ServeMetrics`] — a private
//! [`dtc_obs::Registry`] plus pre-registered instruments for the hot
//! counters — so two servers in one process (common in tests) never mix
//! their numbers. The scrape concatenates three sections:
//!
//! 1. this registry (request counts, latency histograms, queue/worker
//!    gauges, sheds, read errors, keep-alive reuse),
//! 2. a cache section rendered from an [`dtc_engine::CacheStats`] snapshot
//!    (the cache keeps plain atomics; it does not depend on `dtc-obs`),
//! 3. the [`dtc_obs::global`] registry with the solver-stage spans and
//!    work counters recorded by `dtc-markov` / `dtc-core`.

use dtc_engine::CacheStats;
use dtc_obs::{expo, latency_buckets, Counter, Gauge, Registry};
use std::sync::Arc;

/// The routes the server exposes, used as the `route` label. Unknown paths
/// collapse into `"other"` so scrape cardinality stays bounded no matter
/// what clients probe.
const ROUTES: &[&str] = &[
    "/healthz",
    "/metrics",
    "/v1/stats",
    "/v1/cache/keys",
    "/v1/evaluate",
    "/v2/evaluate",
    "/v2/search",
    "/v2/model/dot",
    "/v2/debug/trace",
    "/v2/debug/traces",
    "/v2/debug/slow",
];

/// Maps a request path to its bounded `route` label.
pub fn route_label(path: &str) -> &'static str {
    ROUTES.iter().find(|&&r| r == path).copied().unwrap_or("other")
}

/// One server's metric instruments.
#[derive(Debug)]
pub struct ServeMetrics {
    registry: Registry,
    /// Connections refused with 503 because the accept queue was full.
    pub sheds: Arc<Counter>,
    /// Requests served on an already-used keep-alive connection.
    pub keepalive_reuse: Arc<Counter>,
    /// Current accept-queue depth (set at scrape time).
    pub queue_depth: Arc<Gauge>,
    /// Workers currently occupied by a connection.
    pub busy_workers: Arc<Gauge>,
}

impl ServeMetrics {
    /// Fresh instruments for one server. `workers` and `queue_capacity`
    /// are recorded as constant gauges so utilization can be computed from
    /// the scrape alone.
    pub fn new(workers: usize, queue_capacity: usize) -> ServeMetrics {
        let registry = Registry::new();
        let sheds = registry.counter(
            "dtc_http_sheds_total",
            "Connections answered 503 immediately because the accept queue was full.",
            &[],
        );
        let keepalive_reuse = registry.counter(
            "dtc_http_keepalive_reuse_total",
            "Requests served on a connection that had already served one.",
            &[],
        );
        let queue_depth = registry.gauge(
            "dtc_http_queue_depth",
            "Accepted connections waiting for a worker.",
            &[],
        );
        let busy_workers = registry.gauge(
            "dtc_http_busy_workers",
            "Workers currently occupied by a connection.",
            &[],
        );
        registry
            .gauge("dtc_http_workers", "Size of the HTTP worker pool.", &[])
            .set(workers as i64);
        registry
            .gauge("dtc_http_queue_capacity", "Accept-queue capacity.", &[])
            .set(queue_capacity as i64);
        ServeMetrics { registry, sheds, keepalive_reuse, queue_depth, busy_workers }
    }

    /// Records one completed request: bumps
    /// `dtc_http_requests_total{route,status}` and observes
    /// `dtc_http_request_seconds{route}`.
    pub fn observe_request(&self, path: &str, status: u16, seconds: f64) {
        let route = route_label(path);
        let status = status_label(status);
        self.registry
            .counter(
                "dtc_http_requests_total",
                "Requests answered, by route and status.",
                &[("route", route), ("status", status)],
            )
            .inc();
        self.registry
            .histogram(
                "dtc_http_request_seconds",
                "Wall time from parsed request to serialized response, by route.",
                &[("route", route)],
                latency_buckets(),
            )
            .observe(seconds);
    }

    /// Counts a request that could not be read at all:
    /// `dtc_http_read_errors_total{kind}` with `kind` one of
    /// `header_too_large` (431), `body_too_large` (413), `malformed` (400).
    pub fn observe_read_error(&self, kind: &'static str) {
        self.registry
            .counter(
                "dtc_http_read_errors_total",
                "Requests rejected before routing, by reason.",
                &[("kind", kind)],
            )
            .inc();
    }

    /// Assembles the full `/metrics` body: this server's registry, the
    /// cache snapshot, and the process-global solver registry, merged into
    /// **one deterministic family order** (sorted by family name) so two
    /// scrapes — or two servers — can be diffed line by line.
    pub fn render_scrape(&self, cache: &CacheStats) -> String {
        let mut out = self.registry.render();
        render_cache_section(&mut out, cache);
        dtc_obs::global().render_into(&mut out);
        sort_families(&out)
    }
}

/// Re-orders an exposition text's `# HELP`-led family blocks by family
/// name. Each section above renders its own families in registration
/// order, which can differ across processes (first-scraped route, first
/// solver stage run); sorting makes the concatenation byte-stable.
fn sort_families(text: &str) -> String {
    let mut families: Vec<(&str, String)> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            families.push((name, String::new()));
        }
        if let Some((_, block)) = families.last_mut() {
            block.push_str(line);
            block.push('\n');
        }
    }
    families.sort_by(|a, b| a.0.cmp(b.0));
    families.into_iter().map(|(_, block)| block).collect()
}

/// Appends the cache's counters as exposition families. The cache keeps
/// its own atomics (it predates and does not depend on `dtc-obs`), so its
/// section is rendered from a [`CacheStats`] snapshot.
fn render_cache_section(out: &mut String, stats: &CacheStats) {
    let counters: &[(&str, &str, usize)] = &[
        ("dtc_cache_hits_total", "Lookups answered without running a solve.", stats.hits),
        ("dtc_cache_misses_total", "Lookups that required an evaluation.", stats.misses),
        (
            "dtc_cache_single_flight_joins_total",
            "Followers that shared another caller's in-flight solve.",
            stats.joins,
        ),
        (
            "dtc_cache_evictions_total",
            "Entries dropped by the max-entries cap.",
            stats.evictions,
        ),
        (
            "dtc_cache_batch_candidates_total",
            "Scenarios submitted through batch runs (search sweeps included).",
            stats.batch_candidates,
        ),
        (
            "dtc_cache_batch_distinct_total",
            "Distinct spec keys among batch candidates (dedup denominator).",
            stats.batch_distinct,
        ),
    ];
    for (name, help, value) in counters {
        expo::write_header(out, name, help, "counter");
        expo::write_sample(out, name, &[], *value as f64);
    }
    expo::write_header(out, "dtc_cache_entries", "Entries currently stored.", "gauge");
    expo::write_sample(out, "dtc_cache_entries", &[], stats.entries as f64);
}

/// Status codes the server can emit, as `'static` label values.
fn status_label(status: u16) -> &'static str {
    match status {
        200 => "200",
        400 => "400",
        404 => "404",
        405 => "405",
        413 => "413",
        429 => "429",
        431 => "431",
        500 => "500",
        503 => "503",
        _ => "other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_paths_collapse_into_other() {
        assert_eq!(route_label("/v2/evaluate"), "/v2/evaluate");
        assert_eq!(route_label("/Admin/../../etc/passwd"), "other");
    }

    #[test]
    fn scrape_contains_all_three_sections() {
        let m = ServeMetrics::new(4, 128);
        m.observe_request("/healthz", 200, 0.001);
        m.sheds.inc();
        let stats = CacheStats {
            hits: 3,
            misses: 2,
            entries: 1,
            evictions: 0,
            joins: 1,
            batch_candidates: 8,
            batch_distinct: 5,
        };
        let text = m.render_scrape(&stats);
        assert!(text.contains("dtc_http_requests_total{route=\"/healthz\",status=\"200\"} 1"));
        assert!(text.contains("dtc_http_request_seconds_count{route=\"/healthz\"} 1"));
        assert!(text.contains("dtc_http_sheds_total 1"));
        assert!(text.contains("dtc_http_workers 4"));
        assert!(text.contains("dtc_cache_hits_total 3"));
        assert!(text.contains("dtc_cache_single_flight_joins_total 1"));
        assert!(text.contains("dtc_cache_batch_candidates_total 8"));
        assert!(text.contains("dtc_cache_batch_distinct_total 5"));
        assert!(text.contains("dtc_cache_entries 1"));
    }

    #[test]
    fn scrape_families_come_out_in_one_sorted_order() {
        let m = ServeMetrics::new(2, 8);
        // Register http families in an order that section-wise
        // concatenation would NOT interleave with the cache families.
        m.observe_request("/v2/evaluate", 200, 0.1);
        m.observe_read_error("malformed");
        let stats = CacheStats {
            hits: 1,
            misses: 1,
            entries: 1,
            evictions: 0,
            joins: 0,
            batch_candidates: 0,
            batch_distinct: 0,
        };
        let text = m.render_scrape(&stats);

        let families: Vec<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# HELP "))
            .filter_map(|rest| rest.split_whitespace().next())
            .collect();
        assert!(!families.is_empty());
        let mut sorted = families.clone();
        sorted.sort_unstable();
        assert_eq!(families, sorted, "family blocks must be sorted by name");

        // The cache section (dtc_cache_*) sorts *before* the http
        // section's families — i.e. the three sections really are merged,
        // not just concatenated.
        let cache_pos = families.iter().position(|f| f.starts_with("dtc_cache_")).unwrap();
        let http_pos = families.iter().position(|f| f.starts_with("dtc_http_")).unwrap();
        assert!(cache_pos < http_pos, "sections interleave alphabetically");

        // Byte-stable across scrapes when nothing changed.
        assert_eq!(text, m.render_scrape(&stats), "scrape is deterministic");
    }

    #[test]
    fn two_servers_do_not_share_counters() {
        let a = ServeMetrics::new(1, 1);
        let b = ServeMetrics::new(1, 1);
        a.sheds.inc();
        assert_eq!(a.sheds.value(), 1);
        assert_eq!(b.sheds.value(), 0);
    }
}
