//! # dtc-serve — a concurrent availability-evaluation service
//!
//! The online half of the scenario engine: where `dtc run` answers one
//! catalog and exits, `dtc serve` keeps a worker pool, a bounded accept
//! queue, and one shared [`EvalCache`] resident and answers availability
//! queries continuously over HTTP/1.1 on `std::net` — no external
//! dependencies.
//!
//! * `GET /healthz` — liveness probe.
//! * `GET /metrics` — Prometheus text exposition: per-route request
//!   counters and latency histograms, queue/worker gauges, shed and
//!   read-error counters, the evaluation cache's hit/miss/join/eviction
//!   counters, and the process-global solver-stage spans.
//! * `GET /v1/stats` — cache, queue and server counters.
//! * `POST /v1/evaluate` — a catalog document in the engine's JSON schema;
//!   expanded, deduped, solved for steady state, and rendered back as JSON
//!   (a thin steady-state wrapper over the v2 pipeline).
//! * `POST /v2/evaluate` — `{"catalog": …, "analyses": [...]}` (or a bare
//!   catalog document): runs any analysis set (steady_state, transient,
//!   interval, mttsf, capacity_thresholds, cost, simulation, sensitivity)
//!   per scenario against **one** state-space construction and returns
//!   the full report union.
//! * `POST /v2/search` — `{"catalog": …, "search": {…}?}` (or a bare
//!   catalog document with its own `[search]` section): SLO-driven design
//!   search over the catalog's expanded grid via [`dtc_search`] —
//!   feasible set, cost/availability Pareto frontier, cheapest-feasible
//!   recommendation, break-even disaster rates. The response body is the
//!   canonical search JSON, bit-identical to `dtc search --format json`.
//! * `GET /v2/model/dot?scenario=…[&catalog=table7|fig7]` — the compiled
//!   GSPN of a bundled-catalog scenario as Graphviz DOT, so clients can
//!   *see* the model their numbers come from.
//! * `GET /v1/cache/keys` — the content-addressed keys currently stored.
//! * `GET /v2/debug/trace?id=…` / `GET /v2/debug/traces` /
//!   `GET /v2/debug/slow` — the request-scoped span trees: one trace by
//!   ID, the recent-trace ring, and the slowest-N reservoir (see
//!   [`trace_store`]).
//!
//! Every request runs under a [`dtc_obs::trace::TraceContext`]: the trace
//! ID is taken from an inbound `X-Dtc-Trace-Id` header when present
//! (else generated), echoed back on every response — errors included —
//! and `?trace=1` on `POST /v2/evaluate` inlines the span tree into the
//! response body. Diagnostics go through [`dtc_obs::log`] as JSON lines
//! on stderr (`DTC_LOG=error|warn|info|debug`).
//!
//! The full request/response cookbook lives in `docs/HTTP_API.md`.
//!
//! The hot path is the cache's **single-flight** gate
//! ([`EvalCache::get_or_compute`] via [`dtc_engine::run_batch`]): any
//! number of concurrent requests for the same spec block on one
//! in-progress CTMC solve and share its report. Backpressure is explicit —
//! when the pending-connection queue is full the acceptor answers
//! `503 Service Unavailable` immediately instead of queueing unboundedly.
//!
//! The companion [`loadgen`] module (and `loadgen` binary) hammers a
//! running server over real sockets and reports RPS and latency
//! percentiles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod cli;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod trace_store;

use dtc_core::analysis::AnalysisRequest;
use dtc_engine::value::Value;
use dtc_engine::{
    catalogs, parse_analyses, parse_search_section, results_to_value, run_batch, Catalog,
    EngineError, EvalCache, RunOptions, SearchConfig,
};
use dtc_obs::trace::{self, TraceContext, TraceId};
use dtc_search::SearchOptions;
use http::{read_request, write_response, ReadError, Request, Response, TooLargeKind};
use metrics::ServeMetrics;
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use trace_store::{StoredTrace, TraceStore};

/// Server construction/runtime errors.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(io::Error),
    /// Cache store or catalog failure from the engine layer.
    Engine(EngineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io: {e}"),
            ServeError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// HTTP worker threads.
    pub threads: usize,
    /// Pending-connection queue capacity; beyond it the acceptor answers
    /// 503 immediately (backpressure instead of unbounded buffering).
    pub queue: usize,
    /// Worker threads used *inside* one `POST /v1/evaluate` batch. On a
    /// single-scenario batch the whole budget flows into the solver's
    /// parallel march/power kernels (`dtc_markov::par`). Kept small by
    /// default: request-level parallelism comes from the HTTP worker
    /// pool. Purely a scheduling knob — responses are bit-identical at
    /// every value and the count is excluded from cache identity.
    pub eval_threads: usize,
    /// Optional persistent JSON cache store.
    pub cache_path: Option<PathBuf>,
    /// Optional cap on resident cache entries (oldest evicted first).
    pub cache_cap: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            threads,
            queue: 128,
            eval_threads: 1,
            cache_path: None,
            cache_cap: None,
        }
    }
}

/// Bounded FIFO of accepted-but-unhandled connections.
#[derive(Debug)]
struct Backlog {
    inner: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    capacity: usize,
}

impl Backlog {
    fn new(capacity: usize) -> Backlog {
        Backlog {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues unless full; the stream is handed back on rejection so the
    /// caller can answer 503 on it.
    fn try_push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.inner.lock().expect("backlog poisoned");
        if q.len() >= self.capacity {
            return Err(stream);
        }
        q.push_back(stream);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once shutdown is flagged and
    /// the queue has drained.
    fn pop(&self, shutdown: &AtomicBool) -> Option<TcpStream> {
        let mut q = self.inner.lock().expect("backlog poisoned");
        loop {
            if let Some(stream) = q.pop_front() {
                return Some(stream);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            q = self.ready.wait(q).expect("backlog poisoned");
        }
    }

    fn depth(&self) -> usize {
        self.inner.lock().expect("backlog poisoned").len()
    }
}

/// State shared between the acceptor, the workers, and [`Server`].
struct Shared {
    cache: Arc<EvalCache>,
    backlog: Backlog,
    eval_threads: usize,
    workers: usize,
    shutdown: AtomicBool,
    started: Instant,
    requests: AtomicUsize,
    evaluations: AtomicUsize,
    rejected: AtomicUsize,
    metrics: ServeMetrics,
    traces: TraceStore,
}

/// A running evaluation service; dropping it does **not** stop the
/// threads — call [`Server::shutdown`] (tests) or [`Server::join`]
/// (the CLI, which serves until killed).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Opens (or creates) the cache described by `config` and starts the
    /// service.
    pub fn start(config: &ServeConfig) -> Result<Server, ServeError> {
        let cache = EvalCache::open_lenient(config.cache_path.clone(), config.cache_cap);
        Server::start_with(config, Arc::new(cache))
    }

    /// Starts the service around an existing shared cache.
    pub fn start_with(
        config: &ServeConfig,
        cache: Arc<EvalCache>,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let worker_count = config.threads.max(1);
        let shared = Arc::new(Shared {
            cache,
            backlog: Backlog::new(config.queue),
            eval_threads: config.eval_threads.max(1),
            workers: worker_count,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            requests: AtomicUsize::new(0),
            evaluations: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            metrics: ServeMetrics::new(worker_count, config.queue.max(1)),
            traces: TraceStore::new(trace_store::DEFAULT_RING, trace_store::DEFAULT_SLOW),
        });

        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dtc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dtc-serve-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor thread")
        };

        Ok(Server { addr, shared, acceptor, workers })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared evaluation cache.
    pub fn cache(&self) -> &Arc<EvalCache> {
        &self.shared.cache
    }

    /// Requests parsed and routed so far.
    pub fn requests_served(&self) -> usize {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// Connections answered 503 because the accept queue was full.
    pub fn sheds(&self) -> usize {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Blocks on the acceptor — serves until the process dies.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Stops accepting, drains the queue, joins every thread, and persists
    /// a disk-backed cache.
    pub fn shutdown(self) -> Result<(), ServeError> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept` with a throwaway
        // connection; unblock idle workers via the condvar.
        let _ = TcpStream::connect(self.addr);
        self.shared.backlog.ready.notify_all();
        let _ = self.acceptor.join();
        self.shared.backlog.ready.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
        self.shared.cache.persist()?;
        Ok(())
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // A persistent accept failure (e.g. EMFILE under fd
                // exhaustion) must not busy-spin the acceptor at 100% CPU;
                // back off briefly so workers can close sockets.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Err(mut stream) = shared.backlog.try_push(stream) {
            // Saturated: refuse immediately instead of buffering without
            // bound. The client should retry with backoff.
            let shed_started = Instant::now();
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            shared.metrics.sheds.inc();
            let mut resp = Response::error(503, "evaluation queue is full, retry later");
            resp.extra.push(("retry-after", "1".to_string()));
            stamp_response(&mut resp, TraceId::generate(), shed_started);
            let _ = write_response(&mut stream, &resp, false);
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = shared.backlog.pop(&shared.shutdown) {
        shared.metrics.busy_workers.inc();
        let _ = handle_connection(shared, stream);
        shared.metrics.busy_workers.dec();
    }
}

/// Stamps the observability response headers every answer carries —
/// errors, sheds and unroutable requests included: `x-dtc-trace-id` (so
/// the client can quote the ID in a bug report even when nothing was
/// recorded) and `x-dtc-duration-us`.
fn stamp_response(resp: &mut Response, id: TraceId, started: Instant) {
    resp.extra.push(("x-dtc-duration-us", started.elapsed().as_micros().to_string()));
    resp.extra.push(("x-dtc-trace-id", id.to_string()));
}

fn handle_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    // An idle or trickling peer cannot pin a worker forever.
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut served_on_connection = 0usize;
    loop {
        let read_started = Instant::now();
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()), // peer closed between requests
            Err(ReadError::Io(_)) => return Ok(()), // timeout or reset
            Err(ReadError::TooLarge(kind)) => {
                // 431 for an oversized header section, 413 for a declared
                // body beyond the limit.
                let (label, what) = match kind {
                    TooLargeKind::Header => ("header_too_large", "header section"),
                    TooLargeKind::Body => ("body_too_large", "body"),
                };
                shared.metrics.observe_read_error(label);
                let mut resp =
                    Response::error(kind.status(), &format!("{what} exceeds the server limit"));
                stamp_response(&mut resp, TraceId::generate(), read_started);
                return write_response(&mut writer, &resp, false);
            }
            Err(ReadError::Malformed(msg)) => {
                shared.metrics.observe_read_error("malformed");
                let mut resp = Response::error(400, &msg);
                stamp_response(&mut resp, TraceId::generate(), read_started);
                return write_response(&mut writer, &resp, false);
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        if served_on_connection > 0 {
            shared.metrics.keepalive_reuse.inc();
        }
        let keep_alive = request.keep_alive() && !shared.shutdown.load(Ordering::SeqCst);
        let started = Instant::now();
        // Every request runs under its own trace: the inbound
        // `X-Dtc-Trace-Id` wins (so callers can correlate across systems),
        // else one is minted. The context is installed only for the
        // duration of routing — the guard must drop before the snapshot.
        let trace_id = request
            .header("x-dtc-trace-id")
            .and_then(TraceId::parse)
            .unwrap_or_else(TraceId::generate);
        let ctx = TraceContext::new(trace_id);
        let mut response = {
            let _guard = trace::install(&ctx);
            let _root = trace::trace_span("request");
            trace::attr_str("method", &request.method);
            trace::attr_str("route", metrics::route_label(request.path()));
            let response = route(shared, &request);
            trace::attr_int("status", response.status as i64);
            response
        };
        let micros = started.elapsed().as_micros();
        stamp_response(&mut response, ctx.id(), started);
        shared.metrics.observe_request(
            request.path(),
            response.status,
            started.elapsed().as_secs_f64(),
        );
        shared.traces.record(StoredTrace {
            id: ctx.id().to_string(),
            method: request.method.clone(),
            route: metrics::route_label(request.path()).to_string(),
            status: response.status,
            duration_us: micros as u64,
            snapshot: ctx.snapshot(),
        });
        dtc_obs::log::debug(
            "dtc-serve",
            "request",
            &[
                ("method", request.method.as_str().into()),
                ("path", request.path().into()),
                ("status", (response.status as i64).into()),
                ("duration_us", (micros as i64).into()),
                ("trace_id", ctx.id().to_string().into()),
            ],
        );
        write_response(&mut writer, &response, keep_alive)?;
        served_on_connection += 1;
        if !keep_alive {
            return Ok(());
        }
    }
}

fn route(shared: &Shared, request: &Request) -> Response {
    match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => metrics_scrape(shared),
        ("GET", "/v1/stats") => stats(shared),
        ("GET", "/v1/cache/keys") => cache_keys(shared),
        ("POST", "/v1/evaluate") => evaluate(shared, request),
        ("POST", "/v2/evaluate") => evaluate_v2(shared, request),
        ("POST", "/v2/search") => search_v2(shared, request),
        ("GET", "/v2/model/dot") => model_dot(request),
        ("GET", "/v2/debug/trace") => debug_trace(shared, request),
        ("GET", "/v2/debug/traces") => debug_traces(shared),
        ("GET", "/v2/debug/slow") => debug_slow(shared),
        (
            _,
            "/healthz" | "/metrics" | "/v1/stats" | "/v1/cache/keys" | "/v1/evaluate"
            | "/v2/evaluate" | "/v2/search" | "/v2/model/dot" | "/v2/debug/trace"
            | "/v2/debug/traces" | "/v2/debug/slow",
        ) => Response::error(405, "method not allowed for this route"),
        _ => Response::error(404, "no such route"),
    }
}

/// `GET /v2/debug/trace?id=…`: one retained trace — listing metadata plus
/// the full nested span tree — by the ID echoed in `X-Dtc-Trace-Id`.
fn debug_trace(shared: &Shared, request: &Request) -> Response {
    let Some(id) = request.query_param("id") else {
        return Response::error(
            400,
            "debug/trace needs ?id=TRACE_ID (the X-Dtc-Trace-Id of a recent request)",
        );
    };
    match shared.traces.get(&id) {
        Some(t) => Response::json(200, trace_store::trace_to_value(&t).to_json()),
        None => {
            let (ring, slow) = shared.traces.capacities();
            Response::error(
                404,
                &format!(
                    "no retained trace with id {id:?} (the server keeps the {ring} most \
                     recent traces plus the {slow} slowest)"
                ),
            )
        }
    }
}

/// `GET /v2/debug/traces`: the recent-trace ring, newest first — listing
/// metadata only; fetch a tree via `/v2/debug/trace?id=…`.
fn debug_traces(shared: &Shared) -> Response {
    let traces = shared.traces.recent();
    let doc = Value::object([
        ("count", Value::Int(traces.len() as i64)),
        (
            "traces",
            Value::Array(traces.iter().map(|t| trace_store::summary_to_value(t)).collect()),
        ),
    ]);
    Response::json(200, doc.to_json())
}

/// `GET /v2/debug/slow`: the slowest retained traces, slowest first —
/// these survive ring rotation, so the worst requests stay inspectable.
fn debug_slow(shared: &Shared) -> Response {
    let traces = shared.traces.slowest();
    let doc = Value::object([
        ("count", Value::Int(traces.len() as i64)),
        (
            "traces",
            Value::Array(traces.iter().map(|t| trace_store::summary_to_value(t)).collect()),
        ),
    ]);
    Response::json(200, doc.to_json())
}

/// `GET /metrics`: the Prometheus text scrape — this server's HTTP
/// instruments, the evaluation cache's counters, and the process-global
/// solver-stage registry.
fn metrics_scrape(shared: &Shared) -> Response {
    shared.metrics.queue_depth.set(shared.backlog.depth() as i64);
    Response::text(
        200,
        dtc_obs::expo::CONTENT_TYPE,
        shared.metrics.render_scrape(&shared.cache.stats()),
    )
}

/// `GET /v2/model/dot?scenario=…[&catalog=table7|fig7]`: renders the
/// compiled GSPN of one bundled-catalog scenario as Graphviz DOT
/// (`text/vnd.graphviz`; pipe through `dot -Tsvg`). Scenario names are the
/// expanded names `dtc run` prints — percent-encode spaces and brackets.
/// Without `catalog`, both bundled catalogs are searched.
/// The bundled catalogs' expanded scenario lists, computed once per
/// process — `/v2/model/dot` serves from these instead of re-running grid
/// expansion per request. Bundled catalogs are golden-tested to expand;
/// should one ever fail here, it is served as an empty list (every lookup
/// in it 404s) rather than panicking a worker.
fn bundled_expansions() -> &'static [(String, Vec<dtc_engine::Scenario>)] {
    static EXPANSIONS: std::sync::OnceLock<Vec<(String, Vec<dtc_engine::Scenario>)>> =
        std::sync::OnceLock::new();
    EXPANSIONS.get_or_init(|| {
        [catalogs::table7(), catalogs::fig7()]
            .into_iter()
            .map(|catalog| {
                let scenarios = catalog.expand().unwrap_or_else(|e| {
                    dtc_obs::log::warn(
                        "dtc-serve",
                        "bundled catalog does not expand",
                        &[
                            ("catalog", catalog.name.as_str().into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                    Vec::new()
                });
                (catalog.name, scenarios)
            })
            .collect()
    })
}

fn model_dot(request: &Request) -> Response {
    let Some(scenario) = request.query_param("scenario") else {
        return Response::error(
            400,
            "model/dot needs ?scenario=NAME (an expanded scenario name, percent-encoded)",
        );
    };
    let wanted = request.query_param("catalog");
    let wanted = wanted.as_deref();
    if let Some(name) = wanted {
        if !bundled_expansions().iter().any(|(n, _)| n == name) {
            return Response::error(
                400,
                &format!("unknown catalog {name:?} (expected table7 or fig7)"),
            );
        }
    }
    let searched =
        || bundled_expansions().iter().filter(move |(n, _)| wanted.is_none_or(|w| w == n));
    if let Some(s) =
        searched().flat_map(|(_, scenarios)| scenarios).find(|s| s.name == scenario)
    {
        return match dtc_core::CloudModel::build(&s.spec) {
            Ok(model) => Response::text(
                200,
                "text/vnd.graphviz; charset=utf-8",
                dtc_petri::to_dot(model.net()),
            ),
            Err(e) => Response::error(500, &format!("scenario does not compile: {e}")),
        };
    }
    let names: Vec<String> = searched()
        .flat_map(|(_, scenarios)| scenarios)
        .take(3)
        .map(|s| format!("{:?}", s.name))
        .collect();
    Response::error(
        404,
        &format!(
            "no scenario named {scenario:?} in {}; names look like {}, …",
            searched().map(|(n, _)| n.as_str()).collect::<Vec<_>>().join("/"),
            names.join(", ")
        ),
    )
}

fn healthz(shared: &Shared) -> Response {
    let doc = Value::object([
        ("status", Value::Str("ok".into())),
        ("workers", Value::Int(shared.workers as i64)),
        ("queue_depth", Value::Int(shared.backlog.depth() as i64)),
    ]);
    Response::json(200, doc.to_json())
}

fn stats(shared: &Shared) -> Response {
    let cache = shared.cache.stats();
    let doc = Value::object([
        (
            "cache",
            Value::object([
                ("hits", Value::Int(cache.hits as i64)),
                ("misses", Value::Int(cache.misses as i64)),
                ("joins", Value::Int(cache.joins as i64)),
                ("entries", Value::Int(cache.entries as i64)),
                ("evictions", Value::Int(cache.evictions as i64)),
                // Batch-dedup effectiveness: how many candidates the
                // evaluate/search batches submitted vs. how many distinct
                // specs were left after in-batch dedup.
                ("batch_candidates", Value::Int(cache.batch_candidates as i64)),
                ("batch_distinct", Value::Int(cache.batch_distinct as i64)),
            ]),
        ),
        (
            "queue",
            Value::object([
                ("capacity", Value::Int(shared.backlog.capacity as i64)),
                ("depth", Value::Int(shared.backlog.depth() as i64)),
                ("rejected", Value::Int(shared.rejected.load(Ordering::Relaxed) as i64)),
            ]),
        ),
        (
            "server",
            Value::object([
                ("workers", Value::Int(shared.workers as i64)),
                ("requests", Value::Int(shared.requests.load(Ordering::Relaxed) as i64)),
                ("evaluations", Value::Int(shared.evaluations.load(Ordering::Relaxed) as i64)),
                ("uptime_seconds", Value::Float(shared.started.elapsed().as_secs_f64())),
            ]),
        ),
    ]);
    Response::json(200, doc.to_json())
}

fn cache_keys(shared: &Shared) -> Response {
    let keys = shared.cache.keys();
    let doc = Value::object([
        ("count", Value::Int(keys.len() as i64)),
        ("keys", Value::Array(keys.into_iter().map(Value::Str).collect())),
    ]);
    Response::json(200, doc.to_json())
}

/// A parsed `POST /v1/evaluate` / `POST /v2/evaluate` / `POST /v2/search`
/// request body. Every evaluation route accepts the same two shapes
/// through [`parse_catalog_request`], so a custom catalog document can be
/// POSTed anywhere with one set of error messages:
///
/// * a **bare catalog document** — exactly what `dtc run` reads from
///   disk, serialized to JSON; or
/// * the **envelope** `{"catalog": <catalog document>, "analyses": …?,
///   "search": …?}` — the document plus request-level overrides.
struct CatalogRequest {
    catalog: Catalog,
    /// The envelope's `analyses` override, when present.
    analyses: Option<Vec<AnalysisRequest>>,
    /// The envelope's `search` override, when present.
    search: Option<SearchConfig>,
}

/// The one request-body catalog parser behind all three POST routes.
///
/// A body is the envelope when its `"catalog"` value is itself a catalog
/// *document* (it has a `catalog` metadata table or a `scenario` template
/// list); in a bare document the top-level `"catalog"` key is just the
/// name/description metadata, so the two shapes cannot be confused.
fn parse_catalog_request(body: &[u8]) -> Result<CatalogRequest, Box<Response>> {
    let bad = |msg: String| Box::new(Response::error(400, &msg));
    let text = std::str::from_utf8(body).map_err(|_| bad("body is not UTF-8".into()))?;
    let root = Value::from_json(text).map_err(|e| bad(format!("body does not parse: {e}")))?;
    let envelope = root
        .get("catalog")
        .is_some_and(|inner| inner.get("catalog").is_some() || inner.get("scenario").is_some());
    let doc = if envelope { root.get("catalog").expect("envelope has catalog") } else { &root };
    let catalog =
        Catalog::from_value(doc).map_err(|e| bad(format!("catalog does not parse: {e}")))?;
    let mut parsed = CatalogRequest { catalog, analyses: None, search: None };
    if envelope {
        if let Some(v) = root.get("analyses") {
            parsed.analyses =
                Some(parse_analyses(v).map_err(|e| bad(format!("bad analyses: {e}")))?);
        }
        if let Some(v) = root.get("search") {
            parsed.search =
                Some(parse_search_section(v).map_err(|e| bad(format!("bad search: {e}")))?);
        }
    }
    Ok(parsed)
}

/// `POST /v1/evaluate`: the original steady-state route, now a thin
/// wrapper over the v2 pipeline with a fixed `[steady_state]` analysis
/// set. Existing v1 response fields are unchanged; the shared pipeline
/// additionally includes the `analyses` list and per-result report union
/// (additive for v1 clients).
fn evaluate(shared: &Shared, request: &Request) -> Response {
    let parsed = match parse_catalog_request(&request.body) {
        Ok(parsed) => parsed,
        Err(resp) => return *resp,
    };
    run_analyses(shared, &parsed.catalog, vec![AnalysisRequest::SteadyState], false, false)
}

/// `POST /v2/evaluate`: `{"catalog": <catalog document>, "analyses":
/// [...]}` or a bare catalog document. The analysis set falls back to the
/// catalog's own `[analyses]` section (which itself defaults to steady
/// state). `?trace=1` inlines the request's span tree into the response.
fn evaluate_v2(shared: &Shared, request: &Request) -> Response {
    let inline_trace = request.query_param("trace").is_some_and(|v| v == "1" || v == "true");
    let parsed = match parse_catalog_request(&request.body) {
        Ok(parsed) => parsed,
        Err(resp) => return *resp,
    };
    let analyses = parsed.analyses.clone().unwrap_or_else(|| parsed.catalog.analyses.clone());
    run_analyses(shared, &parsed.catalog, analyses, true, inline_trace)
}

/// `POST /v2/search`: SLO-driven design search over the POSTed catalog's
/// expanded grid. The search configuration comes from the envelope's
/// `"search"` object when present, else the catalog's own `[search]`
/// section; a body carrying neither is a 400. Candidates are evaluated
/// through the same shared single-flight cache as the evaluate routes (so
/// a repeated search is answered from cache), and the response body is
/// the canonical search JSON — bit-identical to
/// `dtc search --format json` on the same catalog.
fn search_v2(shared: &Shared, request: &Request) -> Response {
    let parsed = match parse_catalog_request(&request.body) {
        Ok(parsed) => parsed,
        Err(resp) => return *resp,
    };
    let config = match parsed.search.or_else(|| parsed.catalog.search.clone()) {
        Some(config) => config,
        None => {
            return Response::error(
                400,
                "search needs a configuration: give the catalog a [search] section or \
                 POST {\"catalog\": …, \"search\": {\"availability_floor\": …}}",
            )
        }
    };
    let opts = SearchOptions { threads: shared.eval_threads, ..SearchOptions::default() };
    let report = match dtc_search::run_search(&parsed.catalog, &config, &shared.cache, &opts) {
        Ok(report) => report,
        Err(e) => return Response::error(400, &format!("search failed: {e}")),
    };
    shared.evaluations.fetch_add(1, Ordering::Relaxed);
    if report.stats.evaluated > 0 || report.stats.probe_evaluations > 0 {
        // Same rationale as the evaluate pipeline: flush fresh solves
        // before a kill can discard them. In-memory caches no-op.
        let _span = trace::trace_span("persist");
        if let Err(e) = shared.cache.persist() {
            dtc_obs::log::warn(
                "dtc-serve",
                "cache persist failed",
                &[("error", e.to_string().into())],
            );
        }
    }
    Response::json(200, dtc_search::report::report_to_value(&report).to_json())
}

/// The shared evaluation pipeline behind both routes: expand, fan out
/// through the single-flight cache with the given analysis set, persist,
/// render. With `include_timings` (the v2 route) the response additionally
/// carries a `"timings"` object with per-stage wall times in microseconds;
/// with `inline_trace` (`?trace=1`) it carries the request's span tree so
/// far (the `request` root is still open when the snapshot is taken).
fn run_analyses(
    shared: &Shared,
    catalog: &Catalog,
    analyses: Vec<AnalysisRequest>,
    include_timings: bool,
    inline_trace: bool,
) -> Response {
    let pipeline_started = Instant::now();
    let scenarios = {
        let _span = trace::trace_span("expand");
        let scenarios = match catalog.expand() {
            Ok(scenarios) => scenarios,
            Err(e) => return Response::error(400, &format!("catalog does not expand: {e}")),
        };
        trace::attr_int("scenarios", scenarios.len() as i64);
        scenarios
    };
    let expand_us = pipeline_started.elapsed().as_micros();
    let kinds: Vec<Value> = analyses.iter().map(|a| Value::Str(a.kind().into())).collect();
    // `--eval-threads` is the whole per-request solver budget: run_batch
    // divides it between batch workers and the perturbed-model fan-out
    // inside a sensitivity analysis, so one request cannot oversubscribe
    // the pool (neither threads× workers nor one sweep worker per core).
    let opts = RunOptions { threads: shared.eval_threads, analyses, ..RunOptions::default() };
    let evaluate_started = Instant::now();
    let result = {
        let _span = trace::trace_span("evaluate");
        let result = run_batch(&scenarios, &shared.cache, &opts);
        trace::attr_int("evaluated", result.evaluated as i64);
        trace::attr_int("cached", result.cached as i64);
        result
    };
    let evaluate_us = evaluate_started.elapsed().as_micros();
    shared.evaluations.fetch_add(1, Ordering::Relaxed);
    let persist_started = Instant::now();
    if result.evaluated > 0 {
        // Flush new solves to a disk-backed store right away: a served
        // process is normally stopped by a kill, which would otherwise
        // discard everything since startup. In-memory caches no-op here.
        let _span = trace::trace_span("persist");
        if let Err(e) = shared.cache.persist() {
            dtc_obs::log::warn(
                "dtc-serve",
                "cache persist failed",
                &[("error", e.to_string().into())],
            );
        }
    }
    let persist_us = persist_started.elapsed().as_micros();
    let mut fields = vec![
        ("catalog", Value::Str(catalog.name.clone())),
        ("analyses", Value::Array(kinds)),
        ("results", results_to_value(&scenarios, &result.outcomes)),
        (
            "summary",
            Value::object([
                ("scenarios", Value::Int(result.outcomes.len() as i64)),
                ("evaluated", Value::Int(result.evaluated as i64)),
                ("cached", Value::Int(result.cached as i64)),
                ("deduplicated", Value::Int(result.deduplicated as i64)),
                ("solve_ms", Value::Float(result.solve_time.as_secs_f64() * 1000.0)),
            ]),
        ),
    ];
    if include_timings {
        fields.push((
            "timings",
            Value::object([
                ("expand_us", Value::Int(expand_us as i64)),
                ("evaluate_us", Value::Int(evaluate_us as i64)),
                ("persist_us", Value::Int(persist_us as i64)),
                ("total_us", Value::Int(pipeline_started.elapsed().as_micros() as i64)),
            ]),
        ));
    }
    if inline_trace {
        // The tree as collected so far: everything below the `request`
        // root is finished; the root itself is snapshotted mid-flight
        // (its `open` flag says so) since the response is still being
        // rendered inside it.
        if let Some(snapshot) = trace::snapshot_current() {
            fields.push(("trace", trace_store::snapshot_to_value(&snapshot)));
        }
    }
    Response::json(200, Value::object(fields).to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backlog_rejects_when_full_and_drains_fifo() {
        // Loop a listener to mint real TcpStreams without a server.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mint = || {
            let client = TcpStream::connect(addr).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            (client, server_side)
        };

        let backlog = Backlog::new(2);
        let shutdown = AtomicBool::new(false);
        let (_c1, s1) = mint();
        let (_c2, s2) = mint();
        let (_c3, s3) = mint();
        let p1 = s1.peer_addr().unwrap();
        let p2 = s2.peer_addr().unwrap();
        assert!(backlog.try_push(s1).is_ok());
        assert!(backlog.try_push(s2).is_ok());
        let bounced = backlog.try_push(s3);
        assert!(bounced.is_err(), "third connection exceeds capacity 2");
        assert_eq!(backlog.depth(), 2);

        assert_eq!(backlog.pop(&shutdown).unwrap().peer_addr().unwrap(), p1, "FIFO");
        assert_eq!(backlog.pop(&shutdown).unwrap().peer_addr().unwrap(), p2);
        shutdown.store(true, Ordering::SeqCst);
        assert!(backlog.pop(&shutdown).is_none(), "drained + shutdown ends workers");
    }

    #[test]
    fn backlog_capacity_is_at_least_one() {
        assert_eq!(Backlog::new(0).capacity, 1);
    }
}
