//! Argument parsing and entry points for `dtc serve` and `loadgen`.

use crate::loadgen;
use crate::{ServeConfig, Server};
use std::path::PathBuf;

const SERVE_USAGE: &str = "\
dtc serve — HTTP availability-evaluation service

usage: dtc serve [options]

options:
  --addr HOST:PORT    listen address (default 127.0.0.1:7878; port 0 = ephemeral)
  --threads N         HTTP worker threads (default: available cores)
  --queue N           pending-connection queue capacity (default 128);
                      the acceptor answers 503 beyond it
  --eval-threads N    solver threads inside one request batch (default 1)
  --cache FILE        persistent JSON evaluation cache
  --cache-cap N       cap resident cache entries (oldest evicted first)

routes:
  GET  /healthz         liveness
  GET  /metrics         Prometheus text exposition (HTTP, cache and solver-stage
                        metrics)
  GET  /v1/stats        cache + queue + server counters
  POST /v1/evaluate     evaluate a JSON catalog document (steady state)
  POST /v2/evaluate     {catalog, analyses} or a bare catalog document: run any
                        analysis set (steady_state, transient, interval, mttsf,
                        capacity_thresholds, cost, simulation, sensitivity)
                        from one state-space construction
  POST /v2/search       {catalog, search?} or a bare catalog document with a
                        [search] section: SLO-driven design search (feasible
                        set, Pareto frontier, cheapest-feasible pick,
                        break-even disaster rates); JSON is bit-identical to
                        `dtc search --format json`
  GET  /v2/model/dot    ?scenario=NAME[&catalog=table7|fig7] — the compiled
                        GSPN of a bundled-catalog scenario as Graphviz DOT
  GET  /v1/cache/keys   stored content-addressed keys
  GET  /v2/debug/trace  ?id=TRACE_ID — one request's span tree (the ID every
                        response echoes as X-Dtc-Trace-Id); POST /v2/evaluate
                        with ?trace=1 inlines the tree in the response
  GET  /v2/debug/traces recent traces, newest first (bounded ring)
  GET  /v2/debug/slow   slowest retained traces (survive ring rotation)

diagnostics are JSON lines on stderr; set DTC_LOG=error|warn|info|debug
(default info; debug logs every request with its trace id)

the full request/response cookbook is in docs/HTTP_API.md
";

fn parse_usize(name: &str, value: &str) -> Result<usize, String> {
    value.parse().map_err(|_| format!("{name} expects a number, got {value:?}"))
}

/// Parses `dtc serve` arguments into a [`ServeConfig`].
pub fn parse_serve_args(args: &[String]) -> Result<Option<ServeConfig>, String> {
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = take("--addr")?,
            "--threads" => config.threads = parse_usize("--threads", &take("--threads")?)?,
            "--queue" => config.queue = parse_usize("--queue", &take("--queue")?)?,
            "--eval-threads" => {
                config.eval_threads = parse_usize("--eval-threads", &take("--eval-threads")?)?
            }
            "--cache" => config.cache_path = Some(PathBuf::from(take("--cache")?)),
            "--cache-cap" => {
                config.cache_cap = Some(parse_usize("--cache-cap", &take("--cache-cap")?)?)
            }
            "--help" | "-h" | "help" => return Ok(None),
            other => return Err(format!("unknown serve option {other:?}")),
        }
    }
    Ok(Some(config))
}

/// `dtc serve` entry point; blocks until the process is killed.
pub fn run_serve(args: &[String]) -> i32 {
    let config = match parse_serve_args(args) {
        Ok(Some(config)) => config,
        Ok(None) => {
            println!("{SERVE_USAGE}");
            return 0;
        }
        Err(msg) => {
            eprintln!("dtc serve: {msg}");
            return 2;
        }
    };
    match Server::start(&config) {
        Ok(server) => {
            dtc_obs::log::info(
                "dtc-serve",
                "listening",
                &[
                    ("addr", server.addr().to_string().into()),
                    ("workers", (config.threads.max(1) as i64).into()),
                    ("queue", (config.queue.max(1) as i64).into()),
                ],
            );
            server.join();
            0
        }
        Err(e) => {
            eprintln!("dtc serve: {e}");
            2
        }
    }
}

const LOADGEN_USAGE: &str = "\
loadgen — throughput/latency harness for dtc-serve

usage: loadgen --addr HOST:PORT [options]

options:
  --addr HOST:PORT    target server (required)
  --clients N         concurrent client threads (default 8)
  --requests N        requests per client (default 50)
  --duration SECONDS  run each client for a wall-clock budget instead of a
                      request count (overrides --requests)
  --healthz           GET /healthz instead of POST /v1/evaluate
  --catalog FILE      POST this JSON catalog instead of the built-in tiny one
  --mix N             rotate through N distinct built-in scenario bodies so the
                      run exercises the cache-miss/solve path, not just hits
";

/// Parses `loadgen` arguments.
pub fn parse_loadgen_args(args: &[String]) -> Result<Option<loadgen::Options>, String> {
    let mut opts = loadgen::Options::default();
    let mut addr_given = false;
    let mut catalog_given = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => {
                opts.addr = take("--addr")?;
                addr_given = true;
            }
            "--clients" => opts.clients = parse_usize("--clients", &take("--clients")?)?,
            "--requests" => {
                opts.requests_per_client = parse_usize("--requests", &take("--requests")?)?
            }
            "--duration" => {
                let value = take("--duration")?;
                let secs: f64 = value
                    .parse()
                    .map_err(|_| format!("--duration expects seconds, got {value:?}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("--duration needs a positive duration, got {value}"));
                }
                opts.duration = Some(secs);
            }
            "--healthz" => {
                opts.method = "GET".into();
                opts.path = "/healthz".into();
                opts.body = None;
            }
            "--catalog" => {
                let path = take("--catalog")?;
                let text = std::fs::read(&path).map_err(|e| format!("{path}: {e}"))?;
                opts.body = Some(text);
                catalog_given = true;
            }
            "--mix" => {
                opts.mix = parse_usize("--mix", &take("--mix")?)?;
                if opts.mix == 0 {
                    return Err("--mix needs at least 1 body".into());
                }
            }
            "--help" | "-h" | "help" => return Ok(None),
            other => return Err(format!("unknown loadgen option {other:?}")),
        }
    }
    if !addr_given {
        return Err("--addr HOST:PORT is required (see loadgen --help)".into());
    }
    if opts.mix > 1 && catalog_given {
        return Err("--mix uses the built-in body rotation and would ignore --catalog; \
                    drop one of them"
            .into());
    }
    if opts.mix > 1 && opts.body.is_none() {
        return Err("--mix only applies to POST /v1/evaluate; drop --healthz".into());
    }
    Ok(Some(opts))
}

/// `loadgen` binary entry point.
pub fn run_loadgen(args: &[String]) -> i32 {
    let opts = match parse_loadgen_args(args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            println!("{LOADGEN_USAGE}");
            return 0;
        }
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            return 2;
        }
    };
    let summary = loadgen::run(&opts);
    print!("{}", loadgen::render(&opts, &summary));
    if summary.failed > 0 {
        eprintln!("loadgen: {} request(s) failed", summary.failed);
        return 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serve_args_parse() {
        let config = parse_serve_args(&strs(&[
            "--addr",
            "0.0.0.0:9000",
            "--threads",
            "3",
            "--queue",
            "7",
            "--eval-threads",
            "2",
            "--cache-cap",
            "100",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(config.addr, "0.0.0.0:9000");
        assert_eq!(config.threads, 3);
        assert_eq!(config.queue, 7);
        assert_eq!(config.eval_threads, 2);
        assert_eq!(config.cache_cap, Some(100));

        assert!(parse_serve_args(&strs(&["--queue"])).is_err());
        assert!(parse_serve_args(&strs(&["--wat"])).is_err());
        assert!(parse_serve_args(&strs(&["--help"])).unwrap().is_none());
    }

    #[test]
    fn loadgen_args_require_addr() {
        assert!(parse_loadgen_args(&strs(&["--clients", "4"])).is_err());
        let opts = parse_loadgen_args(&strs(&["--addr", "127.0.0.1:1", "--healthz"]))
            .unwrap()
            .unwrap();
        assert_eq!(opts.method, "GET");
        assert_eq!(opts.path, "/healthz");
        assert!(opts.body.is_none());
        assert_eq!(opts.mix, 1);
    }

    #[test]
    fn loadgen_mix_parses_and_rejects_zero() {
        let opts = parse_loadgen_args(&strs(&["--addr", "127.0.0.1:1", "--mix", "4"]))
            .unwrap()
            .unwrap();
        assert_eq!(opts.mix, 4);
        assert!(parse_loadgen_args(&strs(&["--addr", "127.0.0.1:1", "--mix", "0"])).is_err());
    }

    #[test]
    fn loadgen_duration_parses_and_rejects_nonpositive() {
        let opts = parse_loadgen_args(&strs(&["--addr", "127.0.0.1:1", "--duration", "2.5"]))
            .unwrap()
            .unwrap();
        assert_eq!(opts.duration, Some(2.5));
        for bad in ["0", "-1", "inf", "zebra"] {
            assert!(
                parse_loadgen_args(&strs(&["--addr", "127.0.0.1:1", "--duration", bad]))
                    .is_err(),
                "--duration {bad} must be rejected"
            );
        }
    }
}
