//! A minimal, dependency-free HTTP/1.1 layer over `std::io`.
//!
//! Implements exactly what the evaluation service and the load generator
//! need: request-line + header parsing with hard size limits,
//! `Content-Length` bodies, case-insensitive header lookup, keep-alive
//! detection, and response serialization. No chunked encoding, no TLS —
//! catalogs and reports are small JSON documents.

use std::io::{self, BufRead, Write};

/// Upper bound on the request line plus all headers.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Upper bound on a request body (catalog documents are small).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method verb, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The raw request target (path plus optional query).
    pub target: String,
    /// Protocol version as written (`HTTP/1.1`).
    pub version: String,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body, empty unless `Content-Length` said otherwise.
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// The target without its query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The value of query parameter `name`, percent-decoded (`+` also
    /// decodes to a space). The first occurrence wins; a key without `=`
    /// yields an empty string.
    pub fn query_param(&self, name: &str) -> Option<String> {
        let query = self.target.split_once('?')?.1;
        query.split('&').find_map(|pair| {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(key) == name).then(|| percent_decode(value))
        })
    }

    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 defaults to keep-alive unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) => !v.eq_ignore_ascii_case("close"),
            None => self.version == "HTTP/1.1",
        }
    }
}

/// Percent-decodes a query component (`%41` → `A`, `+` → space). Invalid
/// or truncated escapes are passed through literally rather than erroring:
/// query strings here only select resources, so the worst case is a lookup
/// miss.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                // Both escape characters must be hex digits — from_str_radix
                // alone would also accept sign-prefixed forms like "+5".
                match bytes.get(i + 1..i + 3).and_then(|h| {
                    if !h.iter().all(u8::is_ascii_hexdigit) {
                        return None;
                    }
                    u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()
                }) {
                    Some(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Which size limit a rejected request exceeded. Each kind maps to its own
/// HTTP status: an oversized header section is `431 Request Header Fields
/// Too Large`, an oversized declared body is `413 Payload Too Large`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TooLargeKind {
    /// The request line plus headers exceeded [`MAX_HEADER_BYTES`].
    Header,
    /// The declared `Content-Length` exceeded [`MAX_BODY_BYTES`].
    Body,
}

impl TooLargeKind {
    /// The HTTP status this rejection must answer with.
    pub fn status(self) -> u16 {
        match self {
            TooLargeKind::Header => 431,
            TooLargeKind::Body => 413,
        }
    }

    fn what(self) -> &'static str {
        match self {
            TooLargeKind::Header => "header section",
            TooLargeKind::Body => "body",
        }
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The underlying socket failed (including read timeouts).
    Io(io::Error),
    /// The request exceeded a size limit — answer
    /// [`TooLargeKind::status`] (431 or 413).
    TooLarge(TooLargeKind),
    /// The bytes were not valid HTTP — answer 400.
    Malformed(String),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io: {e}"),
            ReadError::TooLarge(kind) => write!(f, "{} too large", kind.what()),
            ReadError::Malformed(msg) => write!(f, "malformed request: {msg}"),
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one line (up to CRLF or LF) with a byte budget shared across the
/// whole header section.
fn read_line(r: &mut impl BufRead, budget: &mut usize) -> Result<String, ReadError> {
    let mut raw = Vec::new();
    loop {
        let available = r.fill_buf()?;
        if available.is_empty() {
            if raw.is_empty() {
                return Ok(String::new()); // clean EOF before any byte
            }
            return Err(ReadError::Malformed("unexpected EOF inside header".into()));
        }
        let take = match available.iter().position(|&b| b == b'\n') {
            Some(nl) => nl + 1,
            None => available.len(),
        };
        if take > *budget {
            return Err(ReadError::TooLarge(TooLargeKind::Header));
        }
        *budget -= take;
        let done = available[take - 1] == b'\n';
        raw.extend_from_slice(&available[..take]);
        r.consume(take);
        if done {
            break;
        }
    }
    while raw.last() == Some(&b'\n') || raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| ReadError::Malformed("non-UTF-8 header".into()))
}

/// Reads one request. `Ok(None)` means the peer closed the connection
/// cleanly before sending anything (normal keep-alive end).
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>, ReadError> {
    let mut budget = MAX_HEADER_BYTES;
    let line = read_line(r, &mut budget)?;
    if line.is_empty() {
        // Either clean EOF or a stray blank line; treat both as end.
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/") => {
            (m.to_string(), t.to_string(), v.to_string())
        }
        _ => return Err(ReadError::Malformed(format!("bad request line {line:?}"))),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(r, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let request = Request { method, target, version, headers, body: Vec::new() };
    let length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge(TooLargeKind::Body));
    }
    let mut body = vec![0u8; length];
    if length > 0 {
        r.read_exact(&mut body)?;
    }
    Ok(Some(Request { body, ..request }))
}

/// An HTTP response ready for serialization.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Extra headers (name, value), e.g. `Retry-After`.
    pub extra: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            extra: Vec::new(),
        }
    }

    /// A plain-body response with an explicit content type (e.g. the
    /// Graphviz DOT export).
    pub fn text(status: u16, content_type: &'static str, body: String) -> Response {
        Response { status, content_type, body: body.into_bytes(), extra: Vec::new() }
    }

    /// A JSON error envelope `{"error": …}`.
    pub fn error(status: u16, message: &str) -> Response {
        let mut escaped = String::with_capacity(message.len() + 2);
        for c in message.chars() {
            match c {
                '"' => escaped.push_str("\\\""),
                '\\' => escaped.push_str("\\\\"),
                '\n' => escaped.push_str("\\n"),
                c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
                c => escaped.push(c),
            }
        }
        Response::json(status, format!("{{\"error\":\"{escaped}\"}}"))
    }
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes a response; `keep_alive` selects the `Connection` header.
pub fn write_response(w: &mut impl Write, resp: &Response, keep_alive: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &resp.extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(&resp.body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, ReadError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_get_with_headers() {
        let req =
            parse(b"GET /v1/stats?x=1 HTTP/1.1\r\nHost: localhost\r\nX-Thing: a b\r\n\r\n")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/v1/stats?x=1");
        assert_eq!(req.path(), "/v1/stats");
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("x-thing"), Some("a b"));
        assert!(req.keep_alive(), "HTTP/1.1 defaults to keep-alive");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req = parse(b"POST /v1/evaluate HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\":rest")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn query_params_decode_percent_escapes_and_plus() {
        let req = parse(
            b"GET /v2/model/dot?catalog=table7&scenario=Baseline%20architecture:%20Rio\
+-+Tokio&flag HTTP/1.1\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.path(), "/v2/model/dot");
        assert_eq!(req.query_param("catalog").as_deref(), Some("table7"));
        assert_eq!(
            req.query_param("scenario").as_deref(),
            Some("Baseline architecture: Rio - Tokio")
        );
        assert_eq!(req.query_param("flag").as_deref(), Some(""), "bare key is empty");
        assert_eq!(req.query_param("missing"), None);

        let plain = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(plain.query_param("x"), None, "no query string at all");

        // Grid-expanded names round-trip: brackets, commas and equals.
        assert_eq!(
            percent_decode("fig7%5Bsecondary%3DBrasilia%2Calpha%3D0.35%5D"),
            "fig7[secondary=Brasilia,alpha=0.35]"
        );
        // Malformed escapes fall through literally instead of erroring.
        assert_eq!(percent_decode("100%zz%4"), "100%zz%4");
        // Sign-prefixed pseudo-hex must not decode ("%+5" is not an
        // escape; the '+' still means space).
        assert_eq!(percent_decode("a%+5b"), "a% 5b");
        assert_eq!(percent_decode("%-1"), "%-1");
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive());
        let req10 = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req10.keep_alive(), "HTTP/1.0 defaults to close");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(matches!(parse(b"NOT-HTTP\r\n\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_header_and_body_are_rejected() {
        let mut big = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
        big.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 10));
        assert!(matches!(parse(&big), Err(ReadError::TooLarge(TooLargeKind::Header))));
        assert_eq!(TooLargeKind::Header.status(), 431);

        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse(huge.as_bytes()), Err(ReadError::TooLarge(TooLargeKind::Body))));
        assert_eq!(TooLargeKind::Body.status(), 413);
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"),
            Err(ReadError::Io(_))
        ));
    }

    #[test]
    fn response_round_trips_through_parser() {
        let resp = Response::json(200, "{\"ok\":true}".into());
        let mut wire = Vec::new();
        write_response(&mut wire, &resp, false).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn error_envelope_escapes_quotes() {
        let resp = Response::error(400, "bad \"thing\"\nhere");
        let body = String::from_utf8(resp.body).unwrap();
        assert_eq!(body, "{\"error\":\"bad \\\"thing\\\"\\nhere\"}");
    }
}
