//! Bounded in-memory retention of finished request traces.
//!
//! Every request the server answers produces one [`StoredTrace`] (the
//! span tree from `dtc-obs` plus routing metadata). The store keeps two
//! bounded views over them:
//!
//! * a **ring** of the most recent traces (`GET /v2/debug/traces`), so
//!   "what just happened" is always answerable, and
//! * a **slowest-N reservoir** (`GET /v2/debug/slow`), so the worst
//!   requests survive even after thousands of fast ones have rotated
//!   through the ring.
//!
//! `GET /v2/debug/trace?id=…` searches both, newest first. Memory is
//! bounded by `ring + slow` snapshots regardless of traffic; a trace that
//! falls out of both views is gone (this is a debugging aid, not an audit
//! log).

use dtc_engine::value::Value;
use dtc_obs::trace::{AttrValue, TraceSnapshot};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// How many recent traces `/v2/debug/traces` retains by default.
pub const DEFAULT_RING: usize = 128;
/// How many slowest traces `/v2/debug/slow` retains by default.
pub const DEFAULT_SLOW: usize = 16;

/// One finished request's trace plus the routing metadata needed to list
/// it without walking the span tree.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// The trace ID as echoed in `X-Dtc-Trace-Id` (32 lowercase hex digits).
    pub id: String,
    /// Request method (`GET`, `POST`, …).
    pub method: String,
    /// Bounded route label (see [`crate::metrics::route_label`]).
    pub route: String,
    /// Response status code.
    pub status: u16,
    /// Wall time from parsed request to serialized response.
    pub duration_us: u64,
    /// The full span tree captured when the request finished.
    pub snapshot: TraceSnapshot,
}

/// The two bounded views, behind one lock (recording is a few pushes per
/// request — far off the hot path's lock-free counters).
#[derive(Debug)]
struct Inner {
    ring: VecDeque<Arc<StoredTrace>>,
    /// Sorted by `duration_us` descending; ties keep insertion order.
    slow: Vec<Arc<StoredTrace>>,
}

/// Bounded retention of finished traces: a recency ring plus a slowest-N
/// reservoir. See the module docs for the exposed routes.
#[derive(Debug)]
pub struct TraceStore {
    inner: Mutex<Inner>,
    ring_cap: usize,
    slow_cap: usize,
}

impl TraceStore {
    /// A store keeping the `ring_cap` most recent and `slow_cap` slowest
    /// traces (each capacity is at least 1).
    pub fn new(ring_cap: usize, slow_cap: usize) -> TraceStore {
        TraceStore {
            inner: Mutex::new(Inner {
                ring: VecDeque::with_capacity(ring_cap.max(1)),
                slow: Vec::with_capacity(slow_cap.max(1) + 1),
            }),
            ring_cap: ring_cap.max(1),
            slow_cap: slow_cap.max(1),
        }
    }

    /// Records one finished trace into both views, evicting the oldest
    /// ring entry and the fastest reservoir entry as needed.
    pub fn record(&self, trace: StoredTrace) {
        let trace = Arc::new(trace);
        let mut inner = self.inner.lock().expect("trace store poisoned");
        if inner.ring.len() >= self.ring_cap {
            inner.ring.pop_front();
        }
        inner.ring.push_back(Arc::clone(&trace));
        // Insert after the last entry at least as slow, keeping the vec
        // sorted descending with stable ties.
        let at = inner.slow.partition_point(|t| t.duration_us >= trace.duration_us);
        inner.slow.insert(at, trace);
        inner.slow.truncate(self.slow_cap);
    }

    /// Looks a trace up by ID, searching the ring newest-first and then
    /// the slow reservoir.
    pub fn get(&self, id: &str) -> Option<Arc<StoredTrace>> {
        let inner = self.inner.lock().expect("trace store poisoned");
        inner.ring.iter().rev().chain(inner.slow.iter()).find(|t| t.id == id).map(Arc::clone)
    }

    /// The retained recent traces, newest first.
    pub fn recent(&self) -> Vec<Arc<StoredTrace>> {
        let inner = self.inner.lock().expect("trace store poisoned");
        inner.ring.iter().rev().map(Arc::clone).collect()
    }

    /// The retained slowest traces, slowest first.
    pub fn slowest(&self) -> Vec<Arc<StoredTrace>> {
        let inner = self.inner.lock().expect("trace store poisoned");
        inner.slow.iter().map(Arc::clone).collect()
    }

    /// Retention capacities `(ring, slow)`, for error messages.
    pub fn capacities(&self) -> (usize, usize) {
        (self.ring_cap, self.slow_cap)
    }
}

/// One attribute value as JSON.
fn attr_to_value(attr: &AttrValue) -> Value {
    match attr {
        AttrValue::Int(v) => Value::Int(*v),
        AttrValue::Float(v) => Value::Float(*v),
        AttrValue::Str(v) => Value::Str(v.clone()),
        AttrValue::Bool(v) => Value::Bool(*v),
    }
}

fn span_to_value(snapshot: &TraceSnapshot, index: usize) -> Value {
    let span = &snapshot.spans[index];
    let mut fields = vec![
        ("name", Value::Str(span.name.clone())),
        ("start_us", Value::Int((span.start_ns / 1_000) as i64)),
        ("duration_us", Value::Int((span.duration_ns / 1_000) as i64)),
    ];
    if !span.finished {
        // Only present (and true) for spans still open when the snapshot
        // was taken — e.g. the request root inside a `?trace=1` response.
        fields.push(("open", Value::Bool(true)));
    }
    if !span.attrs.is_empty() {
        fields.push((
            "attrs",
            Value::object(span.attrs.iter().map(|(k, v)| (k.clone(), attr_to_value(v)))),
        ));
    }
    let children: Vec<Value> = snapshot
        .children_of(Some(index))
        .into_iter()
        .map(|child| span_to_value(snapshot, child))
        .collect();
    if !children.is_empty() {
        fields.push(("children", Value::Array(children)));
    }
    Value::object(fields)
}

/// A span-tree snapshot as nested JSON: each node is `{"name", "start_us",
/// "duration_us", ["open"], ["attrs"], ["children"]}` with `start_us`
/// relative to the trace's start.
pub fn snapshot_to_value(snapshot: &TraceSnapshot) -> Value {
    let roots: Vec<Value> =
        snapshot.children_of(None).into_iter().map(|i| span_to_value(snapshot, i)).collect();
    Value::object([
        ("trace_id", Value::Str(snapshot.id.clone())),
        ("span_count", Value::Int(snapshot.spans.len() as i64)),
        ("duration_us", Value::Int((snapshot.duration_ns() / 1_000) as i64)),
        ("spans", Value::Array(roots)),
    ])
}

/// A stored trace as the full `GET /v2/debug/trace` document: the listing
/// metadata plus the nested span tree.
pub fn trace_to_value(trace: &StoredTrace) -> Value {
    Value::object([
        ("trace_id", Value::Str(trace.id.clone())),
        ("method", Value::Str(trace.method.clone())),
        ("route", Value::Str(trace.route.clone())),
        ("status", Value::Int(trace.status as i64)),
        ("duration_us", Value::Int(trace.duration_us as i64)),
        ("trace", snapshot_to_value(&trace.snapshot)),
    ])
}

/// A stored trace as one row of the `GET /v2/debug/traces` /
/// `GET /v2/debug/slow` listings: metadata only, no tree.
pub fn summary_to_value(trace: &StoredTrace) -> Value {
    Value::object([
        ("trace_id", Value::Str(trace.id.clone())),
        ("method", Value::Str(trace.method.clone())),
        ("route", Value::Str(trace.route.clone())),
        ("status", Value::Int(trace.status as i64)),
        ("duration_us", Value::Int(trace.duration_us as i64)),
        ("span_count", Value::Int(trace.snapshot.spans.len() as i64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_obs::trace::{self, TraceContext, TraceId};

    fn stored(id: &str, duration_us: u64) -> StoredTrace {
        let ctx = TraceContext::new(TraceId(duration_us as u128));
        {
            let _guard = trace::install(&ctx);
            let _root = trace::trace_span("request");
            trace::attr_int("status", 200);
            let _child = trace::trace_span("explore");
        }
        StoredTrace {
            id: id.to_string(),
            method: "GET".into(),
            route: "/healthz".into(),
            status: 200,
            duration_us,
            snapshot: ctx.snapshot(),
        }
    }

    #[test]
    fn ring_evicts_oldest_but_reservoir_keeps_slowest() {
        let store = TraceStore::new(3, 2);
        for i in 0..10u64 {
            // Trace 0 is the slowest ever seen; 1..=9 get faster then slower.
            let duration = if i == 0 { 1_000_000 } else { 100 + i };
            store.record(stored(&format!("t{i}"), duration));
        }
        let recent: Vec<String> = store.recent().iter().map(|t| t.id.clone()).collect();
        assert_eq!(recent, ["t9", "t8", "t7"], "ring keeps the newest, newest first");
        let slow: Vec<String> = store.slowest().iter().map(|t| t.id.clone()).collect();
        assert_eq!(slow, ["t0", "t9"], "reservoir keeps the slowest, slowest first");

        // t0 left the ring long ago but is still reachable via the
        // reservoir; t4 is gone from both.
        assert!(store.get("t0").is_some(), "slow trace survives ring eviction");
        assert!(store.get("t9").is_some());
        assert!(store.get("t4").is_none(), "fast old trace is fully evicted");
    }

    #[test]
    fn capacities_have_a_floor_of_one() {
        let store = TraceStore::new(0, 0);
        assert_eq!(store.capacities(), (1, 1));
        store.record(stored("a", 5));
        store.record(stored("b", 1));
        assert!(store.get("a").is_some(), "a is still the slowest");
        assert_eq!(store.recent().len(), 1);
    }

    #[test]
    fn json_tree_nests_children_and_attrs() {
        let t = stored("abc", 42);
        let doc = trace_to_value(&t);
        assert_eq!(doc.get("trace_id").and_then(Value::as_str), Some("abc"));
        assert_eq!(doc.get("status").and_then(Value::as_i64), Some(200));
        let tree = doc.get("trace").expect("tree present");
        let spans = match tree.get("spans") {
            Some(Value::Array(spans)) => spans,
            other => panic!("spans should be an array, got {other:?}"),
        };
        assert_eq!(spans.len(), 1, "one root");
        let root = &spans[0];
        assert_eq!(root.get("name").and_then(Value::as_str), Some("request"));
        assert_eq!(
            root.get("attrs").and_then(|a| a.get("status")).and_then(Value::as_i64),
            Some(200)
        );
        let children = match root.get("children") {
            Some(Value::Array(children)) => children,
            other => panic!("children should be an array, got {other:?}"),
        };
        assert_eq!(children[0].get("name").and_then(Value::as_str), Some("explore"));
        assert!(children[0].get("open").is_none(), "finished spans carry no open flag");
        // The document round-trips through the JSON layer.
        let json = doc.to_json();
        assert!(Value::from_json(&json).is_ok(), "debug document is valid JSON");
    }
}
