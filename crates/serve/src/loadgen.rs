//! Load generation against a running `dtc-serve` instance.
//!
//! N client threads hammer the server over real sockets (one fresh TCP
//! connection per request, so the accept → queue → worker path is
//! exercised every time) and the run is summarized as requests/second plus
//! p50/p95/p99 latency — the repo's end-to-end throughput benchmark.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// What to fire at the server.
#[derive(Debug, Clone)]
pub struct Options {
    /// Target `host:port`.
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests issued by each client, one connection per request.
    pub requests_per_client: usize,
    /// HTTP method (`GET` or `POST`).
    pub method: String,
    /// Request path.
    pub path: String,
    /// Request body (POST only).
    pub body: Option<Vec<u8>>,
    /// Number of distinct built-in scenario bodies to rotate through
    /// (`--mix`). 1 (the default) hammers one spec — after the first solve
    /// that measures the pure cache-hit path; N > 1 spreads requests over
    /// N different specs so the cache-miss/solve path stays exercised.
    pub mix: usize,
    /// Run for this many seconds instead of a fixed request count
    /// (`--duration`). When set, every client issues requests until the
    /// deadline passes and `requests_per_client` is ignored.
    pub duration: Option<f64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7878".into(),
            clients: 8,
            requests_per_client: 50,
            method: "POST".into(),
            path: "/v1/evaluate".into(),
            body: Some(tiny_catalog_json().into_bytes()),
            mix: 1,
            duration: None,
        }
    }
}

/// Aggregate results of one load-generation run.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Requests attempted.
    pub total: usize,
    /// Responses with a 2xx status.
    pub ok: usize,
    /// Everything else: non-2xx statuses and socket failures.
    pub failed: usize,
    /// Failures by kind: a status code (`"503"`, `"400"`, …) for non-2xx
    /// responses, `"io_error"` for connections that produced no parsable
    /// status line at all. Values sum to `failed`.
    pub failures_by_status: BTreeMap<String, usize>,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Completed requests per second.
    pub rps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Worst observed latency, milliseconds.
    pub max_ms: f64,
}

/// A built-in minimal catalog (one tiny custom data center) whose solve is
/// fast and whose repeat requests are pure cache hits — the default
/// `POST /v1/evaluate` payload.
pub fn tiny_catalog_json() -> String {
    r#"{
  "catalog": {"name": "loadgen-tiny", "description": "one minimal DC"},
  "params": {"min_running_vms": 1},
  "scenario": [{
    "name": "tiny",
    "kind": "custom",
    "dc": [{
      "site": {"name": "Origin", "lat": 0.0, "lon": 0.0},
      "hot_pms": 1, "vms_per_pm": 1, "pm_capacity": 1,
      "disaster": false, "nas_net": false, "backup_link": false
    }]
  }]
}"#
    .to_string()
}

/// The `i`-th body of a `--mix` run: the tiny catalog with a distinct VM
/// MTTF, so each body is a distinct spec (and cache key) that forces a real
/// solve on first sight. The offset keeps body 0 distinct from
/// [`tiny_catalog_json`]'s Table-VI defaults as well.
pub fn mix_catalog_json(i: usize) -> String {
    let mttf = 2904.0 + 24.0 * i as f64;
    format!(
        r#"{{
  "catalog": {{"name": "loadgen-mix-{i}", "description": "one minimal DC, distinct VM MTTF"}},
  "params": {{"min_running_vms": 1, "vm": {{"mttf_hours": {mttf}, "mttr_hours": 0.5}}}},
  "scenario": [{{
    "name": "tiny",
    "kind": "custom",
    "dc": [{{
      "site": {{"name": "Origin", "lat": 0.0, "lon": 0.0}},
      "hot_pms": 1, "vms_per_pm": 1, "pm_capacity": 1,
      "disaster": false, "nas_net": false, "backup_link": false
    }}]
  }}]
}}"#
    )
}

/// The status code of a raw HTTP/1.1 response, if the status line parses.
fn parse_status(response: &[u8]) -> Option<u16> {
    let rest = response.strip_prefix(b"HTTP/1.1 ")?;
    std::str::from_utf8(rest.get(..3)?).ok()?.parse().ok()
}

fn one_request(opts: &Options, body: &[u8]) -> std::io::Result<(Option<u16>, Duration)> {
    let head = format!(
        "{} {} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\ncontent-type: application/json\r\nconnection: close\r\n\r\n",
        opts.method, opts.path, opts.addr, body.len(),
    );
    let t0 = Instant::now();
    let mut stream = TcpStream::connect(&opts.addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    Ok((parse_status(&response), t0.elapsed()))
}

/// Runs the workload and aggregates latencies across every client.
///
/// With `mix > 1`, requests rotate round-robin (across all clients)
/// through [`mix_catalog_json`] bodies instead of re-sending one spec.
/// With `duration` set, clients fire until the deadline instead of
/// counting requests (each client finishes its in-flight request, so runs
/// overshoot the deadline by at most one request's latency).
pub fn run(opts: &Options) -> Summary {
    let bodies: Vec<Vec<u8>> = if opts.mix > 1 {
        (0..opts.mix).map(|i| mix_catalog_json(i).into_bytes()).collect()
    } else {
        vec![opts.body.clone().unwrap_or_default()]
    };
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    let deadline = opts.duration.map(|secs| t0 + Duration::from_secs_f64(secs.max(0.0)));
    let samples: Vec<(Option<u16>, Option<Duration>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients.max(1))
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::with_capacity(opts.requests_per_client);
                    let mut issued = 0usize;
                    loop {
                        match deadline {
                            Some(deadline) => {
                                if Instant::now() >= deadline {
                                    break;
                                }
                            }
                            None => {
                                if issued >= opts.requests_per_client {
                                    break;
                                }
                            }
                        }
                        issued += 1;
                        let body = &bodies[next.fetch_add(1, Ordering::Relaxed) % bodies.len()];
                        match one_request(opts, body) {
                            Ok((status, latency)) => local.push((status, Some(latency))),
                            Err(_) => local.push((None, None)),
                        }
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("loadgen client panicked")).collect()
    });
    let elapsed = t0.elapsed();

    let total = samples.len();
    let is_ok = |status: &Option<u16>| status.is_some_and(|s| (200..300).contains(&s));
    let ok = samples.iter().filter(|(status, _)| is_ok(status)).count();
    let mut failures_by_status: BTreeMap<String, usize> = BTreeMap::new();
    for (status, _) in samples.iter().filter(|(status, _)| !is_ok(status)) {
        let key = match status {
            Some(code) => code.to_string(),
            None => "io_error".to_string(),
        };
        *failures_by_status.entry(key).or_insert(0) += 1;
    }
    let mut latencies: Vec<Duration> = samples.iter().filter_map(|(_, l)| *l).collect();
    latencies.sort_unstable();
    let percentile = |q: f64| -> f64 {
        if latencies.is_empty() {
            return f64::NAN;
        }
        let rank = ((latencies.len() as f64 * q).ceil() as usize).max(1) - 1;
        latencies[rank.min(latencies.len() - 1)].as_secs_f64() * 1000.0
    };
    Summary {
        total,
        ok,
        failed: total - ok,
        failures_by_status,
        elapsed,
        rps: if elapsed.as_secs_f64() > 0.0 {
            total as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        p50_ms: percentile(0.50),
        p95_ms: percentile(0.95),
        p99_ms: percentile(0.99),
        max_ms: latencies.last().map(|l| l.as_secs_f64() * 1000.0).unwrap_or(f64::NAN),
    }
}

/// Human-readable report block.
pub fn render(opts: &Options, s: &Summary) -> String {
    let mix =
        if opts.mix > 1 { format!(" (mix of {} bodies)", opts.mix) } else { String::new() };
    let workload = match opts.duration {
        Some(secs) => format!("{secs:.1} s each"),
        None => format!("{} request(s)", opts.requests_per_client),
    };
    let failures = if s.failed > 0 {
        let parts: Vec<String> =
            s.failures_by_status.iter().map(|(k, n)| format!("{k}×{n}")).collect();
        format!("failures: {}\n", parts.join(", "))
    } else {
        String::new()
    };
    format!(
        "loadgen: {} {} @ {}{mix} — {} client(s) × {workload}\n\
         requests: {} total, {} ok, {} failed\n\
         {failures}\
         elapsed:  {:.3} s\n\
         rps:      {:.1}\n\
         latency:  p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, max {:.2} ms\n",
        opts.method,
        opts.path,
        opts.addr,
        opts.clients,
        s.total,
        s.ok,
        s.failed,
        s.elapsed.as_secs_f64(),
        s.rps,
        s.p50_ms,
        s.p95_ms,
        s.p99_ms,
        s.max_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_catalog_parses_and_expands() {
        let catalog = dtc_engine::Catalog::from_json_str(&tiny_catalog_json()).unwrap();
        assert_eq!(catalog.expand().unwrap().len(), 1);
    }

    #[test]
    fn mix_bodies_are_distinct_specs() {
        use dtc_engine::{canonical_encoding_with, prelude::AnalysisRequest};
        let opts = dtc_core::metrics::EvalOptions::default();
        let analyses = [AnalysisRequest::SteadyState];
        let mut keys = std::collections::HashSet::new();
        for i in 0..5 {
            let catalog = dtc_engine::Catalog::from_json_str(&mix_catalog_json(i)).unwrap();
            let scenarios = catalog.expand().unwrap();
            assert_eq!(scenarios.len(), 1);
            let canonical = canonical_encoding_with(&scenarios[0].spec, &opts, &analyses);
            assert!(
                keys.insert(dtc_engine::hash::key_of_encoding(&canonical)),
                "mix body {i} collides with an earlier one"
            );
        }
    }

    #[test]
    fn percentiles_come_from_sorted_latencies() {
        // Hit an unreachable port: every request fails fast, so the
        // summary shape is exercised without a server.
        let opts = Options {
            addr: "127.0.0.1:1".into(),
            clients: 2,
            requests_per_client: 3,
            method: "GET".into(),
            path: "/healthz".into(),
            body: None,
            mix: 1,
            duration: None,
        };
        let s = run(&opts);
        assert_eq!(s.total, 6);
        assert_eq!(s.ok, 0);
        assert_eq!(s.failed, 6);
        assert_eq!(
            s.failures_by_status.get("io_error"),
            Some(&6),
            "socket failures land in the io_error bucket"
        );
        assert_eq!(s.failures_by_status.values().sum::<usize>(), s.failed);
        assert!(s.p50_ms.is_nan(), "no successful latency samples");
        assert!(render(&opts, &s).contains("failures: io_error×6"));
    }

    #[test]
    fn status_lines_parse_and_non_2xx_counts_as_failure() {
        assert_eq!(parse_status(b"HTTP/1.1 200 OK\r\n"), Some(200));
        assert_eq!(parse_status(b"HTTP/1.1 503 Service Unavailable\r\n"), Some(503));
        assert_eq!(parse_status(b"HTTP/1.1 zzz"), None);
        assert_eq!(parse_status(b"garbage"), None);
        assert_eq!(parse_status(b""), None);
    }

    #[test]
    fn duration_mode_overrides_the_request_count() {
        // An already-expired deadline: clients stop before their first
        // request, proving the deadline (not requests_per_client) governs.
        let opts = Options {
            addr: "127.0.0.1:1".into(),
            clients: 3,
            requests_per_client: 100,
            method: "GET".into(),
            path: "/healthz".into(),
            body: None,
            mix: 1,
            duration: Some(0.0),
        };
        let s = run(&opts);
        assert_eq!(s.total, 0, "expired deadline issues no requests");
    }
}
