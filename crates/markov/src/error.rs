//! Error type shared by all solvers in this crate.

use crate::solve::Method;
use std::fmt;

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, MarkovError>;

/// Errors produced by chain construction and solving.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// The matrix is empty (no states).
    Empty,
    /// A square matrix was required.
    NotSquare {
        /// Rows found.
        nrows: usize,
        /// Columns found.
        ncols: usize,
    },
    /// A vector length did not match the number of states.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// An iterative solver exhausted its iteration budget.
    NotConverged {
        /// The solver used.
        method: Method,
        /// Iterations performed.
        iterations: usize,
        /// Residual at the point of giving up.
        residual: f64,
    },
    /// Gaussian elimination hit a (numerically) zero pivot: the chain is
    /// reducible or otherwise lacks a unique stationary distribution.
    Singular {
        /// Elimination column at which the zero pivot appeared.
        pivot: usize,
    },
    /// An iterative stationary method found a state with zero exit rate
    /// (an absorbing state), which it cannot handle.
    ZeroDiagonal {
        /// Index of the offending state.
        state: usize,
    },
    /// The SOR relaxation factor must lie in `(0, 2)`.
    BadRelaxation(f64),
    /// A method was passed to a function that does not implement it.
    UnsupportedMethod {
        /// The offending method.
        method: Method,
        /// Which function rejected it.
        context: &'static str,
    },
    /// A generator row had a negative off-diagonal or positive diagonal.
    InvalidGenerator {
        /// Offending state.
        state: usize,
        /// Explanation.
        detail: String,
    },
    /// A probability row did not sum to one.
    NotStochastic {
        /// Offending row.
        state: usize,
        /// The row sum found.
        sum: f64,
    },
    /// Transient analysis was asked for a negative time horizon.
    NegativeTime(f64),
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::Empty => write!(f, "chain has no states"),
            MarkovError::NotSquare { nrows, ncols } => {
                write!(f, "matrix must be square, got {nrows}x{ncols}")
            }
            MarkovError::DimensionMismatch { expected, got } => {
                write!(f, "vector length {got} does not match state count {expected}")
            }
            MarkovError::NotConverged { method, iterations, residual } => write!(
                f,
                "{method} solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            MarkovError::Singular { pivot } => {
                write!(f, "singular system at pivot {pivot}: chain is reducible")
            }
            MarkovError::ZeroDiagonal { state } => {
                write!(f, "state {state} is absorbing; stationary iteration undefined")
            }
            MarkovError::BadRelaxation(w) => {
                write!(f, "relaxation factor {w} outside (0, 2)")
            }
            MarkovError::UnsupportedMethod { method, context } => {
                write!(f, "method {method} not supported by {context}")
            }
            MarkovError::InvalidGenerator { state, detail } => {
                write!(f, "invalid generator row {state}: {detail}")
            }
            MarkovError::NotStochastic { state, sum } => {
                write!(f, "row {state} sums to {sum}, expected 1")
            }
            MarkovError::NegativeTime(t) => write!(f, "negative time horizon {t}"),
        }
    }
}

impl std::error::Error for MarkovError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MarkovError::NotConverged {
            method: Method::GaussSeidel,
            iterations: 10,
            residual: 0.5,
        };
        let s = e.to_string();
        assert!(s.contains("gauss-seidel"));
        assert!(s.contains("10"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MarkovError>();
    }

    #[test]
    fn all_variants_display_nonempty() {
        let variants: Vec<MarkovError> = vec![
            MarkovError::Empty,
            MarkovError::NotSquare { nrows: 1, ncols: 2 },
            MarkovError::DimensionMismatch { expected: 3, got: 4 },
            MarkovError::Singular { pivot: 0 },
            MarkovError::ZeroDiagonal { state: 5 },
            MarkovError::BadRelaxation(3.0),
            MarkovError::UnsupportedMethod { method: Method::Direct, context: "x" },
            MarkovError::InvalidGenerator { state: 1, detail: "neg".into() },
            MarkovError::NotStochastic { state: 2, sum: 0.9 },
            MarkovError::NegativeTime(-1.0),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
