//! Continuous-time Markov chains: construction, validation, steady-state and
//! transient solution, and reward evaluation.
//!
//! # Examples
//!
//! A repairable component with failure rate `λ = 1/MTTF` and repair rate
//! `μ = 1/MTTR` is the two-state chain whose availability is the stationary
//! probability of the *up* state:
//!
//! ```
//! use dtc_markov::ctmc::CtmcBuilder;
//!
//! let mttf = 1000.0;
//! let mttr = 10.0;
//! let mut b = CtmcBuilder::new(2);
//! b.rate(0, 1, 1.0 / mttf); // up -> down
//! b.rate(1, 0, 1.0 / mttr); // down -> up
//! let ctmc = b.build()?;
//! let pi = ctmc.steady_state()?;
//! let availability = pi[0];
//! assert!((availability - mttf / (mttf + mttr)).abs() < 1e-10);
//! # Ok::<(), dtc_markov::MarkovError>(())
//! ```

use crate::error::{MarkovError, Result};
use crate::solve::{
    direct_stationary, dot, power_stationary, stationary_iteration, Method, SolveStats,
    SolverOptions,
};
use crate::sparse::{CooMatrix, CsrMatrix};

/// Incremental builder for a CTMC generator matrix.
///
/// Only off-diagonal rates are supplied; diagonals are derived so that each
/// row sums to zero. Repeated `rate` calls for the same pair accumulate.
#[derive(Debug, Clone)]
pub struct CtmcBuilder {
    n: usize,
    coo: CooMatrix,
}

impl CtmcBuilder {
    /// Creates a builder for a chain with `n` states.
    pub fn new(n: usize) -> Self {
        CtmcBuilder { n, coo: CooMatrix::new(n, n) }
    }

    /// Pre-allocates space for `cap` transitions.
    pub fn with_capacity(n: usize, cap: usize) -> Self {
        CtmcBuilder { n, coo: CooMatrix::with_capacity(n, n, cap) }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Adds `rate` to the transition `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics if `from == to`, if indices are out of bounds, or if the rate
    /// is not finite and positive.
    pub fn rate(&mut self, from: usize, to: usize, rate: f64) -> &mut Self {
        assert_ne!(from, to, "self-loops are not part of a CTMC generator");
        assert!(rate.is_finite() && rate > 0.0, "rate must be finite and positive, got {rate}");
        self.coo.push(from, to, rate);
        self
    }

    /// Finalizes the generator, filling diagonals with negated row sums.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] for a zero-state chain.
    pub fn build(&self) -> Result<Ctmc> {
        if self.n == 0 {
            return Err(MarkovError::Empty);
        }
        let mut coo = self.coo.clone();
        let mut row_sums = vec![0.0; self.n];
        for (r, _, v) in self.coo.iter() {
            row_sums[r] += v;
        }
        for (i, s) in row_sums.iter().enumerate() {
            if *s > 0.0 {
                coo.push(i, i, -s);
            }
        }
        let generator = CsrMatrix::from_coo(&coo);
        Ctmc::from_generator(generator)
    }
}

/// A continuous-time Markov chain held as a sparse infinitesimal generator.
#[derive(Debug, Clone)]
pub struct Ctmc {
    q: CsrMatrix,
    /// Transposed generator, materialized lazily for iterative solvers.
    exit_rates: Vec<f64>,
}

impl Ctmc {
    /// Wraps an existing generator matrix, validating generator structure
    /// (non-negative off-diagonals, rows summing to ~zero).
    pub fn from_generator(q: CsrMatrix) -> Result<Self> {
        let n = q.nrows();
        if n == 0 {
            return Err(MarkovError::Empty);
        }
        if q.ncols() != n {
            return Err(MarkovError::NotSquare { nrows: n, ncols: q.ncols() });
        }
        let mut exit_rates = vec![0.0; n];
        for (i, exit_rate) in exit_rates.iter_mut().enumerate() {
            let (cols, vals) = q.row(i);
            let mut sum = 0.0;
            let mut mag = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                let j = *c as usize;
                if j == i {
                    if *v > 0.0 {
                        return Err(MarkovError::InvalidGenerator {
                            state: i,
                            detail: format!("positive diagonal {v}"),
                        });
                    }
                    *exit_rate = -*v;
                } else if *v < 0.0 {
                    return Err(MarkovError::InvalidGenerator {
                        state: i,
                        detail: format!("negative off-diagonal {v} to state {j}"),
                    });
                }
                sum += v;
                mag = f64::max(mag, v.abs());
            }
            if sum.abs() > 1e-9 * mag.max(1.0) {
                return Err(MarkovError::InvalidGenerator {
                    state: i,
                    detail: format!("row sums to {sum:.3e}, expected 0"),
                });
            }
        }
        Ok(Ctmc { q, exit_rates })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.q.nrows()
    }

    /// Borrow the generator matrix.
    pub fn generator(&self) -> &CsrMatrix {
        &self.q
    }

    /// Exit rate (total outgoing rate) of each state.
    pub fn exit_rates(&self) -> &[f64] {
        &self.exit_rates
    }

    /// The uniformization rate `Λ ≥ max exit rate` (with 2% headroom so that
    /// every state keeps a self-loop in the uniformized DTMC, which avoids
    /// periodicity artifacts in power iteration).
    pub fn uniformization_rate(&self) -> f64 {
        let m = self.exit_rates.iter().cloned().fold(0.0, f64::max);
        if m == 0.0 {
            1.0
        } else {
            m * 1.02
        }
    }

    /// The uniformized probability matrix `P = I + Q/Λ`.
    pub fn uniformized(&self, lambda: f64) -> CsrMatrix {
        crate::instrument::count_uniformized_build();
        let n = self.num_states();
        let mut coo = CooMatrix::with_capacity(n, n, self.q.nnz() + n);
        for (i, j, v) in self.q.iter() {
            coo.push(i, j, v / lambda);
        }
        for i in 0..n {
            coo.push(i, i, 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Steady-state distribution with the default method (Gauss–Seidel with
    /// a direct fallback for small chains).
    ///
    /// # Errors
    ///
    /// Propagates solver failures; see [`MarkovError`].
    pub fn steady_state(&self) -> Result<Vec<f64>> {
        Ok(self.steady_state_with(Method::default(), &SolverOptions::default())?.0)
    }

    /// Steady-state distribution with an explicit method and options.
    ///
    /// Records a `stationary_solve` stage span and the iteration count into
    /// the [`dtc_obs::global`] registry (see [`crate::instrument`]).
    pub fn steady_state_with(
        &self,
        method: Method,
        opts: &SolverOptions,
    ) -> Result<(Vec<f64>, SolveStats)> {
        let _span = dtc_obs::stage_span("stationary_solve");
        let n = self.num_states();
        let result = match method {
            Method::Direct => direct_stationary(&self.q),
            Method::Power => {
                let lambda = self.uniformization_rate();
                let p = self.uniformized(lambda);
                power_stationary(&p, &vec![1.0 / n as f64; n], opts)
            }
            Method::Jacobi | Method::GaussSeidel | Method::Sor => {
                let qt = self.q.transpose();
                match stationary_iteration(&qt, &vec![1.0 / n as f64; n], method, opts) {
                    Ok(r) => Ok(r),
                    // Gauss–Seidel can stall on nearly-completely-decomposable
                    // stiff chains; fall back to the exact solver when the
                    // chain is small enough for O(n^3) to be bearable.
                    Err(MarkovError::NotConverged { .. }) if n <= 4096 => {
                        direct_stationary(&self.q)
                    }
                    Err(e) => Err(e),
                }
            }
        };
        if let Ok((_, stats)) = &result {
            crate::instrument::count_stationary_iterations(stats.iterations as u64);
            dtc_obs::trace::attr_int("states", n as i64);
            dtc_obs::trace::attr_int("iterations", stats.iterations as i64);
            dtc_obs::trace::attr_float("residual", stats.residual);
            dtc_obs::trace::attr_str("method", &stats.method.to_string());
            // Only the power method runs the parallel kernels; the sweep
            // methods are inherently sequential.
            if matches!(method, Method::Power) {
                dtc_obs::trace::attr_int("threads", opts.resolved_threads() as i64);
            }
        }
        result
    }

    /// Warm-started steady-state solve: power iteration seeded with a
    /// neighboring candidate's stationary vector (see
    /// [`crate::solve::power_stationary_from`]). Saved iterations are
    /// visible through [`crate::instrument::stationary_iterations`] and the
    /// `stationary_solve` span's `iterations`/`warm_start` attributes.
    ///
    /// The result agrees with a cold [`Ctmc::steady_state_with`] power
    /// solve within the solver tolerance but is not bit-identical to it,
    /// so cached/golden evaluation paths stay cold-started.
    ///
    /// # Errors
    ///
    /// Propagates solver failures; see [`MarkovError`].
    pub fn steady_state_power_from(
        &self,
        guess: &[f64],
        opts: &SolverOptions,
    ) -> Result<(Vec<f64>, SolveStats)> {
        let _span = dtc_obs::stage_span("stationary_solve");
        let n = self.num_states();
        let lambda = self.uniformization_rate();
        let p = self.uniformized(lambda);
        let result = crate::solve::power_stationary_from(&p, guess, opts);
        if let Ok((_, stats)) = &result {
            crate::instrument::count_stationary_iterations(stats.iterations as u64);
            dtc_obs::trace::attr_int("states", n as i64);
            dtc_obs::trace::attr_int("iterations", stats.iterations as i64);
            dtc_obs::trace::attr_float("residual", stats.residual);
            dtc_obs::trace::attr_str("method", &stats.method.to_string());
            dtc_obs::trace::attr_bool("warm_start", true);
            dtc_obs::trace::attr_int("threads", opts.resolved_threads() as i64);
        }
        result
    }

    /// Transient state distribution at time `t` from initial distribution
    /// `pi0`, by uniformization:
    /// `π(t) = Σ_k Poisson(Λt; k) · π0 Pᵏ` with adaptive truncation.
    ///
    /// A one-point [`crate::curve::uniformized_pass`] — so there is exactly
    /// one march implementation, and per-point results are bit-identical to
    /// curve results by construction.
    ///
    /// # Errors
    ///
    /// Fails on negative or non-finite `t` or mismatched `pi0` length.
    pub fn transient(&self, pi0: &[f64], t: f64) -> Result<Vec<f64>> {
        let mut out =
            crate::curve::uniformized_pass(self, pi0, std::slice::from_ref(&t), &[], &[])?;
        Ok(out.distributions.pop().expect("one requested time point"))
    }

    /// Transient distributions at every time in `times` from **one**
    /// uniformization pass: the matrix `P = I + Q/Λ` is built once and the
    /// power sequence `π0·Pᵏ` marched once, with each time point's
    /// Poisson-weighted sum accumulated along the way
    /// (see [`crate::curve::uniformized_pass`]).
    ///
    /// Times may be unsorted, duplicated, or zero; results come back in
    /// caller order, bit-identical to per-point [`Ctmc::transient`] calls.
    pub fn transient_curve(&self, pi0: &[f64], times: &[f64]) -> Result<Vec<Vec<f64>>> {
        Ok(crate::curve::uniformized_pass(self, pi0, times, &[], &[])?.distributions)
    }

    /// Reward curve `(π(t)·r)` at each time in `times`, starting from
    /// `pi0` — e.g. point availability with an up-state indicator reward.
    ///
    /// Evaluated through [`Ctmc::transient_curve`], so the whole curve
    /// costs one uniformization pass instead of one per point.
    pub fn transient_reward_curve(
        &self,
        pi0: &[f64],
        times: &[f64],
        reward: &[f64],
    ) -> Result<Vec<f64>> {
        let n = self.num_states();
        if reward.len() != n {
            return Err(MarkovError::DimensionMismatch { expected: n, got: reward.len() });
        }
        Ok(self.transient_curve(pi0, times)?.iter().map(|pi| dot(pi, reward)).collect())
    }

    /// Reward curve `(π(t)·r)` by **projection**: the march accumulates the
    /// scalars `r·π0Pᵏ` directly instead of materializing a distribution
    /// per time point, so memory stays O(states) no matter how many times
    /// are requested — the mode for thousand-point year-horizon curves.
    ///
    /// Agrees with [`Ctmc::transient_reward_curve`] to ≤ 1e-12 (projection
    /// skips the final defensive renormalization of each distribution,
    /// whose correction is bounded by the Poisson truncation mass), and is
    /// bit-identical across thread counts (`threads`: 0 = one per core).
    pub fn transient_reward_curve_projected(
        &self,
        pi0: &[f64],
        times: &[f64],
        reward: &[f64],
        threads: usize,
    ) -> Result<Vec<f64>> {
        let opts = crate::curve::PassOptions { threads, point_reward: Some(reward) };
        Ok(crate::curve::uniformized_pass_with(self, pi0, times, &[], &[], &opts)?
            .point_rewards)
    }

    /// Expected steady-state reward `Σ πᵢ rᵢ` for a reward vector `r`.
    pub fn steady_reward(&self, reward: &[f64]) -> Result<f64> {
        let n = self.num_states();
        if reward.len() != n {
            return Err(MarkovError::DimensionMismatch { expected: n, got: reward.len() });
        }
        let pi = self.steady_state()?;
        Ok(dot(&pi, reward))
    }

    /// Steady-state probability of the set of states selected by `pred`.
    pub fn steady_probability(&self, pred: impl Fn(usize) -> bool) -> Result<f64> {
        let pi = self.steady_state()?;
        Ok(pi.iter().enumerate().filter(|(i, _)| pred(*i)).map(|(_, p)| p).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repairable(mttf: f64, mttr: f64) -> Ctmc {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0 / mttf);
        b.rate(1, 0, 1.0 / mttr);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_generator() {
        let c = repairable(100.0, 2.0);
        assert_eq!(c.num_states(), 2);
        assert!((c.generator().get(0, 0) + 0.01).abs() < 1e-15);
        assert_eq!(c.exit_rates()[1], 0.5);
    }

    #[test]
    fn steady_state_closed_form() {
        let c = repairable(1000.0, 10.0);
        let pi = c.steady_state().unwrap();
        let a = 1000.0 / 1010.0;
        assert!((pi[0] - a).abs() < 1e-10);
    }

    #[test]
    fn all_methods_agree() {
        let c = repairable(4000.0, 1.0);
        let (exact, _) =
            c.steady_state_with(Method::Direct, &SolverOptions::default()).unwrap();
        for m in [Method::Power, Method::Jacobi, Method::GaussSeidel, Method::Sor] {
            let opts =
                SolverOptions { relaxation: 1.05, tolerance: 1e-14, ..Default::default() };
            let (pi, _) = c.steady_state_with(m, &opts).unwrap();
            for (a, b) in pi.iter().zip(&exact) {
                assert!((a - b).abs() < 1e-8, "{m:?}: {pi:?} vs {exact:?}");
            }
        }
    }

    #[test]
    fn transient_matches_closed_form() {
        // For the 2-state chain: p_up(t) = A + (1-A) e^{-(λ+μ)t} starting up.
        let lam: f64 = 0.2;
        let mu: f64 = 0.8;
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, lam);
        b.rate(1, 0, mu);
        let c = b.build().unwrap();
        let a = mu / (lam + mu);
        for t in [0.0, 0.1, 0.5, 1.0, 3.0, 10.0] {
            let pi = c.transient(&[1.0, 0.0], t).unwrap();
            let expect = a + (1.0 - a) * (-(lam + mu) * t).exp();
            assert!((pi[0] - expect).abs() < 1e-9, "t={t}: got {} expect {expect}", pi[0]);
        }
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let c = repairable(10.0, 1.0);
        let pi_t = c.transient(&[0.0, 1.0], 1e4).unwrap();
        let pi = c.steady_state().unwrap();
        for (a, b) in pi_t.iter().zip(&pi) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn reward_curve_monotone_for_repairable_start_up() {
        let c = repairable(100.0, 5.0);
        let times = [0.0, 1.0, 10.0, 100.0, 1000.0];
        let curve = c.transient_reward_curve(&[1.0, 0.0], &times, &[1.0, 0.0]).unwrap();
        assert!((curve[0] - 1.0).abs() < 1e-12);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "availability should decay: {curve:?}");
        }
    }

    #[test]
    fn steady_reward_and_probability() {
        let c = repairable(9.0, 1.0);
        let r = c.steady_reward(&[1.0, 0.0]).unwrap();
        assert!((r - 0.9).abs() < 1e-10);
        let p = c.steady_probability(|i| i == 1).unwrap();
        assert!((p - 0.1).abs() < 1e-10);
    }

    #[test]
    fn invalid_generators_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, -1.0); // negative off-diagonal
        let q = CsrMatrix::from_coo(&coo);
        assert!(matches!(Ctmc::from_generator(q), Err(MarkovError::InvalidGenerator { .. })));

        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0); // row does not sum to zero
        let q = CsrMatrix::from_coo(&coo);
        assert!(matches!(Ctmc::from_generator(q), Err(MarkovError::InvalidGenerator { .. })));
    }

    #[test]
    fn zero_state_chain_rejected() {
        assert!(matches!(CtmcBuilder::new(0).build(), Err(MarkovError::Empty)));
    }

    #[test]
    fn negative_time_rejected() {
        let c = repairable(1.0, 1.0);
        assert!(matches!(c.transient(&[1.0, 0.0], -0.5), Err(MarkovError::NegativeTime(_))));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn builder_rejects_self_loop() {
        CtmcBuilder::new(2).rate(0, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn builder_rejects_nonpositive_rate() {
        CtmcBuilder::new(2).rate(0, 1, 0.0);
    }

    #[test]
    fn absorbing_state_allowed_in_builder_transient() {
        // Absorbing chains are fine for transient analysis.
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0);
        let c = b.build().unwrap();
        let pi = c.transient(&[1.0, 0.0], 2.0).unwrap();
        assert!((pi[1] - (1.0 - (-2.0f64).exp())).abs() < 1e-9);
    }
}
