//! Compressed sparse row (CSR) matrices tailored to Markov-chain workloads.
//!
//! The solvers in this crate only need a handful of operations: building a
//! matrix from unordered `(row, col, value)` triplets, row traversal,
//! transposition (Gauss–Seidel sweeps need column access of the generator,
//! which we obtain by storing the transpose), vector products, and scaling.
//!
//! # Examples
//!
//! ```
//! use dtc_markov::sparse::{CooMatrix, CsrMatrix};
//!
//! let mut coo = CooMatrix::new(2, 2);
//! coo.push(0, 0, -1.0);
//! coo.push(0, 1, 1.0);
//! coo.push(1, 0, 2.0);
//! coo.push(1, 1, -2.0);
//! let csr = CsrMatrix::from_coo(&coo);
//! assert_eq!(csr.nnz(), 4);
//! let y = csr.mul_vec(&[1.0, 0.0]);
//! assert_eq!(y, vec![-1.0, 2.0]);
//! ```

use std::fmt;

/// A coordinate-format (triplet) sparse matrix builder.
///
/// Duplicate entries for the same `(row, col)` pair are *summed* when the
/// matrix is converted to [`CsrMatrix`], which is exactly the semantics
/// wanted when accumulating transition rates from several Petri-net firings
/// that connect the same pair of markings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooMatrix {
    /// Creates an empty builder with the given dimensions.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix { nrows, ncols, entries: Vec::new() }
    }

    /// Creates an empty builder with pre-allocated capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix { nrows, ncols, entries: Vec::with_capacity(cap) }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of raw (possibly duplicated) entries pushed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records `value` at `(row, col)`. Values for repeated coordinates are
    /// summed on conversion.
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.nrows, "row {row} out of bounds ({})", self.nrows);
        assert!(col < self.ncols, "col {col} out of bounds ({})", self.ncols);
        self.entries.push((row as u32, col as u32, value));
    }

    /// Grows the matrix to at least `nrows` × `ncols`.
    pub fn grow(&mut self, nrows: usize, ncols: usize) {
        self.nrows = self.nrows.max(nrows);
        self.ncols = self.ncols.max(ncols);
    }

    /// Iterates over the raw triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries.iter().map(|&(r, c, v)| (r as usize, c as usize, v))
    }
}

/// An immutable compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes the entries of row `i`.
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a triplet builder, summing duplicates and
    /// dropping exact zeros produced by cancellation.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let nrows = coo.nrows;
        let ncols = coo.ncols;
        // Counting sort by row, then sort each row slice by column.
        let mut counts = vec![0usize; nrows + 1];
        for &(r, _, _) in &coo.entries {
            counts[r as usize + 1] += 1;
        }
        for i in 0..nrows {
            counts[i + 1] += counts[i];
        }
        let mut order: Vec<u32> = vec![0; coo.entries.len()];
        {
            let mut next = counts.clone();
            for (k, &(r, _, _)) in coo.entries.iter().enumerate() {
                order[next[r as usize]] = k as u32;
                next[r as usize] += 1;
            }
        }
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx: Vec<u32> = Vec::with_capacity(coo.entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(coo.entries.len());
        row_ptr.push(0);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for r in 0..nrows {
            scratch.clear();
            for &k in &order[counts[r]..counts[r + 1]] {
                let (_, c, v) = coo.entries[k as usize];
                scratch.push((c, v));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            // Merge duplicates.
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
                i = j;
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix { nrows, ncols, row_ptr, col_idx, values }
    }

    /// Builds an `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the `(columns, values)` slices of row `i`.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// Looks up a single entry (O(log nnz(row))).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Dense `y = A * x` (row-major product).
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "dimension mismatch");
        let mut y = vec![0.0; self.nrows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// `y = A * x` without allocating.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "dimension mismatch");
        assert_eq!(y.len(), self.nrows, "dimension mismatch");
        for (i, out) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c as usize];
            }
            *out = acc;
        }
    }

    /// Dense row-vector product `y = x * A` (the natural orientation for
    /// probability vectors, which are row vectors by convention).
    pub fn vec_mul(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "dimension mismatch");
        let mut y = vec![0.0; self.ncols];
        self.vec_mul_into(x, &mut y);
        y
    }

    /// `y = x * A` without allocating. `y` is zeroed first.
    pub fn vec_mul_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows, "dimension mismatch");
        assert_eq!(y.len(), self.ncols, "dimension mismatch");
        y.iter_mut().for_each(|v| *v = 0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                y[*c as usize] += xi * v;
            }
        }
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                let slot = next[*c as usize];
                col_idx[slot] = r as u32;
                values[slot] = *v;
                next[*c as usize] += 1;
            }
        }
        CsrMatrix { nrows: self.ncols, ncols: self.nrows, row_ptr, col_idx, values }
    }

    /// Multiplies every stored entry by `s`.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.values {
            *v *= s;
        }
    }

    /// Maximum absolute row sum (the ∞-norm).
    pub fn inf_norm(&self) -> f64 {
        (0..self.nrows)
            .map(|i| self.row(i).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Converts to a dense row-major matrix (tests / direct solver only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut dense = vec![vec![0.0; self.ncols]; self.nrows];
        for (i, dense_row) in dense.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                dense_row[*c as usize] = *v;
            }
        }
        dense
    }

    /// Iterates over all `(row, col, value)` stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(c, v)| (i, *c as usize, *v))
        })
    }
}

impl fmt::Display for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CsrMatrix {}x{} ({} nnz)", self.nrows, self.ncols, self.nnz())?;
        if self.nrows <= 16 && self.ncols <= 16 {
            for row in self.to_dense() {
                for v in row {
                    write!(f, "{v:>10.4} ")?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(1, 1, 3.0);
        coo.push(2, 0, 4.0);
        coo.push(2, 2, 5.0);
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn coo_roundtrip_and_duplicate_merge() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.5);
        coo.push(1, 1, -1.0);
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.get(1, 1), -1.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn cancelled_duplicates_are_dropped() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 2.0);
        coo.push(0, 0, -2.0);
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        let y = m.mul_vec(&x);
        assert_eq!(y, vec![1.0 + 6.0, 6.0, 4.0 + 15.0]);
    }

    #[test]
    fn vec_mul_matches_transpose_mul() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        let a = m.vec_mul(&x);
        let b = m.transpose().mul_vec(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        let mt = m.transpose();
        let mtt = mt.transpose();
        assert_eq!(m.to_dense(), mtt.to_dense());
        assert_eq!(mt.get(2, 0), 2.0);
        assert_eq!(mt.get(0, 2), 4.0);
    }

    #[test]
    fn identity_behaves() {
        let i = CsrMatrix::identity(4);
        let x = vec![4.0, 3.0, 2.0, 1.0];
        assert_eq!(i.mul_vec(&x), x);
        assert_eq!(i.nnz(), 4);
    }

    #[test]
    fn inf_norm() {
        let m = sample();
        assert_eq!(m.inf_norm(), 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(1, 0, 1.0);
    }

    #[test]
    fn empty_rows_are_fine() {
        let coo = CooMatrix::new(3, 3);
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn grow_expands_dimensions() {
        let mut coo = CooMatrix::new(1, 1);
        coo.grow(3, 2);
        coo.push(2, 1, 7.0);
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.get(2, 1), 7.0);
    }
}
