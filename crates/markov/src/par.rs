//! Deterministic parallel kernels for the solver hot path.
//!
//! Every kernel here honors one contract: **the thread count can never
//! change a single output bit.** Three rules enforce it:
//!
//! * Work is partitioned into **fixed row blocks** whose boundaries depend
//!   only on the problem size — [`num_blocks`]`(n) = min(n, 64)` blocks,
//!   block `i` covering rows `i·n/nb .. (i+1)·n/nb` — never on the thread
//!   count.
//! * Each block writes its own **disjoint output slice**, so no `f64` is
//!   ever touched by two workers and no store is ever racy.
//! * Reductions (sums, dot products) accumulate serially *within* a block
//!   and combine the per-block partials in **ascending block order** on the
//!   calling thread, so the f64 summation order is a function of `n` alone.
//!
//! Threads only decide *which worker* runs a block; the arithmetic per
//! element is identical at `threads = 1` and `threads = 64`. The seeded
//! harness in `crates/markov/tests/par_props.rs` pins this bit-for-bit.
//!
//! Scoped `std::thread` workers are used — the workspace builds offline,
//! so rayon is unavailable by design (see `crates/shims/`). A scope is
//! spawned per kernel call (or per march step in
//! [`crate::curve::uniformized_pass_with`]); spawn cost amortizes over the
//! 100k-state matrices these kernels target, and `threads <= 1` takes a
//! spawn-free serial path through the *same* block loop.

use crate::sparse::CsrMatrix;
use std::ops::Range;

/// Upper bound on the number of row blocks. 64 blocks keep every core of
/// any realistic machine busy while the per-block slices stay large enough
/// to amortize scheduling.
pub const MAX_BLOCKS: usize = 64;

/// Number of fixed blocks for a vector of `len` elements:
/// `min(len, MAX_BLOCKS)` — every block is non-empty.
pub fn num_blocks(len: usize) -> usize {
    len.min(MAX_BLOCKS)
}

/// The fixed block boundaries for a vector of `len` elements. Depends only
/// on `len`: block `i` is `i·len/nb .. (i+1)·len/nb`.
pub fn block_ranges(len: usize) -> Vec<Range<usize>> {
    let nb = num_blocks(len);
    (0..nb).map(|i| (i * len / nb)..((i + 1) * len / nb)).collect()
}

/// Resolves a thread-count knob: `0` becomes one thread per available
/// core, anything else passes through.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        threads
    }
}

/// Splits `v` into its fixed blocks as `(start_index, sub_slice)` pairs —
/// the disjoint write targets handed to workers.
pub(crate) fn split_blocks(v: &mut [f64]) -> Vec<(usize, &mut [f64])> {
    let ranges = block_ranges(v.len());
    let mut out = Vec::with_capacity(ranges.len());
    let mut rest = v;
    let mut consumed = 0;
    for r in ranges {
        let (head, tail) = rest.split_at_mut(r.end - consumed);
        out.push((r.start, head));
        rest = tail;
        consumed = r.end;
    }
    out
}

/// One unit of deterministic work: reads shared inputs, writes a slice (or
/// scalar slot) no other job touches.
pub(crate) enum Job<'a> {
    /// `out[d] = Σ_j A[start_row + d][j] · x[j]` — one row block of a
    /// matrix–vector product.
    MulVec { a: &'a CsrMatrix, x: &'a [f64], start_row: usize, out: &'a mut [f64] },
    /// `out[d] += wk · src[d]` — one block of a time point's
    /// Poisson-weighted accumulation.
    Axpy { wk: f64, src: &'a [f64], out: &'a mut [f64] },
    /// `*out = Σ_d a[d] · b[d]` — one block's dot-product partial, combined
    /// in block order by the caller.
    DotPartial { a: &'a [f64], b: &'a [f64], out: &'a mut f64 },
}

impl Job<'_> {
    fn run(self) {
        match self {
            Job::MulVec { a, x, start_row, out } => {
                for (d, slot) in out.iter_mut().enumerate() {
                    let (cols, vals) = a.row(start_row + d);
                    let mut acc = 0.0;
                    for (c, v) in cols.iter().zip(vals) {
                        acc += v * x[*c as usize];
                    }
                    *slot = acc;
                }
            }
            Job::Axpy { wk, src, out } => {
                for (o, s) in out.iter_mut().zip(src) {
                    *o += wk * s;
                }
            }
            Job::DotPartial { a, b, out } => {
                *out = a.iter().zip(b).map(|(x, y)| x * y).sum();
            }
        }
    }
}

/// Runs every job exactly once, fanned out over at most `threads` scoped
/// workers (0 = one per core). Job-to-worker assignment is round-robin,
/// but since jobs write disjoint targets the assignment cannot affect any
/// result — only the wall clock.
pub(crate) fn run_jobs(jobs: Vec<Job<'_>>, threads: usize) {
    let workers = resolve_threads(threads).min(jobs.len()).max(1);
    if workers == 1 {
        for job in jobs {
            job.run();
        }
        return;
    }
    let mut buckets: Vec<Vec<Job<'_>>> =
        (0..workers).map(|_| Vec::with_capacity(jobs.len() / workers + 1)).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        buckets[i % workers].push(job);
    }
    let mut buckets = buckets.into_iter();
    let mine = buckets.next().expect("at least one worker");
    std::thread::scope(|scope| {
        for bucket in buckets {
            scope.spawn(move || {
                for job in bucket {
                    job.run();
                }
            });
        }
        for job in mine {
            job.run();
        }
    });
}

/// Row-block-partitioned `y = A · x` over `threads` scoped workers
/// (0 = one per core, 1 = serial).
///
/// Per output element this performs exactly the per-row dot of
/// [`CsrMatrix::mul_vec_into`], so results are bit-identical to the serial
/// method at every thread count.
///
/// # Panics
///
/// Panics on dimension mismatches, like [`CsrMatrix::mul_vec_into`].
pub fn mul_vec_into(a: &CsrMatrix, x: &[f64], y: &mut [f64], threads: usize) {
    assert_eq!(x.len(), a.ncols(), "dimension mismatch");
    assert_eq!(y.len(), a.nrows(), "dimension mismatch");
    let jobs: Vec<Job<'_>> = split_blocks(y)
        .into_iter()
        .map(|(start_row, out)| Job::MulVec { a, x, start_row, out })
        .collect();
    run_jobs(jobs, threads);
}

/// Sum of `x` in fixed block order: serial partial sums per block, partials
/// combined in ascending block order. The result depends only on `x.len()`
/// and the values — never on a thread count — so callers can normalize
/// disjoint sub-slices against the same total (see `dtc_markov::solve`).
pub fn blocked_sum(x: &[f64]) -> f64 {
    block_ranges(x.len()).into_iter().map(|r| x[r].iter().sum::<f64>()).sum()
}

/// Dot product `Σ aᵢ·bᵢ` in fixed block order, with the per-block partials
/// computed over `threads` workers and combined in ascending block order on
/// the calling thread. Bit-identical at every thread count.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn blocked_dot(a: &[f64], b: &[f64], threads: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut partials = vec![0.0f64; num_blocks(a.len())];
    let jobs: Vec<Job<'_>> = block_ranges(a.len())
        .into_iter()
        .zip(partials.iter_mut())
        .map(|(r, out)| Job::DotPartial { a: &a[r.clone()], b: &b[r], out })
        .collect();
    run_jobs(jobs, threads);
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CooMatrix;

    fn dense_random(nrows: usize, ncols: usize, seed: u64) -> CsrMatrix {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut coo = CooMatrix::new(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                let v = next();
                if v.abs() > 0.3 {
                    coo.push(i, j, v);
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn block_ranges_cover_and_are_fixed() {
        for len in [0usize, 1, 2, 63, 64, 65, 100, 1000] {
            let ranges = block_ranges(len);
            assert_eq!(ranges.len(), num_blocks(len));
            let mut expect = 0;
            for r in &ranges {
                assert_eq!(r.start, expect, "blocks are contiguous for len {len}");
                assert!(!r.is_empty(), "no empty blocks for len {len}");
                expect = r.end;
            }
            assert_eq!(expect, len, "blocks cover the vector for len {len}");
            // Boundaries are a pure function of len.
            assert_eq!(ranges, block_ranges(len));
        }
    }

    #[test]
    fn parallel_mul_vec_bit_identical_to_serial_method() {
        // Signed values: the contract must hold without any sign argument.
        let a = dense_random(97, 97, 42);
        let x: Vec<f64> = (0..97).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();
        let mut serial = vec![0.0; 97];
        a.mul_vec_into(&x, &mut serial);
        for threads in [1usize, 2, 3, 4, 8, 64] {
            let mut parallel = vec![0.0; 97];
            mul_vec_into(&a, &x, &mut parallel, threads);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn blocked_dot_bit_identical_across_threads() {
        let a: Vec<f64> = (0..517).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..517).map(|i| (i as f64 * 0.7).cos()).collect();
        let one = blocked_dot(&a, &b, 1);
        for threads in [2usize, 4, 8, 17] {
            assert_eq!(blocked_dot(&a, &b, threads).to_bits(), one.to_bits());
        }
        // Small vectors (one element per block) equal the plain serial dot.
        let small = &a[..40];
        assert_eq!(blocked_dot(small, small, 4), crate::solve::dot(small, small));
    }

    #[test]
    fn blocked_sum_matches_block_order_fold() {
        let x: Vec<f64> = (0..130).map(|i| 1.0 / (i + 1) as f64).collect();
        let manual: f64 =
            block_ranges(x.len()).into_iter().map(|r| x[r].iter().sum::<f64>()).sum();
        assert_eq!(blocked_sum(&x).to_bits(), manual.to_bits());
        assert_eq!(blocked_sum(&[]), 0.0);
    }

    #[test]
    fn split_blocks_is_disjoint_and_complete() {
        let mut v: Vec<f64> = (0..77).map(|i| i as f64).collect();
        let blocks = split_blocks(&mut v);
        assert_eq!(blocks.len(), num_blocks(77));
        let mut seen = 0;
        for (start, slice) in &blocks {
            assert_eq!(*start, seen);
            seen += slice.len();
        }
        assert_eq!(seen, 77);
    }

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
