//! Poisson probability weights for uniformization (Jensen's method).
//!
//! Transient CTMC solutions take the form
//! `π(t) = Σ_{k≥0} e^{-Λt} (Λt)^k / k! · π0 Pᵏ`. The weights are Poisson
//! probabilities with mean `m = Λt`; computing them naively overflows for
//! `m` beyond a few hundred, so we follow the spirit of the Fox–Glynn
//! algorithm: start at the mode, recur outwards in scaled space, and
//! truncate both tails at a requested mass `ε`.

/// Computes truncated Poisson(m) weights `w[k]` for `k = 0..=right`, where
/// weights below the truncation threshold on both tails are returned as zero.
/// The returned vector always starts at `k = 0` for caller convenience
/// (left-truncated entries are zeros), and sums to 1 within `epsilon`.
///
/// # Panics
///
/// Panics if `mean` is negative or not finite, or `epsilon` not in `(0, 1)`.
pub fn poisson_weights(mean: f64, epsilon: f64) -> Vec<f64> {
    assert!(mean.is_finite() && mean >= 0.0, "mean must be finite and >= 0, got {mean}");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1), got {epsilon}");
    if mean == 0.0 {
        return vec![1.0];
    }
    // Work in log space around the mode to avoid overflow/underflow.
    let mode = mean.floor() as usize;
    let ln_mean = mean.ln();
    // log Poisson pmf at k, via Stirling-free recurrence from the mode.
    // ln p(k) = -m + k ln m - ln k!
    let ln_p_mode = -mean + (mode as f64) * ln_mean - ln_factorial(mode);

    // Expand right tail until cumulative (relative) mass is negligible.
    let mut ln_terms: Vec<(usize, f64)> = vec![(mode, ln_p_mode)];
    let mut ln_pk = ln_p_mode;
    let mut k = mode;
    // Right tail: p(k+1) = p(k) * m/(k+1).
    loop {
        k += 1;
        ln_pk += ln_mean - (k as f64).ln();
        ln_terms.push((k, ln_pk));
        if ln_pk < ln_p_mode + (epsilon / 2.0).ln() - (k as f64 - mean).abs().max(1.0).ln() {
            // Heuristic cutoff; verified by renormalization below.
            if (k as f64) > mean + 8.0 * mean.sqrt().max(4.0) {
                break;
            }
        }
        if k > mode + 10_000_000 {
            break; // hard safety bound
        }
    }
    // Left tail: p(k-1) = p(k) * k/m.
    let mut ln_pk = ln_p_mode;
    let mut k = mode;
    while k > 0 {
        ln_pk += (k as f64).ln() - ln_mean;
        k -= 1;
        ln_terms.push((k, ln_pk));
        if (k as f64) < mean - 8.0 * mean.sqrt().max(4.0) {
            break;
        }
    }
    let right = ln_terms.iter().map(|&(k, _)| k).max().unwrap_or(0);
    let mut w = vec![0.0; right + 1];
    // Shift by max log for numerical stability, then normalize exactly.
    let max_ln = ln_terms.iter().map(|&(_, l)| l).fold(f64::NEG_INFINITY, f64::max);
    for &(k, l) in &ln_terms {
        w[k] = (l - max_ln).exp();
    }
    let total: f64 = w.iter().sum();
    for v in &mut w {
        *v /= total;
    }
    w
}

/// Natural log of `k!` via `lgamma`-style Lanczos-free summation (exact
/// summation for small `k`, Stirling series beyond).
pub fn ln_factorial(k: usize) -> f64 {
    if k < 2 {
        return 0.0;
    }
    if k <= 256 {
        (2..=k).map(|i| (i as f64).ln()).sum()
    } else {
        // Stirling with correction terms; error < 1e-12 for k > 256.
        let x = k as f64;
        x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
            - 1.0 / (360.0 * x * x * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_mean_is_point_mass() {
        assert_eq!(poisson_weights(0.0, 1e-12), vec![1.0]);
    }

    #[test]
    fn small_mean_matches_direct_pmf() {
        let m = 2.5;
        let w = poisson_weights(m, 1e-14);
        for (k, wk) in w.iter().enumerate().take(12) {
            let direct = (-m + (k as f64) * m.ln() - ln_factorial(k)).exp();
            assert!((wk - direct).abs() < 1e-10, "k={k}: {wk} vs {direct}");
        }
    }

    #[test]
    fn weights_sum_to_one() {
        for m in [0.1, 1.0, 17.3, 400.0, 12345.6] {
            let w = poisson_weights(m, 1e-12);
            let s: f64 = w.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "mean {m}: sum {s}");
        }
    }

    #[test]
    fn large_mean_does_not_overflow() {
        let w = poisson_weights(1e6, 1e-10);
        let s: f64 = w.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        // Mass should be centred near the mean.
        let mean_est: f64 = w.iter().enumerate().map(|(k, v)| k as f64 * v).sum();
        assert!((mean_est - 1e6).abs() < 1e4 * 0.5);
    }

    #[test]
    fn mode_carries_most_mass_nearby() {
        let m = 50.0;
        let w = poisson_weights(m, 1e-12);
        let argmax =
            w.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(k, _)| k).unwrap();
        assert!((argmax as f64 - m).abs() <= 1.0);
    }

    #[test]
    fn ln_factorial_agrees_with_exact() {
        // 20! = 2432902008176640000
        let exact = (2432902008176640000.0f64).ln();
        assert!((ln_factorial(20) - exact).abs() < 1e-9);
        // Stirling branch continuity at the switch point.
        let a = ln_factorial(256);
        let b = ln_factorial(257);
        assert!((b - a - 257f64.ln()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mean")]
    fn negative_mean_panics() {
        poisson_weights(-1.0, 1e-6);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_panics() {
        poisson_weights(1.0, 1.5);
    }
}
