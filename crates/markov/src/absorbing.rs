//! Absorbing-chain analysis: mean time to absorption and absorption
//! probabilities.
//!
//! Reliability (as opposed to availability) questions are absorbing-chain
//! questions: make every "system failed" state absorbing, then the mean time
//! to absorption from the initial state is the MTTF, and `R(t)` is the
//! transient probability of not yet being absorbed.

use crate::ctmc::Ctmc;
use crate::error::{MarkovError, Result};
use crate::solve::dense_solve;

/// Results of absorbing analysis for a CTMC.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsorptionAnalysis {
    /// For each state: expected time to absorption (0 for absorbing states).
    pub mean_time_to_absorption: Vec<f64>,
    /// Indices of the absorbing states found.
    pub absorbing_states: Vec<usize>,
}

/// Computes expected time to absorption for every transient state of `ctmc`.
///
/// States with zero exit rate are absorbing. The expected times solve
/// `Q_TT · τ = -1` where `Q_TT` is the generator restricted to transient
/// states (dense solve; intended for chains up to a few thousand states).
///
/// # Errors
///
/// * [`MarkovError::Singular`] if some transient state cannot reach any
///   absorbing state (its expected absorption time is infinite).
/// * [`MarkovError::Empty`] if the chain has no absorbing states at all.
pub fn mean_time_to_absorption(ctmc: &Ctmc) -> Result<AbsorptionAnalysis> {
    let n = ctmc.num_states();
    let absorbing: Vec<usize> = (0..n).filter(|&i| ctmc.exit_rates()[i] == 0.0).collect();
    if absorbing.is_empty() {
        return Err(MarkovError::Empty);
    }
    let transient: Vec<usize> = (0..n).filter(|&i| ctmc.exit_rates()[i] != 0.0).collect();
    let index_of: std::collections::HashMap<usize, usize> =
        transient.iter().enumerate().map(|(k, &s)| (s, k)).collect();
    let m = transient.len();
    let mut a = vec![vec![0.0; m]; m];
    for (row, &s) in transient.iter().enumerate() {
        let (cols, vals) = ctmc.generator().row(s);
        for (c, v) in cols.iter().zip(vals) {
            if let Some(&col) = index_of.get(&(*c as usize)) {
                a[row][col] = *v;
            }
        }
    }
    let b = vec![-1.0; m];
    let tau = dense_solve(a, b)?;
    let mut full = vec![0.0; n];
    for (k, &s) in transient.iter().enumerate() {
        full[s] = tau[k];
    }
    Ok(AbsorptionAnalysis { mean_time_to_absorption: full, absorbing_states: absorbing })
}

/// Iterative (Gauss–Seidel) mean time to absorption for **large sparse**
/// chains where the dense solve of [`mean_time_to_absorption`] is
/// infeasible. `absorbing` marks the target states; transitions *out of*
/// absorbing states are ignored, so any CTMC can be analyzed "as if" a
/// state set were absorbing — which is how a repairable system model
/// yields its MTTF (make every service-down state absorbing and measure
/// the time to reach the set).
///
/// Solves `Q_TT · τ = -1` by Gauss–Seidel sweeps (the system is a
/// nonsingular M-matrix when every transient state can reach the set).
///
/// # Errors
///
/// * [`MarkovError::Empty`] if no state is marked absorbing.
/// * [`MarkovError::NotConverged`] if sweeps exhaust the budget (e.g. some
///   transient state cannot reach the absorbing set, making the true value
///   infinite).
pub fn mean_time_to_absorption_iterative(
    ctmc: &Ctmc,
    absorbing: &[bool],
    opts: &crate::solve::SolverOptions,
) -> Result<Vec<f64>> {
    let n = ctmc.num_states();
    if absorbing.len() != n {
        return Err(MarkovError::DimensionMismatch { expected: n, got: absorbing.len() });
    }
    if !absorbing.iter().any(|&a| a) {
        return Err(MarkovError::Empty);
    }
    let q = ctmc.generator();
    // Diagonal of each transient row (must be nonzero: a transient state
    // with no outgoing rate can never be absorbed).
    let mut diag = vec![0.0f64; n];
    for i in 0..n {
        if !absorbing[i] {
            let d = q.get(i, i);
            if d == 0.0 {
                return Err(MarkovError::ZeroDiagonal { state: i });
            }
            diag[i] = d;
        }
    }
    let mut tau = vec![0.0f64; n];
    let mut last_delta = f64::INFINITY;
    for it in 1..=opts.max_iterations {
        let mut delta: f64 = 0.0;
        for i in 0..n {
            if absorbing[i] {
                continue;
            }
            // Q_TT row i: τ_i = -(1 + Σ_{j≠i, j transient} q_ij τ_j) / q_ii.
            let (cols, vals) = q.row(i);
            let mut acc = 1.0; // the -(-1) right-hand side
            for (c, v) in cols.iter().zip(vals) {
                let j = *c as usize;
                if j != i && !absorbing[j] {
                    acc += v * tau[j];
                }
            }
            let new = -acc / diag[i];
            delta = delta.max((new - tau[i]).abs());
            tau[i] = new;
        }
        last_delta = delta;
        if it % opts.check_every == 0 {
            let scale = tau.iter().cloned().fold(0.0, f64::max).max(1e-300);
            if delta / scale <= opts.tolerance {
                return Ok(tau);
            }
        }
    }
    let scale = tau.iter().cloned().fold(0.0, f64::max).max(1e-300);
    if opts.accept_loose > 0.0 && last_delta / scale <= opts.accept_loose {
        return Ok(tau);
    }
    Err(MarkovError::NotConverged {
        method: crate::solve::Method::GaussSeidel,
        iterations: opts.max_iterations,
        residual: last_delta,
    })
}

/// Probability of eventually being absorbed in each absorbing state, per
/// starting transient state. Returns a row-major `transient × absorbing`
/// matrix alongside the state index lists.
#[allow(clippy::type_complexity)]
pub fn absorption_probabilities(
    ctmc: &Ctmc,
) -> Result<(Vec<usize>, Vec<usize>, Vec<Vec<f64>>)> {
    let n = ctmc.num_states();
    let absorbing: Vec<usize> = (0..n).filter(|&i| ctmc.exit_rates()[i] == 0.0).collect();
    if absorbing.is_empty() {
        return Err(MarkovError::Empty);
    }
    let transient: Vec<usize> = (0..n).filter(|&i| ctmc.exit_rates()[i] != 0.0).collect();
    let index_of: std::collections::HashMap<usize, usize> =
        transient.iter().enumerate().map(|(k, &s)| (s, k)).collect();
    let m = transient.len();
    let mut probs = vec![vec![0.0; absorbing.len()]; m];
    for (a_col, &a_state) in absorbing.iter().enumerate() {
        // Solve Q_TT x = -R[:, a] where R is transient->absorbing rates.
        let mut mat = vec![vec![0.0; m]; m];
        let mut rhs = vec![0.0; m];
        for (row, &s) in transient.iter().enumerate() {
            let (cols, vals) = ctmc.generator().row(s);
            for (c, v) in cols.iter().zip(vals) {
                let j = *c as usize;
                if let Some(&col) = index_of.get(&j) {
                    mat[row][col] = *v;
                } else if j == a_state {
                    rhs[row] -= *v;
                }
            }
        }
        let x = dense_solve(mat, rhs)?;
        for (row, xv) in x.iter().enumerate() {
            probs[row][a_col] = *xv;
        }
    }
    Ok((transient, absorbing, probs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    #[test]
    fn single_exponential_stage() {
        // 0 -> 1 at rate 2: MTTA from 0 is 0.5.
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 2.0);
        let c = b.build().unwrap();
        let a = mean_time_to_absorption(&c).unwrap();
        assert_eq!(a.absorbing_states, vec![1]);
        assert!((a.mean_time_to_absorption[0] - 0.5).abs() < 1e-12);
        assert_eq!(a.mean_time_to_absorption[1], 0.0);
    }

    #[test]
    fn erlang_two_stages() {
        // 0 ->(r) 1 ->(r) 2: MTTA = 2/r.
        let r = 4.0;
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, r);
        b.rate(1, 2, r);
        let c = b.build().unwrap();
        let a = mean_time_to_absorption(&c).unwrap();
        assert!((a.mean_time_to_absorption[0] - 2.0 / r).abs() < 1e-12);
        assert!((a.mean_time_to_absorption[1] - 1.0 / r).abs() < 1e-12);
    }

    #[test]
    fn repairable_system_mttf_with_repair() {
        // Classic: up(0) -> down-absorbing via intermediate degraded(1) with
        // repair. λ1: 0->1, μ: 1->0, λ2: 1->2(absorbing).
        // MTTA(0) = (λ1 + λ2 + μ) / (λ1 λ2).
        let (l1, l2, mu) = (0.01, 0.05, 1.0);
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, l1);
        b.rate(1, 0, mu);
        b.rate(1, 2, l2);
        let c = b.build().unwrap();
        let a = mean_time_to_absorption(&c).unwrap();
        let expect = (l1 + l2 + mu) / (l1 * l2);
        assert!(
            (a.mean_time_to_absorption[0] - expect).abs() / expect < 1e-10,
            "got {} expect {expect}",
            a.mean_time_to_absorption[0]
        );
    }

    #[test]
    fn absorption_probabilities_split() {
        // 0 -> 1 (rate 1), 0 -> 2 (rate 3): P(absorb in 1) = 1/4.
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0);
        b.rate(0, 2, 3.0);
        let c = b.build().unwrap();
        let (transient, absorbing, probs) = absorption_probabilities(&c).unwrap();
        assert_eq!(transient, vec![0]);
        assert_eq!(absorbing, vec![1, 2]);
        assert!((probs[0][0] - 0.25).abs() < 1e-12);
        assert!((probs[0][1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn iterative_matches_dense_on_erlang() {
        let r = 4.0;
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, r);
        b.rate(1, 2, r);
        let c = b.build().unwrap();
        let dense = mean_time_to_absorption(&c).unwrap();
        let tau = mean_time_to_absorption_iterative(
            &c,
            &[false, false, true],
            &crate::solve::SolverOptions::default(),
        )
        .unwrap();
        for (a, b) in tau.iter().zip(&dense.mean_time_to_absorption) {
            assert!((a - b).abs() < 1e-9, "{tau:?} vs dense");
        }
    }

    #[test]
    fn iterative_treats_marked_states_as_absorbing() {
        // Repairable 2-state chain; mark "down" as absorbing -> MTTA from
        // up = MTTF even though the chain itself has a repair transition.
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0 / 500.0);
        b.rate(1, 0, 1.0 / 5.0);
        let c = b.build().unwrap();
        let tau = mean_time_to_absorption_iterative(
            &c,
            &[false, true],
            &crate::solve::SolverOptions::default(),
        )
        .unwrap();
        assert!((tau[0] - 500.0).abs() < 1e-6, "{tau:?}");
        assert_eq!(tau[1], 0.0);
    }

    #[test]
    fn iterative_mtta_with_repair_detour() {
        // up(0) <-> degraded(1) -> failed(2). Same closed form as the dense
        // test: MTTA(0) = (λ1+λ2+μ)/(λ1 λ2).
        let (l1, l2, mu) = (0.01, 0.05, 1.0);
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, l1);
        b.rate(1, 0, mu);
        b.rate(1, 2, l2);
        let c = b.build().unwrap();
        let tau = mean_time_to_absorption_iterative(
            &c,
            &[false, false, true],
            &crate::solve::SolverOptions::default(),
        )
        .unwrap();
        let expect = (l1 + l2 + mu) / (l1 * l2);
        assert!((tau[0] - expect).abs() / expect < 1e-8, "{} vs {expect}", tau[0]);
    }

    #[test]
    fn iterative_rejects_empty_set_and_bad_len() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0);
        b.rate(1, 0, 1.0);
        let c = b.build().unwrap();
        let opts = crate::solve::SolverOptions::default();
        assert!(matches!(
            mean_time_to_absorption_iterative(&c, &[false, false], &opts),
            Err(MarkovError::Empty)
        ));
        assert!(matches!(
            mean_time_to_absorption_iterative(&c, &[false], &opts),
            Err(MarkovError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn no_absorbing_state_is_error() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0);
        b.rate(1, 0, 1.0);
        let c = b.build().unwrap();
        assert!(matches!(mean_time_to_absorption(&c), Err(MarkovError::Empty)));
    }

    #[test]
    fn unreachable_absorption_is_singular() {
        // 0 <-> 1 closed class; 2 -> 3 absorbing; 0 cannot reach 3.
        let mut b = CtmcBuilder::new(4);
        b.rate(0, 1, 1.0);
        b.rate(1, 0, 1.0);
        b.rate(2, 3, 1.0);
        let c = b.build().unwrap();
        assert!(matches!(mean_time_to_absorption(&c), Err(MarkovError::Singular { .. })));
    }
}
