//! Single-pass multi-time-point uniformization: one march, many curves.
//!
//! The per-point API ([`Ctmc::transient`], [`crate::cumulative_reward`])
//! rebuilds the uniformized DTMC `P = I + Q/Λ` and re-marches the power
//! sequence `π0·Pᵏ` from `k = 0` for **every** requested time. Curve
//! workloads — a Fig. 7-style availability curve over dozens of points, or a
//! transient + SLA-window analysis set — repeat that march almost entirely:
//! the uniformization rate `Λ` does not depend on `t`, so the vectors
//! `π0·Pᵏ` are shared by every time point and only the Poisson weights
//! differ.
//!
//! [`uniformized_pass`] exploits that: it builds `P` **once**, marches the
//! power sequence **once** (truncated by the largest `Λt` among the
//! requests), and accumulates every requested result during the same sweep —
//! point distributions `π(t) = Σ_k pois(Λt; k)·π0 Pᵏ` and cumulative rewards
//! `E[∫₀ʰ r(X_u) du] = Σ_k c_k(h)·(π0 Pᵏ)·r` alike. Each request keeps the
//! exact truncation and accumulation order of its per-point counterpart, so
//! results are bit-identical to the one-point-at-a-time path, just computed
//! in a single pass.
//!
//! [`uniformized_pass_with`] adds two orthogonal capabilities on the same
//! march:
//!
//! * **Parallelism** ([`PassOptions::threads`]): each step fans its SpMV
//!   row blocks, per-time-point axpy blocks, and dot-product partials out
//!   over scoped threads via the deterministic kernels in [`crate::par`] —
//!   the thread count can change the wall clock but never a result bit.
//! * **Reward projection** ([`PassOptions::point_reward`]): accumulate the
//!   scalars `r·π0Pᵏ` instead of materializing a distribution per unique
//!   time point, so a thousand-point year-horizon curve needs O(states)
//!   memory instead of O(states × points).

use crate::ctmc::Ctmc;
use crate::error::{MarkovError, Result};
use crate::instrument;
use crate::par;
use crate::solve;
use crate::transient::poisson_weights;

/// Truncation mass for point (transient) weights; matches
/// [`Ctmc::transient`].
const POINT_EPSILON: f64 = 1e-14;
/// Truncation mass for cumulative weights; matches
/// [`crate::cumulative_reward`].
const CUMULATIVE_EPSILON: f64 = 1e-13;

/// Scheduling and output-shape knobs for [`uniformized_pass_with`].
///
/// The default value reproduces [`uniformized_pass`] exactly: automatic
/// thread count, full distribution vectors per time point.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassOptions<'a> {
    /// Worker threads for the march kernels: `0` means one per available
    /// core, `1` forces the serial path. Results are bit-identical at
    /// every value (see [`crate::par`] for the contract).
    pub threads: usize,
    /// Reward-projection mode: when set, the pass accumulates the scalars
    /// `r·π(t)` into [`PassOutput::point_rewards`] instead of
    /// materializing a distribution per unique time point, keeping memory
    /// at O(states) regardless of how many points are requested.
    /// [`PassOutput::distributions`] comes back empty. The projected
    /// values agree with `dot(distribution, r)` of the full-vector mode to
    /// ≤ 1e-12 (projection skips the final defensive renormalization,
    /// whose correction is bounded by the truncation mass).
    pub point_reward: Option<&'a [f64]>,
}

/// What one shared march produced, in the caller's request order.
#[derive(Debug, Clone)]
pub struct PassOutput {
    /// `π(t)` for each entry of `point_times` (caller order, duplicates
    /// allowed; `t == 0` returns `pi0` verbatim). Empty in
    /// reward-projection mode.
    pub distributions: Vec<Vec<f64>>,
    /// `E[∫₀ʰ r(X_u) du]` for each entry of `horizons` (caller order;
    /// `h == 0` yields `0.0`).
    pub cumulative: Vec<f64>,
    /// `r·π(t)` for each entry of `point_times` when
    /// [`PassOptions::point_reward`] was set; empty otherwise.
    pub point_rewards: Vec<f64>,
    /// What the pass actually cost.
    pub stats: PassStats,
}

/// Work performed by one [`uniformized_pass`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Uniformized-matrix constructions (0 when every request is trivial,
    /// 1 otherwise — never more).
    pub matrix_builds: usize,
    /// Power marches (0 or 1, same rule).
    pub marches: usize,
    /// Number of `π0·Pᵏ` terms the march visited (the largest per-request
    /// truncation point).
    pub truncation_k: usize,
}

/// Evaluates every requested transient point and cumulative horizon in one
/// uniformization pass over `ctmc`.
///
/// * `point_times` — times `t ≥ 0` (hours) at which the transient
///   distribution is wanted. **Any order, duplicates and `0.0` allowed**;
///   `distributions` comes back in exactly this order.
/// * `horizons` — horizons `h ≥ 0` for the cumulative reward
///   `E[∫₀ʰ reward(X_u) du]`; `cumulative` comes back in this order.
/// * `cumulative_reward` — per-state reward rates; only consulted when
///   `horizons` is non-empty.
///
/// # Errors
///
/// [`MarkovError::DimensionMismatch`] on wrong `pi0`/reward lengths,
/// [`MarkovError::NegativeTime`] on a negative or non-finite time/horizon.
pub fn uniformized_pass(
    ctmc: &Ctmc,
    pi0: &[f64],
    point_times: &[f64],
    horizons: &[f64],
    cumulative_reward: &[f64],
) -> Result<PassOutput> {
    uniformized_pass_with(
        ctmc,
        pi0,
        point_times,
        horizons,
        cumulative_reward,
        &PassOptions::default(),
    )
}

/// [`uniformized_pass`] with explicit [`PassOptions`]: a thread count for
/// the deterministic parallel kernels and/or reward-projection output.
///
/// Each march step is software-pipelined into one fan-out: every job of
/// step `k` reads the shared vector `π0·Pᵏ` — the per-time-point
/// accumulations (axpy blocks or projection dot partials), the cumulative
/// dot partials, and the SpMV row blocks producing `π0·Pᵏ⁺¹` for the next
/// step all run in a single thread scope, then the calling thread combines
/// the dot partials in fixed block order. See [`crate::par`] for why none
/// of this can change a result bit.
///
/// # Errors
///
/// As [`uniformized_pass`], plus [`MarkovError::DimensionMismatch`] when
/// [`PassOptions::point_reward`] is set with the wrong length while point
/// times are requested.
pub fn uniformized_pass_with(
    ctmc: &Ctmc,
    pi0: &[f64],
    point_times: &[f64],
    horizons: &[f64],
    cumulative_reward: &[f64],
    options: &PassOptions<'_>,
) -> Result<PassOutput> {
    let n = ctmc.num_states();
    if pi0.len() != n {
        return Err(MarkovError::DimensionMismatch { expected: n, got: pi0.len() });
    }
    for &t in point_times.iter().chain(horizons) {
        if !t.is_finite() || t < 0.0 {
            return Err(MarkovError::NegativeTime(t));
        }
    }
    if !horizons.is_empty() && cumulative_reward.len() != n {
        return Err(MarkovError::DimensionMismatch {
            expected: n,
            got: cumulative_reward.len(),
        });
    }
    let project = options.point_reward;
    if let Some(r) = project {
        if !point_times.is_empty() && r.len() != n {
            return Err(MarkovError::DimensionMismatch { expected: n, got: r.len() });
        }
    }
    let threads = par::resolve_threads(options.threads);

    let lambda = ctmc.uniformization_rate();

    // Dedup identical requests so duplicates share one Poisson weight
    // vector, one accumulator, and one accumulation per march step; the
    // slot maps lead each request back to its unique value. Exact `f64`
    // equality is safe here — NaNs were rejected above.
    let dedup = |values: &[f64]| -> (Vec<f64>, Vec<usize>) {
        let mut unique: Vec<f64> = Vec::new();
        let slots = values
            .iter()
            .map(|&v| {
                unique.iter().position(|&u| u == v).unwrap_or_else(|| {
                    unique.push(v);
                    unique.len() - 1
                })
            })
            .collect();
        (unique, slots)
    };
    let (times, time_slot) = dedup(point_times);
    let (cum_horizons, horizon_slot) = dedup(horizons);

    // Per-unique-request Poisson weights, each with the same truncation its
    // per-point counterpart would have used. The march length is the
    // largest truncation among them.
    let point_weights: Vec<Option<Vec<f64>>> = times
        .iter()
        .map(|&t| (t > 0.0).then(|| poisson_weights(lambda * t, POINT_EPSILON)))
        .collect();
    let horizon_weights: Vec<Option<Vec<f64>>> = cum_horizons
        .iter()
        .map(|&h| (h > 0.0).then(|| poisson_weights(lambda * h, CUMULATIVE_EPSILON)))
        .collect();
    let weights_len = |w: &Option<Vec<f64>>| w.as_ref().map_or(0, Vec::len);
    // The march stops where the longest-lived request truncates; the
    // cumulative dot product is only worth computing up to the longest
    // *horizon* truncation.
    let cum_kmax = horizon_weights.iter().map(weights_len).max().unwrap_or(0);
    let kmax = point_weights.iter().map(weights_len).max().unwrap_or(0).max(cum_kmax);

    // Accumulators: a distribution (full-vector mode) or a scalar
    // (projection mode) per live unique time, a scalar (and a running
    // Poisson CDF) per unique horizon.
    let mut point_acc: Vec<Option<Vec<f64>>> = if project.is_some() {
        Vec::new()
    } else {
        point_weights.iter().map(|w| w.as_ref().map(|_| vec![0.0; n])).collect()
    };
    let mut proj_acc = vec![0.0f64; if project.is_some() { times.len() } else { 0 }];
    let mut cum_acc = vec![0.0f64; cum_horizons.len()];
    let mut cum_cdf = vec![0.0f64; cum_horizons.len()];

    let mut stats = PassStats::default();
    if kmax > 0 {
        // One trace node frames the whole pass so the build and the march
        // land as its children in a request's span tree (inert offline).
        let _pass_span = dtc_obs::trace::trace_span("uniformized_pass");
        let pt = {
            let _build_span = dtc_obs::stage_span("uniformized_build");
            let p = ctmc.uniformized(lambda);
            dtc_obs::trace::attr_int("states", n as i64);
            dtc_obs::trace::attr_int("transitions", p.nnz() as i64);
            // The march evaluates `next = cur·P` as `next = Pᵀ·cur` through
            // the row-block kernel. The transpose keeps ascending
            // source-row order within each transposed row, so every output
            // element accumulates its terms in exactly the order the
            // serial scatter (`vec_mul_into`) used — the switch is
            // bit-exact, and it is what makes disjoint row blocks
            // possible.
            p.transpose()
        };
        stats.matrix_builds = 1;
        stats.marches = 1;
        stats.truncation_k = kmax;
        instrument::count_transient_march();
        let _march_span = dtc_obs::stage_span("march");
        dtc_obs::trace::attr_int("truncation_k", kmax as i64);
        dtc_obs::trace::attr_int("time_points", times.len() as i64);
        dtc_obs::trace::attr_int("horizons", cum_horizons.len() as i64);
        dtc_obs::trace::attr_int("threads", threads as i64);

        let nb = par::num_blocks(n);
        let mut cur = pi0.to_vec();
        let mut next = vec![0.0; n];
        let mut cum_partials = vec![0.0f64; nb];
        let mut proj_partials = vec![0.0f64; nb];
        let live_at = |w: &Option<Vec<f64>>, k: usize| {
            w.as_ref().is_some_and(|w| k < w.len() && w[k] > 0.0)
        };
        for k in 0..kmax {
            // Software-pipelined step: every job reads `cur` = π0·Pᵏ. The
            // accumulations for step k and the SpMV producing π0·Pᵏ⁺¹ for
            // step k+1 fan out in one scope; nothing below writes a slot
            // any other job touches.
            let need_cum = k < cum_kmax;
            let need_proj = project.is_some() && point_weights.iter().any(|w| live_at(w, k));
            let mut jobs: Vec<par::Job<'_>> = Vec::new();
            if k + 1 < kmax {
                for (start_row, out) in par::split_blocks(&mut next) {
                    jobs.push(par::Job::MulVec { a: &pt, x: &cur, start_row, out });
                }
            }
            if need_cum {
                for (r, out) in par::block_ranges(n).into_iter().zip(cum_partials.iter_mut()) {
                    jobs.push(par::Job::DotPartial {
                        a: &cur[r.clone()],
                        b: &cumulative_reward[r],
                        out,
                    });
                }
            }
            if let Some(reward) = project {
                if need_proj {
                    for (r, out) in
                        par::block_ranges(n).into_iter().zip(proj_partials.iter_mut())
                    {
                        jobs.push(par::Job::DotPartial {
                            a: &cur[r.clone()],
                            b: &reward[r],
                            out,
                        });
                    }
                }
            } else {
                for (w, acc) in point_weights.iter().zip(&mut point_acc) {
                    let (Some(w), Some(acc)) = (w, acc) else { continue };
                    // Stop exactly where the per-point march would have
                    // truncated, preserving bit-identical accumulation.
                    if k < w.len() && w[k] > 0.0 {
                        let wk = w[k];
                        for (start, out) in par::split_blocks(acc) {
                            let src = &cur[start..start + out.len()];
                            jobs.push(par::Job::Axpy { wk, src, out });
                        }
                    }
                }
            }
            par::run_jobs(jobs, threads);
            // Combine the dot partials in fixed block order on this thread;
            // the scalar updates below don't depend on the thread count.
            if need_cum {
                let r = cum_partials.iter().sum::<f64>();
                for ((w, acc), cdf) in
                    horizon_weights.iter().zip(&mut cum_acc).zip(&mut cum_cdf)
                {
                    let Some(w) = w else { continue };
                    if k < w.len() {
                        *cdf += w[k];
                        let ck = (1.0 - *cdf).max(0.0) / lambda;
                        if ck > 0.0 {
                            *acc += ck * r;
                        }
                    }
                }
            }
            if need_proj {
                let s = proj_partials.iter().sum::<f64>();
                for (w, pa) in point_weights.iter().zip(proj_acc.iter_mut()) {
                    if live_at(w, k) {
                        let wk = w.as_ref().expect("live weight")[k];
                        *pa += wk * s;
                    }
                }
            }
            if k + 1 < kmax {
                std::mem::swap(&mut cur, &mut next);
            }
        }
    }

    let cumulative: Vec<f64> = horizon_slot.iter().map(|&s| cum_acc[s]).collect();
    if let Some(reward) = project {
        // t == 0: project the initial distribution directly (the march
        // never touches those slots).
        for (w, pa) in point_weights.iter().zip(proj_acc.iter_mut()) {
            if w.is_none() {
                *pa = par::blocked_dot(pi0, reward, threads);
            }
        }
        let point_rewards = time_slot.iter().map(|&s| proj_acc[s]).collect();
        return Ok(PassOutput { distributions: Vec::new(), cumulative, point_rewards, stats });
    }

    let mut unique_distributions: Vec<Option<Vec<f64>>> = point_acc
        .into_iter()
        .map(|acc| match acc {
            Some(mut acc) => {
                // Guard against accumulated rounding, as the per-point
                // solver does.
                solve::normalize(&mut acc);
                Some(acc)
            }
            // t == 0: the transient distribution is the initial one,
            // returned verbatim (no normalization), matching
            // `Ctmc::transient`.
            None => Some(pi0.to_vec()),
        })
        .collect();
    // Move each unique distribution out at its last use; only genuine
    // duplicates pay a copy.
    let mut last_use = vec![0usize; unique_distributions.len()];
    for (i, &s) in time_slot.iter().enumerate() {
        last_use[s] = i;
    }
    let distributions = time_slot
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            if last_use[s] == i {
                unique_distributions[s].take().expect("moved only at last use")
            } else {
                unique_distributions[s].as_ref().expect("taken only at last use").clone()
            }
        })
        .collect();
    Ok(PassOutput { distributions, cumulative, point_rewards: Vec::new(), stats })
}

/// Cumulative rewards `E[∫₀ʰ r(X_u) du]` for many horizons from one pass —
/// the multi-horizon form of [`crate::cumulative_reward`].
pub fn cumulative_reward_curve(
    ctmc: &Ctmc,
    pi0: &[f64],
    horizons: &[f64],
    reward: &[f64],
) -> Result<Vec<f64>> {
    Ok(uniformized_pass(ctmc, pi0, &[], horizons, reward)?.cumulative)
}

/// Expected interval availability over `[0, h]` for many horizons from one
/// pass — the multi-horizon form of [`crate::interval_availability`].
///
/// # Errors
///
/// Rejects non-positive horizons, like the single-horizon form.
pub fn interval_availability_curve(
    ctmc: &Ctmc,
    pi0: &[f64],
    horizons: &[f64],
    up: impl Fn(usize) -> bool,
) -> Result<Vec<f64>> {
    if let Some(&bad) = horizons.iter().find(|&&h| h <= 0.0) {
        return Err(MarkovError::NegativeTime(bad));
    }
    let reward: Vec<f64> =
        (0..ctmc.num_states()).map(|i| if up(i) { 1.0 } else { 0.0 }).collect();
    let acc = cumulative_reward_curve(ctmc, pi0, horizons, &reward)?;
    Ok(acc.iter().zip(horizons).map(|(a, h)| a / h).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;
    use crate::cumulative::{cumulative_reward, interval_availability};

    fn repairable(lam: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, lam);
        b.rate(1, 0, mu);
        b.build().unwrap()
    }

    /// The contract the whole stack leans on: unsorted, duplicated and zero
    /// time points are accepted and come back in caller order.
    #[test]
    fn unsorted_duplicate_and_zero_times_keep_caller_order() {
        let c = repairable(0.2, 0.8);
        let pi0 = [1.0, 0.0];
        let times = [10.0, 0.0, 1.0, 10.0, 0.5, 0.0];
        let curve = c.transient_curve(&pi0, &times).unwrap();
        assert_eq!(curve.len(), times.len());
        for (&t, pi) in times.iter().zip(&curve) {
            let reference = c.transient(&pi0, t).unwrap();
            assert_eq!(*pi, reference, "t = {t} must match the per-point solver exactly");
        }
        // Duplicates are identical, zeros are the initial distribution
        // verbatim.
        assert_eq!(curve[0], curve[3]);
        assert_eq!(curve[1], pi0.to_vec());
        assert_eq!(curve[5], pi0.to_vec());
    }

    #[test]
    fn empty_and_all_zero_requests_do_no_work() {
        let c = repairable(1.0, 1.0);
        let out = uniformized_pass(&c, &[0.5, 0.5], &[], &[], &[]).unwrap();
        assert_eq!(out.stats, PassStats::default());
        assert!(out.distributions.is_empty() && out.cumulative.is_empty());

        let out = uniformized_pass(&c, &[0.5, 0.5], &[0.0, 0.0], &[0.0], &[1.0, 0.0]).unwrap();
        assert_eq!(out.stats, PassStats::default(), "t = 0 everywhere needs no march");
        assert_eq!(out.distributions, vec![vec![0.5, 0.5]; 2]);
        assert_eq!(out.cumulative, vec![0.0]);
    }

    #[test]
    fn one_pass_matches_per_point_cumulative_bit_for_bit() {
        let c = repairable(0.3, 1.7);
        let pi0 = [1.0, 0.0];
        let reward = [1.0, 0.0];
        let horizons = [50.0, 0.1, 5.0, 50.0];
        let curve = cumulative_reward_curve(&c, &pi0, &horizons, &reward).unwrap();
        for (&h, &got) in horizons.iter().zip(&curve) {
            let reference = cumulative_reward(&c, &pi0, h, &reward).unwrap();
            assert_eq!(got, reference, "h = {h}");
        }
    }

    #[test]
    fn interval_curve_matches_per_horizon_and_rejects_nonpositive() {
        let c = repairable(0.1, 1.0);
        let pi0 = [1.0, 0.0];
        let horizons = [24.0, 1.0, 8760.0];
        let curve = interval_availability_curve(&c, &pi0, &horizons, |i| i == 0).unwrap();
        for (&h, &got) in horizons.iter().zip(&curve) {
            let reference = interval_availability(&c, &pi0, h, |i| i == 0).unwrap();
            assert_eq!(got, reference, "h = {h}");
        }
        assert!(matches!(
            interval_availability_curve(&c, &pi0, &[24.0, 0.0], |i| i == 0),
            Err(MarkovError::NegativeTime(_))
        ));
    }

    #[test]
    fn combined_pass_costs_one_build_and_one_march() {
        let c = repairable(0.4, 0.9);
        let builds0 = instrument::uniformized_builds();
        let marches0 = instrument::transient_marches();
        let out = uniformized_pass(
            &c,
            &[1.0, 0.0],
            &[1.0, 10.0, 100.0, 0.0],
            &[24.0, 720.0],
            &[1.0, 0.0],
        )
        .unwrap();
        assert_eq!(out.stats.matrix_builds, 1);
        assert_eq!(out.stats.marches, 1);
        assert!(out.stats.truncation_k > 0);
        assert_eq!(out.distributions.len(), 4);
        assert_eq!(out.cumulative.len(), 2);
        // Note: concurrent tests in this binary may also bump the globals,
        // so assert only the lower bound here; the exact-delta assertion
        // lives in a single-test integration binary (dtc-core).
        assert!(instrument::uniformized_builds() > builds0);
        assert!(instrument::transient_marches() > marches0);
    }

    #[test]
    fn projection_mode_matches_full_vector_dots() {
        let c = repairable(0.3, 1.1);
        let pi0 = [0.7, 0.3];
        let reward = [1.0, 0.25];
        let times = [5.0, 0.0, 1.0, 5.0];
        let o = PassOptions { threads: 1, point_reward: Some(&reward) };
        let proj = uniformized_pass_with(&c, &pi0, &times, &[], &[], &o).unwrap();
        assert!(proj.distributions.is_empty(), "projection materializes no vectors");
        assert_eq!(proj.point_rewards.len(), times.len());
        let full = uniformized_pass(&c, &pi0, &times, &[], &[]).unwrap();
        assert!(full.point_rewards.is_empty());
        for (i, (p, d)) in proj.point_rewards.iter().zip(&full.distributions).enumerate() {
            let want = solve::dot(d, &reward);
            assert!((p - want).abs() <= 1e-12, "i = {i}: {p} vs {want}");
        }
        // Duplicates share a slot; t == 0 projects pi0 directly.
        assert_eq!(proj.point_rewards[0], proj.point_rewards[3]);
        assert_eq!(proj.point_rewards[1], solve::dot(&pi0, &reward));
        // Same work count as the full-vector pass: one build, one march.
        assert_eq!(proj.stats, full.stats);
    }

    #[test]
    fn projection_rejects_wrong_reward_length() {
        let c = repairable(1.0, 1.0);
        let o = PassOptions { threads: 1, point_reward: Some(&[1.0]) };
        assert!(matches!(
            uniformized_pass_with(&c, &[1.0, 0.0], &[1.0], &[], &[], &o),
            Err(MarkovError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let c = repairable(1.0, 1.0);
        assert!(matches!(
            uniformized_pass(&c, &[1.0], &[], &[], &[]),
            Err(MarkovError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            uniformized_pass(&c, &[1.0, 0.0], &[1.0, -2.0], &[], &[]),
            Err(MarkovError::NegativeTime(_))
        ));
        assert!(matches!(
            uniformized_pass(&c, &[1.0, 0.0], &[], &[f64::NAN], &[1.0, 0.0]),
            Err(MarkovError::NegativeTime(_))
        ));
        assert!(matches!(
            uniformized_pass(&c, &[1.0, 0.0], &[], &[1.0], &[1.0]),
            Err(MarkovError::DimensionMismatch { .. })
        ));
        // The reward is ignored (and unchecked) when no horizon needs it.
        assert!(uniformized_pass(&c, &[1.0, 0.0], &[1.0], &[], &[]).is_ok());
    }
}
