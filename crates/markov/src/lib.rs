//! # dtc-markov — Markov-chain solvers for dependability evaluation
//!
//! This crate is the numeric core of the `dtcloud` workspace, a reproduction
//! of *"Dependability Models for Designing Disaster Tolerant Cloud Computing
//! Systems"* (Silva et al., DSN 2013). It provides:
//!
//! * sparse CSR matrices ([`sparse`]),
//! * continuous-time Markov chains with steady-state solvers
//!   (power / Jacobi / Gauss–Seidel / SOR / dense direct) and transient
//!   solutions by uniformization ([`ctmc`], [`solve`], [`transient`]),
//!   including whole transient/interval curves from a single shared power
//!   march ([`curve`], instrumented via [`instrument`]),
//! * deterministic parallel kernels behind the march and the power method
//!   ([`par`]): fixed row blocks over scoped threads, bit-identical
//!   results at every thread count,
//! * discrete-time chains ([`dtmc`]),
//! * absorbing-chain analysis — mean time to absorption and absorption
//!   probabilities — for reliability/MTTF questions ([`absorbing`]).
//!
//! # Example
//!
//! ```
//! use dtc_markov::{CtmcBuilder, Method, SolverOptions};
//!
//! // A machine that fails (rate 1/1000h) and is repaired (rate 1/8h).
//! let mut b = CtmcBuilder::new(2);
//! b.rate(0, 1, 1.0 / 1000.0);
//! b.rate(1, 0, 1.0 / 8.0);
//! let chain = b.build()?;
//!
//! let (pi, stats) = chain.steady_state_with(Method::GaussSeidel, &SolverOptions::default())?;
//! println!("availability = {:.6} after {} sweeps", pi[0], stats.iterations);
//! assert!((pi[0] - 1000.0 / 1008.0).abs() < 1e-10);
//! # Ok::<(), dtc_markov::MarkovError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absorbing;
pub mod ctmc;
pub mod cumulative;
pub mod curve;
pub mod dtmc;
pub mod error;
pub mod instrument;
pub mod par;
pub mod solve;
pub mod sparse;
pub mod transient;

pub use absorbing::{
    absorption_probabilities, mean_time_to_absorption, mean_time_to_absorption_iterative,
    AbsorptionAnalysis,
};
pub use ctmc::{Ctmc, CtmcBuilder};
pub use cumulative::{cumulative_reward, interval_availability};
pub use curve::{
    cumulative_reward_curve, interval_availability_curve, uniformized_pass,
    uniformized_pass_with, PassOptions, PassOutput, PassStats,
};
pub use dtmc::{Dtmc, DtmcBuilder};
pub use error::{MarkovError, Result};
pub use solve::{dot, power_stationary_from, Method, SolveStats, SolverOptions};
pub use sparse::{CooMatrix, CsrMatrix};
