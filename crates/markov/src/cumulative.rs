//! Cumulative (integral) transient measures by uniformization.
//!
//! Steady-state availability tells you the long-run fraction of up time;
//! SLAs are written over **finite windows** ("no more than X hours of
//! downtime this year"). The relevant measure is the *expected interval
//! availability* `(1/T)·E[∫₀ᵀ 1_up(u) du]`, obtained from the integral of
//! the transient distribution:
//!
//! `∫₀ᵗ π(u) du = Σ_k c_k · π0 Pᵏ`, with
//! `c_k = (1/Λ)(1 − Σ_{i≤k} pois(Λt; i))`
//!
//! — the same uniformized power sequence as the point transient, weighted
//! by complementary Poisson CDF terms.

use crate::ctmc::Ctmc;
use crate::error::{MarkovError, Result};

/// Expected accumulated reward `E[∫₀ᵗ r(X_u) du]` starting from `pi0`,
/// with `c_k = (1/Λ)(1 − CDF_k)` accumulated as the Poisson CDF walks `k`
/// upward.
///
/// `reward[i]` is the reward rate in state `i`; with an indicator reward
/// this is the expected total up time in `[0, t]`.
///
/// A one-horizon [`crate::curve::uniformized_pass`] — so there is exactly
/// one march implementation, and per-horizon results are bit-identical to
/// multi-horizon curve results by construction.
///
/// # Errors
///
/// Dimension mismatches and negative horizons, as
/// [`crate::ctmc::Ctmc::transient`].
pub fn cumulative_reward(ctmc: &Ctmc, pi0: &[f64], t: f64, reward: &[f64]) -> Result<f64> {
    let out = crate::curve::uniformized_pass(ctmc, pi0, &[], std::slice::from_ref(&t), reward)?;
    Ok(out.cumulative[0])
}

/// Expected interval availability over `[0, t]`: the fraction of the window
/// spent in states where `up[i]` is true.
pub fn interval_availability(
    ctmc: &Ctmc,
    pi0: &[f64],
    t: f64,
    up: impl Fn(usize) -> bool,
) -> Result<f64> {
    if t <= 0.0 {
        return Err(MarkovError::NegativeTime(t));
    }
    let reward: Vec<f64> =
        (0..ctmc.num_states()).map(|i| if up(i) { 1.0 } else { 0.0 }).collect();
    Ok(cumulative_reward(ctmc, pi0, t, &reward)? / t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    fn repairable(lam: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, lam);
        b.rate(1, 0, mu);
        b.build().unwrap()
    }

    /// Closed form for the 2-state chain started up:
    /// ∫₀ᵗ p_up(u) du = A·t + (1−A)(1 − e^{−(λ+μ)t})/(λ+μ).
    fn closed_form_uptime(lam: f64, mu: f64, t: f64) -> f64 {
        let a = mu / (lam + mu);
        a * t + (1.0 - a) * (1.0 - (-(lam + mu) * t).exp()) / (lam + mu)
    }

    #[test]
    fn cumulative_matches_closed_form() {
        let (lam, mu) = (0.3, 1.7);
        let c = repairable(lam, mu);
        for t in [0.1, 1.0, 5.0, 50.0] {
            let got = cumulative_reward(&c, &[1.0, 0.0], t, &[1.0, 0.0]).unwrap();
            let expect = closed_form_uptime(lam, mu, t);
            assert!((got - expect).abs() < 1e-8 * expect.max(1.0), "t={t}: {got} vs {expect}");
        }
    }

    #[test]
    fn interval_availability_between_point_values() {
        // Starting up, availability decays monotonically, so the interval
        // average lies between A(t) and 1.
        let c = repairable(0.1, 1.0);
        let t = 5.0;
        let ia = interval_availability(&c, &[1.0, 0.0], t, |i| i == 0).unwrap();
        let point = c.transient(&[1.0, 0.0], t).unwrap()[0];
        let steady = c.steady_state().unwrap()[0];
        assert!(ia > point, "{ia} should exceed A(t)={point}");
        assert!(ia < 1.0);
        assert!(ia > steady);
    }

    #[test]
    fn long_window_approaches_steady_state() {
        let c = repairable(0.2, 0.8);
        let ia = interval_availability(&c, &[1.0, 0.0], 1e5, |i| i == 0).unwrap();
        let steady = c.steady_state().unwrap()[0];
        assert!((ia - steady).abs() < 1e-4, "{ia} vs {steady}");
    }

    #[test]
    fn zero_horizon_and_mismatch_rejected() {
        let c = repairable(1.0, 1.0);
        assert!(matches!(
            interval_availability(&c, &[1.0, 0.0], 0.0, |_| true),
            Err(MarkovError::NegativeTime(_))
        ));
        assert!(matches!(
            cumulative_reward(&c, &[1.0], 1.0, &[1.0, 0.0]),
            Err(MarkovError::DimensionMismatch { .. })
        ));
        assert_eq!(cumulative_reward(&c, &[1.0, 0.0], 0.0, &[1.0, 0.0]).unwrap(), 0.0);
    }

    #[test]
    fn cumulative_with_unit_reward_equals_t() {
        // Reward 1 everywhere integrates to exactly t.
        let c = repairable(0.5, 0.5);
        let t = 7.3;
        let got = cumulative_reward(&c, &[1.0, 0.0], t, &[1.0, 1.0]).unwrap();
        assert!((got - t).abs() < 1e-8, "{got}");
    }
}
