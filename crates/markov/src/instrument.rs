//! Process-wide counters for the expensive uniformization steps.
//!
//! Curve workloads are supposed to cost **one** uniformized-matrix build and
//! **one** power march regardless of how many time points they evaluate;
//! these relaxed atomics let integration tests assert that contract end to
//! end (build a model, run a 16-point transient + interval set, check both
//! counters advanced by exactly one) without threading a stats object
//! through every layer.
//!
//! Counters are cumulative for the process. Tests that assert on deltas
//! should run in their own integration-test binary so concurrent tests in
//! the same process cannot interleave extra solves.

use std::sync::atomic::{AtomicU64, Ordering};

static UNIFORMIZED_BUILDS: AtomicU64 = AtomicU64::new(0);
static TRANSIENT_MARCHES: AtomicU64 = AtomicU64::new(0);

/// Total `P = I + Q/Λ` constructions since process start.
pub fn uniformized_builds() -> u64 {
    UNIFORMIZED_BUILDS.load(Ordering::Relaxed)
}

/// Total transient power marches (`π0·Pᵏ` sweeps) since process start.
/// One per [`crate::Ctmc::transient`] / [`crate::cumulative_reward`] call,
/// and exactly one per [`crate::curve::uniformized_pass`] no matter how many
/// time points the pass serves.
pub fn transient_marches() -> u64 {
    TRANSIENT_MARCHES.load(Ordering::Relaxed)
}

pub(crate) fn count_uniformized_build() {
    UNIFORMIZED_BUILDS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn count_transient_march() {
    TRANSIENT_MARCHES.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone() {
        let b0 = uniformized_builds();
        let m0 = transient_marches();
        count_uniformized_build();
        count_transient_march();
        assert!(uniformized_builds() > b0);
        assert!(transient_marches() > m0);
    }
}
