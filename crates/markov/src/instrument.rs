//! Process-wide counters for the expensive uniformization steps.
//!
//! Curve workloads are supposed to cost **one** uniformized-matrix build and
//! **one** power march regardless of how many time points they evaluate;
//! these counters let integration tests assert that contract end to end
//! (build a model, run a 16-point transient + interval set, check both
//! counters advanced by exactly one) without threading a stats object
//! through every layer.
//!
//! The counters live in the [`dtc_obs::global`] registry, so a `/metrics`
//! scrape sees them alongside the stage-duration histograms:
//!
//! * `dtc_solver_uniformized_builds_total`
//! * `dtc_solver_transient_marches_total`
//! * `dtc_solver_stationary_iterations_total`
//!
//! Counters are cumulative for the process. Tests that assert on deltas
//! should run in their own integration-test binary so concurrent tests in
//! the same process cannot interleave extra solves.

use dtc_obs::Counter;
use std::sync::{Arc, OnceLock};

fn solver_counter<'a>(
    cell: &'a OnceLock<Arc<Counter>>,
    name: &'static str,
    help: &'static str,
) -> &'a Counter {
    cell.get_or_init(|| dtc_obs::global().counter(name, help, &[]))
}

fn builds() -> &'static Counter {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    solver_counter(
        &C,
        "dtc_solver_uniformized_builds_total",
        "Uniformized-matrix (P = I + Q/lambda) constructions since process start.",
    )
}

fn marches() -> &'static Counter {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    solver_counter(
        &C,
        "dtc_solver_transient_marches_total",
        "Transient power marches (pi0*P^k sweeps) since process start.",
    )
}

fn iterations() -> &'static Counter {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    solver_counter(
        &C,
        "dtc_solver_stationary_iterations_total",
        "Inner iterations spent in stationary solves since process start.",
    )
}

/// Total `P = I + Q/Λ` constructions since process start.
pub fn uniformized_builds() -> u64 {
    builds().value()
}

/// Total transient power marches (`π0·Pᵏ` sweeps) since process start.
/// One per [`crate::Ctmc::transient`] / [`crate::cumulative_reward`] call,
/// and exactly one per [`crate::curve::uniformized_pass`] no matter how many
/// time points the pass serves.
pub fn transient_marches() -> u64 {
    marches().value()
}

/// Total inner iterations spent in stationary solves (power/Jacobi sweeps,
/// Gauss-Seidel passes) since process start.
pub fn stationary_iterations() -> u64 {
    iterations().value()
}

pub(crate) fn count_uniformized_build() {
    builds().inc();
}

pub(crate) fn count_transient_march() {
    marches().inc();
}

pub(crate) fn count_stationary_iterations(n: u64) {
    iterations().add(n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone() {
        let b0 = uniformized_builds();
        let m0 = transient_marches();
        let i0 = super::stationary_iterations();
        count_uniformized_build();
        count_transient_march();
        count_stationary_iterations(3);
        assert!(uniformized_builds() > b0);
        assert!(transient_marches() > m0);
        assert!(super::stationary_iterations() >= i0 + 3);
    }

    #[test]
    fn counters_appear_in_the_global_scrape() {
        count_uniformized_build();
        let text = dtc_obs::global().render();
        assert!(text.contains("dtc_solver_uniformized_builds_total"), "scrape: {text}");
    }
}
