//! Discrete-time Markov chains.
//!
//! DTMCs appear in this workspace as uniformized CTMCs and as embedded
//! jump chains; they are also useful on their own for modeling inspection
//! cycles. The API mirrors [`crate::ctmc::Ctmc`].

use crate::error::{MarkovError, Result};
use crate::solve::{power_stationary, SolveStats, SolverOptions};
use crate::sparse::{CooMatrix, CsrMatrix};

/// Builder for a row-stochastic transition-probability matrix.
#[derive(Debug, Clone)]
pub struct DtmcBuilder {
    n: usize,
    coo: CooMatrix,
}

impl DtmcBuilder {
    /// Creates a builder for `n` states.
    pub fn new(n: usize) -> Self {
        DtmcBuilder { n, coo: CooMatrix::new(n, n) }
    }

    /// Adds probability mass `p` to transition `from -> to` (accumulating).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or non-finite/negative probability.
    pub fn prob(&mut self, from: usize, to: usize, p: f64) -> &mut Self {
        assert!(p.is_finite() && p >= 0.0, "probability must be >= 0, got {p}");
        if p > 0.0 {
            self.coo.push(from, to, p);
        }
        self
    }

    /// Finalizes and validates row-stochasticity (each row sums to 1 within
    /// `1e-9`; rows with no mass are rejected).
    pub fn build(&self) -> Result<Dtmc> {
        if self.n == 0 {
            return Err(MarkovError::Empty);
        }
        let p = CsrMatrix::from_coo(&self.coo);
        Dtmc::from_matrix(p)
    }
}

/// A discrete-time Markov chain over a row-stochastic matrix.
#[derive(Debug, Clone)]
pub struct Dtmc {
    p: CsrMatrix,
}

impl Dtmc {
    /// Validates and wraps a transition matrix.
    pub fn from_matrix(p: CsrMatrix) -> Result<Self> {
        let n = p.nrows();
        if n == 0 {
            return Err(MarkovError::Empty);
        }
        if p.ncols() != n {
            return Err(MarkovError::NotSquare { nrows: n, ncols: p.ncols() });
        }
        for i in 0..n {
            let (_, vals) = p.row(i);
            let sum: f64 = vals.iter().sum();
            if (sum - 1.0).abs() > 1e-9 {
                return Err(MarkovError::NotStochastic { state: i, sum });
            }
            if vals.iter().any(|v| *v < 0.0) {
                return Err(MarkovError::InvalidGenerator {
                    state: i,
                    detail: "negative probability".into(),
                });
            }
        }
        Ok(Dtmc { p })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.p.nrows()
    }

    /// Borrows the transition matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.p
    }

    /// Stationary distribution via power iteration.
    pub fn stationary(&self, opts: &SolverOptions) -> Result<(Vec<f64>, SolveStats)> {
        let n = self.num_states();
        power_stationary(&self.p, &vec![1.0 / n as f64; n], opts)
    }

    /// Distribution after `k` steps from `pi0`.
    pub fn step_n(&self, pi0: &[f64], k: usize) -> Result<Vec<f64>> {
        let n = self.num_states();
        if pi0.len() != n {
            return Err(MarkovError::DimensionMismatch { expected: n, got: pi0.len() });
        }
        let mut cur = pi0.to_vec();
        let mut next = vec![0.0; n];
        for _ in 0..k {
            self.p.vec_mul_into(&cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weather() -> Dtmc {
        // Classic 2-state weather chain.
        let mut b = DtmcBuilder::new(2);
        b.prob(0, 0, 0.9).prob(0, 1, 0.1);
        b.prob(1, 0, 0.5).prob(1, 1, 0.5);
        b.build().unwrap()
    }

    #[test]
    fn stationary_closed_form() {
        let d = weather();
        let (pi, _) = d.stationary(&SolverOptions::default()).unwrap();
        // pi0 = 5/6, pi1 = 1/6.
        assert!((pi[0] - 5.0 / 6.0).abs() < 1e-9);
        assert!((pi[1] - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn step_n_approaches_stationary() {
        let d = weather();
        let pi100 = d.step_n(&[0.0, 1.0], 200).unwrap();
        assert!((pi100[0] - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn one_step_is_matrix_row() {
        let d = weather();
        let pi1 = d.step_n(&[1.0, 0.0], 1).unwrap();
        assert_eq!(pi1, vec![0.9, 0.1]);
    }

    #[test]
    fn non_stochastic_rejected() {
        let mut b = DtmcBuilder::new(2);
        b.prob(0, 0, 0.7); // row 0 sums to 0.7
        b.prob(1, 1, 1.0);
        assert!(matches!(b.build(), Err(MarkovError::NotStochastic { state: 0, .. })));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(DtmcBuilder::new(0).build(), Err(MarkovError::Empty)));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn negative_probability_panics() {
        DtmcBuilder::new(1).prob(0, 0, -0.1);
    }
}
