//! Linear-system machinery behind the steady-state solvers.
//!
//! Steady-state analysis of a CTMC with infinitesimal generator `Q` solves
//! `π Q = 0` subject to `Σ πᵢ = 1`. Working with the transpose turns this
//! into the more familiar `Qᵀ πᵀ = 0`, a singular system whose one-dimensional
//! null space is pinned down by the normalization constraint.
//!
//! Three families of methods are provided:
//!
//! * **Power method** on the uniformized DTMC `P = I + Q/Λ` — robust,
//!   memory-light, geometric convergence governed by the subdominant
//!   eigenvalue.
//! * **Stationary iterations** (Jacobi, Gauss–Seidel, SOR) on `Qᵀ x = 0` —
//!   usually far fewer iterations than power for stiff dependability models
//!   (rates spanning `1/minutes` to `1/centuries`).
//! * **Dense direct elimination** with partial pivoting for small chains —
//!   used as ground truth in tests and for models below a few thousand
//!   states.

use crate::error::{MarkovError, Result};
use crate::par;
use crate::sparse::CsrMatrix;

/// Convergence/iteration knobs shared by the iterative solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Maximum number of sweeps before giving up.
    pub max_iterations: usize,
    /// Convergence tolerance on the max-norm of successive-iterate deltas
    /// (relative to the iterate's max entry).
    pub tolerance: f64,
    /// Relaxation factor for [`Method::Sor`]; ignored by other methods.
    pub relaxation: f64,
    /// Check convergence every `check_every` sweeps.
    pub check_every: usize,
    /// If the iteration budget runs out but the relative delta is already
    /// below this looser threshold, accept the solution (the achieved
    /// residual is reported in [`SolveStats`]) instead of failing. Stiff
    /// nearly-decomposable dependability chains routinely converge to 1e-9
    /// quickly and then crawl; demanding 1e-12 there is counterproductive.
    /// Set to 0 to always fail on budget exhaustion. Note the criterion is
    /// delta-based: for nearly-completely-decomposable chains the true
    /// error can exceed the last delta, so results accepted this way carry
    /// their achieved residual in [`SolveStats`] for the caller to judge.
    pub accept_loose: f64,
    /// Worker threads for the parallel kernels (the uniformized march and
    /// the power method): `0` (the default) means one per available core,
    /// `1` forces the serial path. A pure scheduling knob — results are
    /// bit-identical at every value (see [`crate::par`]) and it is
    /// excluded from evaluation-cache identity. Sweep-based methods
    /// (Jacobi/Gauss–Seidel/SOR) are inherently sequential and ignore it.
    pub threads: usize,
}

impl SolverOptions {
    /// The effective worker count: `threads`, with `0` resolved to one per
    /// available core.
    pub fn resolved_threads(&self) -> usize {
        par::resolve_threads(self.threads)
    }
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_iterations: 200_000,
            tolerance: 1e-12,
            relaxation: 1.0,
            check_every: 8,
            accept_loose: 1e-7,
            threads: 0,
        }
    }
}

/// Steady-state solution method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// Power iteration on the uniformized chain.
    Power,
    /// Jacobi sweeps on `Qᵀx = 0`.
    Jacobi,
    /// Gauss–Seidel sweeps on `Qᵀx = 0` (default).
    #[default]
    GaussSeidel,
    /// Successive over-relaxation with [`SolverOptions::relaxation`].
    Sor,
    /// Dense LU-style elimination; exact up to rounding, `O(n³)`.
    Direct,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Method::Power => "power",
            Method::Jacobi => "jacobi",
            Method::GaussSeidel => "gauss-seidel",
            Method::Sor => "sor",
            Method::Direct => "direct",
        };
        f.write_str(name)
    }
}

/// Outcome of an iterative solve: the solution plus convergence diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Number of sweeps/iterations performed.
    pub iterations: usize,
    /// Final residual estimate (max-norm of the last delta, or of `xQᵀ` for
    /// the direct method).
    pub residual: f64,
    /// Method that produced the solution.
    pub method: Method,
}

/// Dot product `Σ aᵢ·bᵢ` — the shared primitive behind reward evaluation
/// (`π·r`) across the workspace.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Normalizes `x` to sum to one (in place). Returns the pre-normalization sum.
///
/// The sum is accumulated in fixed block order ([`par::blocked_sum`]), so
/// the whole-slice call decomposes exactly into [`par::blocked_sum`] once
/// plus [`scale_slice`] on any partition of `x` into disjoint sub-slices —
/// the property the parallel march relies on.
pub(crate) fn normalize(x: &mut [f64]) -> f64 {
    let sum = par::blocked_sum(x);
    scale_slice(x, sum);
    sum
}

/// Divides every entry of a (sub-)slice by a precomputed total; a no-op
/// when `sum == 0`. Calling this on disjoint sub-slices covering a vector
/// is bit-identical to one whole-slice call — division is element-wise, so
/// slicing cannot reorder any arithmetic.
pub(crate) fn scale_slice(x: &mut [f64], sum: f64) {
    if sum != 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    }
}

/// Largest entry of a (sub-)slice, starting the fold at `0.0`. `max` is
/// associative and commutative over the non-NaN values seen here, so the
/// max over sub-slice maxima equals the whole-slice result regardless of
/// how the vector is partitioned.
pub(crate) fn max_entry(x: &[f64]) -> f64 {
    x.iter().cloned().fold(0.0, f64::max)
}

/// Clamps negative entries of a (sub-)slice to zero, reporting `false` if
/// any entry fell below `-threshold` (i.e. was too negative to be
/// convergence noise). Element-wise, so per-sub-slice flags combined with
/// `&&` equal the whole-slice call.
pub(crate) fn clamp_negatives_slice(x: &mut [f64], threshold: f64) -> bool {
    let mut ok = true;
    for v in x.iter_mut() {
        if *v < 0.0 {
            if *v < -threshold {
                ok = false;
            }
            *v = 0.0;
        }
    }
    ok
}

/// Cleans a converged stationary vector: clamps noise-level negative
/// entries (iterative solvers converge within a tolerance, so entries whose
/// true value is ~0 can come out at `-ε`) to zero and renormalizes.
/// Entries more negative than `floor` indicate the solve actually failed
/// and are reported via the returned flag.
///
/// Composed from the sub-slice primitives ([`max_entry`],
/// [`clamp_negatives_slice`], [`normalize`]) so that a blocked/parallel
/// caller applying them per sub-slice gets bit-identical results.
pub(crate) fn sanitize_distribution(x: &mut [f64], floor: f64) -> bool {
    let scale = max_entry(x).max(1e-300);
    let ok = clamp_negatives_slice(x, floor * scale);
    normalize(x);
    ok
}

fn max_abs_delta(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Power iteration for `π = π P` on a stochastic matrix `P` (rows sum to 1).
///
/// `pi0` seeds the iteration; it is normalized internally.
///
/// The multiply `y = x·P` runs as `y = Pᵀ·x` through the row-block
/// kernel ([`par::mul_vec_into`]) over [`SolverOptions::threads`] workers:
/// `P` is transposed once up front, and because the transpose preserves
/// ascending source-row order within each transposed row, every output
/// element accumulates its terms in the same order the serial scatter
/// used — results are bit-identical at every thread count.
pub fn power_stationary(
    p: &CsrMatrix,
    pi0: &[f64],
    opts: &SolverOptions,
) -> Result<(Vec<f64>, SolveStats)> {
    let n = p.nrows();
    if p.ncols() != n {
        return Err(MarkovError::NotSquare { nrows: n, ncols: p.ncols() });
    }
    if pi0.len() != n {
        return Err(MarkovError::DimensionMismatch { expected: n, got: pi0.len() });
    }
    let pt = p.transpose();
    let mut x = pi0.to_vec();
    normalize(&mut x);
    let mut y = vec![0.0; n];
    let mut last_delta = f64::INFINITY;
    for it in 1..=opts.max_iterations {
        par::mul_vec_into(&pt, &x, &mut y, opts.threads);
        normalize(&mut y);
        if it % opts.check_every == 0 || it == opts.max_iterations {
            last_delta = max_abs_delta(&x, &y);
            let scale = y.iter().cloned().fold(0.0, f64::max).max(1e-300);
            if last_delta / scale <= opts.tolerance {
                std::mem::swap(&mut x, &mut y);
                if !sanitize_distribution(&mut x, 1e-6) {
                    return Err(MarkovError::NotConverged {
                        method: Method::Power,
                        iterations: it,
                        residual: last_delta,
                    });
                }
                return Ok((
                    x,
                    SolveStats { iterations: it, residual: last_delta, method: Method::Power },
                ));
            }
        }
        std::mem::swap(&mut x, &mut y);
    }
    let scale = x.iter().cloned().fold(0.0, f64::max).max(1e-300);
    if opts.accept_loose > 0.0
        && last_delta / scale <= opts.accept_loose
        && sanitize_distribution(&mut x, 1e-6)
    {
        return Ok((
            x,
            SolveStats {
                iterations: opts.max_iterations,
                residual: last_delta,
                method: Method::Power,
            },
        ));
    }
    Err(MarkovError::NotConverged {
        method: Method::Power,
        iterations: opts.max_iterations,
        residual: last_delta,
    })
}

/// Warm-started power iteration: like [`power_stationary`] but seeded with
/// a neighboring solution `guess` and checking convergence after **every**
/// multiply (`check_every = 1`) instead of every `opts.check_every`-th.
///
/// A cold solve batches its convergence checks because early iterates are
/// nowhere near the fixed point; a warm start's whole premise is that the
/// seed is already close, so eager checking is what lets an exact seed
/// converge after a single multiply and a near-exact seed stop the moment
/// it is inside tolerance. The result is deterministic given the same
/// guess, matrix, and options, and agrees with a cold
/// [`power_stationary`] within the solver tolerance — **not** bit-exactly,
/// which is why warm starts are kept off cached/golden evaluation paths
/// (iteration counts and last-bit noise would leak into pinned reports).
///
/// # Errors
///
/// As [`power_stationary`].
pub fn power_stationary_from(
    p: &CsrMatrix,
    guess: &[f64],
    opts: &SolverOptions,
) -> Result<(Vec<f64>, SolveStats)> {
    power_stationary(p, guess, &SolverOptions { check_every: 1, ..*opts })
}

/// Gauss–Seidel / SOR / Jacobi sweeps solving `A x = 0`, `Σx = 1` where `A`
/// is expected to be `Qᵀ` of an irreducible generator (strictly negative
/// diagonal, non-negative off-diagonals, columns of `Q` summing to zero).
pub fn stationary_iteration(
    a: &CsrMatrix,
    x0: &[f64],
    method: Method,
    opts: &SolverOptions,
) -> Result<(Vec<f64>, SolveStats)> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(MarkovError::NotSquare { nrows: n, ncols: a.ncols() });
    }
    if x0.len() != n {
        return Err(MarkovError::DimensionMismatch { expected: n, got: x0.len() });
    }
    let omega = match method {
        Method::Jacobi => 1.0,
        Method::GaussSeidel => 1.0,
        Method::Sor => {
            if !(0.0 < opts.relaxation && opts.relaxation < 2.0) {
                return Err(MarkovError::BadRelaxation(opts.relaxation));
            }
            opts.relaxation
        }
        other => {
            return Err(MarkovError::UnsupportedMethod {
                method: other,
                context: "stationary_iteration",
            })
        }
    };
    // Pre-extract diagonal; a zero diagonal entry means an absorbing state,
    // which has no unique normalized stationary vector under this solver.
    let mut diag = vec![0.0; n];
    for (i, slot) in diag.iter_mut().enumerate() {
        let d = a.get(i, i);
        if d == 0.0 {
            return Err(MarkovError::ZeroDiagonal { state: i });
        }
        *slot = d;
    }
    let mut x = x0.to_vec();
    normalize(&mut x);
    let jacobi = matches!(method, Method::Jacobi);
    let mut prev = vec![0.0; n];
    let mut last_delta = f64::INFINITY;
    for it in 1..=opts.max_iterations {
        prev.copy_from_slice(&x);
        if jacobi {
            // Damped Jacobi: x_i <- (1-d)·prev_i + d·(-(Σ_{j≠i} a_ij prev_j)/a_ii).
            // Undamped Jacobi has iteration-matrix eigenvalues on the unit
            // circle for singular M-matrix systems (e.g. two-state chains
            // oscillate with period 2); damping pulls them strictly inside.
            const JACOBI_DAMPING: f64 = 0.75;
            for i in 0..n {
                let (cols, vals) = a.row(i);
                let mut acc = 0.0;
                for (c, v) in cols.iter().zip(vals) {
                    let j = *c as usize;
                    if j != i {
                        acc += v * prev[j];
                    }
                }
                x[i] = (1.0 - JACOBI_DAMPING) * prev[i] + JACOBI_DAMPING * (-acc / diag[i]);
            }
        } else {
            for i in 0..n {
                let (cols, vals) = a.row(i);
                let mut acc = 0.0;
                for (c, v) in cols.iter().zip(vals) {
                    let j = *c as usize;
                    if j != i {
                        acc += v * x[j];
                    }
                }
                let gs = -acc / diag[i];
                x[i] = (1.0 - omega) * x[i] + omega * gs;
            }
        }
        normalize(&mut x);
        if it % opts.check_every == 0 || it == opts.max_iterations {
            last_delta = max_abs_delta(&prev, &x);
            let scale = x.iter().cloned().fold(0.0, f64::max).max(1e-300);
            if last_delta / scale <= opts.tolerance {
                if !sanitize_distribution(&mut x, 1e-6) {
                    return Err(MarkovError::NotConverged {
                        method,
                        iterations: it,
                        residual: last_delta,
                    });
                }
                return Ok((x, SolveStats { iterations: it, residual: last_delta, method }));
            }
        }
    }
    let scale = x.iter().cloned().fold(0.0, f64::max).max(1e-300);
    if opts.accept_loose > 0.0
        && last_delta / scale <= opts.accept_loose
        && sanitize_distribution(&mut x, 1e-6)
    {
        return Ok((
            x,
            SolveStats { iterations: opts.max_iterations, residual: last_delta, method },
        ));
    }
    Err(MarkovError::NotConverged {
        method,
        iterations: opts.max_iterations,
        residual: last_delta,
    })
}

/// Dense direct solve of `π Q = 0`, `Σπ = 1` by Gaussian elimination with
/// partial pivoting, replacing the last column of `Qᵀ` equations with the
/// normalization row.
///
/// # Errors
///
/// Fails with [`MarkovError::Singular`] if the pivot falls below machine
/// tolerance — in practice this means `Q` was reducible (several closed
/// communicating classes), so no unique stationary distribution exists.
#[allow(clippy::needless_range_loop)] // elimination indexes two rows at once
pub fn direct_stationary(q: &CsrMatrix) -> Result<(Vec<f64>, SolveStats)> {
    let n = q.nrows();
    if q.ncols() != n {
        return Err(MarkovError::NotSquare { nrows: n, ncols: q.ncols() });
    }
    if n == 0 {
        return Err(MarkovError::Empty);
    }
    // Build dense Qᵀ with the last equation replaced by Σπ = 1.
    let mut a = vec![vec![0.0f64; n]; n];
    for (i, j, v) in q.iter() {
        a[j][i] = v; // transpose
    }
    let mut b = vec![0.0f64; n];
    for cell in &mut a[n - 1] {
        *cell = 1.0;
    }
    b[n - 1] = 1.0;

    // Gaussian elimination with partial pivoting.
    let scale: f64 =
        a.iter().flat_map(|r| r.iter().map(|v| v.abs())).fold(0.0, f64::max).max(1.0);
    for col in 0..n {
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, a[r][col].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .expect("non-empty range");
        if pivot_val <= f64::EPSILON * scale * n as f64 {
            return Err(MarkovError::Singular { pivot: col });
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        for r in (col + 1)..n {
            let f = a[r][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[r][c] -= f * a[col][c];
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = b[i];
        for j in (i + 1)..n {
            acc -= a[i][j] * x[j];
        }
        x[i] = acc / a[i][i];
    }
    // Clamp tiny negatives produced by rounding, then renormalize; a large
    // negative means the elimination went numerically wrong.
    if !sanitize_distribution(&mut x, 1e-6) {
        return Err(MarkovError::Singular { pivot: n - 1 });
    }
    // Residual: max |(xQ)_j|.
    let residual = q.vec_mul(&x).iter().map(|v| v.abs()).fold(0.0, f64::max);
    Ok((x, SolveStats { iterations: 1, residual, method: Method::Direct }))
}

/// Solves the dense linear system `A x = b` by Gaussian elimination with
/// partial pivoting. Consumed by absorbing-chain analysis.
#[allow(clippy::needless_range_loop)] // elimination indexes two rows at once
pub fn dense_solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>> {
    let n = a.len();
    if n == 0 {
        return Err(MarkovError::Empty);
    }
    for row in &a {
        if row.len() != n {
            return Err(MarkovError::NotSquare { nrows: n, ncols: row.len() });
        }
    }
    if b.len() != n {
        return Err(MarkovError::DimensionMismatch { expected: n, got: b.len() });
    }
    let scale: f64 =
        a.iter().flat_map(|r| r.iter().map(|v| v.abs())).fold(0.0, f64::max).max(1.0);
    for col in 0..n {
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, a[r][col].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .expect("non-empty range");
        if pivot_val <= f64::EPSILON * scale * n as f64 {
            return Err(MarkovError::Singular { pivot: col });
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        for r in (col + 1)..n {
            let f = a[r][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[r][c] -= f * a[col][c];
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = b[i];
        for j in (i + 1)..n {
            acc -= a[i][j] * x[j];
        }
        x[i] = acc / a[i][i];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CooMatrix;

    /// Two-state birth–death generator with rates λ (0→1) and μ (1→0).
    fn two_state(lambda: f64, mu: f64) -> CsrMatrix {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, -lambda);
        coo.push(0, 1, lambda);
        coo.push(1, 0, mu);
        coo.push(1, 1, -mu);
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn direct_two_state_closed_form() {
        let q = two_state(2.0, 3.0);
        let (pi, stats) = direct_stationary(&q).unwrap();
        assert!((pi[0] - 0.6).abs() < 1e-12, "pi={pi:?}");
        assert!((pi[1] - 0.4).abs() < 1e-12);
        assert!(stats.residual < 1e-12);
    }

    #[test]
    fn gauss_seidel_matches_direct() {
        let q = two_state(0.001, 1.0); // stiff
        let qt = q.transpose();
        let (pi, _) = stationary_iteration(
            &qt,
            &[0.5, 0.5],
            Method::GaussSeidel,
            &SolverOptions::default(),
        )
        .unwrap();
        let (exact, _) = direct_stationary(&q).unwrap();
        for (a, b) in pi.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-9, "{pi:?} vs {exact:?}");
        }
    }

    #[test]
    fn jacobi_and_sor_match_direct() {
        let q = two_state(5.0, 7.0);
        let qt = q.transpose();
        let (exact, _) = direct_stationary(&q).unwrap();
        for method in [Method::Jacobi, Method::Sor] {
            let opts = SolverOptions { relaxation: 1.1, ..Default::default() };
            let (pi, stats) = stationary_iteration(&qt, &[1.0, 0.0], method, &opts).unwrap();
            for (a, b) in pi.iter().zip(&exact) {
                assert!((a - b).abs() < 1e-9, "method {method:?}: {pi:?} vs {exact:?}");
            }
            assert!(stats.iterations > 0);
        }
    }

    #[test]
    fn power_on_uniformized_chain() {
        let q = two_state(1.0, 4.0);
        // P = I + Q/Λ with Λ = 5.
        let mut p = q.clone();
        p.scale(1.0 / 5.0);
        let mut coo = CooMatrix::new(2, 2);
        for (i, j, v) in p.iter() {
            coo.push(i, j, v);
        }
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        let p = CsrMatrix::from_coo(&coo);
        let (pi, _) = power_stationary(&p, &[1.0, 0.0], &SolverOptions::default()).unwrap();
        assert!((pi[0] - 0.8).abs() < 1e-9, "pi={pi:?}");
        assert!((pi[1] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn direct_detects_reducible_chain() {
        // Two disconnected absorbing states: no unique stationary vector.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 0.0);
        coo.push(1, 1, 0.0);
        let q = CsrMatrix::from_coo(&coo);
        assert!(matches!(direct_stationary(&q), Err(MarkovError::Singular { .. })));
    }

    #[test]
    fn iteration_rejects_absorbing_state() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, -1.0);
        coo.push(0, 1, 1.0);
        // state 1 absorbing -> zero diagonal in Qᵀ row 1? Qᵀ[1][1] = Q[1][1] = 0.
        let q = CsrMatrix::from_coo(&coo);
        let qt = q.transpose();
        let err = stationary_iteration(
            &qt,
            &[0.5, 0.5],
            Method::GaussSeidel,
            &SolverOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, MarkovError::ZeroDiagonal { state: 1 }));
    }

    #[test]
    fn sor_rejects_bad_relaxation() {
        let q = two_state(1.0, 1.0);
        let qt = q.transpose();
        let opts = SolverOptions { relaxation: 2.5, ..Default::default() };
        let err = stationary_iteration(&qt, &[0.5, 0.5], Method::Sor, &opts).unwrap_err();
        assert!(matches!(err, MarkovError::BadRelaxation(_)));
    }

    #[test]
    fn dense_solve_simple() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![3.0, 5.0];
        let x = dense_solve(a, b).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    /// Pseudo-random positive-and-noisy vector for the sub-slice tests.
    fn noisy_vector(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state =
                    state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                // Mostly positive mass with occasional tiny negatives, like a
                // converged iterate.
                if u < 0.1 {
                    -1e-13 * u
                } else {
                    u
                }
            })
            .collect()
    }

    /// Partition boundaries that exercise the block-boundary edge cases:
    /// an empty leading sub-slice, cuts misaligned with the fixed blocks,
    /// and a short final piece.
    fn awkward_cuts(n: usize) -> Vec<usize> {
        let mut cuts = vec![0, 0]; // empty first sub-slice
        for c in [1, n / 3, n / 2, n.saturating_sub(1), n] {
            if *cuts.last().unwrap() <= c && c <= n {
                cuts.push(c);
            }
        }
        if *cuts.last().unwrap() != n {
            cuts.push(n);
        }
        cuts
    }

    #[test]
    fn normalize_composes_over_disjoint_sub_slices() {
        // Covers: empty sub-slice, last short block, and n smaller than any
        // realistic thread count (n = 1, 2, 3).
        for n in [1usize, 2, 3, 5, 63, 64, 65, 127, 130, 300] {
            let base = noisy_vector(n, 0x5eed ^ n as u64);
            let mut whole = base.clone();
            let whole_sum = normalize(&mut whole);

            let mut pieces = base.clone();
            let total = crate::par::blocked_sum(&pieces);
            assert_eq!(total.to_bits(), whole_sum.to_bits(), "n={n}");
            let mut rest = pieces.as_mut_slice();
            let cuts = awkward_cuts(n);
            let mut consumed = 0;
            for w in cuts.windows(2) {
                let (head, tail) = rest.split_at_mut(w[1] - consumed);
                scale_slice(head, total);
                rest = tail;
                consumed = w[1];
            }
            assert_eq!(pieces, whole, "sub-slice normalize must not change results, n={n}");
        }
    }

    #[test]
    fn sanitize_composes_over_disjoint_sub_slices() {
        for n in [1usize, 2, 5, 64, 65, 130] {
            let base = noisy_vector(n, 0xface ^ n as u64);
            let mut whole = base.clone();
            let ok_whole = sanitize_distribution(&mut whole, 1e-6);

            // Re-derive the same result through the sub-slice primitives.
            let mut pieces = base.clone();
            let cuts = awkward_cuts(n);
            let scale = {
                let mut m = 0.0f64;
                for w in cuts.windows(2) {
                    m = m.max(max_entry(&pieces[w[0]..w[1]]));
                }
                m.max(1e-300)
            };
            let mut ok = true;
            for w in cuts.windows(2) {
                ok &= clamp_negatives_slice(&mut pieces[w[0]..w[1]], 1e-6 * scale);
            }
            let total = crate::par::blocked_sum(&pieces);
            for w in cuts.windows(2) {
                scale_slice(&mut pieces[w[0]..w[1]], total);
            }
            assert_eq!(ok, ok_whole, "n={n}");
            assert_eq!(pieces, whole, "sub-slice sanitize must not change results, n={n}");
        }
    }

    #[test]
    fn sanitize_flags_genuinely_negative_entries() {
        let mut x = vec![0.5, -0.25, 0.75];
        assert!(!sanitize_distribution(&mut x, 1e-6));
        assert_eq!(x[1], 0.0);
        let mut tiny = vec![0.5, -1e-15, 0.5];
        assert!(sanitize_distribution(&mut tiny, 1e-6));
    }

    #[test]
    fn empty_slices_are_harmless() {
        assert_eq!(normalize(&mut []), 0.0);
        scale_slice(&mut [], 2.0);
        assert!(clamp_negatives_slice(&mut [], 1e-6));
        assert_eq!(max_entry(&[]), 0.0);
        assert!(sanitize_distribution(&mut [], 1e-6));
    }

    #[test]
    fn power_is_bit_identical_across_thread_counts() {
        let q = two_state(1.0, 4.0);
        let mut p = q.clone();
        p.scale(1.0 / 5.0);
        let mut coo = CooMatrix::new(2, 2);
        for (i, j, v) in p.iter() {
            coo.push(i, j, v);
        }
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        let p = CsrMatrix::from_coo(&coo);
        let serial = {
            let opts = SolverOptions { threads: 1, ..Default::default() };
            power_stationary(&p, &[1.0, 0.0], &opts).unwrap()
        };
        for threads in [2usize, 4, 8] {
            let opts = SolverOptions { threads, ..Default::default() };
            let (pi, stats) = power_stationary(&p, &[1.0, 0.0], &opts).unwrap();
            assert_eq!(pi, serial.0, "threads={threads}");
            assert_eq!(stats.iterations, serial.1.iterations);
        }
    }

    #[test]
    fn five_state_birth_death_all_methods_agree() {
        // Birth-death chain with distinct rates; closed form via detailed balance.
        let n = 5;
        let birth = [1.0, 2.0, 3.0, 4.0];
        let death = [5.0, 4.0, 3.0, 2.0];
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push(i, i + 1, birth[i]);
            coo.push(i + 1, i, death[i]);
        }
        for i in 0..n {
            let mut out = 0.0;
            if i < n - 1 {
                out += birth[i];
            }
            if i > 0 {
                out += death[i - 1];
            }
            coo.push(i, i, -out);
        }
        let q = CsrMatrix::from_coo(&coo);
        let mut expect = vec![1.0; n];
        for i in 1..n {
            expect[i] = expect[i - 1] * birth[i - 1] / death[i - 1];
        }
        normalize(&mut expect);
        let (exact, _) = direct_stationary(&q).unwrap();
        for (a, b) in exact.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
        let qt = q.transpose();
        for m in [Method::Jacobi, Method::GaussSeidel, Method::Sor] {
            let opts = SolverOptions { relaxation: 1.2, ..Default::default() };
            let (pi, _) = stationary_iteration(&qt, &vec![1.0; n], m, &opts).unwrap();
            for (a, b) in pi.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-8, "method {m:?}");
            }
        }
    }
}
