//! Property tests for the single-pass uniformization curve engine.
//!
//! For randomized small CTMCs (seeded SplitMix64 — the external `proptest`
//! crate is unavailable offline, so cases are deterministic across runs):
//!
//! * the single-pass curve matches per-point `transient` within 1e-10 at
//!   every time point (the implementation shares the march, so in practice
//!   they are bit-identical — the tolerance is the pinned contract),
//! * the curve converges to `steady_state()` at large `t`,
//! * every returned distribution is non-negative and sums to one,
//! * the multi-horizon interval curve matches per-horizon
//!   `interval_availability` and stays inside `[0, 1]`.

use dtc_markov::curve::uniformized_pass;
use dtc_markov::{interval_availability, interval_availability_curve, Ctmc, CtmcBuilder};

/// Deterministic pseudo-random stream (SplitMix64).
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }

    /// A random irreducible CTMC: a directed cycle through all states (so
    /// every state reaches every other) plus random extra transitions.
    fn ctmc(&mut self) -> Ctmc {
        let n = self.usize_in(2, 6);
        let mut b = CtmcBuilder::new(n);
        for i in 0..n {
            b.rate(i, (i + 1) % n, self.f64_in(0.05, 5.0));
        }
        for _ in 0..self.usize_in(0, 2 * n) {
            let from = self.usize_in(0, n - 1);
            let to = self.usize_in(0, n - 1);
            if from != to {
                b.rate(from, to, self.f64_in(0.01, 10.0));
            }
        }
        b.build().unwrap()
    }

    /// A random initial distribution (a point mass half the time).
    fn pi0(&mut self, n: usize) -> Vec<f64> {
        if self.next_u64() & 1 == 0 {
            let mut pi0 = vec![0.0; n];
            pi0[self.usize_in(0, n - 1)] = 1.0;
            pi0
        } else {
            let raw: Vec<f64> = (0..n).map(|_| self.f64_in(0.0, 1.0)).collect();
            let sum: f64 = raw.iter().sum();
            raw.iter().map(|x| x / sum).collect()
        }
    }

    /// An unsorted time grid with duplicates and an explicit zero.
    fn times(&mut self) -> Vec<f64> {
        let mut times: Vec<f64> =
            (0..self.usize_in(3, 9)).map(|_| self.f64_in(0.0, 50.0)).collect();
        times.push(0.0);
        let dup = times[self.usize_in(0, times.len() - 1)];
        times.push(dup);
        times
    }
}

const CASES: usize = 24;

#[test]
fn single_pass_matches_per_point_transient() {
    let mut g = Gen(0x51_6E_6C_45);
    for case in 0..CASES {
        let c = g.ctmc();
        let pi0 = g.pi0(c.num_states());
        let times = g.times();
        let curve = c.transient_curve(&pi0, &times).unwrap();
        assert_eq!(curve.len(), times.len());
        for (&t, pi) in times.iter().zip(&curve) {
            let reference = c.transient(&pi0, t).unwrap();
            for (a, b) in pi.iter().zip(&reference) {
                assert!(
                    (a - b).abs() < 1e-10,
                    "case {case}, t = {t}: curve {a} vs per-point {b}"
                );
            }
        }
    }
}

#[test]
fn curve_distributions_are_normalized_and_non_negative() {
    let mut g = Gen(0xD157_0F00);
    for case in 0..CASES {
        let c = g.ctmc();
        let pi0 = g.pi0(c.num_states());
        let times = g.times();
        for (t, pi) in times.iter().zip(c.transient_curve(&pi0, &times).unwrap()) {
            let sum: f64 = pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "case {case}, t = {t}: sums to {sum}");
            assert!(
                pi.iter().all(|p| *p >= -1e-12),
                "case {case}, t = {t}: negative mass in {pi:?}"
            );
        }
    }
}

#[test]
fn curve_converges_to_steady_state_at_large_t() {
    let mut g = Gen(0x57EAD);
    for case in 0..CASES {
        let c = g.ctmc();
        let pi0 = g.pi0(c.num_states());
        let steady = c.steady_state().unwrap();
        // Mixing time scales with 1/min-rate; 1e4 hours dwarfs it for the
        // generated rate range (≥ 0.05/h around the cycle).
        let curve = c.transient_curve(&pi0, &[1e4, 5e4]).unwrap();
        for pi in &curve {
            for (a, b) in pi.iter().zip(&steady) {
                assert!((a - b).abs() < 1e-7, "case {case}: {pi:?} vs steady {steady:?}");
            }
        }
    }
}

#[test]
fn interval_curve_matches_per_horizon_and_stays_in_unit_range() {
    let mut g = Gen(0x1A7E);
    for case in 0..CASES {
        let c = g.ctmc();
        let n = c.num_states();
        let pi0 = g.pi0(n);
        let up = |i: usize| i < n.div_ceil(2);
        let horizons: Vec<f64> = (0..4).map(|_| g.f64_in(0.1, 100.0)).collect();
        let curve = interval_availability_curve(&c, &pi0, &horizons, up).unwrap();
        for (&h, &got) in horizons.iter().zip(&curve) {
            let reference = interval_availability(&c, &pi0, h, up).unwrap();
            assert!(
                (got - reference).abs() < 1e-10,
                "case {case}, h = {h}: {got} vs {reference}"
            );
            assert!((-1e-12..=1.0 + 1e-12).contains(&got), "case {case}: IA = {got}");
        }
    }
}

#[test]
fn combined_pass_is_consistent_with_its_parts() {
    let mut g = Gen(0xC0B1);
    for case in 0..CASES {
        let c = g.ctmc();
        let n = c.num_states();
        let pi0 = g.pi0(n);
        let reward: Vec<f64> =
            (0..n).map(|i| if i < n.div_ceil(2) { 1.0 } else { 0.0 }).collect();
        let times = g.times();
        let horizons: Vec<f64> = (0..3).map(|_| g.f64_in(0.1, 60.0)).collect();
        let combined = uniformized_pass(&c, &pi0, &times, &horizons, &reward).unwrap();
        assert_eq!(combined.stats.matrix_builds, 1, "case {case}");
        assert_eq!(combined.stats.marches, 1, "case {case}");
        let transient_only = c.transient_curve(&pi0, &times).unwrap();
        assert_eq!(combined.distributions, transient_only, "case {case}");
        let cumulative_only =
            dtc_markov::cumulative_reward_curve(&c, &pi0, &horizons, &reward).unwrap();
        assert_eq!(combined.cumulative, cumulative_only, "case {case}");
    }
}
