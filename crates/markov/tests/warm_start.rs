//! Warm-started power solves: convergence and determinism contract.
//!
//! **One test per binary**: the iteration savings are asserted through the
//! process-global `stationary_iterations` counter (like `one_march.rs`
//! pins builds/marches), so no other test in this process may run a
//! stationary solve concurrently.
//!
//! The pinned claims, on seeded random chains:
//!
//! 1. seeding [`Ctmc::steady_state_power_from`] with the exact stationary
//!    vector converges in ≤ 1 iteration,
//! 2. seeding with a perturbed neighbor's vector converges in no more
//!    iterations than a cold start — strictly fewer in aggregate — with
//!    the savings visible as `stationary_iterations` counter deltas,
//! 3. the warm result matches the cold result within solver tolerance
//!    (tolerance-equal, NOT bit-equal: that is why warm starts stay off
//!    cached/golden paths).

use dtc_markov::instrument::stationary_iterations;
use dtc_markov::{Ctmc, CtmcBuilder, Method, SolverOptions};

/// Deterministic pseudo-random stream (SplitMix64).
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }

    /// A random irreducible chain: a directed cycle plus extra transitions,
    /// returned as `(edges, n)` so a rate-perturbed sibling can be rebuilt
    /// from the same structure.
    fn chain(&mut self) -> (Vec<(usize, usize, f64)>, usize) {
        let n = self.usize_in(8, 40);
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, (i + 1) % n, self.f64_in(0.05, 5.0)));
        }
        for _ in 0..self.usize_in(n, 3 * n) {
            let from = self.usize_in(0, n - 1);
            let to = self.usize_in(0, n - 1);
            if from != to {
                edges.push((from, to, self.f64_in(0.01, 10.0)));
            }
        }
        (edges, n)
    }
}

fn build(edges: &[(usize, usize, f64)], n: usize, rate_scale: f64) -> Ctmc {
    let mut b = CtmcBuilder::new(n);
    for &(i, j, r) in edges {
        b.rate(i, j, r * rate_scale);
    }
    b.build().unwrap()
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

const CASES: usize = 12;

#[test]
fn warm_started_solves_converge_faster_and_agree_with_cold() {
    let opts = SolverOptions::default();
    let mut g = Gen(0x0DD5_EED5);
    let (mut total_cold, mut total_warm) = (0u64, 0u64);

    for case in 0..CASES {
        let (edges, n) = g.chain();
        let neighbor = build(&edges, n, 1.0);
        // A rate-only sibling: every rate scaled by one factor near 1, the
        // shape of a sensitivity/search-grid neighbor.
        let perturbed = build(&edges, n, 1.05);

        let (pi_neighbor, _) = neighbor.steady_state_with(Method::Power, &opts).unwrap();

        // (1) Exact seed: one multiply confirms the fixed point.
        let (pi_exact, exact_stats) =
            neighbor.steady_state_power_from(&pi_neighbor, &opts).unwrap();
        assert!(
            exact_stats.iterations <= 1,
            "case {case} (n = {n}): exact seed took {} iterations",
            exact_stats.iterations
        );
        assert!(
            max_abs_diff(&pi_exact, &pi_neighbor) <= 1e-10,
            "case {case}: exact seed moved the solution"
        );

        // (2) Neighbor seed vs cold, savings pinned via the global counter.
        let before_cold = stationary_iterations();
        let (pi_cold, cold_stats) = perturbed.steady_state_with(Method::Power, &opts).unwrap();
        let after_cold = stationary_iterations();
        assert_eq!(
            after_cold - before_cold,
            cold_stats.iterations as u64,
            "case {case}: cold solve must tick the counter by its iterations"
        );

        let (pi_warm, warm_stats) =
            perturbed.steady_state_power_from(&pi_neighbor, &opts).unwrap();
        let after_warm = stationary_iterations();
        assert_eq!(
            after_warm - after_cold,
            warm_stats.iterations as u64,
            "case {case}: warm solve must tick the counter by its iterations"
        );
        assert!(
            warm_stats.iterations <= cold_stats.iterations,
            "case {case} (n = {n}): warm {} vs cold {} iterations",
            warm_stats.iterations,
            cold_stats.iterations
        );
        total_cold += cold_stats.iterations as u64;
        total_warm += warm_stats.iterations as u64;

        // (3) Tolerance-equal to the cold answer.
        let diff = max_abs_diff(&pi_warm, &pi_cold);
        assert!(diff <= 1e-9, "case {case} (n = {n}): warm/cold disagree by {diff:e}");

        // Determinism: the same guess yields the same result, bit for bit.
        let (pi_again, again_stats) =
            perturbed.steady_state_power_from(&pi_neighbor, &opts).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(
            bits(&pi_again),
            bits(&pi_warm),
            "case {case}: warm solve not deterministic"
        );
        assert_eq!(again_stats.iterations, warm_stats.iterations);
    }

    assert!(
        total_warm < total_cold,
        "warm starts must save iterations in aggregate: warm {total_warm} vs cold {total_cold}"
    );
}
