//! Property tests for the deterministic parallel kernels (`dtc_markov::par`).
//!
//! The contract under test is **bit-identity**, not closeness: for random
//! CTMCs — including unsorted/duplicate/zero time points and chains large
//! enough to put many elements in each fixed block — every solver output at
//! `threads ∈ {1, 2, 4, 8}` (plus whatever `DTC_TEST_THREADS` adds; CI runs
//! a 1/2/8 matrix) must equal the serial path to the last bit. Only the
//! reward-projection mode is held to a 1e-12 tolerance against the
//! full-vector mode, because projection intentionally skips the final
//! defensive renormalization.
//!
//! Seeded SplitMix64 keeps cases deterministic across runs (the external
//! `proptest` crate is unavailable offline).

use dtc_markov::curve::{uniformized_pass_with, PassOptions, PassOutput};
use dtc_markov::{dot, par, Ctmc, CtmcBuilder, Method, SolverOptions};

/// Deterministic pseudo-random stream (SplitMix64).
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }

    /// A random irreducible CTMC: a directed cycle through all states plus
    /// random extra transitions. Alternates between small chains (states
    /// outnumbered by threads — each block is a single element) and chains
    /// well past `par::MAX_BLOCKS` states (multi-element blocks, a short
    /// last block).
    fn ctmc(&mut self) -> Ctmc {
        let n = if self.next_u64() & 1 == 0 {
            self.usize_in(2, 6)
        } else {
            self.usize_in(par::MAX_BLOCKS + 1, 3 * par::MAX_BLOCKS + 5)
        };
        let mut b = CtmcBuilder::new(n);
        for i in 0..n {
            b.rate(i, (i + 1) % n, self.f64_in(0.05, 5.0));
        }
        for _ in 0..self.usize_in(0, 2 * n) {
            let from = self.usize_in(0, n - 1);
            let to = self.usize_in(0, n - 1);
            if from != to {
                b.rate(from, to, self.f64_in(0.01, 10.0));
            }
        }
        b.build().unwrap()
    }

    /// A random initial distribution (a point mass half the time).
    fn pi0(&mut self, n: usize) -> Vec<f64> {
        if self.next_u64() & 1 == 0 {
            let mut pi0 = vec![0.0; n];
            pi0[self.usize_in(0, n - 1)] = 1.0;
            pi0
        } else {
            let raw: Vec<f64> = (0..n).map(|_| self.f64_in(0.0, 1.0)).collect();
            let sum: f64 = raw.iter().sum();
            raw.iter().map(|x| x / sum).collect()
        }
    }

    /// An unsorted time grid with duplicates and an explicit zero.
    fn times(&mut self) -> Vec<f64> {
        let mut times: Vec<f64> =
            (0..self.usize_in(3, 9)).map(|_| self.f64_in(0.0, 50.0)).collect();
        times.push(0.0);
        let dup = times[self.usize_in(0, times.len() - 1)];
        times.push(dup);
        times
    }
}

const CASES: usize = 12;

/// Thread counts under test: the fixed {1, 2, 4, 8} set plus anything the
/// CI matrix injects via `DTC_TEST_THREADS` (comma-separated).
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4, 8];
    if let Ok(raw) = std::env::var("DTC_TEST_THREADS") {
        for part in raw.split(',') {
            if let Ok(v) = part.trim().parse::<usize>() {
                if v > 0 && !counts.contains(&v) {
                    counts.push(v);
                }
            }
        }
    }
    counts
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_pass_bits_equal(a: &PassOutput, b: &PassOutput, context: &str) {
    assert_eq!(a.distributions.len(), b.distributions.len(), "{context}");
    for (i, (da, db)) in a.distributions.iter().zip(&b.distributions).enumerate() {
        assert_eq!(bits(da), bits(db), "{context}: distribution {i} differs");
    }
    assert_eq!(bits(&a.cumulative), bits(&b.cumulative), "{context}: cumulative differs");
    assert_eq!(
        bits(&a.point_rewards),
        bits(&b.point_rewards),
        "{context}: point_rewards differs"
    );
    assert_eq!(a.stats, b.stats, "{context}: work count differs");
}

#[test]
fn uniformized_pass_bit_identical_across_thread_counts() {
    let counts = thread_counts();
    let mut g = Gen(0x9A12_11E7);
    for case in 0..CASES {
        let c = g.ctmc();
        let n = c.num_states();
        let pi0 = g.pi0(n);
        let times = g.times();
        let horizons: Vec<f64> = (0..3).map(|_| g.f64_in(0.1, 60.0)).collect();
        let reward: Vec<f64> =
            (0..n).map(|i| if i < n.div_ceil(2) { 1.0 } else { 0.0 }).collect();
        let serial = uniformized_pass_with(
            &c,
            &pi0,
            &times,
            &horizons,
            &reward,
            &PassOptions { threads: 1, ..Default::default() },
        )
        .unwrap();
        for &threads in &counts[1..] {
            let parallel = uniformized_pass_with(
                &c,
                &pi0,
                &times,
                &horizons,
                &reward,
                &PassOptions { threads, ..Default::default() },
            )
            .unwrap();
            assert_pass_bits_equal(
                &serial,
                &parallel,
                &format!("case {case} (n = {n}), threads = {threads}"),
            );
        }
    }
}

#[test]
fn projection_bit_identical_across_threads_and_close_to_full_vector() {
    let counts = thread_counts();
    let mut g = Gen(0x0BAD_F00D);
    for case in 0..CASES {
        let c = g.ctmc();
        let n = c.num_states();
        let pi0 = g.pi0(n);
        let times = g.times();
        let reward: Vec<f64> = (0..n).map(|_| g.f64_in(0.0, 2.0)).collect();
        let serial = uniformized_pass_with(
            &c,
            &pi0,
            &times,
            &[],
            &[],
            &PassOptions { threads: 1, point_reward: Some(&reward) },
        )
        .unwrap();
        assert!(serial.distributions.is_empty(), "case {case}: projection keeps O(n) memory");
        assert_eq!(serial.point_rewards.len(), times.len());
        for &threads in &counts[1..] {
            let parallel = uniformized_pass_with(
                &c,
                &pi0,
                &times,
                &[],
                &[],
                &PassOptions { threads, point_reward: Some(&reward) },
            )
            .unwrap();
            assert_pass_bits_equal(
                &serial,
                &parallel,
                &format!("case {case} (n = {n}), threads = {threads}"),
            );
        }
        // Projection vs. full-vector mode: ≤ 1e-12 (projection skips the
        // final renormalization, bounded by the truncation mass).
        let full = uniformized_pass_with(
            &c,
            &pi0,
            &times,
            &[],
            &[],
            &PassOptions { threads: 1, ..Default::default() },
        )
        .unwrap();
        for (i, (p, d)) in serial.point_rewards.iter().zip(&full.distributions).enumerate() {
            let want = dot(d, &reward);
            assert!(
                (p - want).abs() <= 1e-12,
                "case {case}, point {i} (t = {}): projected {p} vs full-vector {want}",
                times[i]
            );
        }
    }
}

#[test]
fn power_method_bit_identical_across_thread_counts() {
    let counts = thread_counts();
    let mut g = Gen(0x50_0E_12);
    for case in 0..CASES {
        let c = g.ctmc();
        let serial = c
            .steady_state_with(
                Method::Power,
                &SolverOptions { threads: 1, ..Default::default() },
            )
            .unwrap();
        for &threads in &counts[1..] {
            let opts = SolverOptions { threads, ..Default::default() };
            let parallel = c.steady_state_with(Method::Power, &opts).unwrap();
            assert_eq!(
                bits(&serial.0),
                bits(&parallel.0),
                "case {case}, threads = {threads}: stationary vector differs"
            );
            assert_eq!(serial.1.iterations, parallel.1.iterations, "case {case}");
        }
    }
}

#[test]
fn spmv_and_dot_kernels_bit_identical_on_generators() {
    let counts = thread_counts();
    let mut g = Gen(0x5EED_CAFE);
    for case in 0..CASES {
        let c = g.ctmc();
        let n = c.num_states();
        let q = c.generator();
        let x = g.pi0(n);
        let mut serial = vec![0.0; n];
        // Generators have negative diagonals: the kernel contract must not
        // depend on sign.
        q.mul_vec_into(&x, &mut serial);
        let r: Vec<f64> = (0..n).map(|_| g.f64_in(-1.0, 1.0)).collect();
        let dot1 = par::blocked_dot(&x, &r, 1);
        for &threads in &counts {
            let mut parallel = vec![f64::NAN; n];
            par::mul_vec_into(q, &x, &mut parallel, threads);
            assert_eq!(
                bits(&serial),
                bits(&parallel),
                "case {case} (n = {n}), threads = {threads}: SpMV differs"
            );
            assert_eq!(
                dot1.to_bits(),
                par::blocked_dot(&x, &r, threads).to_bits(),
                "case {case}, threads = {threads}: blocked dot differs"
            );
        }
    }
}
