//! # dtc-sim — discrete-event simulation of stochastic Petri nets
//!
//! The simulative solver of the `dtcloud` workspace: executes any
//! [`dtc_petri`] net under race semantics and estimates steady-state and
//! transient measures with confidence intervals. It plays the role TimeNET's
//! simulation engine played for the DSN'13 paper, and additionally supports
//! non-exponential firing distributions (deterministic, uniform, Erlang,
//! Weibull, log-normal) for sensitivity ablations the numeric CTMC pipeline
//! cannot express.
//!
//! # Example
//!
//! ```
//! use dtc_petri::model::{PetriNetBuilder, ServerSemantics};
//! use dtc_petri::expr::IntExpr;
//! use dtc_sim::{SimConfig, Simulator};
//!
//! let mut b = PetriNetBuilder::new();
//! let on = b.place("ON", 1);
//! let off = b.place("OFF", 0);
//! b.timed_delay("FAIL", 100.0, ServerSemantics::Single).input(on).output(off).done();
//! b.timed_delay("FIX", 10.0, ServerSemantics::Single).input(off).output(on).done();
//! let net = b.build()?;
//!
//! let sim = Simulator::new(&net)?;
//! let cfg = SimConfig { replications: 8, horizon: 20_000.0, ..Default::default() };
//! let estimate = sim.steady_probability(&IntExpr::tokens(on).gt(0), &cfg)?;
//! assert!(estimate.covers(100.0 / 110.0), "CI should cover the exact availability");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod dist;
pub mod error;
pub mod runner;
pub mod stats;

pub use batch::BatchMeansConfig;
pub use dist::Distribution;
pub use error::{Result, SimError};
pub use runner::{SimConfig, Simulator, TimingOverrides};
pub use stats::{estimate_from_samples, normal_quantile, t_quantile, Estimate};
