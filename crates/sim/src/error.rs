//! Error type for the simulator.

use std::fmt;

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, SimError>;

/// Errors produced while configuring or executing a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A timing override referenced a transition that does not exist or is
    /// immediate.
    UnknownTransition(String),
    /// A non-memoryless distribution was placed on a transition with
    /// infinite/k-server semantics.
    NonExponentialMultiServer {
        /// The offending transition name.
        name: String,
    },
    /// Distribution parameters failed validation.
    BadDistribution(String),
    /// More than a million immediate firings without reaching a tangible
    /// marking — an immediate cycle.
    ImmediateLivelock,
    /// Invalid simulation configuration.
    BadConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownTransition(name) => {
                write!(f, "no timed transition named {name:?}")
            }
            SimError::NonExponentialMultiServer { name } => write!(
                f,
                "transition {name:?}: non-exponential timing requires single-server semantics"
            ),
            SimError::BadDistribution(d) => write!(f, "{d}"),
            SimError::ImmediateLivelock => {
                write!(f, "immediate transitions fired 10^6 times without settling")
            }
            SimError::BadConfig(c) => write!(f, "invalid simulation config: {c}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(SimError::UnknownTransition("T".into()).to_string().contains("T"));
        assert!(SimError::ImmediateLivelock.to_string().contains("settling"));
        assert!(SimError::BadConfig("x".into()).to_string().contains('x'));
    }
}
