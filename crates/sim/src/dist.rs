//! Firing-time distributions for simulation.
//!
//! The numeric pipeline is restricted to exponential transitions (that is
//! what makes the model a CTMC); the simulator additionally supports the
//! non-exponential distributions TimeNET offers, which powers the
//! "deterministic transfer time" ablation of the reproduction.

use rand::Rng;

/// A firing-time distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Exponential with the given rate (1/mean).
    Exponential {
        /// Firing rate.
        rate: f64,
    },
    /// Always exactly `value`.
    Deterministic {
        /// The constant delay.
        value: f64,
    },
    /// Uniform on `[low, high]`.
    Uniform {
        /// Lower bound.
        low: f64,
        /// Upper bound.
        high: f64,
    },
    /// Sum of `k` exponential stages, each with the given rate.
    Erlang {
        /// Number of stages.
        k: u32,
        /// Per-stage rate.
        rate: f64,
    },
    /// Weibull with shape `k` and scale `lambda`.
    Weibull {
        /// Shape parameter.
        shape: f64,
        /// Scale parameter.
        scale: f64,
    },
    /// Log-normal with the given parameters of the underlying normal.
    LogNormal {
        /// Mean of `ln X`.
        mu: f64,
        /// Standard deviation of `ln X`.
        sigma: f64,
    },
}

impl Distribution {
    /// Exponential distribution with mean `m`.
    ///
    /// # Panics
    ///
    /// Panics unless `m` is finite and positive.
    pub fn exponential_mean(m: f64) -> Self {
        assert!(m.is_finite() && m > 0.0, "mean must be positive, got {m}");
        Distribution::Exponential { rate: 1.0 / m }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        match *self {
            Distribution::Exponential { rate } => 1.0 / rate,
            Distribution::Deterministic { value } => value,
            Distribution::Uniform { low, high } => 0.5 * (low + high),
            Distribution::Erlang { k, rate } => k as f64 / rate,
            Distribution::Weibull { shape, scale } => scale * gamma(1.0 + 1.0 / shape),
            Distribution::LogNormal { mu, sigma } => (mu + 0.5 * sigma * sigma).exp(),
        }
    }

    /// Whether samples are memoryless (only the exponential is).
    pub fn is_memoryless(&self) -> bool {
        matches!(self, Distribution::Exponential { .. })
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Distribution::Exponential { rate } => sample_exp(rng, rate),
            Distribution::Deterministic { value } => value,
            Distribution::Uniform { low, high } => rng.gen_range(low..=high),
            Distribution::Erlang { k, rate } => (0..k).map(|_| sample_exp(rng, rate)).sum(),
            Distribution::Weibull { shape, scale } => {
                let u: f64 = sample_unit(rng);
                scale * (-u.ln()).powf(1.0 / shape)
            }
            Distribution::LogNormal { mu, sigma } => {
                (mu + sigma * sample_standard_normal(rng)).exp()
            }
        }
    }

    /// Validates parameters, returning a human-readable complaint if bad.
    pub fn validate(&self) -> Result<(), String> {
        let ok = match *self {
            Distribution::Exponential { rate } => rate.is_finite() && rate > 0.0,
            Distribution::Deterministic { value } => value.is_finite() && value > 0.0,
            Distribution::Uniform { low, high } => {
                low.is_finite() && high.is_finite() && 0.0 <= low && low < high
            }
            Distribution::Erlang { k, rate } => k > 0 && rate.is_finite() && rate > 0.0,
            Distribution::Weibull { shape, scale } => shape > 0.0 && scale > 0.0,
            Distribution::LogNormal { sigma, .. } => sigma > 0.0,
        };
        if ok {
            Ok(())
        } else {
            Err(format!("invalid distribution parameters: {self:?}"))
        }
    }
}

fn sample_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // (0, 1] to keep ln() finite.
    1.0 - rng.gen::<f64>()
}

fn sample_exp<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    -sample_unit(rng).ln() / rate
}

fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller.
    let u1 = sample_unit(rng);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Lanczos approximation of the gamma function (for Weibull means).
#[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
fn gamma(x: f64) -> f64 {
    // Coefficients for g=7, n=9 (Numerical Recipes).
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean(d: Distribution, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(42);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_sample_mean_matches() {
        let d = Distribution::exponential_mean(4.0);
        let m = sample_mean(d, 200_000);
        assert!((m - 4.0).abs() < 0.05, "{m}");
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Distribution::Deterministic { value: 2.5 };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 2.5);
        }
        assert_eq!(d.mean(), 2.5);
    }

    #[test]
    fn uniform_sample_mean() {
        let d = Distribution::Uniform { low: 1.0, high: 3.0 };
        let m = sample_mean(d, 100_000);
        assert!((m - 2.0).abs() < 0.01, "{m}");
    }

    #[test]
    fn erlang_mean_and_samples() {
        let d = Distribution::Erlang { k: 3, rate: 2.0 };
        assert!((d.mean() - 1.5).abs() < 1e-12);
        let m = sample_mean(d, 100_000);
        assert!((m - 1.5).abs() < 0.02, "{m}");
    }

    #[test]
    fn weibull_mean_shape_one_is_exponential() {
        let d = Distribution::Weibull { shape: 1.0, scale: 3.0 };
        assert!((d.mean() - 3.0).abs() < 1e-9);
        let m = sample_mean(d, 200_000);
        assert!((m - 3.0).abs() < 0.05, "{m}");
    }

    #[test]
    fn weibull_mean_shape_two() {
        // mean = scale * Γ(1.5) = scale * √π/2.
        let d = Distribution::Weibull { shape: 2.0, scale: 1.0 };
        let expect = (std::f64::consts::PI).sqrt() / 2.0;
        assert!((d.mean() - expect).abs() < 1e-9);
    }

    #[test]
    fn lognormal_mean() {
        let d = Distribution::LogNormal { mu: 0.0, sigma: 0.5 };
        let expect = (0.125f64).exp();
        assert!((d.mean() - expect).abs() < 1e-12);
        let m = sample_mean(d, 300_000);
        assert!((m - expect).abs() < 0.01, "{m} vs {expect}");
    }

    #[test]
    fn validation() {
        assert!(Distribution::Exponential { rate: 1.0 }.validate().is_ok());
        assert!(Distribution::Exponential { rate: 0.0 }.validate().is_err());
        assert!(Distribution::Uniform { low: 2.0, high: 1.0 }.validate().is_err());
        assert!(Distribution::Deterministic { value: -1.0 }.validate().is_err());
    }

    #[test]
    fn memoryless_flag() {
        assert!(Distribution::Exponential { rate: 1.0 }.is_memoryless());
        assert!(!Distribution::Deterministic { value: 1.0 }.is_memoryless());
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }
}
