//! Batch-means steady-state estimation.
//!
//! Independent replications (see [`crate::runner`]) pay the warm-up cost
//! once per replication; the batch-means method runs **one** long
//! trajectory, discards a single warm-up, slices the rest into equal-time
//! batches, and treats per-batch time averages as approximately independent
//! samples. It is the method of choice when warm-up is expensive relative
//! to the correlation time (true for stiff dependability models, where
//! rare events dominate).

use crate::error::{Result, SimError};
use crate::runner::Simulator;
use crate::stats::{estimate_from_samples, Estimate};
use dtc_petri::expr::{BoolExpr, IntExpr};
use dtc_petri::model::PlaceId;

/// Configuration for a batch-means run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchMeansConfig {
    /// Warm-up time discarded once at the start.
    pub warmup: f64,
    /// Length of each batch (model time).
    pub batch_time: f64,
    /// Number of batches (the sample size for the CI).
    pub batches: usize,
    /// RNG seed.
    pub seed: u64,
    /// Confidence level.
    pub confidence: f64,
}

impl Default for BatchMeansConfig {
    fn default() -> Self {
        BatchMeansConfig {
            warmup: 10_000.0,
            batch_time: 50_000.0,
            batches: 20,
            seed: 0xBA7C4,
            confidence: 0.95,
        }
    }
}

impl BatchMeansConfig {
    // Negated comparisons are deliberate: NaN parameters must fail too.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn validate(&self) -> Result<()> {
        if !(self.batch_time > 0.0)
            || self.warmup < 0.0
            || self.batches < 2
            || !(self.confidence > 0.0 && self.confidence < 1.0)
        {
            return Err(SimError::BadConfig(format!("{self:?}")));
        }
        Ok(())
    }
}

impl<'a> Simulator<'a> {
    /// Steady-state probability of `expr` by the batch-means method.
    ///
    /// # Errors
    ///
    /// [`SimError::BadConfig`] for invalid configurations; livelock errors
    /// as in the replication estimator.
    pub fn steady_probability_batch_means(
        &self,
        expr: &BoolExpr,
        cfg: &BatchMeansConfig,
    ) -> Result<Estimate> {
        cfg.validate()?;
        let means = self.batch_series(cfg, |m| {
            if expr.eval(&|p: PlaceId| m[p.index()]) {
                1.0
            } else {
                0.0
            }
        })?;
        Ok(estimate_from_samples(&means, cfg.confidence))
    }

    /// Steady-state expectation of an integer expression by batch means.
    pub fn steady_expected_batch_means(
        &self,
        expr: &IntExpr,
        cfg: &BatchMeansConfig,
    ) -> Result<Estimate> {
        cfg.validate()?;
        let means =
            self.batch_series(cfg, |m| expr.value(&|p: PlaceId| m[p.index()]) as f64)?;
        Ok(estimate_from_samples(&means, cfg.confidence))
    }

    /// Runs one long trajectory and returns per-batch time averages of
    /// `value(marking)`.
    fn batch_series(
        &self,
        cfg: &BatchMeansConfig,
        value: impl Fn(&[u32]) -> f64,
    ) -> Result<Vec<f64>> {
        let mut walker = crate::runner::Run::new(self, cfg.seed);
        walker.settle()?;
        let end = cfg.warmup + cfg.batch_time * cfg.batches as f64;
        let mut acc = vec![0.0f64; cfg.batches];
        loop {
            let seg_start = walker.clock();
            let v = value(walker.marking());
            let advanced = walker.step()?;
            let seg_end = if advanced { walker.clock().min(end) } else { end };
            // Distribute [seg_start, seg_end) across batch windows.
            let mut t0 = seg_start.max(cfg.warmup);
            while t0 < seg_end {
                let batch = ((t0 - cfg.warmup) / cfg.batch_time) as usize;
                let batch = batch.min(cfg.batches - 1);
                let window_end = cfg.warmup + cfg.batch_time * (batch + 1) as f64;
                let t1 = seg_end.min(window_end);
                acc[batch] += v * (t1 - t0);
                t0 = t1;
            }
            if !advanced || walker.clock() >= end {
                break;
            }
        }
        Ok(acc.into_iter().map(|a| a / cfg.batch_time).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_petri::model::{PetriNetBuilder, ServerSemantics};

    fn simple(mttf: f64, mttr: f64) -> dtc_petri::PetriNet {
        let mut b = PetriNetBuilder::new();
        let on = b.place("ON", 1);
        let off = b.place("OFF", 0);
        b.timed_delay("F", mttf, ServerSemantics::Single).input(on).output(off).done();
        b.timed_delay("R", mttr, ServerSemantics::Single).input(off).output(on).done();
        b.build().unwrap()
    }

    #[test]
    fn batch_means_covers_closed_form() {
        let net = simple(100.0, 10.0);
        let sim = Simulator::new(&net).unwrap();
        let cfg = BatchMeansConfig {
            warmup: 1_000.0,
            batch_time: 20_000.0,
            batches: 16,
            seed: 21,
            confidence: 0.99,
        };
        let expr = IntExpr::tokens(net.place("ON").unwrap()).gt(0);
        let est = sim.steady_probability_batch_means(&expr, &cfg).unwrap();
        let exact = 100.0 / 110.0;
        assert!(est.covers(exact), "CI {:?} misses {exact}", est.interval());
    }

    #[test]
    fn batch_means_expected_queue_length() {
        let (lambda, mu, k) = (1.0, 2.0, 5u32);
        let mut b = PetriNetBuilder::new();
        let q = b.place("Q", 0);
        b.timed("A", lambda, ServerSemantics::Single).output(q).inhibitor(q, k).done();
        b.timed("S", mu, ServerSemantics::Single).input(q).done();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net).unwrap();
        let cfg = BatchMeansConfig {
            warmup: 500.0,
            batch_time: 15_000.0,
            batches: 12,
            seed: 5,
            confidence: 0.99,
        };
        let rho: f64 = lambda / mu;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        let expect: f64 = (0..=k).map(|i| i as f64 * rho.powi(i as i32) / norm).sum();
        let est = sim.steady_expected_batch_means(&IntExpr::tokens(q), &cfg).unwrap();
        assert!(est.covers(expect), "CI {:?} misses {expect}", est.interval());
    }

    #[test]
    fn batch_means_reproducible() {
        let net = simple(10.0, 1.0);
        let sim = Simulator::new(&net).unwrap();
        let cfg = BatchMeansConfig {
            batches: 4,
            batch_time: 500.0,
            warmup: 50.0,
            seed: 9,
            confidence: 0.95,
        };
        let expr = IntExpr::tokens(net.place("ON").unwrap()).gt(0);
        let a = sim.steady_probability_batch_means(&expr, &cfg).unwrap();
        let b = sim.steady_probability_batch_means(&expr, &cfg).unwrap();
        assert_eq!(a.mean, b.mean);
    }

    #[test]
    fn invalid_config_rejected() {
        let net = simple(1.0, 1.0);
        let sim = Simulator::new(&net).unwrap();
        let expr = IntExpr::tokens(net.place("ON").unwrap()).gt(0);
        let cfg = BatchMeansConfig { batches: 1, ..Default::default() };
        assert!(matches!(
            sim.steady_probability_batch_means(&expr, &cfg),
            Err(SimError::BadConfig(_))
        ));
    }

    #[test]
    fn deadlock_fills_remaining_batches() {
        let mut b = PetriNetBuilder::new();
        let on = b.place("ON", 1);
        let off = b.place("OFF", 0);
        b.timed("F", 1.0, ServerSemantics::Single).input(on).output(off).done();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net).unwrap();
        let cfg = BatchMeansConfig {
            warmup: 0.0,
            batch_time: 100.0,
            batches: 5,
            seed: 3,
            confidence: 0.95,
        };
        let expr = IntExpr::tokens(off).gt(0);
        let est = sim.steady_probability_batch_means(&expr, &cfg).unwrap();
        // After the single failure the system sits in OFF forever.
        assert!(est.mean > 0.95, "{}", est.mean);
    }
}
