//! Replication statistics: means, variances and Student-t confidence
//! intervals.

/// A point estimate with a confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean across replications.
    pub mean: f64,
    /// Confidence-interval half width.
    pub half_width: f64,
    /// Number of replications.
    pub replications: usize,
    /// Confidence level used (e.g. 0.95).
    pub confidence: f64,
}

impl Estimate {
    /// Whether `value` lies inside the confidence interval.
    pub fn covers(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.half_width
    }

    /// Interval `(lower, upper)`.
    pub fn interval(&self) -> (f64, f64) {
        (self.mean - self.half_width, self.mean + self.half_width)
    }

    /// Relative half width (`half_width / mean`; infinite for mean 0).
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Builds an [`Estimate`] from raw replication outputs.
///
/// # Panics
///
/// Panics if fewer than two samples are supplied or `confidence` is not in
/// `(0, 1)`.
pub fn estimate_from_samples(samples: &[f64], confidence: f64) -> Estimate {
    assert!(samples.len() >= 2, "need at least two replications");
    assert!(confidence > 0.0 && confidence < 1.0, "confidence must be in (0,1)");
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let t = t_quantile(confidence, samples.len() - 1);
    Estimate { mean, half_width: t * (var / n).sqrt(), replications: samples.len(), confidence }
}

/// Two-sided Student-t quantile `t_{(1+confidence)/2, df}`.
///
/// Exact tables for 95% and 99% at small degrees of freedom, with a
/// Cornish–Fisher-style correction of the normal quantile elsewhere (error
/// below 1% for the confidence levels used in practice).
pub fn t_quantile(confidence: f64, df: usize) -> f64 {
    const T95: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    const T99: [f64; 30] = [
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055,
        3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797,
        2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
    ];
    let df = df.max(1);
    if (confidence - 0.95).abs() < 1e-9 && df <= 30 {
        return T95[df - 1];
    }
    if (confidence - 0.99).abs() < 1e-9 && df <= 30 {
        return T99[df - 1];
    }
    // Normal quantile with a t correction: t ≈ z + (z³+z)/(4·df).
    let z = normal_quantile(0.5 + confidence / 2.0);
    z + (z.powi(3) + z) / (4.0 * df as f64)
}

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |ε| < 1.15e-9).
#[allow(clippy::excessive_precision)] // coefficients quoted verbatim
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_basic() {
        let e = estimate_from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.95);
        assert!((e.mean - 3.0).abs() < 1e-12);
        // s = sqrt(2.5), hw = 2.776 * sqrt(2.5/5).
        let expect = 2.776 * (2.5f64 / 5.0).sqrt();
        assert!((e.half_width - expect).abs() < 1e-3);
        assert!(e.covers(3.5));
        assert!(!e.covers(10.0));
    }

    #[test]
    fn t_table_values() {
        assert!((t_quantile(0.95, 1) - 12.706).abs() < 1e-9);
        assert!((t_quantile(0.95, 10) - 2.228).abs() < 1e-9);
        assert!((t_quantile(0.99, 5) - 4.032).abs() < 1e-9);
        // Large df approaches the normal quantile.
        assert!((t_quantile(0.95, 10_000) - 1.96).abs() < 0.01);
    }

    #[test]
    fn normal_quantile_known_points() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-5);
    }

    #[test]
    fn interval_and_relative_width() {
        let e = Estimate { mean: 2.0, half_width: 0.5, replications: 10, confidence: 0.95 };
        assert_eq!(e.interval(), (1.5, 2.5));
        assert!((e.relative_half_width() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "two replications")]
    fn single_sample_panics() {
        estimate_from_samples(&[1.0], 0.95);
    }
}
