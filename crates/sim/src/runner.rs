//! The discrete-event simulation engine.
//!
//! Executes a `dtc-petri` net under race semantics: exponential transitions
//! are resampled after every event (valid by memorylessness), non-exponential
//! transitions keep their scheduled firing instant while continuously enabled
//! ("enable memory", TimeNET's default policy). Immediate transitions fire in
//! zero time, chosen by weight within the highest enabled priority class.
//!
//! Estimation uses independent replications with Student-t confidence
//! intervals: time-weighted averages for steady-state measures (after a
//! warm-up period) and end-state evaluation for transient measures.

use crate::dist::Distribution;
use crate::error::{Result, SimError};
use crate::stats::{estimate_from_samples, Estimate};
use dtc_petri::expr::{BoolExpr, IntExpr};
use dtc_petri::model::{PetriNet, PlaceId, ServerSemantics, TransitionKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Replaces the exponential timing of named transitions with arbitrary
/// distributions (the non-exponential ablation knob).
#[derive(Debug, Clone, Default)]
pub struct TimingOverrides {
    by_name: HashMap<String, Distribution>,
}

impl TimingOverrides {
    /// No overrides.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides transition `name` with `dist`.
    pub fn set(&mut self, name: impl Into<String>, dist: Distribution) -> &mut Self {
        self.by_name.insert(name.into(), dist);
        self
    }

    /// Iterates over the overrides.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Distribution)> {
        self.by_name.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Time discarded at the start of each replication (steady-state only).
    pub warmup: f64,
    /// Measured time per replication (after warm-up).
    pub horizon: f64,
    /// Number of independent replications.
    pub replications: usize,
    /// Base RNG seed; replication `i` derives its own stream.
    pub seed: u64,
    /// Confidence level for intervals.
    pub confidence: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            warmup: 1_000.0,
            horizon: 100_000.0,
            replications: 16,
            seed: 0xD7C1_0AD5,
            confidence: 0.95,
        }
    }
}

impl SimConfig {
    // Negated comparisons are deliberate: NaN parameters must fail too.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn validate(&self) -> Result<()> {
        if !(self.horizon > 0.0)
            || self.warmup < 0.0
            || self.replications < 2
            || !(self.confidence > 0.0 && self.confidence < 1.0)
        {
            return Err(SimError::BadConfig(format!("{self:?}")));
        }
        Ok(())
    }
}

/// A simulator bound to a net, with per-transition firing distributions.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    net: &'a PetriNet,
    /// One entry per transition; `None` for immediates.
    dists: Vec<Option<Distribution>>,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator using each timed transition's exponential rate.
    pub fn new(net: &'a PetriNet) -> Result<Self> {
        Self::with_overrides(net, &TimingOverrides::new())
    }

    /// Builds a simulator with some transitions' timing replaced.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownTransition`] for an override naming no timed
    ///   transition.
    /// * [`SimError::NonExponentialMultiServer`] when a non-memoryless
    ///   distribution is placed on a transition with infinite/k-server
    ///   semantics (enable-memory clocks are only tracked per transition,
    ///   not per server).
    /// * [`SimError::BadDistribution`] for invalid parameters.
    pub fn with_overrides(net: &'a PetriNet, overrides: &TimingOverrides) -> Result<Self> {
        for (name, d) in overrides.iter() {
            d.validate().map_err(SimError::BadDistribution)?;
            match net.transition(name) {
                None => return Err(SimError::UnknownTransition(name.to_string())),
                Some(t) => {
                    let def = net.transition_def(t);
                    match def.kind {
                        TransitionKind::Immediate { .. } => {
                            return Err(SimError::UnknownTransition(name.to_string()))
                        }
                        TransitionKind::Timed { semantics, .. } => {
                            if !d.is_memoryless()
                                && !matches!(semantics, ServerSemantics::Single)
                            {
                                return Err(SimError::NonExponentialMultiServer {
                                    name: name.to_string(),
                                });
                            }
                        }
                    }
                }
            }
        }
        let mut dists = Vec::with_capacity(net.num_transitions());
        for (_, tr) in net.transitions() {
            let d = match tr.kind {
                TransitionKind::Immediate { .. } => None,
                TransitionKind::Timed { rate, .. } => Some(
                    overrides
                        .by_name
                        .get(&tr.name)
                        .copied()
                        .unwrap_or(Distribution::Exponential { rate }),
                ),
            };
            dists.push(d);
        }
        Ok(Simulator { net, dists })
    }

    /// Steady-state probability of `expr` (time-weighted fraction).
    pub fn steady_probability(&self, expr: &BoolExpr, cfg: &SimConfig) -> Result<Estimate> {
        cfg.validate()?;
        let samples = self.replicate(cfg, |run| {
            run.time_average(cfg.warmup, cfg.horizon, |m| {
                if expr.eval(&|p: PlaceId| m[p.index()]) {
                    1.0
                } else {
                    0.0
                }
            })
        })?;
        Ok(estimate_from_samples(&samples, cfg.confidence))
    }

    /// Steady-state expectation of an integer marking expression.
    pub fn steady_expected(&self, expr: &IntExpr, cfg: &SimConfig) -> Result<Estimate> {
        cfg.validate()?;
        let samples = self.replicate(cfg, |run| {
            run.time_average(cfg.warmup, cfg.horizon, |m| {
                expr.value(&|p: PlaceId| m[p.index()]) as f64
            })
        })?;
        Ok(estimate_from_samples(&samples, cfg.confidence))
    }

    /// Probability that `expr` holds at time `t` (independent replications,
    /// binary outcome each).
    pub fn transient_probability(
        &self,
        expr: &BoolExpr,
        t: f64,
        cfg: &SimConfig,
    ) -> Result<Estimate> {
        cfg.validate()?;
        if t < 0.0 {
            return Err(SimError::BadConfig(format!("negative time {t}")));
        }
        let samples = self.replicate(cfg, |run| {
            let m = run.state_at(t)?;
            Ok(if expr.eval(&|p: PlaceId| m[p.index()]) { 1.0 } else { 0.0 })
        })?;
        Ok(estimate_from_samples(&samples, cfg.confidence))
    }

    fn replicate(
        &self,
        cfg: &SimConfig,
        f: impl Fn(&mut Run<'_>) -> Result<f64>,
    ) -> Result<Vec<f64>> {
        let mut samples = Vec::with_capacity(cfg.replications);
        for rep in 0..cfg.replications {
            let mut run = Run::new(self, splitmix(cfg.seed, rep as u64));
            samples.push(f(&mut run)?);
        }
        Ok(samples)
    }
}

/// Derives a decorrelated per-replication seed (SplitMix64 finalizer).
fn splitmix(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One replication in progress. Also used by the batch-means estimator in
/// [`crate::batch`], which drives the event loop directly.
pub(crate) struct Run<'a> {
    sim: &'a Simulator<'a>,
    marking: Vec<u32>,
    clock: f64,
    /// Scheduled absolute firing times of enabled non-memoryless transitions.
    pending: Vec<Option<f64>>,
    rng: StdRng,
}

impl<'a> Run<'a> {
    pub(crate) fn new(sim: &'a Simulator<'a>, seed: u64) -> Self {
        Run {
            sim,
            marking: sim.net.initial_marking().to_vec(),
            clock: 0.0,
            pending: vec![None; sim.net.num_transitions()],
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Current simulation clock.
    pub(crate) fn clock(&self) -> f64 {
        self.clock
    }

    /// Current (tangible after `settle`) marking.
    pub(crate) fn marking(&self) -> &[u32] {
        &self.marking
    }

    /// Fires immediates until the marking is tangible.
    pub(crate) fn settle(&mut self) -> Result<()> {
        let mut fired = 0usize;
        loop {
            let enabled = self.sim.net.enabled_immediates(&self.marking);
            if enabled.is_empty() {
                return Ok(());
            }
            fired += 1;
            if fired > 1_000_000 {
                return Err(SimError::ImmediateLivelock);
            }
            let total: f64 = enabled.iter().map(|&(_, w)| w).sum();
            let mut x = self.rng.gen::<f64>() * total;
            let mut chosen = enabled[enabled.len() - 1].0;
            for &(t, w) in &enabled {
                if x < w {
                    chosen = t;
                    break;
                }
                x -= w;
            }
            self.marking = self.sim.net.fire(chosen, &self.marking).to_vec();
        }
    }

    /// Advances by one timed firing. Returns `false` on deadlock.
    pub(crate) fn step(&mut self) -> Result<bool> {
        self.settle()?;
        let net = self.sim.net;
        let mut winner: Option<(usize, f64)> = None;
        for (i, dist) in self.sim.dists.iter().enumerate() {
            let Some(dist) = dist else { continue };
            let t = dtc_petri::model::TransitionId::new(i as u32);
            let degree = net.enabling_degree(t, &self.marking);
            if degree == 0 {
                self.pending[i] = None;
                continue;
            }
            let fire_at = if dist.is_memoryless() {
                // Effective rate includes server semantics.
                let rate = net
                    .firing_rate(t, &self.marking)
                    .expect("enabled timed transition has a rate");
                self.clock + Distribution::Exponential { rate }.sample(&mut self.rng)
            } else {
                match self.pending[i] {
                    Some(at) => at,
                    None => {
                        let at = self.clock + dist.sample(&mut self.rng);
                        self.pending[i] = Some(at);
                        at
                    }
                }
            };
            if winner.is_none_or(|(_, best)| fire_at < best) {
                winner = Some((i, fire_at));
            }
        }
        let Some((idx, at)) = winner else {
            return Ok(false);
        };
        self.clock = at;
        self.pending[idx] = None;
        let t = dtc_petri::model::TransitionId::new(idx as u32);
        self.marking = self.sim.net.fire(t, &self.marking).to_vec();
        self.settle()?;
        Ok(true)
    }

    /// Time-weighted average of `value(marking)` over
    /// `[warmup, warmup + horizon]`.
    fn time_average(
        &mut self,
        warmup: f64,
        horizon: f64,
        value: impl Fn(&[u32]) -> f64,
    ) -> Result<f64> {
        self.settle()?;
        let end = warmup + horizon;
        let mut acc = 0.0;
        loop {
            let seg_start = self.clock;
            let v = value(&self.marking);
            let advanced = self.advance_one(end)?;
            let seg_end = self.clock.min(end);
            let lo = seg_start.max(warmup);
            if seg_end > lo {
                acc += v * (seg_end - lo);
            }
            if !advanced || self.clock >= end {
                // Deadlock: the final marking persists to the horizon.
                if !advanced && self.clock < end {
                    let lo = self.clock.max(warmup);
                    acc += v * (end - lo);
                }
                break;
            }
        }
        Ok(acc / horizon)
    }

    /// Runs until the clock passes `t`, returning the marking occupied at `t`.
    fn state_at(&mut self, t: f64) -> Result<Vec<u32>> {
        self.settle()?;
        loop {
            let before = self.marking.clone();
            let advanced = self.step()?;
            if !advanced || self.clock > t {
                return Ok(before);
            }
        }
    }

    /// Like [`Run::step`] but does not advance past `end` (the marking at
    /// `end` is the current one). Returns `false` on deadlock.
    fn advance_one(&mut self, _end: f64) -> Result<bool> {
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_petri::model::{PetriNetBuilder, ServerSemantics};

    fn simple(mttf: f64, mttr: f64) -> PetriNet {
        let mut b = PetriNetBuilder::new();
        let on = b.place("ON", 1);
        let off = b.place("OFF", 0);
        b.timed_delay("FAIL", mttf, ServerSemantics::Single).input(on).output(off).done();
        b.timed_delay("REPAIR", mttr, ServerSemantics::Single).input(off).output(on).done();
        b.build().unwrap()
    }

    fn up_expr(net: &PetriNet) -> BoolExpr {
        IntExpr::tokens(net.place("ON").unwrap()).gt(0)
    }

    #[test]
    fn steady_availability_covers_closed_form() {
        let net = simple(100.0, 10.0);
        let sim = Simulator::new(&net).unwrap();
        let cfg = SimConfig {
            warmup: 500.0,
            horizon: 20_000.0,
            replications: 12,
            seed: 7,
            confidence: 0.99,
        };
        let est = sim.steady_probability(&up_expr(&net), &cfg).unwrap();
        let exact = 100.0 / 110.0;
        assert!(est.covers(exact), "CI [{:?}] misses {exact}", est.interval());
        assert!(est.half_width < 0.02);
    }

    #[test]
    fn mm1k_simulation_matches_closed_form() {
        let (lambda, mu, k) = (1.0, 2.0, 4u32);
        let mut b = PetriNetBuilder::new();
        let q = b.place("Q", 0);
        b.timed("ARRIVE", lambda, ServerSemantics::Single).output(q).inhibitor(q, k).done();
        b.timed("SERVE", mu, ServerSemantics::Single).input(q).done();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net).unwrap();
        let cfg = SimConfig {
            warmup: 200.0,
            horizon: 30_000.0,
            replications: 10,
            seed: 3,
            confidence: 0.99,
        };
        let rho: f64 = lambda / mu;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        let expect_mean: f64 = (0..=k).map(|i| i as f64 * rho.powi(i as i32) / norm).sum();
        let qp = net.place("Q").unwrap();
        let est = sim.steady_expected(&IntExpr::tokens(qp), &cfg).unwrap();
        assert!(est.covers(expect_mean), "CI {:?} misses {expect_mean}", est.interval());
    }

    #[test]
    fn transient_matches_closed_form() {
        let lam: f64 = 0.1;
        let mu: f64 = 1.0;
        let net = simple(1.0 / lam, 1.0 / mu);
        let sim = Simulator::new(&net).unwrap();
        let cfg = SimConfig {
            warmup: 0.0,
            horizon: 1.0,
            replications: 400,
            seed: 11,
            confidence: 0.99,
        };
        let t = 5.0;
        let a = mu / (lam + mu);
        let expect = a + (1.0 - a) * (-(lam + mu) * t).exp();
        let est = sim.transient_probability(&up_expr(&net), t, &cfg).unwrap();
        assert!(est.covers(expect), "CI {:?} misses {expect}", est.interval());
    }

    #[test]
    fn weighted_fork_frequencies() {
        let mut b = PetriNetBuilder::new();
        let idle = b.place("IDLE", 1);
        let choice = b.place("CHOICE", 0);
        let pa = b.place("PA", 0);
        let pb = b.place("PB", 0);
        b.timed("GO", 10.0, ServerSemantics::Single).input(idle).output(choice).done();
        b.immediate_weighted("A", 1.0, 0).input(choice).output(pa).done();
        b.immediate_weighted("B", 3.0, 0).input(choice).output(pb).done();
        b.timed("DA", 10.0, ServerSemantics::Single).input(pa).output(idle).done();
        b.timed("DB", 10.0, ServerSemantics::Single).input(pb).output(idle).done();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net).unwrap();
        let cfg = SimConfig {
            warmup: 100.0,
            horizon: 20_000.0,
            replications: 8,
            seed: 5,
            confidence: 0.99,
        };
        let est_a = sim.steady_probability(&IntExpr::tokens(pa).gt(0), &cfg).unwrap();
        let est_b = sim.steady_probability(&IntExpr::tokens(pb).gt(0), &cfg).unwrap();
        let ratio = est_a.mean / (est_a.mean + est_b.mean);
        assert!((ratio - 0.25).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn deterministic_override_changes_variance_not_mean_rate() {
        // M/D/1/K vs M/M/1/K: deterministic service keeps the same mean
        // service time; mean queue length drops (less variance).
        let (lambda, mu, k) = (0.8, 1.0, 10u32);
        let mut b = PetriNetBuilder::new();
        let q = b.place("Q", 0);
        b.timed("ARRIVE", lambda, ServerSemantics::Single).output(q).inhibitor(q, k).done();
        b.timed("SERVE", mu, ServerSemantics::Single).input(q).done();
        let net = b.build().unwrap();
        let cfg = SimConfig {
            warmup: 500.0,
            horizon: 30_000.0,
            replications: 8,
            seed: 17,
            confidence: 0.95,
        };
        let qp = net.place("Q").unwrap();
        let exp_sim = Simulator::new(&net).unwrap();
        let exp_len = exp_sim.steady_expected(&IntExpr::tokens(qp), &cfg).unwrap();
        let mut ov = TimingOverrides::new();
        ov.set("SERVE", Distribution::Deterministic { value: 1.0 / mu });
        let det_sim = Simulator::with_overrides(&net, &ov).unwrap();
        let det_len = det_sim.steady_expected(&IntExpr::tokens(qp), &cfg).unwrap();
        assert!(
            det_len.mean < exp_len.mean,
            "M/D/1 queue should be shorter: {} vs {}",
            det_len.mean,
            exp_len.mean
        );
    }

    #[test]
    fn reproducible_with_same_seed() {
        let net = simple(50.0, 5.0);
        let sim = Simulator::new(&net).unwrap();
        let cfg = SimConfig {
            warmup: 10.0,
            horizon: 1000.0,
            replications: 4,
            seed: 99,
            confidence: 0.95,
        };
        let a = sim.steady_probability(&up_expr(&net), &cfg).unwrap();
        let b = sim.steady_probability(&up_expr(&net), &cfg).unwrap();
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.half_width, b.half_width);
    }

    #[test]
    fn unknown_override_rejected() {
        let net = simple(1.0, 1.0);
        let mut ov = TimingOverrides::new();
        ov.set("NOPE", Distribution::Deterministic { value: 1.0 });
        assert!(matches!(
            Simulator::with_overrides(&net, &ov),
            Err(SimError::UnknownTransition(_))
        ));
    }

    #[test]
    fn non_exponential_on_infinite_server_rejected() {
        let mut b = PetriNetBuilder::new();
        let p = b.place("P", 2);
        b.timed("T", 1.0, ServerSemantics::Infinite).input(p).done();
        let net = b.build().unwrap();
        let mut ov = TimingOverrides::new();
        ov.set("T", Distribution::Deterministic { value: 1.0 });
        assert!(matches!(
            Simulator::with_overrides(&net, &ov),
            Err(SimError::NonExponentialMultiServer { .. })
        ));
    }

    #[test]
    fn deadlocked_net_reports_final_state_fraction() {
        // One-shot net: ON -> OFF, then deadlock; availability over a long
        // horizon tends to 0.
        let mut b = PetriNetBuilder::new();
        let on = b.place("ON", 1);
        let off = b.place("OFF", 0);
        b.timed("FAIL", 1.0, ServerSemantics::Single).input(on).output(off).done();
        let net = b.build().unwrap();
        let sim = Simulator::new(&net).unwrap();
        let cfg = SimConfig {
            warmup: 0.0,
            horizon: 1000.0,
            replications: 4,
            seed: 1,
            confidence: 0.95,
        };
        let est = sim.steady_probability(&IntExpr::tokens(on).gt(0), &cfg).unwrap();
        assert!(est.mean < 0.01, "{}", est.mean);
    }

    #[test]
    fn bad_config_rejected() {
        let net = simple(1.0, 1.0);
        let sim = Simulator::new(&net).unwrap();
        let cfg = SimConfig { replications: 1, ..Default::default() };
        assert!(matches!(
            sim.steady_probability(&up_expr(&net), &cfg),
            Err(SimError::BadConfig(_))
        ));
    }
}
