//! Reliability block diagram structure and evaluation.
//!
//! A block is either a basic component or a series / parallel / k-of-n /
//! bridge composition of sub-blocks. Blocks are assumed statistically
//! independent, so availability composes by the standard formulas and
//! reliability composes the same way pointwise in `t`.

use crate::error::{RbdError, Result};
use std::fmt;

/// Stochastic model of a basic component.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ComponentModel {
    /// Repairable component with exponential failure and repair times.
    Exponential {
        /// Mean time to failure.
        mttf: f64,
        /// Mean time to repair.
        mttr: f64,
    },
    /// Component described only by a fixed steady-state availability.
    /// `reliability(t)` treats it as the constant `availability` (an
    /// approximation; use `Exponential` when timing matters).
    FixedAvailability(f64),
}

/// A named basic component.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Component {
    /// Human-readable name (e.g. `"Operating System"`).
    pub name: String,
    /// Stochastic model.
    pub model: ComponentModel,
}

impl Component {
    /// Repairable exponential component.
    ///
    /// # Panics
    ///
    /// Panics if `mttf` or `mttr` are not finite and positive.
    pub fn exponential(name: impl Into<String>, mttf: f64, mttr: f64) -> Self {
        assert!(mttf.is_finite() && mttf > 0.0, "mttf must be positive, got {mttf}");
        assert!(mttr.is_finite() && mttr > 0.0, "mttr must be positive, got {mttr}");
        Component { name: name.into(), model: ComponentModel::Exponential { mttf, mttr } }
    }

    /// Component pinned to a fixed availability in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is outside `[0, 1]`.
    pub fn fixed(name: impl Into<String>, a: f64) -> Self {
        assert!((0.0..=1.0).contains(&a), "availability must be in [0,1], got {a}");
        Component { name: name.into(), model: ComponentModel::FixedAvailability(a) }
    }

    /// Steady-state availability.
    pub fn availability(&self) -> f64 {
        match self.model {
            ComponentModel::Exponential { mttf, mttr } => mttf / (mttf + mttr),
            ComponentModel::FixedAvailability(a) => a,
        }
    }

    /// Probability of surviving `[0, t]` with no repair.
    pub fn reliability(&self, t: f64) -> f64 {
        match self.model {
            ComponentModel::Exponential { mttf, .. } => (-t / mttf).exp(),
            ComponentModel::FixedAvailability(a) => a,
        }
    }

    /// Steady-state failure frequency (failures per unit time):
    /// `A / MTTF` for exponential components, `None` for fixed ones.
    pub fn failure_frequency(&self) -> Option<f64> {
        match self.model {
            ComponentModel::Exponential { mttf, mttr } => Some((mttf / (mttf + mttr)) / mttf),
            ComponentModel::FixedAvailability(_) => None,
        }
    }
}

/// A reliability block diagram.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Block {
    /// Basic component (a leaf of the diagram).
    Basic(Component),
    /// All sub-blocks required (logical AND).
    Series(Vec<Block>),
    /// At least one sub-block required (logical OR).
    Parallel(Vec<Block>),
    /// At least `k` of the sub-blocks required.
    KOfN {
        /// Required number of working sub-blocks.
        k: usize,
        /// The sub-blocks.
        blocks: Vec<Block>,
    },
    /// Classic five-element bridge: `a`,`b` top rail, `c`,`d` bottom rail,
    /// `e` the cross-link. Evaluated exactly by pivotal decomposition on `e`.
    Bridge {
        /// Top-left element.
        a: Box<Block>,
        /// Top-right element.
        b: Box<Block>,
        /// Bottom-left element.
        c: Box<Block>,
        /// Bottom-right element.
        d: Box<Block>,
        /// Cross-link element.
        e: Box<Block>,
    },
}

impl Block {
    /// Convenience constructor: a repairable exponential leaf.
    pub fn exponential(name: impl Into<String>, mttf: f64, mttr: f64) -> Self {
        Block::Basic(Component::exponential(name, mttf, mttr))
    }

    /// Convenience constructor: a fixed-availability leaf.
    pub fn fixed(name: impl Into<String>, a: f64) -> Self {
        Block::Basic(Component::fixed(name, a))
    }

    /// Series composition.
    pub fn series(blocks: impl IntoIterator<Item = Block>) -> Self {
        Block::Series(blocks.into_iter().collect())
    }

    /// Parallel composition.
    pub fn parallel(blocks: impl IntoIterator<Item = Block>) -> Self {
        Block::Parallel(blocks.into_iter().collect())
    }

    /// k-of-n composition.
    pub fn k_of_n(k: usize, blocks: impl IntoIterator<Item = Block>) -> Self {
        Block::KOfN { k, blocks: blocks.into_iter().collect() }
    }

    /// Validates structural well-formedness (non-empty compositions,
    /// `1 <= k <= n`).
    pub fn validate(&self) -> Result<()> {
        match self {
            Block::Basic(_) => Ok(()),
            Block::Series(v) | Block::Parallel(v) => {
                if v.is_empty() {
                    return Err(RbdError::EmptyComposition);
                }
                v.iter().try_for_each(Block::validate)
            }
            Block::KOfN { k, blocks } => {
                if blocks.is_empty() {
                    return Err(RbdError::EmptyComposition);
                }
                if *k == 0 || *k > blocks.len() {
                    return Err(RbdError::BadVotingThreshold { k: *k, n: blocks.len() });
                }
                blocks.iter().try_for_each(Block::validate)
            }
            Block::Bridge { a, b, c, d, e } => {
                for blk in [a, b, c, d, e] {
                    blk.validate()?;
                }
                Ok(())
            }
        }
    }

    /// Steady-state availability of the diagram.
    pub fn availability(&self) -> f64 {
        self.eval(&|c: &Component| c.availability())
    }

    /// Probability of surviving `[0, t]` with no repairs.
    pub fn reliability(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "time must be non-negative");
        self.eval(&|c: &Component| c.reliability(t))
    }

    /// Evaluates the structure with a per-leaf probability function — the
    /// common core of availability and reliability. Exposed for sensitivity
    /// computations in [`crate::fold()`].
    pub fn eval(&self, leaf: &impl Fn(&Component) -> f64) -> f64 {
        match self {
            Block::Basic(c) => leaf(c),
            Block::Series(v) => v.iter().map(|b| b.eval(leaf)).product(),
            Block::Parallel(v) => 1.0 - v.iter().map(|b| 1.0 - b.eval(leaf)).product::<f64>(),
            Block::KOfN { k, blocks } => {
                // DP over "number of working sub-blocks": poly multiplication.
                let mut dist = vec![1.0f64];
                for b in blocks {
                    let p = b.eval(leaf);
                    let mut next = vec![0.0; dist.len() + 1];
                    for (i, &di) in dist.iter().enumerate() {
                        next[i] += di * (1.0 - p);
                        next[i + 1] += di * p;
                    }
                    dist = next;
                }
                dist.iter().skip(*k).sum()
            }
            Block::Bridge { a, b, c, d, e } => {
                let (pa, pb, pc, pd, pe) =
                    (a.eval(leaf), b.eval(leaf), c.eval(leaf), d.eval(leaf), e.eval(leaf));
                // Pivot on the cross-link e:
                // e up: (a ∥ c) in series with (b ∥ d)
                let up = (1.0 - (1.0 - pa) * (1.0 - pc)) * (1.0 - (1.0 - pb) * (1.0 - pd));
                // e down: (a·b) ∥ (c·d)
                let down = 1.0 - (1.0 - pa * pb) * (1.0 - pc * pd);
                pe * up + (1.0 - pe) * down
            }
        }
    }

    /// Visits each leaf component in depth-first order.
    pub fn for_each_component<'a>(&'a self, f: &mut impl FnMut(&'a Component)) {
        match self {
            Block::Basic(c) => f(c),
            Block::Series(v) | Block::Parallel(v) => {
                v.iter().for_each(|b| b.for_each_component(f))
            }
            Block::KOfN { blocks, .. } => blocks.iter().for_each(|b| b.for_each_component(f)),
            Block::Bridge { a, b, c, d, e } => {
                for blk in [a, b, c, d, e] {
                    blk.for_each_component(f);
                }
            }
        }
    }

    /// Number of leaf components.
    pub fn num_components(&self) -> usize {
        let mut n = 0;
        self.for_each_component(&mut |_| n += 1);
        n
    }

    /// Evaluates the structure with per-leaf probabilities supplied by
    /// index (depth-first leaf order). Used for Birnbaum importance.
    pub fn eval_indexed(&self, probs: &[f64]) -> f64 {
        let mut idx = 0usize;
        self.eval_indexed_inner(probs, &mut idx)
    }

    fn eval_indexed_inner(&self, probs: &[f64], idx: &mut usize) -> f64 {
        match self {
            Block::Basic(_) => {
                let p = probs[*idx];
                *idx += 1;
                p
            }
            Block::Series(v) => {
                let mut prod = 1.0;
                for b in v {
                    prod *= b.eval_indexed_inner(probs, idx);
                }
                prod
            }
            Block::Parallel(v) => {
                let mut prod = 1.0;
                for b in v {
                    prod *= 1.0 - b.eval_indexed_inner(probs, idx);
                }
                1.0 - prod
            }
            Block::KOfN { k, blocks } => {
                let mut dist = vec![1.0f64];
                for b in blocks {
                    let p = b.eval_indexed_inner(probs, idx);
                    let mut next = vec![0.0; dist.len() + 1];
                    for (i, &di) in dist.iter().enumerate() {
                        next[i] += di * (1.0 - p);
                        next[i + 1] += di * p;
                    }
                    dist = next;
                }
                dist.iter().skip(*k).sum()
            }
            Block::Bridge { a, b, c, d, e } => {
                let pa = a.eval_indexed_inner(probs, idx);
                let pb = b.eval_indexed_inner(probs, idx);
                let pc = c.eval_indexed_inner(probs, idx);
                let pd = d.eval_indexed_inner(probs, idx);
                let pe = e.eval_indexed_inner(probs, idx);
                let up = (1.0 - (1.0 - pa) * (1.0 - pc)) * (1.0 - (1.0 - pb) * (1.0 - pd));
                let down = 1.0 - (1.0 - pa * pb) * (1.0 - pc * pd);
                pe * up + (1.0 - pe) * down
            }
        }
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Block::Basic(c) => write!(f, "{}", c.name),
            Block::Series(v) => {
                write!(f, "series(")?;
                for (i, b) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
            Block::Parallel(v) => {
                write!(f, "parallel(")?;
                for (i, b) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
            Block::KOfN { k, blocks } => {
                write!(f, "{k}-of-{}(", blocks.len())?;
                for (i, b) in blocks.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
            Block::Bridge { a, b, c, d, e } => {
                write!(f, "bridge({a}, {b}, {c}, {d}, {e})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_availability() {
        let c = Component::exponential("OS", 4000.0, 1.0);
        assert!((c.availability() - 4000.0 / 4001.0).abs() < 1e-12);
        assert!((c.reliability(4000.0) - (-1.0f64).exp()).abs() < 1e-12);
        let f = Component::fixed("X", 0.99);
        assert_eq!(f.availability(), 0.99);
        assert_eq!(f.failure_frequency(), None);
    }

    #[test]
    fn series_availability_is_product() {
        let b = Block::series([
            Block::exponential("OS", 4000.0, 1.0),
            Block::exponential("PM", 1000.0, 12.0),
        ]);
        let expect = (4000.0 / 4001.0) * (1000.0 / 1012.0);
        assert!((b.availability() - expect).abs() < 1e-12);
    }

    #[test]
    fn parallel_availability() {
        let b = Block::parallel([Block::fixed("A", 0.9), Block::fixed("B", 0.8)]);
        assert!((b.availability() - (1.0 - 0.1 * 0.2)).abs() < 1e-12);
    }

    #[test]
    fn k_of_n_matches_binomial() {
        // 2-of-3 identical components with availability p.
        let p: f64 = 0.9;
        let b = Block::k_of_n(2, (0..3).map(|i| Block::fixed(format!("C{i}"), p)));
        let expect = 3.0 * p * p * (1.0 - p) + p * p * p;
        assert!((b.availability() - expect).abs() < 1e-12);
    }

    #[test]
    fn k_of_n_non_identical() {
        let (p1, p2, p3) = (0.9, 0.8, 0.7);
        let b = Block::k_of_n(
            2,
            [Block::fixed("a", p1), Block::fixed("b", p2), Block::fixed("c", p3)],
        );
        let expect =
            p1 * p2 * (1.0 - p3) + p1 * (1.0 - p2) * p3 + (1.0 - p1) * p2 * p3 + p1 * p2 * p3;
        assert!((b.availability() - expect).abs() < 1e-12);
    }

    #[test]
    fn one_of_n_equals_parallel_and_n_of_n_equals_series() {
        let blocks = vec![Block::fixed("a", 0.9), Block::fixed("b", 0.85)];
        let par = Block::parallel(blocks.clone());
        let ser = Block::series(blocks.clone());
        let one = Block::k_of_n(1, blocks.clone());
        let two = Block::k_of_n(2, blocks);
        assert!((par.availability() - one.availability()).abs() < 1e-12);
        assert!((ser.availability() - two.availability()).abs() < 1e-12);
    }

    #[test]
    fn bridge_closed_form() {
        // All components identical with probability p:
        // R = 2p^2 + 2p^3 - 5p^4 + 2p^5.
        let p: f64 = 0.9;
        let mk = |n: &str| Box::new(Block::fixed(n, p));
        let b = Block::Bridge { a: mk("a"), b: mk("b"), c: mk("c"), d: mk("d"), e: mk("e") };
        let expect = 2.0 * p.powi(2) + 2.0 * p.powi(3) - 5.0 * p.powi(4) + 2.0 * p.powi(5);
        assert!((b.availability() - expect).abs() < 1e-12, "{}", b.availability());
    }

    #[test]
    fn reliability_composes_pointwise() {
        let b = Block::parallel([
            Block::exponential("A", 1.0, 1.0),
            Block::exponential("B", 1.0, 1.0),
        ]);
        let t = 0.7;
        let r = 1.0 - (1.0 - (-t / 1.0f64).exp()).powi(2);
        assert!((b.reliability(t) - r).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_structures() {
        assert!(matches!(Block::Series(vec![]).validate(), Err(RbdError::EmptyComposition)));
        assert!(matches!(
            Block::k_of_n(5, [Block::fixed("a", 0.5)]).validate(),
            Err(RbdError::BadVotingThreshold { k: 5, n: 1 })
        ));
        assert!(Block::fixed("x", 0.5).validate().is_ok());
    }

    #[test]
    fn eval_indexed_matches_eval() {
        let b = Block::series([
            Block::parallel([Block::fixed("a", 0.9), Block::fixed("b", 0.8)]),
            Block::fixed("c", 0.95),
        ]);
        let probs = vec![0.9, 0.8, 0.95];
        assert!((b.eval_indexed(&probs) - b.availability()).abs() < 1e-12);
        assert_eq!(b.num_components(), 3);
    }

    #[test]
    fn display_is_readable() {
        let b = Block::series([
            Block::exponential("OS", 4000.0, 1.0),
            Block::exponential("PM", 1000.0, 12.0),
        ]);
        assert_eq!(b.to_string(), "series(OS, PM)");
    }

    #[test]
    #[should_panic(expected = "mttf must be positive")]
    fn bad_mttf_panics() {
        Component::exponential("X", -1.0, 1.0);
    }
}
