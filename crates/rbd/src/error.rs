//! Error type for diagram construction and folding.

use std::fmt;

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, RbdError>;

/// Errors produced by RBD validation and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum RbdError {
    /// A series/parallel/k-of-n node has no children.
    EmptyComposition,
    /// `k` outside `1..=n` in a k-of-n node.
    BadVotingThreshold {
        /// Requested threshold.
        k: usize,
        /// Number of sub-blocks.
        n: usize,
    },
    /// Folding requires every leaf to carry MTTF/MTTR, but a
    /// fixed-availability leaf was found.
    FixedComponentInFold {
        /// Name of the offending leaf.
        name: String,
    },
    /// The system failure frequency is zero, so no equivalent MTTF exists.
    DegenerateFold,
}

impl fmt::Display for RbdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbdError::EmptyComposition => write!(f, "composition has no sub-blocks"),
            RbdError::BadVotingThreshold { k, n } => {
                write!(f, "k-of-n threshold {k} outside 1..={n}")
            }
            RbdError::FixedComponentInFold { name } => write!(
                f,
                "component {name:?} has fixed availability and no failure rate; folding undefined"
            ),
            RbdError::DegenerateFold => {
                write!(f, "system never fails; equivalent MTTF undefined")
            }
        }
    }
}

impl std::error::Error for RbdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(RbdError::EmptyComposition.to_string().contains("sub-blocks"));
        assert!(RbdError::BadVotingThreshold { k: 4, n: 2 }.to_string().contains('4'));
        assert!(RbdError::FixedComponentInFold { name: "X".into() }.to_string().contains("X"));
        assert!(!RbdError::DegenerateFold.to_string().is_empty());
    }
}
