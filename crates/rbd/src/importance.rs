//! Component importance measures.
//!
//! Given a system diagram, importance measures rank components by how much
//! they matter to system availability — the input to "which component
//! should we upgrade?" decisions (compare the paper's related work \[13\],
//! which found that replacing machines with more reliable ones barely moved
//! Eucalyptus availability):
//!
//! * **Birnbaum** `I_B = ∂A_sys/∂A_i = A(i up) − A(i down)` — structural
//!   leverage.
//! * **Fussell–Vesely** `I_FV = 1 − U(A_i=1)/U` — fraction of system
//!   unavailability involving component `i`.
//! * **RAW** (risk achievement worth) `U(A_i=0)/U` — how much worse things
//!   get if the component is lost for good.
//! * **RRW** (risk reduction worth) `U/U(A_i=1)` — how much better things
//!   get if the component were perfect.

use crate::block::Block;

/// Importance measures for one component.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportanceRow {
    /// Component name.
    pub name: String,
    /// Steady-state availability of the component itself.
    pub availability: f64,
    /// Birnbaum importance.
    pub birnbaum: f64,
    /// Fussell–Vesely importance.
    pub fussell_vesely: f64,
    /// Risk achievement worth.
    pub raw: f64,
    /// Risk reduction worth (∞ if a perfect component removes all risk).
    pub rrw: f64,
}

/// Computes all importance measures for every leaf, sorted by descending
/// Birnbaum importance.
pub fn importance_report(block: &Block) -> Vec<ImportanceRow> {
    let n = block.num_components();
    let mut probs = Vec::with_capacity(n);
    let mut names = Vec::with_capacity(n);
    block.for_each_component(&mut |c| {
        probs.push(c.availability());
        names.push(c.name.clone());
    });
    let base_a = block.eval_indexed(&probs);
    let base_u = 1.0 - base_a;
    let mut scratch = probs.clone();
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        scratch[i] = 1.0;
        let a_up = block.eval_indexed(&scratch);
        scratch[i] = 0.0;
        let a_down = block.eval_indexed(&scratch);
        scratch[i] = probs[i];
        let u_up = 1.0 - a_up; // unavailability with a perfect component i
        let u_down = 1.0 - a_down; // with component i failed forever
        rows.push(ImportanceRow {
            name: names[i].clone(),
            availability: probs[i],
            birnbaum: a_up - a_down,
            fussell_vesely: if base_u > 0.0 { 1.0 - u_up / base_u } else { 0.0 },
            raw: if base_u > 0.0 { u_down / base_u } else { f64::INFINITY },
            rrw: if u_up > 0.0 { base_u / u_up } else { f64::INFINITY },
        });
    }
    rows.sort_by(|a, b| b.birnbaum.total_cmp(&a.birnbaum));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;

    #[test]
    fn series_pair_importance() {
        // series(A=0.9, B=0.99): A is the weak link.
        let b = Block::series([Block::fixed("A", 0.9), Block::fixed("B", 0.99)]);
        let rows = importance_report(&b);
        // Birnbaum of A = availability of B and vice versa.
        let a = rows.iter().find(|r| r.name == "A").unwrap();
        let b_row = rows.iter().find(|r| r.name == "B").unwrap();
        assert!((a.birnbaum - 0.99).abs() < 1e-12);
        assert!((b_row.birnbaum - 0.9).abs() < 1e-12);
        // FV: U = 1-0.891=0.109. With A perfect, U=0.01 -> FV_A ≈ 0.908.
        assert!((a.fussell_vesely - (1.0 - 0.01 / 0.109)).abs() < 1e-9);
        // The weak component also tops the FV/RRW ranking.
        assert!(a.fussell_vesely > b_row.fussell_vesely);
        assert!(a.rrw > b_row.rrw);
        // Sorted by Birnbaum: A first.
        assert_eq!(rows[0].name, "A");
    }

    #[test]
    fn parallel_pair_importance() {
        // parallel(A=0.9, B=0.8): Birnbaum_A = 1 - 0.8 = 0.2.
        let b = Block::parallel([Block::fixed("A", 0.9), Block::fixed("B", 0.8)]);
        let rows = importance_report(&b);
        let a = rows.iter().find(|r| r.name == "A").unwrap();
        assert!((a.birnbaum - 0.2).abs() < 1e-12);
        // Removing A entirely: U = 1-0.8 = 0.2; base U = 0.02 -> RAW = 10.
        assert!((a.raw - 10.0).abs() < 1e-9);
        // Perfect A removes all risk in a parallel pair -> RRW infinite.
        assert!(a.rrw.is_infinite());
        assert!((a.fussell_vesely - 1.0).abs() < 1e-12);
    }

    #[test]
    fn redundant_component_has_lower_birnbaum_than_series_one() {
        // series(A, parallel(B, C)): A is structurally critical.
        let b = Block::series([
            Block::fixed("A", 0.95),
            Block::parallel([Block::fixed("B", 0.95), Block::fixed("C", 0.95)]),
        ]);
        let rows = importance_report(&b);
        assert_eq!(rows[0].name, "A");
        let a = &rows[0];
        let b_row = rows.iter().find(|r| r.name == "B").unwrap();
        assert!(a.birnbaum > 3.0 * b_row.birnbaum);
    }

    #[test]
    fn paper_nas_net_ranking() {
        // Switch is by far the least reliable of the three network parts.
        let b = Block::series([
            Block::exponential("Switch", 430_000.0, 4.0),
            Block::exponential("Router", 14_077_473.0, 4.0),
            Block::exponential("NAS", 20_000_000.0, 2.0),
        ]);
        let rows = importance_report(&b);
        let fv: Vec<(&str, f64)> =
            rows.iter().map(|r| (r.name.as_str(), r.fussell_vesely)).collect();
        let switch = fv.iter().find(|(n, _)| *n == "Switch").unwrap().1;
        let router = fv.iter().find(|(n, _)| *n == "Router").unwrap().1;
        assert!(switch > 0.7, "switch dominates network unavailability: {fv:?}");
        assert!(switch > router);
    }

    #[test]
    fn perfect_system_degenerates_gracefully() {
        let b = Block::series([Block::fixed("A", 1.0), Block::fixed("B", 1.0)]);
        let rows = importance_report(&b);
        for r in rows {
            assert_eq!(r.fussell_vesely, 0.0);
            assert!(r.raw.is_infinite() || r.raw >= 0.0);
        }
    }
}
