//! # dtc-rbd — reliability block diagrams
//!
//! The combinatorial half of the DSN'13 paper's hierarchical modeling
//! approach: series / parallel / k-of-n / bridge diagrams over repairable
//! components, with
//!
//! * steady-state availability and time-dependent reliability,
//! * **folding** a diagram into an equivalent (MTTF, MTTR) pair via the
//!   frequency–duration method — the step that feeds the SPN layer's
//!   `SIMPLE_COMPONENT`s (paper Fig. 5),
//! * non-repairable MTTF by numeric integration of `R(t)`,
//! * minimal path/cut sets and Birnbaum importance.
//!
//! # Example: the paper's OS+PM series (Fig. 5)
//!
//! ```
//! use dtc_rbd::{Block, fold};
//!
//! let ospm = Block::series([
//!     Block::exponential("OS", 4000.0, 1.0),
//!     Block::exponential("PM", 1000.0, 12.0),
//! ]);
//! let folded = fold(&ospm)?;
//! // The folded pair reproduces the series availability exactly.
//! let a = folded.mttf / (folded.mttf + folded.mttr);
//! assert!((a - ospm.availability()).abs() < 1e-12);
//! # Ok::<(), dtc_rbd::RbdError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod error;
pub mod fold;
pub mod importance;
pub mod quad;
pub mod sets;

pub use block::{Block, Component, ComponentModel};
pub use error::{RbdError, Result};
pub use fold::{birnbaum_importance, fold, mttf_non_repairable, Folded};
pub use importance::{importance_report, ImportanceRow};
pub use sets::{leaf_names, minimal_cut_sets, minimal_path_sets, LeafSet};
