//! Numeric integration of reliability curves.
//!
//! MTTF of a non-repairable system is `∫₀^∞ R(t) dt`. For pure series of
//! exponential components this has a closed form, but parallel/k-of-n
//! structures do not, so we integrate numerically: adaptive Simpson panels
//! over `[0, T]` with `T` doubled until the integrand has decayed.

/// Adaptive Simpson quadrature of `f` over `[a, b]` to absolute tolerance
/// `tol`.
///
/// # Panics
///
/// Panics if `a > b` or `tol <= 0`.
pub fn adaptive_simpson(f: &impl Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> f64 {
    assert!(a <= b, "invalid interval [{a}, {b}]");
    assert!(tol > 0.0, "tolerance must be positive");
    if a == b {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    simpson_rec(f, a, b, fa, fm, fb, simpson(a, b, fa, fm, fb), tol, 48)
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn simpson_rec(
    f: &impl Fn(f64) -> f64,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        simpson_rec(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1)
            + simpson_rec(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1)
    }
}

/// Integrates a monotonically decaying non-negative function (a reliability
/// curve) over `[0, ∞)` by expanding the horizon until both the function
/// value and the last panel's contribution are negligible.
pub fn integrate_decaying(f: &impl Fn(f64) -> f64, initial_horizon: f64, tol: f64) -> f64 {
    assert!(initial_horizon > 0.0, "horizon must be positive");
    let mut total = 0.0;
    let mut lo = 0.0;
    let mut hi = initial_horizon;
    for _ in 0..128 {
        let panel = adaptive_simpson(f, lo, hi, tol * 0.01);
        total += panel;
        let tail_value = f(hi);
        if tail_value * hi < tol * 0.1 && panel < tol.max(total * 1e-12) {
            break;
        }
        lo = hi;
        hi *= 2.0;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_polynomial_exactly() {
        // Simpson is exact for cubics.
        let f = |x: f64| 3.0 * x * x;
        let v = adaptive_simpson(&f, 0.0, 2.0, 1e-12);
        assert!((v - 8.0).abs() < 1e-10);
    }

    #[test]
    fn integrates_exponential() {
        let f = |x: f64| (-x).exp();
        let v = adaptive_simpson(&f, 0.0, 40.0, 1e-12);
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn decaying_integral_of_exponential_is_mean() {
        for lambda in [0.1, 1.0, 10.0] {
            let f = move |x: f64| (-lambda * x).exp();
            let v = integrate_decaying(&f, 1.0, 1e-10);
            assert!((v - 1.0 / lambda).abs() < 1e-6 / lambda, "lambda={lambda}: {v}");
        }
    }

    #[test]
    fn decaying_integral_of_parallel_pair() {
        // R(t) = 2e^{-t} - e^{-2t}; integral = 2 - 1/2 = 1.5.
        let f = |x: f64| 2.0 * (-x).exp() - (-2.0 * x).exp();
        let v = integrate_decaying(&f, 1.0, 1e-10);
        assert!((v - 1.5).abs() < 1e-7);
    }

    #[test]
    fn zero_width_interval() {
        assert_eq!(adaptive_simpson(&|x: f64| x, 1.0, 1.0, 1e-9), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn reversed_interval_panics() {
        adaptive_simpson(&|x: f64| x, 1.0, 0.0, 1e-9);
    }
}
