//! Minimal path and cut sets of a block diagram.
//!
//! Path sets are minimal sets of components whose joint functioning makes
//! the system function; cut sets are minimal sets whose joint failure brings
//! the system down. They are computed symbolically by structural recursion
//! (no 2ⁿ enumeration) and minimized by absorption.

use crate::block::Block;
use std::collections::BTreeSet;

/// A set of leaf indices (depth-first leaf order).
pub type LeafSet = BTreeSet<usize>;

/// Minimal path sets of the diagram, as sets of leaf indices.
pub fn minimal_path_sets(block: &Block) -> Vec<LeafSet> {
    let mut idx = 0usize;
    let sets = paths(block, &mut idx);
    minimize(sets)
}

/// Minimal cut sets of the diagram, as sets of leaf indices.
pub fn minimal_cut_sets(block: &Block) -> Vec<LeafSet> {
    let mut idx = 0usize;
    let sets = cuts(block, &mut idx);
    minimize(sets)
}

/// Names of the leaves in depth-first order (parallel to the indices used
/// in the path/cut sets).
pub fn leaf_names(block: &Block) -> Vec<String> {
    let mut names = Vec::new();
    block.for_each_component(&mut |c| names.push(c.name.clone()));
    names
}

fn paths(block: &Block, idx: &mut usize) -> Vec<LeafSet> {
    match block {
        Block::Basic(_) => {
            let s: LeafSet = [*idx].into_iter().collect();
            *idx += 1;
            vec![s]
        }
        Block::Series(v) => {
            let mut acc: Vec<LeafSet> = vec![LeafSet::new()];
            for b in v {
                let sub = paths(b, idx);
                acc = cross_union(&acc, &sub);
            }
            acc
        }
        Block::Parallel(v) => {
            let mut acc = Vec::new();
            for b in v {
                acc.extend(paths(b, idx));
            }
            acc
        }
        Block::KOfN { k, blocks } => {
            let subs: Vec<Vec<LeafSet>> = blocks.iter().map(|b| paths(b, idx)).collect();
            k_of_n_combine(*k, &subs)
        }
        Block::Bridge { a, b, c, d, e } => {
            let pa = paths(a, idx);
            let pb = paths(b, idx);
            let pc = paths(c, idx);
            let pd = paths(d, idx);
            let pe = paths(e, idx);
            // Bridge path sets: {a,b}, {c,d}, {a,e,d}, {c,e,b}.
            let mut acc = Vec::new();
            acc.extend(cross_union(&pa, &pb));
            acc.extend(cross_union(&pc, &pd));
            acc.extend(cross_union(&cross_union(&pa, &pe), &pd));
            acc.extend(cross_union(&cross_union(&pc, &pe), &pb));
            acc
        }
    }
}

fn cuts(block: &Block, idx: &mut usize) -> Vec<LeafSet> {
    match block {
        Block::Basic(_) => {
            let s: LeafSet = [*idx].into_iter().collect();
            *idx += 1;
            vec![s]
        }
        // Duality: cuts(series) behaves like paths(parallel) and vice versa.
        Block::Series(v) => {
            let mut acc = Vec::new();
            for b in v {
                acc.extend(cuts(b, idx));
            }
            acc
        }
        Block::Parallel(v) => {
            let mut acc: Vec<LeafSet> = vec![LeafSet::new()];
            for b in v {
                let sub = cuts(b, idx);
                acc = cross_union(&acc, &sub);
            }
            acc
        }
        Block::KOfN { k, blocks } => {
            // System fails when n-k+1 sub-blocks fail.
            let need = blocks.len() - *k + 1;
            let subs: Vec<Vec<LeafSet>> = blocks.iter().map(|b| cuts(b, idx)).collect();
            k_of_n_combine(need, &subs)
        }
        Block::Bridge { a, b, c, d, e } => {
            let ca = cuts(a, idx);
            let cb = cuts(b, idx);
            let cc = cuts(c, idx);
            let cd = cuts(d, idx);
            let ce = cuts(e, idx);
            // Bridge cut sets: {a,c}, {b,d}, {a,e,d}, {c,e,b}.
            let mut acc = Vec::new();
            acc.extend(cross_union(&ca, &cc));
            acc.extend(cross_union(&cb, &cd));
            acc.extend(cross_union(&cross_union(&ca, &ce), &cd));
            acc.extend(cross_union(&cross_union(&cc, &ce), &cb));
            acc
        }
    }
}

/// Every union of one set from `a` with one set from `b`.
fn cross_union(a: &[LeafSet], b: &[LeafSet]) -> Vec<LeafSet> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            let mut u = x.clone();
            u.extend(y.iter().copied());
            out.push(u);
        }
    }
    out
}

/// All ways of choosing `k` of the sub-block set-lists and combining them.
fn k_of_n_combine(k: usize, subs: &[Vec<LeafSet>]) -> Vec<LeafSet> {
    let n = subs.len();
    let mut out = Vec::new();
    let mut choice: Vec<usize> = (0..k).collect();
    loop {
        let mut acc: Vec<LeafSet> = vec![LeafSet::new()];
        for &i in &choice {
            acc = cross_union(&acc, &subs[i]);
        }
        out.extend(acc);
        // Next k-combination of {0..n-1}.
        let mut i = k;
        loop {
            if i == 0 {
                return minimize(out);
            }
            i -= 1;
            if choice[i] != i + n - k {
                choice[i] += 1;
                for j in i + 1..k {
                    choice[j] = choice[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Removes supersets (absorption law) and duplicates.
fn minimize(mut sets: Vec<LeafSet>) -> Vec<LeafSet> {
    sets.sort_by_key(|s| s.len());
    let mut out: Vec<LeafSet> = Vec::new();
    for s in sets {
        if !out.iter().any(|kept| kept.is_subset(&s)) {
            out.push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;

    fn named(n: usize) -> Vec<Block> {
        (0..n).map(|i| Block::fixed(format!("C{i}"), 0.9)).collect()
    }

    #[test]
    fn series_path_is_all_cuts_are_each() {
        let b = Block::series(named(3));
        let p = minimal_path_sets(&b);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].len(), 3);
        let c = minimal_cut_sets(&b);
        assert_eq!(c.len(), 3);
        assert!(c.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn parallel_duality() {
        let b = Block::parallel(named(3));
        let p = minimal_path_sets(&b);
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|s| s.len() == 1));
        let c = minimal_cut_sets(&b);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].len(), 3);
    }

    #[test]
    fn two_of_three_sets() {
        let b = Block::k_of_n(2, named(3));
        let p = minimal_path_sets(&b);
        assert_eq!(p.len(), 3, "{p:?}"); // each pair
        assert!(p.iter().all(|s| s.len() == 2));
        let c = minimal_cut_sets(&b);
        assert_eq!(c.len(), 3); // any two failures
        assert!(c.iter().all(|s| s.len() == 2));
    }

    #[test]
    fn bridge_sets() {
        let mk = |i: usize| Box::new(Block::fixed(format!("C{i}"), 0.9));
        let b = Block::Bridge { a: mk(0), b: mk(1), c: mk(2), d: mk(3), e: mk(4) };
        let p = minimal_path_sets(&b);
        assert_eq!(p.len(), 4, "{p:?}");
        let sizes: Vec<usize> = p.iter().map(|s| s.len()).collect();
        assert_eq!(sizes.iter().filter(|&&s| s == 2).count(), 2);
        assert_eq!(sizes.iter().filter(|&&s| s == 3).count(), 2);
        let c = minimal_cut_sets(&b);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn nested_structure() {
        // series(A, parallel(B, C)): paths {A,B}, {A,C}; cuts {A}, {B,C}.
        let b = Block::series([
            Block::fixed("A", 0.9),
            Block::parallel([Block::fixed("B", 0.9), Block::fixed("C", 0.9)]),
        ]);
        let p = minimal_path_sets(&b);
        assert_eq!(p.len(), 2);
        let c = minimal_cut_sets(&b);
        assert_eq!(c.len(), 2);
        let names = leaf_names(&b);
        assert_eq!(names, vec!["A", "B", "C"]);
        // The singleton cut must be {A} (index 0).
        assert!(c.iter().any(|s| s.len() == 1 && s.contains(&0)));
    }

    #[test]
    fn inclusion_exclusion_on_paths_matches_availability() {
        // Validate path sets by computing availability via inclusion-
        // exclusion over minimal path sets for a small diagram.
        let b = Block::series([
            Block::fixed("A", 0.9),
            Block::parallel([Block::fixed("B", 0.8), Block::fixed("C", 0.7)]),
        ]);
        let probs = [0.9, 0.8, 0.7];
        let paths = minimal_path_sets(&b);
        let mut total = 0.0;
        for mask in 1u32..(1 << paths.len()) {
            let mut union: LeafSet = LeafSet::new();
            let bits = mask.count_ones();
            for (i, s) in paths.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    union.extend(s.iter().copied());
                }
            }
            let p: f64 = union.iter().map(|&i| probs[i]).product();
            total += if bits % 2 == 1 { p } else { -p };
        }
        assert!((total - b.availability()).abs() < 1e-12);
    }
}
