//! Hierarchical folding: RBD → equivalent (MTTF, MTTR) pair.
//!
//! This is the paper's Section IV-D step (Figure 5): the series RBD of
//! operating system + physical machine is folded into a single equivalent
//! repairable component whose MTTF/MTTR parameterize the `OSPM`
//! SIMPLE_COMPONENT of the SPN layer.
//!
//! The folding uses the exact frequency–duration method: with independent
//! repairable components, the steady-state *system failure frequency* is
//!
//! `ω = Σᵢ Birnbaum(i) · ωᵢ`,
//!
//! where `Birnbaum(i) = A(·|i up) − A(·|i down)` and `ωᵢ = Aᵢ/MTTFᵢ` is the
//! component failure frequency. The equivalent mean up/down durations are
//! then `MTTF = A/ω` and `MTTR = (1−A)/ω`. For a pure series of exponential
//! components this reduces to the textbook `λ = Σ λᵢ`, `MTTR` from
//! `A = MTTF/(MTTF+MTTR)` — the formulas dependability texts (Ebeling) give
//! for hierarchical composition.

use crate::block::{Block, Component, ComponentModel};
use crate::error::{RbdError, Result};
use crate::quad::integrate_decaying;

/// The equivalent repairable component obtained by folding a diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Folded {
    /// Steady-state availability of the diagram.
    pub availability: f64,
    /// Equivalent mean time to failure (mean up duration).
    pub mttf: f64,
    /// Equivalent mean time to repair (mean down duration).
    pub mttr: f64,
    /// System failure frequency (failures per unit time).
    pub failure_frequency: f64,
}

/// Birnbaum importance of each leaf component (depth-first leaf order):
/// `∂A_sys/∂A_i = A(i up) − A(i down)`.
pub fn birnbaum_importance(block: &Block) -> Vec<f64> {
    let n = block.num_components();
    let mut probs = Vec::with_capacity(n);
    block.for_each_component(&mut |c| probs.push(c.availability()));
    let mut out = Vec::with_capacity(n);
    let mut scratch = probs.clone();
    for i in 0..n {
        scratch[i] = 1.0;
        let up = block.eval_indexed(&scratch);
        scratch[i] = 0.0;
        let down = block.eval_indexed(&scratch);
        scratch[i] = probs[i];
        out.push(up - down);
    }
    out
}

/// Folds a diagram of repairable components into an equivalent
/// (availability, MTTF, MTTR) triple by the frequency–duration method.
///
/// # Errors
///
/// * Structural errors from [`Block::validate`].
/// * [`RbdError::FixedComponentInFold`] if any leaf is a
///   [`ComponentModel::FixedAvailability`] — such leaves have no failure
///   frequency, so no equivalent MTTF exists.
/// * [`RbdError::DegenerateFold`] if the system never fails (frequency 0).
pub fn fold(block: &Block) -> Result<Folded> {
    block.validate()?;
    let mut fixed_leaf: Option<String> = None;
    block.for_each_component(&mut |c: &Component| {
        if matches!(c.model, ComponentModel::FixedAvailability(_)) && fixed_leaf.is_none() {
            fixed_leaf = Some(c.name.clone());
        }
    });
    if let Some(name) = fixed_leaf {
        return Err(RbdError::FixedComponentInFold { name });
    }
    let availability = block.availability();
    let importances = birnbaum_importance(block);
    let mut freqs = Vec::with_capacity(importances.len());
    block.for_each_component(&mut |c| {
        freqs.push(c.failure_frequency().expect("checked exponential above"));
    });
    let omega: f64 = importances.iter().zip(&freqs).map(|(b, w)| b * w).sum();
    if omega <= 0.0 {
        return Err(RbdError::DegenerateFold);
    }
    Ok(Folded {
        availability,
        mttf: availability / omega,
        mttr: (1.0 - availability) / omega,
        failure_frequency: omega,
    })
}

/// Mean time to first failure of the diagram with **no repair**:
/// `∫₀^∞ R(t) dt`, integrated numerically (closed form used for pure
/// series).
///
/// # Errors
///
/// Same structural errors as [`fold`]; fixed-availability leaves are
/// rejected because they have no reliability curve.
pub fn mttf_non_repairable(block: &Block) -> Result<f64> {
    block.validate()?;
    let mut fixed_leaf: Option<String> = None;
    let mut rates: Vec<f64> = Vec::new();
    let mut pure_series = true;
    fn is_series_of_basics(b: &Block, rates: &mut Vec<f64>, ok: &mut bool) {
        match b {
            Block::Basic(c) => match c.model {
                ComponentModel::Exponential { mttf, .. } => rates.push(1.0 / mttf),
                ComponentModel::FixedAvailability(_) => *ok = false,
            },
            Block::Series(v) => v.iter().for_each(|b| is_series_of_basics(b, rates, ok)),
            _ => *ok = false,
        }
    }
    is_series_of_basics(block, &mut rates, &mut pure_series);
    block.for_each_component(&mut |c| {
        if matches!(c.model, ComponentModel::FixedAvailability(_)) && fixed_leaf.is_none() {
            fixed_leaf = Some(c.name.clone());
        }
    });
    if let Some(name) = fixed_leaf {
        return Err(RbdError::FixedComponentInFold { name });
    }
    if pure_series {
        // Series of exponentials: MTTF = 1/Σλ exactly.
        return Ok(1.0 / rates.iter().sum::<f64>());
    }
    // Numeric integration; pick the largest component MTTF as initial scale.
    let mut horizon: f64 = 0.0;
    block.for_each_component(&mut |c| {
        if let ComponentModel::Exponential { mttf, .. } = c.model {
            horizon = horizon.max(mttf);
        }
    });
    Ok(integrate_decaying(&|t| block.reliability(t), horizon.max(1.0), 1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_fold_matches_textbook() {
        // The paper's OSPM: OS (4000h, 1h) in series with PM (1000h, 12h).
        let b = Block::series([
            Block::exponential("OS", 4000.0, 1.0),
            Block::exponential("PM", 1000.0, 12.0),
        ]);
        let f = fold(&b).unwrap();
        let lambda = 1.0 / 4000.0 + 1.0 / 1000.0;
        let a = (4000.0 / 4001.0) * (1000.0 / 1012.0);
        assert!((f.availability - a).abs() < 1e-12);
        // For a series of exponentials the frequency-duration fold gives
        // MTTF = A/ω where ω = Σ (Birnbaum_i · A_i λ_i); sanity: it is close
        // to (but slightly below) the no-repair 1/Σλ.
        let up_approx = 1.0 / lambda;
        assert!((f.mttf - up_approx).abs() / up_approx < 0.02, "{} vs {up_approx}", f.mttf);
        // Availability must be reproduced by the folded pair.
        assert!((f.mttf / (f.mttf + f.mttr) - a).abs() < 1e-12);
    }

    #[test]
    fn fold_availability_consistency_parallel() {
        let b = Block::parallel([
            Block::exponential("A", 100.0, 10.0),
            Block::exponential("B", 200.0, 5.0),
        ]);
        let f = fold(&b).unwrap();
        assert!((f.mttf / (f.mttf + f.mttr) - b.availability()).abs() < 1e-12);
        assert!(f.mttf > 100.0, "parallel MTTF should exceed single: {}", f.mttf);
    }

    #[test]
    fn two_identical_parallel_fold_closed_form() {
        // Identical repairable pair (λ, μ): known results
        // ω_sys = 2λ²μ/( (λ+μ)² ) ... derive via Birnbaum directly instead:
        // A = 1-(1-a)², Birnbaum = 1-a each, ω = 2(1-a)·aλ.
        let (mttf, mttr) = (10.0, 2.0);
        let a = mttf / (mttf + mttr);
        let lam = 1.0 / mttf;
        let b = Block::parallel([
            Block::exponential("A", mttf, mttr),
            Block::exponential("B", mttf, mttr),
        ]);
        let f = fold(&b).unwrap();
        let omega = 2.0 * (1.0 - a) * a * lam;
        assert!((f.failure_frequency - omega).abs() < 1e-12);
        let avail = 1.0 - (1.0 - a) * (1.0 - a);
        assert!((f.mttf - avail / omega).abs() < 1e-9);
    }

    #[test]
    fn birnbaum_for_series_pair() {
        let b = Block::series([Block::fixed("a", 0.9), Block::fixed("b", 0.8)]);
        let imp = birnbaum_importance(&b);
        assert!((imp[0] - 0.8).abs() < 1e-12);
        assert!((imp[1] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn fixed_leaves_rejected_by_fold() {
        let b = Block::series([Block::fixed("a", 0.9), Block::exponential("b", 1.0, 1.0)]);
        assert!(matches!(fold(&b), Err(RbdError::FixedComponentInFold { .. })));
    }

    #[test]
    fn non_repairable_series_closed_form() {
        let b = Block::series([
            Block::exponential("A", 100.0, 1.0),
            Block::exponential("B", 50.0, 1.0),
        ]);
        let mttf = mttf_non_repairable(&b).unwrap();
        assert!((mttf - 1.0 / (0.01 + 0.02)).abs() < 1e-9);
    }

    #[test]
    fn non_repairable_parallel_harmonic() {
        // Two identical exponential(λ) in parallel: MTTF = 1.5/λ.
        let b = Block::parallel([
            Block::exponential("A", 100.0, 1.0),
            Block::exponential("B", 100.0, 1.0),
        ]);
        let mttf = mttf_non_repairable(&b).unwrap();
        assert!((mttf - 150.0).abs() < 1e-3, "{mttf}");
    }

    #[test]
    fn non_repairable_two_of_three() {
        // 2-of-3 identical: MTTF = (1/3 + 1/2)/λ = 5/(6λ).
        let b =
            Block::k_of_n(2, (0..3).map(|i| Block::exponential(format!("C{i}"), 10.0, 1.0)));
        let mttf = mttf_non_repairable(&b).unwrap();
        assert!((mttf - 10.0 * 5.0 / 6.0).abs() < 1e-3, "{mttf}");
    }

    #[test]
    fn paper_nas_net_fold() {
        // Switch 430000h/4h, Router 14077473h/4h, NAS 20000000h/2h in series.
        let b = Block::series([
            Block::exponential("Switch", 430_000.0, 4.0),
            Block::exponential("Router", 14_077_473.0, 4.0),
            Block::exponential("NAS", 20_000_000.0, 2.0),
        ]);
        let f = fold(&b).unwrap();
        assert!(f.availability > 0.99998, "{}", f.availability);
        assert!(f.mttr < 4.0 && f.mttr > 2.0, "weighted repair: {}", f.mttr);
    }
}
