//! Wide-area network model: distance → RTT → achievable throughput → mean
//! transfer time (MTT).
//!
//! The paper estimates MTT with the SLAC/PingER relation (\[18\] in the paper),
//! which associates a network-quality constant α ∈ (0, 1] with the achievable
//! fraction of the loss-bounded TCP throughput
//!
//! `T = α · MSS / (RTT · √p)`   (the Mathis bound scaled by α),
//!
//! where `p` is the packet-loss probability. RTT is modeled as fiber
//! propagation over an inflated route (real paths are not great circles)
//! plus a fixed equipment latency; loss grows mildly with distance.
//!
//! The absolute constants are calibrated (see `DESIGN.md` §3) so the
//! case-study MTTs land in the band implied by the paper's availability
//! results; the model preserves the properties the paper exercises:
//! monotonically increasing MTT with distance and `1/α` scaling.

use crate::city::{haversine_km, City};

/// Speed of light in optical fiber, km/s (≈ 2/3 of c).
pub const FIBER_SPEED_KM_S: f64 = 200_000.0;

/// Distance → throughput model with PingER-style parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WanModel {
    /// Ratio of routed path length to great-circle distance.
    pub route_inflation: f64,
    /// Fixed equipment/processing round-trip latency in seconds.
    pub base_rtt_s: f64,
    /// TCP maximum segment size in bytes.
    pub mss_bytes: f64,
    /// Distance-independent packet-loss probability.
    pub loss_base: f64,
    /// Additional loss probability per 1000 km of route.
    pub loss_per_1000km: f64,
}

impl Default for WanModel {
    fn default() -> Self {
        WanModel::paper_calibrated()
    }
}

impl WanModel {
    /// The calibration used for the DSN'13 case-study reproduction.
    ///
    /// Chosen so the Rio–Brasília baseline lands in the paper's ~3.5-nines
    /// band and the distance ordering/magnitudes of Table VII hold (see
    /// `EXPERIMENTS.md` for the side-by-side numbers).
    pub fn paper_calibrated() -> Self {
        WanModel {
            route_inflation: 1.35,
            base_rtt_s: 0.005,
            mss_bytes: 1460.0,
            loss_base: 0.007,
            loss_per_1000km: 0.0002,
        }
    }

    /// Round-trip time in seconds for a great-circle distance in km.
    pub fn rtt_s(&self, distance_km: f64) -> f64 {
        assert!(distance_km >= 0.0, "distance must be non-negative");
        2.0 * distance_km * self.route_inflation / FIBER_SPEED_KM_S + self.base_rtt_s
    }

    /// Packet-loss probability for a distance in km (capped at 1).
    pub fn loss(&self, distance_km: f64) -> f64 {
        (self.loss_base + self.loss_per_1000km * distance_km / 1000.0).min(1.0)
    }

    /// Achievable throughput in bits/s for network quality `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn throughput_bps(&self, distance_km: f64, alpha: f64) -> f64 {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1], got {alpha}");
        let rtt = self.rtt_s(distance_km);
        let p = self.loss(distance_km).max(1e-9);
        alpha * self.mss_bytes * 8.0 / (rtt * p.sqrt())
    }

    /// Mean time (in **hours**) to transfer `gigabytes` GB over the link —
    /// the paper's MTT.
    pub fn mtt_hours(&self, distance_km: f64, alpha: f64, gigabytes: f64) -> f64 {
        assert!(gigabytes >= 0.0, "size must be non-negative");
        let bits = gigabytes * 8.0e9;
        bits / self.throughput_bps(distance_km, alpha) / 3600.0
    }

    /// MTT between two cities (hours).
    pub fn mtt_between_hours(&self, a: &City, b: &City, alpha: f64, gigabytes: f64) -> f64 {
        self.mtt_hours(haversine_km(a, b), alpha, gigabytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{BRASILIA, RIO_DE_JANEIRO, TOKYO};

    #[test]
    fn rtt_grows_linearly_with_distance() {
        let w = WanModel::paper_calibrated();
        let r1 = w.rtt_s(1000.0);
        let r2 = w.rtt_s(2000.0);
        let slope = r2 - r1;
        let r3 = w.rtt_s(3000.0);
        assert!((r3 - r2 - slope).abs() < 1e-12);
        assert!(w.rtt_s(0.0) == w.base_rtt_s);
    }

    #[test]
    fn throughput_scales_with_alpha() {
        let w = WanModel::paper_calibrated();
        let t35 = w.throughput_bps(5000.0, 0.35);
        let t45 = w.throughput_bps(5000.0, 0.45);
        assert!((t45 / t35 - 0.45 / 0.35).abs() < 1e-9);
    }

    #[test]
    fn throughput_decreases_with_distance() {
        let w = WanModel::paper_calibrated();
        let mut prev = f64::INFINITY;
        for d in [500.0, 1000.0, 5000.0, 10000.0, 20000.0] {
            let t = w.throughput_bps(d, 0.4);
            assert!(t < prev, "throughput not decreasing at {d} km");
            prev = t;
        }
    }

    #[test]
    fn mtt_proportional_to_size() {
        let w = WanModel::paper_calibrated();
        let m4 = w.mtt_hours(3000.0, 0.4, 4.0);
        let m8 = w.mtt_hours(3000.0, 0.4, 8.0);
        assert!((m8 / m4 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn case_study_band() {
        // Calibration sanity: 4 GB at α=0.35 should take single-digit hours
        // to Brasília and tens of hours to Tokyo.
        let w = WanModel::paper_calibrated();
        let mtt_bsb = w.mtt_between_hours(&RIO_DE_JANEIRO, &BRASILIA, 0.35, 4.0);
        let mtt_tyo = w.mtt_between_hours(&RIO_DE_JANEIRO, &TOKYO, 0.35, 4.0);
        assert!(
            (1.0..10.0).contains(&mtt_bsb),
            "Rio-Brasilia MTT {mtt_bsb:.2} h outside expected band"
        );
        assert!(
            (20.0..150.0).contains(&mtt_tyo),
            "Rio-Tokyo MTT {mtt_tyo:.2} h outside expected band"
        );
        assert!(mtt_tyo / mtt_bsb > 5.0, "distance effect too weak");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_validated() {
        WanModel::paper_calibrated().throughput_bps(100.0, 1.5);
    }

    #[test]
    fn loss_capped_at_one() {
        let w =
            WanModel { loss_base: 0.9, loss_per_1000km: 0.5, ..WanModel::paper_calibrated() };
        assert_eq!(w.loss(1e6), 1.0);
    }
}
