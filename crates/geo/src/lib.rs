//! # dtc-geo — geography and WAN throughput for the case study
//!
//! Distance-driven migration-time modeling for the DSN'13 disaster-tolerant
//! cloud reproduction: the case-study cities, great-circle distances, and a
//! PingER-style `distance → RTT → throughput → MTT` model with the paper's
//! network-quality constant α.
//!
//! # Example
//!
//! ```
//! use dtc_geo::{WanModel, RIO_DE_JANEIRO, BRASILIA, TOKYO};
//!
//! let wan = WanModel::paper_calibrated();
//! let near = wan.mtt_between_hours(&RIO_DE_JANEIRO, &BRASILIA, 0.35, 4.0);
//! let far = wan.mtt_between_hours(&RIO_DE_JANEIRO, &TOKYO, 0.35, 4.0);
//! assert!(far > near, "moving a VM image farther takes longer");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod city;
pub mod wan;

pub use city::{
    find_city, haversine_deg_km, haversine_km, City, BRASILIA, CALCUTTA, CASE_STUDY_CITIES,
    EARTH_RADIUS_KM, FRANKFURT, JOHANNESBURG, KNOWN_CITIES, LONDON, NEW_YORK, RECIFE,
    RIO_DE_JANEIRO, SAN_FRANCISCO, SAO_PAULO, SINGAPORE, SYDNEY, TOKYO,
};
pub use wan::{WanModel, FIBER_SPEED_KM_S};
