//! Cities and great-circle distances.
//!
//! The DSN'13 case study places data centers in five city pairs anchored at
//! Rio de Janeiro, with the backup server in São Paulo. Coordinates here are
//! city-center WGS-84; distances are great-circle (haversine), which is what
//! the paper's distance-driven throughput model needs.

use std::fmt;

/// A named geographic location.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct City {
    /// Display name.
    pub name: &'static str,
    /// Latitude in degrees (north positive).
    pub lat_deg: f64,
    /// Longitude in degrees (east positive).
    pub lon_deg: f64,
}

impl fmt::Display for City {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

/// Rio de Janeiro, Brazil — the anchor of every case-study pair.
pub const RIO_DE_JANEIRO: City =
    City { name: "Rio de Janeiro", lat_deg: -22.9068, lon_deg: -43.1729 };
/// Brasília, Brazil.
pub const BRASILIA: City = City { name: "Brasilia", lat_deg: -15.7939, lon_deg: -47.8828 };
/// Recife, Brazil.
pub const RECIFE: City = City { name: "Recife", lat_deg: -8.0476, lon_deg: -34.8770 };
/// São Paulo, Brazil — the paper's Backup Server location.
pub const SAO_PAULO: City = City { name: "Sao Paulo", lat_deg: -23.5505, lon_deg: -46.6333 };
/// New York, USA.
pub const NEW_YORK: City = City { name: "NewYork", lat_deg: 40.7128, lon_deg: -74.0060 };
/// Calcutta (Kolkata), India.
pub const CALCUTTA: City = City { name: "Calcutta", lat_deg: 22.5726, lon_deg: 88.3639 };
/// Tokyo, Japan (the paper spells it "Tokio").
pub const TOKYO: City = City { name: "Tokio", lat_deg: 35.6762, lon_deg: 139.6503 };

/// All cities used by the case study.
pub const CASE_STUDY_CITIES: [City; 7] =
    [RIO_DE_JANEIRO, BRASILIA, RECIFE, SAO_PAULO, NEW_YORK, CALCUTTA, TOKYO];

/// London, UK (extra site for user studies beyond the paper).
pub const LONDON: City = City { name: "London", lat_deg: 51.5074, lon_deg: -0.1278 };
/// Frankfurt, Germany.
pub const FRANKFURT: City = City { name: "Frankfurt", lat_deg: 50.1109, lon_deg: 8.6821 };
/// Singapore.
pub const SINGAPORE: City = City { name: "Singapore", lat_deg: 1.3521, lon_deg: 103.8198 };
/// Sydney, Australia.
pub const SYDNEY: City = City { name: "Sydney", lat_deg: -33.8688, lon_deg: 151.2093 };
/// San Francisco, USA.
pub const SAN_FRANCISCO: City =
    City { name: "San Francisco", lat_deg: 37.7749, lon_deg: -122.4194 };
/// Johannesburg, South Africa.
pub const JOHANNESBURG: City =
    City { name: "Johannesburg", lat_deg: -26.2041, lon_deg: 28.0473 };
/// Paris, France.
pub const PARIS: City = City { name: "Paris", lat_deg: 48.8566, lon_deg: 2.3522 };
/// Amsterdam, Netherlands.
pub const AMSTERDAM: City = City { name: "Amsterdam", lat_deg: 52.3676, lon_deg: 4.9041 };
/// Madrid, Spain.
pub const MADRID: City = City { name: "Madrid", lat_deg: 40.4168, lon_deg: -3.7038 };
/// Mumbai, India.
pub const MUMBAI: City = City { name: "Mumbai", lat_deg: 19.0760, lon_deg: 72.8777 };
/// Beijing, China.
pub const BEIJING: City = City { name: "Beijing", lat_deg: 39.9042, lon_deg: 116.4074 };
/// Seoul, South Korea.
pub const SEOUL: City = City { name: "Seoul", lat_deg: 37.5665, lon_deg: 126.9780 };
/// Dubai, United Arab Emirates.
pub const DUBAI: City = City { name: "Dubai", lat_deg: 25.2048, lon_deg: 55.2708 };
/// Toronto, Canada.
pub const TORONTO: City = City { name: "Toronto", lat_deg: 43.6532, lon_deg: -79.3832 };
/// Mexico City, Mexico.
pub const MEXICO_CITY: City = City { name: "Mexico City", lat_deg: 19.4326, lon_deg: -99.1332 };
/// Buenos Aires, Argentina.
pub const BUENOS_AIRES: City =
    City { name: "Buenos Aires", lat_deg: -34.6037, lon_deg: -58.3816 };
/// Santiago, Chile.
pub const SANTIAGO: City = City { name: "Santiago", lat_deg: -33.4489, lon_deg: -70.6693 };

impl City {
    /// Creates a city with validated WGS-84 coordinates.
    ///
    /// # Panics
    ///
    /// Panics if latitude is outside `[-90, 90]` or longitude outside
    /// `[-180, 180]`.
    pub fn new(name: &'static str, lat_deg: f64, lon_deg: f64) -> Self {
        assert!((-90.0..=90.0).contains(&lat_deg), "latitude {lat_deg} outside [-90, 90]");
        assert!((-180.0..=180.0).contains(&lon_deg), "longitude {lon_deg} outside [-180, 180]");
        City { name, lat_deg, lon_deg }
    }
}

/// Every city with built-in coordinates: the seven case-study sites plus
/// the extra sites for studies beyond the paper.
pub const KNOWN_CITIES: [City; 24] = [
    RIO_DE_JANEIRO,
    BRASILIA,
    RECIFE,
    SAO_PAULO,
    NEW_YORK,
    CALCUTTA,
    TOKYO,
    LONDON,
    FRANKFURT,
    SINGAPORE,
    SYDNEY,
    SAN_FRANCISCO,
    JOHANNESBURG,
    PARIS,
    AMSTERDAM,
    MADRID,
    MUMBAI,
    BEIJING,
    SEOUL,
    DUBAI,
    TORONTO,
    MEXICO_CITY,
    BUENOS_AIRES,
    SANTIAGO,
];

/// Folds common Latin diacritics to their base letter, so "São Paulo" and
/// "Brasília" resolve to the ASCII-named built-ins.
fn fold_diacritic(c: char) -> char {
    match c {
        'à' | 'á' | 'â' | 'ã' | 'ä' | 'å' => 'a',
        'è' | 'é' | 'ê' | 'ë' => 'e',
        'ì' | 'í' | 'î' | 'ï' => 'i',
        'ò' | 'ó' | 'ô' | 'õ' | 'ö' => 'o',
        'ù' | 'ú' | 'û' | 'ü' => 'u',
        'ç' => 'c',
        'ñ' => 'n',
        other => other,
    }
}

/// Normalizes a city name for lookup: lowercase, alphanumeric only (drops
/// spaces, hyphens and punctuation), common diacritics folded.
fn normalize(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(|c| c.to_lowercase())
        .map(fold_diacritic)
        .collect()
}

/// Looks up a built-in city by name, case-, punctuation- and
/// diacritic-insensitively.
///
/// Common alternate spellings are accepted: `"Tokyo"` for the paper's
/// `"Tokio"`, `"Kolkata"` for `"Calcutta"`, and `"New York"` for
/// `"NewYork"`.
///
/// ```
/// use dtc_geo::{find_city, SAO_PAULO, TOKYO};
/// assert_eq!(find_city("tokyo"), Some(TOKYO));
/// assert_eq!(find_city("São Paulo"), Some(SAO_PAULO));
/// assert_eq!(find_city("Rio de Janeiro"), Some(dtc_geo::RIO_DE_JANEIRO));
/// assert_eq!(find_city("Atlantis"), None);
/// ```
pub fn find_city(name: &str) -> Option<City> {
    let wanted = normalize(name);
    if wanted.is_empty() {
        return None;
    }
    // Alternate spellings map onto a canonical built-in name.
    let canonical = match wanted.as_str() {
        "tokyo" => "tokio".to_string(),
        "kolkata" => "calcutta".to_string(),
        "saopaolo" => "saopaulo".to_string(),
        other => other.to_string(),
    };
    KNOWN_CITIES.iter().find(|c| normalize(c.name) == canonical).copied()
}

/// Mean Earth radius in kilometers (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Great-circle distance between two cities in kilometers (haversine).
pub fn haversine_km(a: &City, b: &City) -> f64 {
    haversine_deg_km(a.lat_deg, a.lon_deg, b.lat_deg, b.lon_deg)
}

/// Great-circle distance between two raw WGS-84 coordinates in kilometers.
///
/// The coordinate-level entry point used for sites that are not built-in
/// [`City`] constants (e.g. user-specified lat/lon in scenario catalogs).
pub fn haversine_deg_km(lat1_deg: f64, lon1_deg: f64, lat2_deg: f64, lon2_deg: f64) -> f64 {
    let (lat1, lon1) = (lat1_deg.to_radians(), lon1_deg.to_radians());
    let (lat2, lon2) = (lat2_deg.to_radians(), lon2_deg.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        assert_eq!(haversine_km(&RIO_DE_JANEIRO, &RIO_DE_JANEIRO), 0.0);
    }

    #[test]
    fn symmetric() {
        let d1 = haversine_km(&RIO_DE_JANEIRO, &TOKYO);
        let d2 = haversine_km(&TOKYO, &RIO_DE_JANEIRO);
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn known_distances_within_tolerance() {
        // Reference great-circle distances (±2%).
        let cases = [
            (RIO_DE_JANEIRO, BRASILIA, 930.0),
            (RIO_DE_JANEIRO, RECIFE, 1870.0),
            (RIO_DE_JANEIRO, SAO_PAULO, 360.0),
            (RIO_DE_JANEIRO, NEW_YORK, 7750.0),
            (RIO_DE_JANEIRO, TOKYO, 18550.0),
        ];
        for (a, b, expect) in cases {
            let d = haversine_km(&a, &b);
            assert!(
                (d - expect).abs() / expect < 0.02,
                "{} - {}: {d:.0} km vs {expect:.0} km",
                a.name,
                b.name
            );
        }
    }

    #[test]
    fn case_study_ordering_by_distance() {
        // The paper's pairs sorted: Brasilia < Recife < NewYork < Calcutta < Tokio.
        let pairs = [BRASILIA, RECIFE, NEW_YORK, CALCUTTA, TOKYO];
        let mut prev = 0.0;
        for c in pairs {
            let d = haversine_km(&RIO_DE_JANEIRO, &c);
            assert!(d > prev, "{} at {d} not increasing", c.name);
            prev = d;
        }
    }

    #[test]
    fn extra_cities_have_sane_distances() {
        // London–Frankfurt ≈ 640 km; Singapore–Sydney ≈ 6300 km.
        let lf = haversine_km(&LONDON, &FRANKFURT);
        assert!((lf - 640.0).abs() / 640.0 < 0.05, "{lf}");
        let ss = haversine_km(&SINGAPORE, &SYDNEY);
        assert!((ss - 6300.0).abs() / 6300.0 < 0.05, "{ss}");
        let sj = haversine_km(&SAN_FRANCISCO, &JOHANNESBURG);
        assert!(sj > 15_000.0 && sj < 18_000.0, "{sj}");
    }

    #[test]
    fn expansion_cities_match_reference_distances() {
        // Reference great-circle distances (±3%) for the PR-2 expansion
        // sites, so a typo'd coordinate cannot slip in silently.
        let cases = [
            (PARIS, LONDON, 344.0),
            (PARIS, MADRID, 1054.0),
            (AMSTERDAM, FRANKFURT, 365.0),
            (SEOUL, TOKYO, 1160.0),
            (BEIJING, SEOUL, 950.0),
            (DUBAI, MUMBAI, 1930.0),
            (TORONTO, NEW_YORK, 550.0),
            (MEXICO_CITY, NEW_YORK, 3360.0),
            (BUENOS_AIRES, SANTIAGO, 1140.0),
            (BUENOS_AIRES, RIO_DE_JANEIRO, 1970.0),
        ];
        for (a, b, expect) in cases {
            let d = haversine_km(&a, &b);
            assert!(
                (d - expect).abs() / expect < 0.03,
                "{} - {}: {d:.0} km vs {expect:.0} km",
                a.name,
                b.name
            );
        }
    }

    #[test]
    fn known_cities_are_unique_and_valid() {
        for c in &KNOWN_CITIES {
            assert!((-90.0..=90.0).contains(&c.lat_deg), "{}", c.name);
            assert!((-180.0..=180.0).contains(&c.lon_deg), "{}", c.name);
            assert_eq!(find_city(c.name), Some(*c), "{} resolves to itself", c.name);
        }
        let mut names: Vec<_> = KNOWN_CITIES.iter().map(|c| normalize(c.name)).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), KNOWN_CITIES.len(), "normalized names collide");
    }

    #[test]
    fn find_city_is_forgiving() {
        assert_eq!(find_city("rio de janeiro"), Some(RIO_DE_JANEIRO));
        assert_eq!(find_city("RIO-DE-JANEIRO"), Some(RIO_DE_JANEIRO));
        assert_eq!(find_city("São Paulo"), Some(SAO_PAULO));
        assert_eq!(find_city("Brasília"), Some(BRASILIA));
        assert_eq!(find_city("Tokyo"), Some(TOKYO));
        assert_eq!(find_city("Kolkata"), Some(CALCUTTA));
        assert_eq!(find_city("New York"), Some(NEW_YORK));
        assert_eq!(find_city("london"), Some(LONDON));
        assert_eq!(find_city("Atlantis"), None);
        assert_eq!(find_city(""), None);
        assert_eq!(find_city("---"), None);
    }

    #[test]
    fn city_new_validates() {
        let c = City::new("Test", 45.0, 90.0);
        assert_eq!(c.name, "Test");
        assert_eq!(c.to_string(), "Test");
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn bad_latitude_panics() {
        City::new("Bad", 91.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "longitude")]
    fn bad_longitude_panics() {
        City::new("Bad", 0.0, 181.0);
    }

    #[test]
    fn triangle_inequality_sample() {
        let ab = haversine_km(&RIO_DE_JANEIRO, &SAO_PAULO);
        let bc = haversine_km(&SAO_PAULO, &NEW_YORK);
        let ac = haversine_km(&RIO_DE_JANEIRO, &NEW_YORK);
        assert!(ac <= ab + bc + 1e-9);
    }
}
