//! A self-contained TOML-subset parser producing [`Value`] trees.
//!
//! The offline workspace cannot depend on the `toml` crate, so catalogs are
//! parsed by this module instead. The supported subset covers everything
//! the scenario schema uses (and the common cases beyond it):
//!
//! * `[table]` and `[[array-of-tables]]` headers, including dotted paths,
//! * `key = value` pairs with bare or quoted keys,
//! * basic (`"…"` with escapes) and literal (`'…'`) strings,
//! * integers, floats (with `_` separators and exponents), booleans,
//! * arrays (possibly spanning lines, with trailing commas) and inline
//!   tables,
//! * `#` comments and blank lines.
//!
//! Not supported (rejected with an error): dates/times, multi-line
//! strings, and dotted keys on the left of `=`.

use crate::error::{EngineError, Result};
use crate::value::Value;
use std::collections::BTreeMap;

/// Parses a TOML document into a [`Value::Table`].
pub fn parse(input: &str) -> Result<Value> {
    let mut p = Parser { s: input.as_bytes(), i: 0, line: 1 };
    let mut root = BTreeMap::new();
    // Path of the table currently receiving `key = value` lines.
    let mut current: Vec<String> = Vec::new();

    loop {
        p.skip_trivia();
        let Some(b) = p.peek() else { break };
        if b == b'[' {
            let (path, is_array) = p.header()?;
            if is_array {
                push_array_table(&mut root, &path, p.line)?;
            } else {
                create_table(&mut root, &path, p.line)?;
            }
            current = path;
            p.expect_line_end()?;
        } else {
            let key = p.key()?;
            p.skip_inline_ws();
            if p.peek() == Some(b'.') {
                return Err(p.err("dotted keys are not supported; use a [table] header"));
            }
            if p.peek() != Some(b'=') {
                return Err(p.err(format!("expected '=' after key {key:?}")));
            }
            p.i += 1;
            p.skip_inline_ws();
            let value = p.value()?;
            p.expect_line_end()?;
            let table = table_at(&mut root, &current, p.line)?;
            if table.insert(key.clone(), value).is_some() {
                return Err(p.err(format!("duplicate key {key:?}")));
            }
        }
    }
    Ok(Value::Table(root))
}

/// Walks `path` from the root, descending into the last element of any
/// array-of-tables along the way, returning the addressed map.
fn table_at<'v>(
    root: &'v mut BTreeMap<String, Value>,
    path: &[String],
    line: usize,
) -> Result<&'v mut BTreeMap<String, Value>> {
    let mut cur = root;
    for seg in path {
        let slot = cur.entry(seg.clone()).or_insert_with(Value::table);
        let next = match slot {
            Value::Table(t) => t,
            Value::Array(items) => match items.last_mut() {
                Some(Value::Table(t)) => t,
                _ => {
                    return Err(EngineError::Toml {
                        line,
                        msg: format!("{seg:?} is not a table of tables"),
                    })
                }
            },
            _ => {
                return Err(EngineError::Toml { line, msg: format!("{seg:?} is not a table") })
            }
        };
        cur = next;
    }
    Ok(cur)
}

fn create_table(
    root: &mut BTreeMap<String, Value>,
    path: &[String],
    line: usize,
) -> Result<()> {
    // `[a.b]` creates intermediate tables implicitly; redefining an existing
    // *leaf* table is allowed only if it was created implicitly (we accept
    // re-entry, which is harmless for the schema since duplicate keys are
    // still rejected at assignment time).
    table_at(root, path, line).map(|_| ())
}

fn push_array_table(
    root: &mut BTreeMap<String, Value>,
    path: &[String],
    line: usize,
) -> Result<()> {
    let (parent, last) = match path.split_last() {
        Some((last, parent)) => (parent, last),
        None => {
            return Err(EngineError::Toml { line, msg: "empty [[]] header".into() });
        }
    };
    let table = table_at(root, parent, line)?;
    let slot = table.entry(last.clone()).or_insert_with(|| Value::Array(Vec::new()));
    match slot {
        Value::Array(items) => {
            items.push(Value::table());
            Ok(())
        }
        _ => Err(EngineError::Toml {
            line,
            msg: format!("{last:?} already holds a non-array value"),
        }),
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
    line: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> EngineError {
        EngineError::Toml { line: self.line, msg: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.i += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    /// Skips spaces and tabs (not newlines).
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.i += 1;
        }
    }

    /// Skips whitespace, newlines and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') => {
                    self.i += 1;
                }
                Some(b'\n') => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.i += 1;
                    }
                }
                _ => return,
            }
        }
    }

    /// After a value or header: only trivia may remain on the line.
    fn expect_line_end(&mut self) -> Result<()> {
        self.skip_inline_ws();
        match self.peek() {
            None | Some(b'\n') | Some(b'#') | Some(b'\r') => Ok(()),
            Some(b) => Err(self.err(format!("unexpected {:?} after value", b as char))),
        }
    }

    /// Parses `[a.b]` or `[[a.b]]`; returns the path and whether it was an
    /// array-of-tables header.
    fn header(&mut self) -> Result<(Vec<String>, bool)> {
        self.bump(); // '['
        let is_array = self.peek() == Some(b'[');
        if is_array {
            self.bump();
        }
        let mut path = Vec::new();
        loop {
            self.skip_inline_ws();
            path.push(self.key()?);
            self.skip_inline_ws();
            match self.peek() {
                Some(b'.') => {
                    self.bump();
                }
                Some(b']') => {
                    self.bump();
                    if is_array {
                        if self.peek() != Some(b']') {
                            return Err(self.err("expected ']]'"));
                        }
                        self.bump();
                    }
                    return Ok((path, is_array));
                }
                _ => return Err(self.err("expected '.' or ']' in table header")),
            }
        }
    }

    /// A bare (`A-Za-z0-9_-`) or quoted key.
    fn key(&mut self) -> Result<String> {
        match self.peek() {
            Some(b'"') => self.basic_string(),
            Some(b'\'') => self.literal_string(),
            _ => {
                let start = self.i;
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                        self.i += 1;
                    } else {
                        break;
                    }
                }
                if self.i == start {
                    return Err(self.err("expected a key"));
                }
                Ok(std::str::from_utf8(&self.s[start..self.i])
                    .expect("bare keys are ascii")
                    .to_string())
            }
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(self.err("expected a value")),
            Some(b'"') => Ok(Value::Str(self.basic_string()?)),
            Some(b'\'') => Ok(Value::Str(self.literal_string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.inline_table(),
            Some(b't') | Some(b'f') => self.boolean(),
            _ => self.number(),
        }
    }

    fn basic_string(&mut self) -> Result<String> {
        self.bump(); // '"'
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\n') => return Err(self.err("newline in basic string")),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        if self.i + 4 > self.s.len() {
                            return Err(self.err("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.s[self.i..self.i + 4])
                            .map_err(|_| self.err("bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.err("bad \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("bad \\u code point"))?,
                        );
                        self.i += 4;
                    }
                    _ => return Err(self.err("unsupported escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Re-decode the UTF-8 code point starting one byte back.
                    self.i -= 1;
                    let rest = std::str::from_utf8(&self.s[self.i..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn literal_string(&mut self) -> Result<String> {
        self.bump(); // '\''
        let start = self.i;
        while let Some(b) = self.peek() {
            if b == b'\'' {
                let text = std::str::from_utf8(&self.s[start..self.i])
                    .map_err(|_| self.err("invalid utf-8"))?
                    .to_string();
                self.bump();
                return Ok(text);
            }
            if b == b'\n' {
                return Err(self.err("newline in literal string"));
            }
            self.i += 1;
        }
        Err(self.err("unterminated literal string"))
    }

    fn boolean(&mut self) -> Result<Value> {
        for (word, val) in [("true", true), ("false", false)] {
            if self.s[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                return Ok(Value::Bool(val));
            }
        }
        Err(self.err("expected true or false"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.i;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'+' | b'-' | b'_' => self.i += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        if self.i == start {
            return Err(self.err("expected a value"));
        }
        let raw = std::str::from_utf8(&self.s[start..self.i]).expect("numbers are ascii");
        let text: String = raw.chars().filter(|c| *c != '_').collect();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| self.err(format!("bad float {raw:?}: {e}")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| self.err(format!("bad integer {raw:?}: {e}")))
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.bump(); // '['
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(b']') {
                self.bump();
                return Ok(Value::Array(items));
            }
            items.push(self.value()?);
            self.skip_trivia();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {
                    self.bump();
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn inline_table(&mut self) -> Result<Value> {
        self.bump(); // '{'
        let mut map = BTreeMap::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(b'}') {
                self.bump();
                return Ok(Value::Table(map));
            }
            let key = self.key()?;
            self.skip_inline_ws();
            if self.peek() != Some(b'=') {
                return Err(self.err(format!("expected '=' after key {key:?} in inline table")));
            }
            self.bump();
            self.skip_inline_ws();
            let value = self.value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(self.err(format!("duplicate key {key:?} in inline table")));
            }
            self.skip_trivia();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b'}') => {
                    self.bump();
                    return Ok(Value::Table(map));
                }
                _ => return Err(self.err("expected ',' or '}' in inline table")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_tables_and_arrays() {
        let doc = r#"
# a catalog
title = "demo"   # trailing comment
count = 3
ratio = 0.35
big = 1_000_000
neg = -2.5e-3
on = true

[catalog]
name = 'fig7'

[[scenario]]
alpha = [0.35, 0.40,
         0.45,]   # multi-line array with trailing comma
site = { name = "X", lat = -1.5, lon = 30.0 }

[[scenario]]
alpha = 0.4
"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("title").unwrap().as_str(), Some("demo"));
        assert_eq!(v.get("count").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(0.35));
        assert_eq!(v.get("big").unwrap().as_i64(), Some(1_000_000));
        assert_eq!(v.get("neg").unwrap().as_f64(), Some(-2.5e-3));
        assert_eq!(v.get("on").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("catalog").unwrap().get("name").unwrap().as_str(), Some("fig7"));
        let scenarios = v.get("scenario").unwrap().as_array().unwrap();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].get("alpha").unwrap().as_array().unwrap().len(), 3);
        let site = scenarios[0].get("site").unwrap();
        assert_eq!(site.get("lat").unwrap().as_f64(), Some(-1.5));
        assert_eq!(scenarios[1].get("alpha").unwrap().as_f64(), Some(0.4));
    }

    #[test]
    fn nested_array_of_tables() {
        let doc = r#"
[[scenario]]
name = "three-sites"
[[scenario.dc]]
city = "Rio de Janeiro"
[[scenario.dc]]
city = "Recife"
[[scenario]]
name = "other"
"#;
        let v = parse(doc).unwrap();
        let scenarios = v.get("scenario").unwrap().as_array().unwrap();
        assert_eq!(scenarios.len(), 2);
        let dcs = scenarios[0].get("dc").unwrap().as_array().unwrap();
        assert_eq!(dcs.len(), 2);
        assert_eq!(dcs[1].get("city").unwrap().as_str(), Some("Recife"));
        assert!(scenarios[1].get("dc").is_none());
    }

    #[test]
    fn string_flavors() {
        let doc = "a = \"esc\\t\\\"x\\\"\"\nb = 'lit\\no escape'\nc = \"ünïcödé\"\n";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("esc\t\"x\""));
        assert_eq!(v.get("b").unwrap().as_str(), Some("lit\\no escape"));
        assert_eq!(v.get("c").unwrap().as_str(), Some("ünïcödé"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let doc = "ok = 1\nbroken = @\n";
        match parse(doc) {
            Err(EngineError::Toml { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected toml error, got {other:?}"),
        }
        assert!(parse("a = 1\na = 2\n").is_err(), "duplicate keys rejected");
        assert!(parse("a.b = 1\n").is_err(), "dotted keys rejected");
        assert!(parse("x = 1 y = 2\n").is_err(), "two assignments per line rejected");
    }

    #[test]
    fn quoted_keys_and_deep_headers() {
        let doc = "[outer.\"inner key\"]\nx = 1\n";
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("outer").unwrap().get("inner key").unwrap().get("x").unwrap().as_i64(),
            Some(1)
        );
    }
}
