//! Cached, deduplicated, parallel evaluation of scenario batches.
//!
//! The upgraded sweep executor: scenarios are keyed by structural hash
//! first, identical specs are folded together (grid cells often share a
//! baseline), cached results are reused, and only the remaining unique
//! specs fan out over the parallel sweep harness
//! ([`dtc_core::sweep::sweep_reports`] — which already isolates
//! per-scenario panics).

use crate::cache::{CacheStats, EvalCache};
use crate::catalog::Scenario;
use crate::hash::{canonical_encoding, SpecKey};
use dtc_core::metrics::{AvailabilityReport, EvalOptions};
use dtc_core::sweep::sweep_reports;
use dtc_core::system::CloudSystemSpec;
use dtc_core::CloudError;
use std::collections::HashMap;
use std::time::Duration;

/// How a scenario's report was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Solved in this batch.
    Evaluated,
    /// Copied from another scenario in this batch with an identical spec.
    Deduplicated,
    /// Served by the evaluation cache.
    Cached,
}

/// Result for one scenario of a batch.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Index into the input batch.
    pub index: usize,
    /// Scenario name.
    pub name: String,
    /// Structural hash of spec + options.
    pub key: SpecKey,
    /// Where the result came from.
    pub provenance: Provenance,
    /// The evaluation result.
    pub report: Result<AvailabilityReport, CloudError>,
}

/// A whole batch's outcomes plus cache statistics.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-scenario outcomes, in input order.
    pub outcomes: Vec<Outcome>,
    /// Unique specs actually solved in this batch.
    pub evaluated: usize,
    /// Scenarios answered by folding onto an identical spec in the batch.
    pub deduplicated: usize,
    /// Scenarios answered from the cache store.
    pub cached: usize,
    /// Cache counters after the batch.
    pub cache_stats: CacheStats,
    /// Wall-clock time spent solving.
    pub solve_time: Duration,
}

impl BatchResult {
    /// Scenarios that did not require solving a model (cache + dedup).
    pub fn total_hits(&self) -> usize {
        self.cached + self.deduplicated
    }
}

/// Execution knobs for a batch.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads for the fan-out (0 = one per scenario, capped by the
    /// harness).
    pub threads: usize,
    /// Numeric evaluation options (also part of every cache key).
    pub eval: EvalOptions,
}

impl Default for RunOptions {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        RunOptions { threads, eval: EvalOptions::default() }
    }
}

/// Evaluates a batch of scenarios with dedup and caching.
///
/// Successful reports are inserted into `cache`; errors are never cached.
/// Call [`EvalCache::persist`] afterwards to flush a disk-backed cache.
pub fn run_batch(scenarios: &[Scenario], cache: &EvalCache, opts: &RunOptions) -> BatchResult {
    let keyed: Vec<(SpecKey, String)> = scenarios
        .iter()
        .map(|s| {
            let canonical = canonical_encoding(&s.spec, &opts.eval);
            (crate::hash::key_of_encoding(&canonical), canonical)
        })
        .collect();

    // Resolve each scenario: cache hit, duplicate of an earlier scenario,
    // or representative of a new unique spec (scheduled for evaluation).
    #[derive(Clone, Copy)]
    enum Plan {
        FromCache(AvailabilityReport),
        Duplicate { representative: usize },
        Evaluate { slot: usize },
    }
    let mut plans: Vec<Plan> = Vec::with_capacity(scenarios.len());
    let mut first_of_key: HashMap<&str, usize> = HashMap::new();
    let mut to_solve: Vec<CloudSystemSpec> = Vec::new();
    let mut cached = 0usize;
    let mut deduplicated = 0usize;

    for (i, s) in scenarios.iter().enumerate() {
        let (key, canonical) = &keyed[i];
        if let Some(&rep) = first_of_key.get(key.0.as_str()) {
            deduplicated += 1;
            plans.push(Plan::Duplicate { representative: rep });
            continue;
        }
        first_of_key.insert(key.0.as_str(), i);
        if let Some(report) = cache.get(key, canonical) {
            cached += 1;
            plans.push(Plan::FromCache(report));
        } else {
            let slot = to_solve.len();
            to_solve.push(s.spec.clone());
            plans.push(Plan::Evaluate { slot });
        }
    }

    let t0 = std::time::Instant::now();
    let solved = sweep_reports(&to_solve, &opts.eval, opts.threads);
    let solve_time = t0.elapsed();

    // First pass: outcomes for cache hits and representatives.
    let mut outcomes: Vec<Option<Outcome>> = vec![None; scenarios.len()];
    for (i, plan) in plans.iter().enumerate() {
        let (key, canonical) = &keyed[i];
        match plan {
            Plan::FromCache(report) => {
                outcomes[i] = Some(Outcome {
                    index: i,
                    name: scenarios[i].name.clone(),
                    key: key.clone(),
                    provenance: Provenance::Cached,
                    report: Ok(*report),
                });
            }
            Plan::Evaluate { slot } => {
                let report = solved[*slot].report.clone();
                if let Ok(r) = &report {
                    cache.put(key, canonical, *r);
                }
                outcomes[i] = Some(Outcome {
                    index: i,
                    name: scenarios[i].name.clone(),
                    key: key.clone(),
                    provenance: Provenance::Evaluated,
                    report,
                });
            }
            Plan::Duplicate { .. } => {}
        }
    }
    // Second pass: duplicates copy their representative's report.
    for (i, plan) in plans.iter().enumerate() {
        if let Plan::Duplicate { representative } = plan {
            let report = outcomes[*representative]
                .as_ref()
                .expect("representatives are resolved in the first pass")
                .report
                .clone();
            outcomes[i] = Some(Outcome {
                index: i,
                name: scenarios[i].name.clone(),
                key: keyed[i].0.clone(),
                provenance: Provenance::Deduplicated,
                report,
            });
        }
    }

    BatchResult {
        outcomes: outcomes.into_iter().map(|o| o.expect("all indices planned")).collect(),
        evaluated: to_solve.len(),
        deduplicated,
        cached,
        cache_stats: cache.stats(),
        solve_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_core::params::{ComponentParams, VmParams};
    use dtc_core::system::{DataCenterSpec, PmSpec};

    fn tiny(mttf: f64) -> CloudSystemSpec {
        CloudSystemSpec {
            ospm: ComponentParams::new(mttf, 12.0),
            vm: VmParams { mttf_hours: 2880.0, mttr_hours: 0.5, start_hours: 0.1 },
            data_centers: vec![DataCenterSpec {
                label: "1".into(),
                pms: vec![PmSpec::hot(1, 1)],
                disaster: None,
                nas_net: None,
                backup_inbound_mtt_hours: None,
            }],
            backup: None,
            direct_mtt_hours: vec![vec![None]],
            min_running_vms: 1,
            migration_threshold: 1,
        }
    }

    fn scenario(name: &str, spec: CloudSystemSpec) -> Scenario {
        Scenario {
            name: name.into(),
            spec,
            secondary: None,
            alpha: None,
            disaster_years: None,
            machines: None,
            is_baseline: false,
            expect_availability: None,
        }
    }

    #[test]
    fn dedup_folds_identical_specs_with_identical_output() {
        let batch = vec![
            scenario("a", tiny(1000.0)),
            scenario("b", tiny(2000.0)),
            scenario("a-again", tiny(1000.0)),
            scenario("a-thrice", tiny(1000.0)),
        ];
        let cache = EvalCache::in_memory();
        let result = run_batch(&batch, &cache, &RunOptions::default());
        assert_eq!(result.evaluated, 2, "only two unique specs solved");
        assert_eq!(result.deduplicated, 2);
        assert!(result.total_hits() >= 2, "shared specs count as hits");
        let a = result.outcomes[0].report.as_ref().unwrap();
        let a2 = result.outcomes[2].report.as_ref().unwrap();
        let a3 = result.outcomes[3].report.as_ref().unwrap();
        assert_eq!(a, a2, "deduplicated output must be bit-identical");
        assert_eq!(a, a3);
        assert_eq!(result.outcomes[2].provenance, Provenance::Deduplicated);
        assert_ne!(
            result.outcomes[0].report.as_ref().unwrap().availability,
            result.outcomes[1].report.as_ref().unwrap().availability
        );
    }

    #[test]
    fn second_run_is_all_cache_hits() {
        let batch = vec![scenario("a", tiny(1000.0)), scenario("b", tiny(2000.0))];
        let cache = EvalCache::in_memory();
        let first = run_batch(&batch, &cache, &RunOptions::default());
        assert_eq!(first.evaluated, 2);
        assert_eq!(first.cached, 0);

        let second = run_batch(&batch, &cache, &RunOptions::default());
        assert_eq!(second.evaluated, 0, "everything served from cache");
        assert_eq!(second.cached, 2);
        for (x, y) in first.outcomes.iter().zip(&second.outcomes) {
            assert_eq!(
                x.report.as_ref().unwrap(),
                y.report.as_ref().unwrap(),
                "cached output identical"
            );
            assert_eq!(y.provenance, Provenance::Cached);
        }
    }

    #[test]
    fn different_eval_options_do_not_share_cache_entries() {
        let batch = vec![scenario("a", tiny(1000.0))];
        let cache = EvalCache::in_memory();
        run_batch(&batch, &cache, &RunOptions::default());
        let mut opts = RunOptions::default();
        opts.eval.method = dtc_markov::Method::Power;
        let r = run_batch(&batch, &cache, &opts);
        assert_eq!(r.cached, 0, "different solver, different key");
        assert_eq!(r.evaluated, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn failures_propagate_and_are_not_cached() {
        let mut bad = tiny(1000.0);
        bad.min_running_vms = 99;
        let batch = vec![
            scenario("ok", tiny(1000.0)),
            scenario("bad", bad.clone()),
            scenario("bad-again", bad),
        ];
        let cache = EvalCache::in_memory();
        let result = run_batch(&batch, &cache, &RunOptions::default());
        assert!(result.outcomes[0].report.is_ok());
        assert!(result.outcomes[1].report.is_err());
        assert!(
            result.outcomes[2].report.is_err(),
            "duplicates of a failing spec fail identically"
        );
        assert_eq!(cache.len(), 1, "only the success is memoized");

        // Re-running re-attempts the failure (it was never cached) …
        let again = run_batch(&batch, &cache, &RunOptions::default());
        assert_eq!(again.evaluated, 1);
        assert!(again.outcomes[1].report.is_err());
    }
}
