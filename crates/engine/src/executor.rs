//! Cached, deduplicated, parallel evaluation of scenario batches.
//!
//! The upgraded sweep executor: scenarios are keyed by structural hash
//! first, identical specs are folded together (grid cells often share a
//! baseline), and the remaining unique specs fan out over a scoped worker
//! pool where every solve goes through the cache's **single-flight** entry
//! point ([`EvalCache::get_or_compute`]). The cache is shared by
//! [`Arc`], so any number of concurrent batches — e.g. simultaneous
//! `dtc-serve` requests — collapse identical solves into one, within and
//! across batches. Per-scenario panics are isolated by
//! [`dtc_core::sweep::evaluate_guarded`].

use crate::cache::{CacheStats, EvalCache, Fetch};
use crate::catalog::Scenario;
use crate::hash::{canonical_encoding_with, SpecKey};
use dtc_core::analysis::{AnalysisReport, AnalysisRequest};
use dtc_core::metrics::{AvailabilityReport, EvalOptions};
use dtc_core::sweep::{evaluate_all_shared, StructureRegistry};
use dtc_core::CloudError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How a scenario's report was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Solved in this batch.
    Evaluated,
    /// Copied from another scenario in this batch with an identical spec.
    Deduplicated,
    /// Served by the evaluation cache.
    Cached,
}

/// Result for one scenario of a batch.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Index into the input batch.
    pub index: usize,
    /// Scenario name.
    pub name: String,
    /// Structural hash of spec + options.
    pub key: SpecKey,
    /// Where the result came from.
    pub provenance: Provenance,
    /// The evaluation result: the full analysis-report union, in the
    /// batch's request order (shared with the cache via [`Arc`]).
    pub reports: Result<Arc<Vec<AnalysisReport>>, CloudError>,
}

impl Outcome {
    /// The steady-state report, if one was requested and the scenario
    /// succeeded — the value the availability table/CSV columns render.
    pub fn steady(&self) -> Option<&AvailabilityReport> {
        self.reports.as_ref().ok().and_then(|r| dtc_core::analysis::first_steady_state(r))
    }

    /// The report union as a slice (empty on error).
    pub fn analyses(&self) -> &[AnalysisReport] {
        self.reports.as_deref().map(Vec::as_slice).unwrap_or(&[])
    }
}

/// A whole batch's outcomes plus cache statistics.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-scenario outcomes, in input order.
    pub outcomes: Vec<Outcome>,
    /// Unique specs actually solved in this batch.
    pub evaluated: usize,
    /// Scenarios answered by folding onto an identical spec in the batch.
    pub deduplicated: usize,
    /// Scenarios answered from the cache store.
    pub cached: usize,
    /// Cache counters after the batch.
    pub cache_stats: CacheStats,
    /// Wall-clock time spent solving.
    pub solve_time: Duration,
}

impl BatchResult {
    /// Scenarios that did not require solving a model (cache + dedup).
    pub fn total_hits(&self) -> usize {
        self.cached + self.deduplicated
    }
}

/// Execution knobs for a batch.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads for the fan-out (0 = one per scenario, capped by the
    /// harness).
    pub threads: usize,
    /// Numeric evaluation options (also part of every cache key).
    pub eval: EvalOptions,
    /// Analyses to run per scenario (also part of every cache key). The
    /// default is steady state only — the pre-v2 behavior.
    pub analyses: Vec<AnalysisRequest>,
}

impl Default for RunOptions {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        RunOptions {
            threads,
            eval: EvalOptions::default(),
            analyses: vec![AnalysisRequest::SteadyState],
        }
    }
}

/// Evaluates a batch of scenarios with dedup and caching.
///
/// The cache is taken by [`Arc`] because every unique spec is resolved
/// through [`EvalCache::get_or_compute`]: concurrent `run_batch` calls
/// sharing one cache (the `dtc-serve` hot path) block on each other's
/// in-progress solves instead of duplicating them.
///
/// Successful reports are inserted into `cache`; errors are never cached.
/// Call [`EvalCache::persist`] afterwards to flush a disk-backed cache.
pub fn run_batch(
    scenarios: &[Scenario],
    cache: &Arc<EvalCache>,
    opts: &RunOptions,
) -> BatchResult {
    let keyed: Vec<(SpecKey, String)> = scenarios
        .iter()
        .map(|s| {
            let canonical = canonical_encoding_with(&s.spec, &opts.eval, &opts.analyses);
            (crate::hash::key_of_encoding(&canonical), canonical)
        })
        .collect();

    // Fold batch-internal duplicates: each scenario is either the
    // representative of its key (and gets resolved below) or a duplicate
    // pointing at an earlier representative.
    let mut first_of_key: HashMap<&str, usize> = HashMap::new();
    let mut representative: Vec<usize> = Vec::with_capacity(scenarios.len());
    let mut uniques: Vec<usize> = Vec::new();
    let mut deduplicated = 0usize;
    for (i, (key, _)) in keyed.iter().enumerate() {
        match first_of_key.get(key.0.as_str()) {
            Some(&rep) => {
                deduplicated += 1;
                representative.push(rep);
            }
            None => {
                first_of_key.insert(key.0.as_str(), i);
                uniques.push(i);
                representative.push(i);
            }
        }
    }
    cache.note_batch(scenarios.len(), uniques.len());

    // Resolve every unique spec over a scoped worker pool; each solve goes
    // through the cache's single-flight gate.
    type Resolved = (Result<Arc<Vec<AnalysisReport>>, CloudError>, Fetch);
    let threads = opts.threads.max(1).min(uniques.len().max(1));
    // Analyses that fan out internally (the sensitivity sweep) share the
    // batch's thread budget instead of multiplying it: with W batch
    // workers an unset sweep_threads becomes ⌈budget / W⌉-ish, so a batch
    // never runs more than ~`opts.threads` solver threads at once. An
    // explicit sweep_threads is the caller's business and passes through.
    let mut eval = opts.eval.clone();
    if eval.sweep_threads == 0 {
        eval.sweep_threads = (opts.threads.max(1) / threads).max(1);
    }
    // Same budget split for the solver's parallel kernels (the uniformized
    // march and the power method): an unset solver.threads shares the batch
    // budget across workers, so a single-scenario `dtc run --threads N` (or
    // a one-request `/v2/evaluate` with `--eval-threads N`) gives the march
    // all N threads while a wide batch stays at ~N total. Safe to derive
    // after keying: thread counts are excluded from cache identity because
    // the kernels are bit-identical at every value (`dtc_markov::par`).
    if eval.solver.threads == 0 {
        eval.solver.threads = (opts.threads.max(1) / threads).max(1);
    }
    let resolved: Mutex<Vec<Option<Resolved>>> = Mutex::new(vec![None; uniques.len()]);
    let next = AtomicUsize::new(0);
    // Batch-scoped structure pool: grid cells usually differ only in rates
    // (same places/transitions/arcs), so after the first cache miss of each
    // structural group explores, every later miss in the group re-rates
    // that structure instead of re-exploring (bit-identical results, see
    // `dtc_core::sweep::evaluate_all_shared`). Purely an execution detail:
    // cache keys and report bytes are unchanged.
    let registry = StructureRegistry::new();
    // When the calling thread has a request trace installed, carry it into
    // the scoped workers so their solver spans land in the same tree.
    let tracing = dtc_obs::trace::current();
    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let _trace_guard = tracing.as_ref().map(|t| t.install());
                loop {
                    let u = next.fetch_add(1, Ordering::Relaxed);
                    if u >= uniques.len() {
                        break;
                    }
                    let i = uniques[u];
                    let (key, canonical) = &keyed[i];
                    let _scenario_span = dtc_obs::trace::trace_span("scenario");
                    dtc_obs::trace::attr_str("name", &scenarios[i].name);
                    let outcome = cache.get_or_compute(key, canonical, || {
                        evaluate_all_shared(
                            &scenarios[i].spec,
                            &opts.analyses,
                            &eval,
                            &registry,
                        )
                        .map(Arc::new)
                    });
                    dtc_obs::trace::event(
                        "cache_lookup",
                        &[
                            (
                                "outcome",
                                match outcome.1 {
                                    Fetch::Hit => "hit",
                                    Fetch::Computed => "miss",
                                    Fetch::Joined => "join",
                                }
                                .into(),
                            ),
                            ("key", key.0.as_str().into()),
                        ],
                    );
                    let mut slots = resolved.lock().expect("resolved mutex poisoned");
                    slots[u] = Some(outcome);
                }
            });
        }
    });
    let solve_time = t0.elapsed();
    let resolved = resolved.into_inner().expect("resolved mutex poisoned");

    // Assemble outcomes: representatives first, then duplicates copy them.
    let mut evaluated = 0usize;
    let mut cached = 0usize;
    let mut outcomes: Vec<Option<Outcome>> = vec![None; scenarios.len()];
    for (u, &i) in uniques.iter().enumerate() {
        let (reports, fetch) =
            resolved[u].clone().expect("every unique slot resolved by the pool");
        let provenance = match fetch {
            Fetch::Computed => {
                evaluated += 1;
                Provenance::Evaluated
            }
            Fetch::Hit | Fetch::Joined => {
                cached += 1;
                Provenance::Cached
            }
        };
        outcomes[i] = Some(Outcome {
            index: i,
            name: scenarios[i].name.clone(),
            key: keyed[i].0.clone(),
            provenance,
            reports,
        });
    }
    for (i, &rep) in representative.iter().enumerate() {
        if rep == i {
            continue;
        }
        let reports = outcomes[rep]
            .as_ref()
            .expect("representatives are resolved before duplicates")
            .reports
            .clone();
        outcomes[i] = Some(Outcome {
            index: i,
            name: scenarios[i].name.clone(),
            key: keyed[i].0.clone(),
            provenance: Provenance::Deduplicated,
            reports,
        });
    }

    BatchResult {
        outcomes: outcomes.into_iter().map(|o| o.expect("all indices planned")).collect(),
        evaluated,
        deduplicated,
        cached,
        cache_stats: cache.stats(),
        solve_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_core::params::{ComponentParams, VmParams};
    use dtc_core::system::{CloudSystemSpec, DataCenterSpec, PmSpec};

    fn tiny(mttf: f64) -> CloudSystemSpec {
        CloudSystemSpec {
            ospm: ComponentParams::new(mttf, 12.0),
            vm: VmParams { mttf_hours: 2880.0, mttr_hours: 0.5, start_hours: 0.1 },
            data_centers: vec![DataCenterSpec {
                label: "1".into(),
                pms: vec![PmSpec::hot(1, 1)],
                disaster: None,
                nas_net: None,
                backup_inbound_mtt_hours: None,
            }],
            backup: None,
            direct_mtt_hours: vec![vec![None]],
            min_running_vms: 1,
            migration_threshold: 1,
        }
    }

    fn scenario(name: &str, spec: CloudSystemSpec) -> Scenario {
        Scenario {
            name: name.into(),
            spec,
            secondary: None,
            alpha: None,
            disaster_years: None,
            machines: None,
            is_baseline: false,
            expect_availability: None,
        }
    }

    #[test]
    fn dedup_folds_identical_specs_with_identical_output() {
        let batch = vec![
            scenario("a", tiny(1000.0)),
            scenario("b", tiny(2000.0)),
            scenario("a-again", tiny(1000.0)),
            scenario("a-thrice", tiny(1000.0)),
        ];
        let cache = std::sync::Arc::new(EvalCache::in_memory());
        let result = run_batch(&batch, &cache, &RunOptions::default());
        assert_eq!(result.evaluated, 2, "only two unique specs solved");
        assert_eq!(result.deduplicated, 2);
        assert!(result.total_hits() >= 2, "shared specs count as hits");
        let a = result.outcomes[0].reports.as_ref().unwrap();
        let a2 = result.outcomes[2].reports.as_ref().unwrap();
        let a3 = result.outcomes[3].reports.as_ref().unwrap();
        assert_eq!(a, a2, "deduplicated output must be bit-identical");
        assert_eq!(a, a3);
        assert_eq!(result.outcomes[2].provenance, Provenance::Deduplicated);
        assert_ne!(
            result.outcomes[0].steady().unwrap().availability,
            result.outcomes[1].steady().unwrap().availability
        );
    }

    #[test]
    fn second_run_is_all_cache_hits() {
        let batch = vec![scenario("a", tiny(1000.0)), scenario("b", tiny(2000.0))];
        let cache = std::sync::Arc::new(EvalCache::in_memory());
        let first = run_batch(&batch, &cache, &RunOptions::default());
        assert_eq!(first.evaluated, 2);
        assert_eq!(first.cached, 0);

        let second = run_batch(&batch, &cache, &RunOptions::default());
        assert_eq!(second.evaluated, 0, "everything served from cache");
        assert_eq!(second.cached, 2);
        for (x, y) in first.outcomes.iter().zip(&second.outcomes) {
            assert_eq!(
                x.reports.as_ref().unwrap(),
                y.reports.as_ref().unwrap(),
                "cached output identical"
            );
            assert_eq!(y.provenance, Provenance::Cached);
        }
    }

    #[test]
    fn different_eval_options_do_not_share_cache_entries() {
        let batch = vec![scenario("a", tiny(1000.0))];
        let cache = std::sync::Arc::new(EvalCache::in_memory());
        run_batch(&batch, &cache, &RunOptions::default());
        let mut opts = RunOptions::default();
        opts.eval.method = dtc_markov::Method::Power;
        let r = run_batch(&batch, &cache, &opts);
        assert_eq!(r.cached, 0, "different solver, different key");
        assert_eq!(r.evaluated, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn multi_analysis_batches_fan_out_the_report_union() {
        let batch = vec![scenario("a", tiny(1000.0))];
        let cache = std::sync::Arc::new(EvalCache::in_memory());
        let opts = RunOptions {
            analyses: vec![
                AnalysisRequest::SteadyState,
                AnalysisRequest::Mttsf,
                AnalysisRequest::CapacityThresholds,
            ],
            ..RunOptions::default()
        };
        let result = run_batch(&batch, &cache, &opts);
        let reports = result.outcomes[0].reports.as_ref().unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].kind(), "steady_state");
        assert_eq!(reports[1].kind(), "mttsf");
        assert_eq!(reports[2].kind(), "capacity_thresholds");
        assert!(result.outcomes[0].steady().is_some());

        // A different analysis set is a different cache identity…
        let single = run_batch(&batch, &cache, &RunOptions::default());
        assert_eq!(single.evaluated, 1, "steady-only set does not share the 3-set entry");
        assert_eq!(cache.len(), 2);
        // …while re-running the same set is a pure hit.
        let again = run_batch(&batch, &cache, &opts);
        assert_eq!(again.evaluated, 0);
        assert_eq!(again.cached, 1);
        assert_eq!(again.outcomes[0].reports.as_ref().unwrap(), reports);
    }

    #[test]
    fn failures_propagate_and_are_not_cached() {
        let mut bad = tiny(1000.0);
        bad.min_running_vms = 99;
        let batch = vec![
            scenario("ok", tiny(1000.0)),
            scenario("bad", bad.clone()),
            scenario("bad-again", bad),
        ];
        let cache = std::sync::Arc::new(EvalCache::in_memory());
        let result = run_batch(&batch, &cache, &RunOptions::default());
        assert!(result.outcomes[0].reports.is_ok());
        assert!(result.outcomes[1].reports.is_err());
        assert!(
            result.outcomes[2].reports.is_err(),
            "duplicates of a failing spec fail identically"
        );
        assert_eq!(cache.len(), 1, "only the success is memoized");

        // Re-running re-attempts the failure (it was never cached) …
        let again = run_batch(&batch, &cache, &RunOptions::default());
        assert_eq!(again.evaluated, 1);
        assert!(again.outcomes[1].reports.is_err());
    }
}
