//! # dtc-engine — declarative scenarios, evaluation cache, and the `dtc` CLI
//!
//! The scenario engine turns the DSN'13 reproduction into a general
//! evaluation tool. Three pieces:
//!
//! * **Declarative catalogs** ([`catalog`]): a TOML/JSON schema for
//!   describing cloud systems — built-in cities or raw lat/lon sites,
//!   hot/warm PM pools, disaster/backup/WAN parameters — with parameter
//!   grids (`alpha = [0.35, 0.40, 0.45]`) that expand into scenario
//!   batches. The paper's Table VII and Figure 7 ship as bundled catalogs
//!   ([`catalogs`]).
//! * **A content-addressed evaluation cache** ([`hash`], [`cache`]):
//!   stable structural hashes of compiled specs key memoized
//!   availability reports, in memory and optionally on disk, so repeated
//!   sweep points and re-runs skip the ~10⁵-state CTMC solve entirely.
//! * **The `dtc` CLI** ([`cli`]): `dtc run catalog.toml --format csv`,
//!   `dtc table7`, `dtc fig7`, `dtc validate`.
//!
//! The executor ([`executor`]) combines the pieces: it dedups identical
//! specs before fanning out over the parallel sweep harness and reports
//! cache hit/miss counts.
//!
//! ```no_run
//! use dtc_engine::prelude::*;
//!
//! let catalog = Catalog::from_toml_str(r#"
//!     [catalog]
//!     name = "demo"
//!
//!     [[scenario]]
//!     name = "pair"
//!     kind = "two_dc"
//!     secondary = ["Brasilia", "Tokio"]
//!     alpha = [0.35, 0.45]
//! "#)?;
//! let scenarios = catalog.expand()?;
//! let cache = std::sync::Arc::new(EvalCache::in_memory());
//! let result = run_batch(&scenarios, &cache, &RunOptions::default());
//! println!("{}", render(&scenarios, &result, Format::Table));
//! # Ok::<(), dtc_engine::EngineError>(())
//! ```
//!
//! The offline workspace cannot depend on `serde`/`toml`/`serde_json`;
//! [`value`] and [`toml`] provide the self-contained parsing and
//! serialization layer instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod cli;
pub mod error;
pub mod executor;
pub mod hash;
pub mod output;
pub mod toml;
pub mod value;

pub use cache::{
    analysis_report_from_value, analysis_report_to_value, CacheStats, EvalCache, EvalResult,
    Fetch,
};
pub use catalog::{
    analyses_to_value, parse_analyses, parse_search_section, search_to_value, Catalog,
    Scenario, ScenarioTemplate, SearchConfig,
};
pub use error::{EngineError, Result};
pub use executor::{run_batch, BatchResult, Outcome, Provenance, RunOptions};
pub use hash::{canonical_encoding, canonical_encoding_with, spec_key, SpecKey};
pub use output::{render, render_summary, results_to_value, Format};

/// The paper's catalogs, bundled into the binary.
pub mod catalogs {
    use crate::catalog::Catalog;

    /// TOML source of the Table VII catalog.
    pub const TABLE7_TOML: &str = include_str!("../catalogs/table7.toml");
    /// TOML source of the Figure 7 catalog.
    pub const FIG7_TOML: &str = include_str!("../catalogs/fig7.toml");

    /// The paper's Table VII (eight baseline architectures).
    pub fn table7() -> Catalog {
        Catalog::from_toml_str(TABLE7_TOML).expect("bundled table7 catalog parses")
    }

    /// The paper's Figure 7 sweep (45 configurations).
    pub fn fig7() -> Catalog {
        Catalog::from_toml_str(FIG7_TOML).expect("bundled fig7 catalog parses")
    }
}

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::cache::{CacheStats, EvalCache, EvalResult, Fetch};
    pub use crate::catalog::{parse_analyses, Catalog, Scenario, SearchConfig};
    pub use crate::executor::{run_batch, BatchResult, Provenance, RunOptions};
    pub use crate::hash::{canonical_encoding, canonical_encoding_with, spec_key, SpecKey};
    pub use crate::output::{render, render_summary, results_to_value, Format};
    pub use crate::{EngineError, Result};
    pub use dtc_core::analysis::{AnalysisReport, AnalysisRequest};
}

#[cfg(test)]
mod tests {
    #[test]
    fn bundled_catalogs_parse() {
        assert_eq!(super::catalogs::table7().templates.len(), 8);
        assert_eq!(super::catalogs::fig7().templates.len(), 1);
    }
}
