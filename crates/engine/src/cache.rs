//! The content-addressed evaluation cache.
//!
//! Maps [`SpecKey`]s (structural hashes of spec + evaluation options +
//! analysis set) to memoized analysis-report sets
//! ([`Vec<AnalysisReport>`]). Lives in memory, with an optional on-disk
//! JSON store so repeated `dtc` invocations skip re-exploring state spaces
//! entirely. Lookups verify the stored canonical encoding, so a hash
//! collision degrades to a miss, never to a wrong answer.
//!
//! The store format is **version 2** (entries carry the full report
//! union); version-1 stores — which held a single steady-state report per
//! entry — are migrated on load: each old entry becomes a
//! `[steady_state]`-set entry under its re-derived v2 key, so previously
//! solved steady-state results stay warm.
//!
//! Two properties make the cache safe to share across a long-running
//! concurrent server ([`dtc-serve`]):
//!
//! * **Single-flight evaluation** ([`EvalCache::get_or_compute`]):
//!   concurrent requests for the same key block on one in-progress solve
//!   instead of racing duplicate ~10⁵-state CTMC solves. Exactly one
//!   caller computes; the rest wait and share the result.
//! * **Bounded residency** ([`EvalCache::with_max_entries`]): an optional
//!   entry cap with oldest-insertion-first eviction, counted in
//!   [`CacheStats::evictions`], so resident memory cannot grow without
//!   limit.
//!
//! [`dtc-serve`]: https://docs.rs/dtc-serve

use crate::error::{EngineError, Result};
use crate::hash::{encode_analyses, key_of_encoding, SpecKey};
use crate::value::Value;
use dtc_core::analysis::{AnalysisReport, AnalysisRequest};
use dtc_core::economics::CostBreakdown;
use dtc_core::metrics::AvailabilityReport;
use dtc_core::params::{downtime_hours_per_year, nines};
use dtc_core::sensitivity::{Parameter, SensitivityRow};
use dtc_core::CloudError;
use dtc_markov::{Method, SolveStats};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Hit/miss counters and current size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered without running a solve (stored entries plus
    /// followers that joined an in-flight solve).
    pub hits: usize,
    /// Lookups that required an evaluation.
    pub misses: usize,
    /// Entries currently stored.
    pub entries: usize,
    /// Entries dropped by the max-entries cap since construction.
    pub evictions: usize,
    /// Followers that joined another caller's in-flight solve (a subset of
    /// `hits`): the single-flight savings counter.
    pub joins: usize,
    /// Scenarios submitted through batch runs (`run_batch` candidates,
    /// including design-search sweeps) since construction.
    pub batch_candidates: usize,
    /// Distinct spec keys among those batch candidates: the in-batch dedup
    /// effectiveness denominator. A frontier re-run adds candidates without
    /// adding distinct specs, so the gap is the dedup + cache savings.
    pub batch_distinct: usize,
}

#[derive(Debug, Clone)]
struct Entry {
    canonical: String,
    /// Shared with every hit: report unions can carry whole curves, so
    /// cache hits hand out `Arc` clones instead of deep-copying.
    reports: Arc<Vec<AnalysisReport>>,
    /// Monotone insertion stamp; the smallest is evicted first.
    seq: u64,
}

/// How [`EvalCache::get_or_compute`] obtained its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fetch {
    /// Served from a stored entry.
    Hit,
    /// Waited on another caller's in-progress solve and shared its result.
    Joined,
    /// This caller ran the solve.
    Computed,
}

/// The result type flowing through single-flight evaluation: the full
/// analysis-report union, in request order, behind an [`Arc`] so cache
/// hits and joined flights share one allocation.
pub type EvalResult = std::result::Result<Arc<Vec<AnalysisReport>>, CloudError>;

/// One in-progress solve that concurrent callers can rendezvous on.
#[derive(Debug)]
struct Flight {
    canonical: String,
    state: Mutex<Option<EvalResult>>,
    done: Condvar,
}

impl Flight {
    fn new(canonical: &str) -> Flight {
        Flight {
            canonical: canonical.to_string(),
            state: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn resolve(&self, result: EvalResult) {
        let mut state = self.state.lock().expect("flight mutex poisoned");
        if state.is_none() {
            *state = Some(result);
        }
        self.done.notify_all();
    }

    fn wait(&self) -> EvalResult {
        let mut state = self.state.lock().expect("flight mutex poisoned");
        loop {
            match &*state {
                Some(result) => return result.clone(),
                None => state = self.done.wait(state).expect("flight mutex poisoned"),
            }
        }
    }
}

/// Resolves an abandoned flight if the leader's compute panics, so
/// followers get a [`CloudError::Panicked`] instead of blocking forever.
struct FlightGuard<'a> {
    cache: &'a EvalCache,
    key: &'a str,
    flight: Arc<Flight>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.flight.resolve(Err(CloudError::Panicked(
                "single-flight leader panicked before resolving".into(),
            )));
            self.cache.remove_flight(self.key);
        }
    }
}

/// A concurrent evaluation cache with an optional JSON backing file.
#[derive(Debug)]
pub struct EvalCache {
    map: Mutex<BTreeMap<String, Entry>>,
    flights: Mutex<HashMap<String, Arc<Flight>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    joins: AtomicUsize,
    batch_candidates: AtomicUsize,
    batch_distinct: AtomicUsize,
    seq: AtomicU64,
    max_entries: Option<usize>,
    store: Option<PathBuf>,
}

impl EvalCache {
    /// A purely in-memory cache.
    pub fn in_memory() -> EvalCache {
        EvalCache {
            map: Mutex::new(BTreeMap::new()),
            flights: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            joins: AtomicUsize::new(0),
            batch_candidates: AtomicUsize::new(0),
            batch_distinct: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            max_entries: None,
            store: None,
        }
    }

    /// Caps resident entries; inserting past the cap evicts the
    /// oldest-inserted entry first. A cap of 0 means "no limit" (a cache
    /// that can hold nothing is never useful).
    ///
    /// Entries already present — e.g. loaded by [`EvalCache::with_store`]
    /// from an over-cap store file — are trimmed immediately, so the cache
    /// is bounded from construction on, never only after the first insert.
    pub fn with_max_entries(mut self, cap: usize) -> EvalCache {
        self.max_entries = (cap > 0).then_some(cap);
        let mut map = self.map.lock().expect("cache mutex poisoned");
        self.enforce_cap_locked(&mut map);
        drop(map);
        self
    }

    /// A cache backed by a JSON file; existing entries are loaded, and
    /// [`EvalCache::persist`] writes the current contents back.
    ///
    /// Errors on an unreadable or invalid store; use
    /// [`EvalCache::fresh_store`] to start over while keeping the path.
    pub fn with_store(path: impl Into<PathBuf>) -> Result<EvalCache> {
        let path = path.into();
        let cache = EvalCache::in_memory();
        if path.exists() {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| EngineError::Io(format!("{}: {e}", path.display())))?;
            cache.load_json(&text)?;
        }
        Ok(EvalCache { store: Some(path), ..cache })
    }

    /// A cache that will persist to `path` without loading whatever is
    /// there now — the recovery path when the store file is corrupt.
    pub fn fresh_store(path: impl Into<PathBuf>) -> EvalCache {
        EvalCache { store: Some(path.into()), ..EvalCache::in_memory() }
    }

    /// The forgiving open both the CLI and the server use: no path means
    /// in-memory, a corrupt store warns on stderr and is replaced on the
    /// next persist (instead of wedging every subsequent run), and an
    /// optional max-entries cap is applied — trimming an over-cap store
    /// right away.
    pub fn open_lenient(path: Option<PathBuf>, cap: Option<usize>) -> EvalCache {
        let cache = match path {
            Some(path) => match EvalCache::with_store(path.clone()) {
                Ok(cache) => cache,
                Err(e) => {
                    dtc_obs::log::warn(
                        "dtc-engine",
                        "ignoring unusable cache store",
                        &[
                            ("path", path.display().to_string().into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                    EvalCache::fresh_store(path)
                }
            },
            None => EvalCache::in_memory(),
        };
        match cap {
            Some(cap) => cache.with_max_entries(cap),
            None => cache,
        }
    }

    /// Collision-checked lookup without touching the hit/miss counters.
    fn lookup(&self, key: &SpecKey, canonical: &str) -> Option<Arc<Vec<AnalysisReport>>> {
        let map = self.map.lock().expect("cache mutex poisoned");
        match map.get(&key.0) {
            Some(e) if e.canonical == canonical => Some(Arc::clone(&e.reports)),
            _ => None,
        }
    }

    /// Looks up a report set. The canonical encoding must match the stored
    /// one for a hit (collision safety).
    pub fn get(&self, key: &SpecKey, canonical: &str) -> Option<Arc<Vec<AnalysisReport>>> {
        match self.lookup(key, canonical) {
            Some(reports) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(reports)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts into a locked map, enforcing the entry cap by evicting the
    /// oldest-inserted entries first.
    fn insert_locked(
        &self,
        map: &mut BTreeMap<String, Entry>,
        key: String,
        canonical: &str,
        reports: Arc<Vec<AnalysisReport>>,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        map.insert(key, Entry { canonical: canonical.to_string(), reports, seq });
        self.enforce_cap_locked(map);
    }

    fn enforce_cap_locked(&self, map: &mut BTreeMap<String, Entry>) {
        let Some(cap) = self.max_entries else { return };
        while map.len() > cap {
            let oldest = map
                .iter()
                .min_by_key(|(_, e)| e.seq)
                .map(|(k, _)| k.clone())
                .expect("map is non-empty past the cap");
            map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Stores a report set under its key, evicting the oldest entry if a
    /// max-entries cap is configured and exceeded. Accepts a plain `Vec`
    /// or an already-shared `Arc`.
    pub fn put(
        &self,
        key: &SpecKey,
        canonical: &str,
        reports: impl Into<Arc<Vec<AnalysisReport>>>,
    ) {
        let mut map = self.map.lock().expect("cache mutex poisoned");
        self.insert_locked(&mut map, key.0.clone(), canonical, reports.into());
    }

    fn remove_flight(&self, key: &str) {
        self.flights.lock().expect("flight map poisoned").remove(key);
    }

    /// Single-flight evaluation: returns the stored report if present,
    /// otherwise ensures `compute` runs **exactly once** per key across all
    /// concurrent callers — one leader solves while followers block and
    /// share its result (errors included, though errors are never stored,
    /// so a later call retries).
    ///
    /// The [`Fetch`] tag reports which path was taken. `Hit` and `Joined`
    /// count as cache hits; only the leader's `Computed` counts a miss.
    pub fn get_or_compute<F>(
        &self,
        key: &SpecKey,
        canonical: &str,
        compute: F,
    ) -> (EvalResult, Fetch)
    where
        F: FnOnce() -> EvalResult,
    {
        if let Some(report) = self.lookup(key, canonical) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Ok(report), Fetch::Hit);
        }
        let (flight, leading) = {
            let mut flights = self.flights.lock().expect("flight map poisoned");
            match flights.get(&key.0) {
                // A different canonical under the same key is a hash
                // collision mid-flight: solve independently rather than
                // sharing a result for a different spec.
                Some(f) if f.canonical != canonical => {
                    drop(flights);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let result = compute();
                    if let Ok(reports) = &result {
                        self.put(key, canonical, reports.clone());
                    }
                    return (result, Fetch::Computed);
                }
                Some(f) => (Arc::clone(f), false),
                None => {
                    // Re-check the store while holding the flights lock: a
                    // leader that finished between our lookup miss and here
                    // has already done put() (before remove_flight), so
                    // flight-absent + entry-present is a reliable hit.
                    // Without this, that window would mint a duplicate
                    // leader and re-solve the key.
                    if let Some(report) = self.lookup(key, canonical) {
                        drop(flights);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return (Ok(report), Fetch::Hit);
                    }
                    let f = Arc::new(Flight::new(canonical));
                    flights.insert(key.0.clone(), Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if leading {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let mut guard = FlightGuard {
                cache: self,
                key: &key.0,
                flight: Arc::clone(&flight),
                armed: true,
            };
            let result = compute();
            if let Ok(reports) = &result {
                self.put(key, canonical, reports.clone());
            }
            flight.resolve(result.clone());
            self.remove_flight(&key.0);
            guard.armed = false;
            (result, Fetch::Computed)
        } else {
            let result = flight.wait();
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.joins.fetch_add(1, Ordering::Relaxed);
            (result, Fetch::Joined)
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache mutex poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stored keys, in key order.
    pub fn keys(&self) -> Vec<String> {
        self.map.lock().expect("cache mutex poisoned").keys().cloned().collect()
    }

    /// Drops every stored entry (counters are kept), returning how many
    /// were removed. Persisting afterwards writes an empty store.
    pub fn clear(&self) -> usize {
        let mut map = self.map.lock().expect("cache mutex poisoned");
        let n = map.len();
        map.clear();
        n
    }

    /// Records one batch submission: `candidates` scenarios of which
    /// `distinct` had unique spec keys. [`crate::executor::run_batch`]
    /// calls this so `dtc cache stats` and `/v1/stats` can report
    /// search-batch dedup effectiveness.
    pub fn note_batch(&self, candidates: usize, distinct: usize) {
        self.batch_candidates.fetch_add(candidates, Ordering::Relaxed);
        self.batch_distinct.fetch_add(distinct, Ordering::Relaxed);
    }

    /// Counters plus current size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
            evictions: self.evictions.load(Ordering::Relaxed),
            joins: self.joins.load(Ordering::Relaxed),
            batch_candidates: self.batch_candidates.load(Ordering::Relaxed),
            batch_distinct: self.batch_distinct.load(Ordering::Relaxed),
        }
    }

    /// Where this cache persists to, if anywhere.
    pub fn store_path(&self) -> Option<&Path> {
        self.store.as_deref()
    }

    /// Writes the store file, if one was configured.
    ///
    /// Entries written to the file by other processes since our load are
    /// merged in first (our entries win on key conflicts), so concurrent
    /// invocations sharing one store extend it instead of overwriting each
    /// other; a corrupt concurrent state is simply replaced. The write goes
    /// through a temp file + rename, so a crash mid-persist cannot leave a
    /// truncated store. The read-merge-write sequence itself is not atomic:
    /// two processes persisting at the same instant can still drop the
    /// slower one's new entries — a re-solve on the next run, never a wrong
    /// answer.
    pub fn persist(&self) -> Result<()> {
        let Some(path) = &self.store else { return Ok(()) };
        let _persist_span = dtc_obs::trace::trace_span("cache_persist");
        if let Ok(text) = std::fs::read_to_string(path) {
            let _ = self.load_json_keeping_existing(&text);
        }
        let json = self.to_json();
        dtc_obs::trace::attr_int("entries", self.len() as i64);
        dtc_obs::trace::attr_int("bytes", json.len() as i64);
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, json)
            .map_err(|e| EngineError::Io(format!("{}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| EngineError::Io(format!("{}: {e}", path.display())))
    }

    /// Serializes every entry to the store's JSON schema (version 2).
    pub fn to_json(&self) -> String {
        let map = self.map.lock().expect("cache mutex poisoned");
        let entries: Vec<Value> = map
            .iter()
            .map(|(key, e)| {
                let mut t = BTreeMap::new();
                t.insert("key".into(), Value::Str(key.clone()));
                t.insert("canonical".into(), Value::Str(e.canonical.clone()));
                t.insert(
                    "reports".into(),
                    Value::Array(e.reports.iter().map(analysis_report_to_value).collect()),
                );
                Value::Table(t)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert("version".into(), Value::Int(2));
        root.insert("entries".into(), Value::Array(entries));
        Value::Table(root).to_json()
    }

    /// Merges entries from a JSON store document into this cache,
    /// overwriting entries with colliding keys.
    pub fn load_json(&self, text: &str) -> Result<()> {
        self.merge_json(text, true)
    }

    /// Like [`EvalCache::load_json`], but entries already in memory win on
    /// key conflicts (used when merging concurrent writers at persist
    /// time).
    pub fn load_json_keeping_existing(&self, text: &str) -> Result<()> {
        self.merge_json(text, false)
    }

    fn merge_json(&self, text: &str, overwrite: bool) -> Result<()> {
        let root = Value::from_json(text)?;
        let version = match root.get("version").and_then(|v| v.as_i64()) {
            Some(v @ (1 | 2)) => v,
            v => {
                return Err(EngineError::Schema(format!(
                    "unsupported cache store version {v:?}"
                )))
            }
        };
        let entries = root
            .get("entries")
            .and_then(|v| v.as_array())
            .ok_or_else(|| EngineError::Schema("cache store has no entries array".into()))?;
        let mut map = self.map.lock().expect("cache mutex poisoned");
        for e in entries {
            let canonical = e
                .get("canonical")
                .and_then(|v| v.as_str())
                .ok_or_else(|| EngineError::Schema("cache entry missing canonical".into()))?;
            let (key, canonical, reports) = if version == 1 {
                // Migration: a v1 entry held one steady-state report keyed
                // by spec + options only. Re-key it as the v2
                // `[steady_state]` analysis set so the old solve stays
                // warm for steady-state-only requests.
                let report = report_from_value(e.get("report").ok_or_else(|| {
                    EngineError::Schema("cache entry missing report".into())
                })?)?;
                let mut canonical = canonical.to_string();
                encode_analyses(&mut canonical, &[AnalysisRequest::SteadyState]);
                let key = key_of_encoding(&canonical).0;
                (key, canonical, vec![AnalysisReport::SteadyState(report)])
            } else {
                let key = e
                    .get("key")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| EngineError::Schema("cache entry missing key".into()))?;
                let reports = e
                    .get("reports")
                    .and_then(|v| v.as_array())
                    .ok_or_else(|| EngineError::Schema("cache entry missing reports".into()))?
                    .iter()
                    .map(analysis_report_from_value)
                    .collect::<Result<Vec<_>>>()?;
                (key.to_string(), canonical.to_string(), reports)
            };
            if !overwrite && map.contains_key(&key) {
                continue;
            }
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            map.insert(key, Entry { canonical, reports: Arc::new(reports), seq });
        }
        self.enforce_cap_locked(&mut map);
        Ok(())
    }
}

fn method_name(m: Method) -> &'static str {
    match m {
        Method::Power => "power",
        Method::Jacobi => "jacobi",
        Method::GaussSeidel => "gauss-seidel",
        Method::Sor => "sor",
        Method::Direct => "direct",
    }
}

/// Parses a solver-method name (the [`Method`] `Display` form).
pub fn method_from_name(name: &str) -> Option<Method> {
    match name {
        "power" => Some(Method::Power),
        "jacobi" => Some(Method::Jacobi),
        "gauss-seidel" => Some(Method::GaussSeidel),
        "sor" => Some(Method::Sor),
        "direct" => Some(Method::Direct),
        _ => None,
    }
}

fn floats_to_value(xs: &[f64]) -> Value {
    Value::Array(xs.iter().map(|&x| Value::Float(x)).collect())
}

fn floats_from_value(v: &Value, key: &str, ctx: &str) -> Result<Vec<f64>> {
    let items = v
        .get(key)
        .and_then(|x| x.as_array())
        .ok_or_else(|| EngineError::Schema(format!("{ctx}: missing float array {key}")))?;
    items
        .iter()
        .map(|x| {
            x.as_f64().ok_or_else(|| {
                EngineError::Schema(format!("{ctx}: non-numeric entry in {key}"))
            })
        })
        .collect()
}

/// Serializes one [`AnalysisReport`] variant for the v2 store and the JSON
/// output/HTTP layers. Every object carries a `"kind"` discriminator.
pub fn analysis_report_to_value(r: &AnalysisReport) -> Value {
    let mut t = BTreeMap::new();
    t.insert("kind".into(), Value::Str(r.kind().into()));
    match r {
        AnalysisReport::SteadyState(report) => match report_to_value(report) {
            Value::Table(fields) => t.extend(fields),
            _ => unreachable!("report_to_value returns a table"),
        },
        AnalysisReport::Transient { time_points, availability } => {
            t.insert("time_points".into(), floats_to_value(time_points));
            t.insert("availability".into(), floats_to_value(availability));
        }
        AnalysisReport::Interval { horizon_hours, availability } => {
            t.insert("horizon_hours".into(), Value::Float(*horizon_hours));
            t.insert("availability".into(), Value::Float(*availability));
        }
        AnalysisReport::Mttsf { hours } => {
            t.insert("hours".into(), Value::Float(*hours));
        }
        AnalysisReport::CapacityThresholds { availability } => {
            t.insert("availability".into(), floats_to_value(availability));
        }
        AnalysisReport::Cost { breakdown } => {
            t.insert("downtime".into(), Value::Float(breakdown.downtime));
            t.insert("infrastructure".into(), Value::Float(breakdown.infrastructure));
            t.insert("total".into(), Value::Float(breakdown.total()));
        }
        AnalysisReport::Simulation { mean, half_width, replications, confidence } => {
            t.insert("mean".into(), Value::Float(*mean));
            t.insert("half_width".into(), Value::Float(*half_width));
            t.insert("replications".into(), Value::Int(*replications as i64));
            t.insert("confidence".into(), Value::Float(*confidence));
        }
        AnalysisReport::Sensitivity { rel_step, rows } => {
            t.insert("rel_step".into(), Value::Float(*rel_step));
            let rows: Vec<Value> = rows
                .iter()
                .map(|r| {
                    let mut row = BTreeMap::new();
                    // The stable key is authoritative (and parsed back);
                    // the label is a human-readable convenience for JSON
                    // consumers.
                    row.insert("parameter".into(), Value::Str(r.parameter.key()));
                    row.insert("label".into(), Value::Str(r.parameter.to_string()));
                    row.insert("base_value".into(), Value::Float(r.base_value));
                    row.insert("elasticity".into(), Value::Float(r.elasticity));
                    row.insert(
                        "unavailability_shift".into(),
                        Value::Float(r.unavailability_shift),
                    );
                    Value::Table(row)
                })
                .collect();
            t.insert("rows".into(), Value::Array(rows));
        }
    }
    Value::Table(t)
}

/// Inverse of [`analysis_report_to_value`].
pub fn analysis_report_from_value(v: &Value) -> Result<AnalysisReport> {
    let ctx = "cache analysis report";
    let f = |key: &str| -> Result<f64> {
        v.get(key)
            .and_then(|x| x.as_f64())
            .ok_or_else(|| EngineError::Schema(format!("{ctx}: missing {key}")))
    };
    let kind = v
        .get("kind")
        .and_then(|x| x.as_str())
        .ok_or_else(|| EngineError::Schema(format!("{ctx}: missing kind")))?;
    Ok(match kind {
        "steady_state" => AnalysisReport::SteadyState(report_from_value(v)?),
        "transient" => AnalysisReport::Transient {
            time_points: floats_from_value(v, "time_points", ctx)?,
            availability: floats_from_value(v, "availability", ctx)?,
        },
        "interval" => AnalysisReport::Interval {
            horizon_hours: f("horizon_hours")?,
            availability: f("availability")?,
        },
        "mttsf" => AnalysisReport::Mttsf { hours: f("hours")? },
        "capacity_thresholds" => AnalysisReport::CapacityThresholds {
            availability: floats_from_value(v, "availability", ctx)?,
        },
        "cost" => AnalysisReport::Cost {
            breakdown: CostBreakdown {
                downtime: f("downtime")?,
                infrastructure: f("infrastructure")?,
            },
        },
        "simulation" => AnalysisReport::Simulation {
            mean: f("mean")?,
            half_width: f("half_width")?,
            replications: v
                .get("replications")
                .and_then(|x| x.as_i64())
                .and_then(|x| usize::try_from(x).ok())
                .ok_or_else(|| EngineError::Schema(format!("{ctx}: missing replications")))?,
            confidence: f("confidence")?,
        },
        "sensitivity" => {
            let rows = v
                .get("rows")
                .and_then(|x| x.as_array())
                .ok_or_else(|| EngineError::Schema(format!("{ctx}: missing rows array")))?
                .iter()
                .map(|row| {
                    let rf = |key: &str| -> Result<f64> {
                        row.get(key).and_then(|x| x.as_f64()).ok_or_else(|| {
                            EngineError::Schema(format!("{ctx}: row missing {key}"))
                        })
                    };
                    let key =
                        row.get("parameter").and_then(|x| x.as_str()).ok_or_else(|| {
                            EngineError::Schema(format!("{ctx}: row missing parameter"))
                        })?;
                    let parameter = Parameter::from_key(key).ok_or_else(|| {
                        EngineError::Schema(format!("{ctx}: unknown parameter key {key:?}"))
                    })?;
                    Ok(SensitivityRow {
                        parameter,
                        base_value: rf("base_value")?,
                        elasticity: rf("elasticity")?,
                        unavailability_shift: rf("unavailability_shift")?,
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            AnalysisReport::Sensitivity { rel_step: f("rel_step")?, rows }
        }
        other => return Err(EngineError::Schema(format!("{ctx}: unknown kind {other:?}"))),
    })
}

/// Serializes a report for the store. `nines` and downtime are derived
/// fields recomputed on load, which keeps every stored number finite.
pub fn report_to_value(r: &AvailabilityReport) -> Value {
    let mut t = BTreeMap::new();
    t.insert("availability".into(), Value::Float(r.availability));
    t.insert("expected_running_vms".into(), Value::Float(r.expected_running_vms));
    t.insert(
        "capacity_oriented_availability".into(),
        Value::Float(r.capacity_oriented_availability),
    );
    t.insert("tangible_states".into(), Value::Int(r.tangible_states as i64));
    t.insert("edges".into(), Value::Int(r.edges as i64));
    t.insert("vanishing_markings".into(), Value::Int(r.vanishing_markings as i64));
    t.insert("solver_iterations".into(), Value::Int(r.solve.iterations as i64));
    t.insert("solver_residual".into(), Value::Float(r.solve.residual));
    t.insert("solver_method".into(), Value::Str(method_name(r.solve.method).into()));
    Value::Table(t)
}

/// Inverse of [`report_to_value`].
pub fn report_from_value(v: &Value) -> Result<AvailabilityReport> {
    let ctx = "cache report";
    let f = |key: &str| -> Result<f64> {
        v.get(key)
            .and_then(|x| x.as_f64())
            .ok_or_else(|| EngineError::Schema(format!("{ctx}: missing {key}")))
    };
    let u = |key: &str| -> Result<usize> {
        v.get(key)
            .and_then(|x| x.as_i64())
            .and_then(|x| usize::try_from(x).ok())
            .ok_or_else(|| EngineError::Schema(format!("{ctx}: missing {key}")))
    };
    let availability = f("availability")?;
    if !(0.0..=1.0).contains(&availability) {
        return Err(EngineError::Schema(format!(
            "{ctx}: availability {availability} outside [0, 1]"
        )));
    }
    let method = v
        .get("solver_method")
        .and_then(|x| x.as_str())
        .and_then(method_from_name)
        .ok_or_else(|| EngineError::Schema(format!("{ctx}: bad solver_method")))?;
    Ok(AvailabilityReport {
        availability,
        nines: nines(availability),
        downtime_hours_per_year: downtime_hours_per_year(availability),
        expected_running_vms: f("expected_running_vms")?,
        capacity_oriented_availability: f("capacity_oriented_availability")?,
        tangible_states: u("tangible_states")?,
        edges: u("edges")?,
        vanishing_markings: u("vanishing_markings")?,
        solve: SolveStats {
            iterations: u("solver_iterations")?,
            residual: f("solver_residual")?,
            method,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::key_of_encoding;
    use dtc_petri::reach::ReachStats;

    fn report(a: f64) -> AvailabilityReport {
        AvailabilityReport::new(
            a,
            3.9,
            4,
            ReachStats { tangible_states: 126_000, vanishing_markings: 40, edges: 500_000 },
            SolveStats { iterations: 321, residual: 4.2e-13, method: Method::GaussSeidel },
        )
    }

    /// A one-element steady-state report set (the common cache payload).
    fn set(a: f64) -> Arc<Vec<AnalysisReport>> {
        Arc::new(vec![AnalysisReport::SteadyState(report(a))])
    }

    #[test]
    fn get_put_and_stats() {
        let cache = EvalCache::in_memory();
        let key = key_of_encoding("canon-a");
        assert!(cache.get(&key, "canon-a").is_none());
        cache.put(&key, "canon-a", set(0.999));
        let hit = cache.get(&key, "canon-a").unwrap();
        assert_eq!(hit, set(0.999));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn collision_means_miss_not_wrong_answer() {
        let cache = EvalCache::in_memory();
        let key = key_of_encoding("canon-a");
        cache.put(&key, "canon-a", set(0.999));
        // Same key, different canonical form: must refuse.
        assert!(cache.get(&key, "canon-b").is_none());
    }

    #[test]
    fn report_round_trip_is_exact() {
        for a in [0.0, 0.5, 0.9997317, 1.0] {
            let r = report(a);
            let v = report_to_value(&r);
            let back = report_from_value(&Value::from_json(&v.to_json()).unwrap()).unwrap();
            assert_eq!(r, back, "availability {a}");
        }
    }

    #[test]
    fn analysis_report_union_round_trips_exactly() {
        let reports = vec![
            AnalysisReport::SteadyState(report(0.9997317)),
            AnalysisReport::Transient {
                time_points: vec![0.0, 24.0, 8760.0],
                availability: vec![1.0, 0.99991, 0.9973],
            },
            AnalysisReport::Interval { horizon_hours: 8760.0, availability: 0.99934 },
            AnalysisReport::Mttsf { hours: 1234.5678 },
            AnalysisReport::CapacityThresholds { availability: vec![1.0, 0.999, 0.99, 0.9] },
            AnalysisReport::Cost {
                breakdown: CostBreakdown { downtime: 23_500.0, infrastructure: 446_000.0 },
            },
            AnalysisReport::Simulation {
                mean: 0.9991,
                half_width: 0.0003,
                replications: 8,
                confidence: 0.95,
            },
            AnalysisReport::Sensitivity {
                rel_step: 0.05,
                rows: vec![
                    SensitivityRow {
                        parameter: Parameter::OspmMttr,
                        base_value: 12.0,
                        elasticity: -0.0123456789,
                        unavailability_shift: 1.2e-4,
                    },
                    SensitivityRow {
                        parameter: Parameter::DirectMtt(0, 1),
                        base_value: 3.25,
                        elasticity: 0.0004,
                        unavailability_shift: -4.0e-7,
                    },
                ],
            },
        ];
        for r in &reports {
            let v = analysis_report_to_value(r);
            let back =
                analysis_report_from_value(&Value::from_json(&v.to_json()).unwrap()).unwrap();
            assert_eq!(*r, back, "variant {}", r.kind());
        }
        assert!(analysis_report_from_value(&Value::object([(
            "kind",
            Value::Str("wat".into())
        )]))
        .is_err());
    }

    #[test]
    fn v1_store_migrates_to_steady_state_sets() {
        // A version-1 store entry: single steady-state report, keyed by
        // spec + options only.
        let v1_canonical = "v1;spec-bytes;opts:stuff";
        let mut entry = BTreeMap::new();
        entry.insert("key".into(), Value::Str(key_of_encoding(v1_canonical).0));
        entry.insert("canonical".into(), Value::Str(v1_canonical.into()));
        entry.insert("report".into(), report_to_value(&report(0.998)));
        let mut root = BTreeMap::new();
        root.insert("version".into(), Value::Int(1));
        root.insert("entries".into(), Value::Array(vec![Value::Table(entry)]));
        let text = Value::Table(root).to_json();

        let cache = EvalCache::in_memory();
        cache.load_json(&text).unwrap();
        assert_eq!(cache.len(), 1);

        // The migrated entry answers a v2 lookup for the [steady_state]
        // analysis set of the same spec + options.
        let mut v2_canonical = v1_canonical.to_string();
        encode_analyses(&mut v2_canonical, &[AnalysisRequest::SteadyState]);
        let key = key_of_encoding(&v2_canonical);
        let hit = cache.get(&key, &v2_canonical).expect("migrated entry is warm");
        assert_eq!(*hit, vec![AnalysisReport::SteadyState(report(0.998))]);

        // Persisting re-writes it as version 2; a reload round-trips.
        let rewritten = cache.to_json();
        assert!(rewritten.contains("\"version\":2"));
        let reloaded = EvalCache::in_memory();
        reloaded.load_json(&rewritten).unwrap();
        assert_eq!(reloaded.get(&key, &v2_canonical).unwrap(), hit);
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("dtc-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let _ = std::fs::remove_file(&path);

        let cache = EvalCache::with_store(&path).unwrap();
        let key = key_of_encoding("canon-x");
        cache.put(&key, "canon-x", set(0.995));
        cache.persist().unwrap();

        let reloaded = EvalCache::with_store(&path).unwrap();
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.get(&key, "canon-x").unwrap(), set(0.995));

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_writers_merge_at_persist() {
        let dir = std::env::temp_dir().join(format!("dtc-cache-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.json");
        let _ = std::fs::remove_file(&path);

        // Two processes load the same (empty) store…
        let a = EvalCache::with_store(&path).unwrap();
        let b = EvalCache::with_store(&path).unwrap();
        a.put(&key_of_encoding("spec-a"), "spec-a", set(0.99));
        b.put(&key_of_encoding("spec-b"), "spec-b", set(0.98));
        // …and persist one after the other: the second must keep the
        // first's entry instead of overwriting the file with its own view.
        a.persist().unwrap();
        b.persist().unwrap();

        let merged = EvalCache::with_store(&path).unwrap();
        assert_eq!(merged.len(), 2, "both writers' entries survive");
        assert!(merged.get(&key_of_encoding("spec-a"), "spec-a").is_some());
        assert!(merged.get(&key_of_encoding("spec-b"), "spec-b").is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fresh_store_ignores_corrupt_file_and_replaces_it() {
        let dir = std::env::temp_dir().join(format!("dtc-cache-fresh-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "garbage{").unwrap();

        assert!(EvalCache::with_store(&path).is_err(), "strict open rejects corruption");
        let cache = EvalCache::fresh_store(&path);
        assert!(cache.is_empty());
        cache.put(&key_of_encoding("x"), "x", set(0.9));
        cache.persist().unwrap();
        let reopened = EvalCache::with_store(&path).unwrap();
        assert_eq!(reopened.len(), 1, "corrupt store was replaced");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_store_rejected() {
        let cache = EvalCache::in_memory();
        assert!(cache.load_json("{\"version\":3,\"entries\":[]}").is_err());
        assert!(cache.load_json("not json").is_err());
        assert!(cache.load_json("{\"version\":1,\"entries\":[{\"key\":\"k\"}]}").is_err());
        assert!(
            cache
                .load_json("{\"version\":2,\"entries\":[{\"key\":\"k\",\"canonical\":\"c\"}]}")
                .is_err(),
            "v2 entries need a reports array"
        );
    }

    #[test]
    fn max_entries_evicts_oldest_first() {
        let cache = EvalCache::in_memory().with_max_entries(2);
        let (ka, kb, kc) = (key_of_encoding("a"), key_of_encoding("b"), key_of_encoding("c"));
        cache.put(&ka, "a", set(0.91));
        cache.put(&kb, "b", set(0.92));
        cache.put(&kc, "c", set(0.93));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&ka, "a").is_none(), "oldest entry evicted");
        assert!(cache.get(&kb, "b").is_some());
        assert!(cache.get(&kc, "c").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn with_max_entries_trims_preloaded_entries() {
        // e.g. an over-cap disk store loaded before the cap is applied.
        let cache = EvalCache::in_memory();
        for i in 0..5 {
            let canon = format!("pre{i}");
            cache.put(&key_of_encoding(&canon), &canon, set(0.9));
        }
        let cache = cache.with_max_entries(2);
        assert_eq!(cache.len(), 2, "bounded from construction on");
        assert_eq!(cache.stats().evictions, 3);
        assert!(cache.get(&key_of_encoding("pre4"), "pre4").is_some(), "newest survive");
        assert!(cache.get(&key_of_encoding("pre0"), "pre0").is_none());
    }

    #[test]
    fn open_lenient_covers_missing_corrupt_and_capped() {
        assert!(EvalCache::open_lenient(None, None).store_path().is_none());

        let dir = std::env::temp_dir().join(format!("dtc-cache-open-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        std::fs::write(&path, "garbage{").unwrap();
        let cache = EvalCache::open_lenient(Some(path.clone()), Some(2));
        assert!(cache.is_empty(), "corrupt store replaced, not fatal");
        assert_eq!(cache.store_path(), Some(path.as_path()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_cap_means_unlimited() {
        let cache = EvalCache::in_memory().with_max_entries(0);
        for i in 0..10 {
            let canon = format!("c{i}");
            cache.put(&key_of_encoding(&canon), &canon, set(0.9));
        }
        assert_eq!(cache.len(), 10);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn get_or_compute_computes_once_then_hits() {
        let cache = EvalCache::in_memory();
        let key = key_of_encoding("gc");
        let (r, how) = cache.get_or_compute(&key, "gc", || Ok(set(0.97)));
        assert_eq!(how, Fetch::Computed);
        assert_eq!(r.unwrap(), set(0.97));
        let (r2, how2) = cache.get_or_compute(&key, "gc", || panic!("must not recompute"));
        assert_eq!(how2, Fetch::Hit);
        assert_eq!(r2.unwrap(), set(0.97));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn get_or_compute_errors_are_shared_but_not_cached() {
        let cache = EvalCache::in_memory();
        let key = key_of_encoding("err");
        let (r, how) =
            cache.get_or_compute(&key, "err", || Err(CloudError::BadSpec("nope".into())));
        assert_eq!(how, Fetch::Computed);
        assert!(r.is_err());
        assert!(cache.is_empty(), "errors must not be memoized");
        let (r2, how2) = cache.get_or_compute(&key, "err", || Ok(set(0.9)));
        assert_eq!(how2, Fetch::Computed, "error is retried, not replayed");
        assert!(r2.is_ok());
    }

    #[test]
    fn leader_panic_does_not_wedge_followers() {
        use std::sync::Barrier;
        let cache = Arc::new(EvalCache::in_memory());
        let barrier = Arc::new(Barrier::new(2));
        let follower = {
            let (cache, barrier) = (Arc::clone(&cache), Arc::clone(&barrier));
            std::thread::spawn(move || {
                barrier.wait(); // the leader holds the flight by now
                cache.get_or_compute(&key_of_encoding("boom"), "boom", || Ok(set(0.5)))
            })
        };
        let led = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_compute(&key_of_encoding("boom"), "boom", || {
                barrier.wait();
                std::thread::sleep(std::time::Duration::from_millis(50));
                panic!("leader dies mid-solve")
            })
        }));
        assert!(led.is_err(), "the leader's panic propagates to its caller");
        // The essential property: the follower terminates. Depending on
        // timing it either joined the doomed flight (shared Panicked error)
        // or arrived after cleanup and solved on its own.
        let (r, how) = follower.join().expect("follower thread finishes");
        match how {
            Fetch::Joined => {
                assert!(matches!(r, Err(CloudError::Panicked(_))), "got {r:?}")
            }
            Fetch::Computed | Fetch::Hit => assert!(r.is_ok()),
        }
    }

    #[test]
    fn keys_and_clear() {
        let cache = EvalCache::in_memory();
        cache.put(&key_of_encoding("a"), "a", set(0.9));
        cache.put(&key_of_encoding("b"), "b", set(0.8));
        let keys = cache.keys();
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&key_of_encoding("a").0));
        assert_eq!(cache.clear(), 2);
        assert!(cache.is_empty());
    }

    #[test]
    fn method_names_round_trip() {
        for m in
            [Method::Power, Method::Jacobi, Method::GaussSeidel, Method::Sor, Method::Direct]
        {
            assert_eq!(method_from_name(method_name(m)), Some(m));
        }
        assert_eq!(method_from_name("nope"), None);
    }
}
