//! The content-addressed evaluation cache.
//!
//! Maps [`SpecKey`]s (structural hashes of spec + evaluation options) to
//! memoized [`AvailabilityReport`]s. Lives in memory, with an optional
//! on-disk JSON store so repeated `dtc` invocations skip re-exploring
//! state spaces entirely. Lookups verify the stored canonical encoding, so
//! a hash collision degrades to a miss, never to a wrong answer.

use crate::error::{EngineError, Result};
use crate::hash::SpecKey;
use crate::value::Value;
use dtc_core::metrics::AvailabilityReport;
use dtc_core::params::{downtime_hours_per_year, nines};
use dtc_markov::{Method, SolveStats};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Hit/miss counters and current size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that required an evaluation.
    pub misses: usize,
    /// Entries currently stored.
    pub entries: usize,
}

#[derive(Debug, Clone)]
struct Entry {
    canonical: String,
    report: AvailabilityReport,
}

/// A concurrent evaluation cache with an optional JSON backing file.
#[derive(Debug)]
pub struct EvalCache {
    map: Mutex<BTreeMap<String, Entry>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    store: Option<PathBuf>,
}

impl EvalCache {
    /// A purely in-memory cache.
    pub fn in_memory() -> EvalCache {
        EvalCache {
            map: Mutex::new(BTreeMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            store: None,
        }
    }

    /// A cache backed by a JSON file; existing entries are loaded, and
    /// [`EvalCache::persist`] writes the current contents back.
    ///
    /// Errors on an unreadable or invalid store; use
    /// [`EvalCache::fresh_store`] to start over while keeping the path.
    pub fn with_store(path: impl Into<PathBuf>) -> Result<EvalCache> {
        let path = path.into();
        let cache = EvalCache::in_memory();
        if path.exists() {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| EngineError::Io(format!("{}: {e}", path.display())))?;
            cache.load_json(&text)?;
        }
        Ok(EvalCache { store: Some(path), ..cache })
    }

    /// A cache that will persist to `path` without loading whatever is
    /// there now — the recovery path when the store file is corrupt.
    pub fn fresh_store(path: impl Into<PathBuf>) -> EvalCache {
        EvalCache { store: Some(path.into()), ..EvalCache::in_memory() }
    }

    /// Looks up a report. The canonical encoding must match the stored one
    /// for a hit (collision safety).
    pub fn get(&self, key: &SpecKey, canonical: &str) -> Option<AvailabilityReport> {
        let map = self.map.lock().expect("cache mutex poisoned");
        match map.get(&key.0) {
            Some(e) if e.canonical == canonical => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.report)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a report under its key.
    pub fn put(&self, key: &SpecKey, canonical: &str, report: AvailabilityReport) {
        let mut map = self.map.lock().expect("cache mutex poisoned");
        map.insert(key.0.clone(), Entry { canonical: canonical.to_string(), report });
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache mutex poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters plus current size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Where this cache persists to, if anywhere.
    pub fn store_path(&self) -> Option<&Path> {
        self.store.as_deref()
    }

    /// Writes the store file, if one was configured.
    ///
    /// Entries written to the file by other processes since our load are
    /// merged in first (our entries win on key conflicts), so concurrent
    /// invocations sharing one store extend it instead of overwriting each
    /// other; a corrupt concurrent state is simply replaced. The write goes
    /// through a temp file + rename, so a crash mid-persist cannot leave a
    /// truncated store. The read-merge-write sequence itself is not atomic:
    /// two processes persisting at the same instant can still drop the
    /// slower one's new entries — a re-solve on the next run, never a wrong
    /// answer.
    pub fn persist(&self) -> Result<()> {
        let Some(path) = &self.store else { return Ok(()) };
        if let Ok(text) = std::fs::read_to_string(path) {
            let _ = self.load_json_keeping_existing(&text);
        }
        let json = self.to_json();
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, json)
            .map_err(|e| EngineError::Io(format!("{}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| EngineError::Io(format!("{}: {e}", path.display())))
    }

    /// Serializes every entry to the store's JSON schema.
    pub fn to_json(&self) -> String {
        let map = self.map.lock().expect("cache mutex poisoned");
        let entries: Vec<Value> = map
            .iter()
            .map(|(key, e)| {
                let mut t = BTreeMap::new();
                t.insert("key".into(), Value::Str(key.clone()));
                t.insert("canonical".into(), Value::Str(e.canonical.clone()));
                t.insert("report".into(), report_to_value(&e.report));
                Value::Table(t)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert("version".into(), Value::Int(1));
        root.insert("entries".into(), Value::Array(entries));
        Value::Table(root).to_json()
    }

    /// Merges entries from a JSON store document into this cache,
    /// overwriting entries with colliding keys.
    pub fn load_json(&self, text: &str) -> Result<()> {
        self.merge_json(text, true)
    }

    /// Like [`EvalCache::load_json`], but entries already in memory win on
    /// key conflicts (used when merging concurrent writers at persist
    /// time).
    pub fn load_json_keeping_existing(&self, text: &str) -> Result<()> {
        self.merge_json(text, false)
    }

    fn merge_json(&self, text: &str, overwrite: bool) -> Result<()> {
        let root = Value::from_json(text)?;
        match root.get("version").and_then(|v| v.as_i64()) {
            Some(1) => {}
            v => {
                return Err(EngineError::Schema(format!(
                    "unsupported cache store version {v:?}"
                )))
            }
        }
        let entries = root
            .get("entries")
            .and_then(|v| v.as_array())
            .ok_or_else(|| EngineError::Schema("cache store has no entries array".into()))?;
        let mut map = self.map.lock().expect("cache mutex poisoned");
        for e in entries {
            let key = e
                .get("key")
                .and_then(|v| v.as_str())
                .ok_or_else(|| EngineError::Schema("cache entry missing key".into()))?;
            let canonical = e
                .get("canonical")
                .and_then(|v| v.as_str())
                .ok_or_else(|| EngineError::Schema("cache entry missing canonical".into()))?;
            let report =
                report_from_value(e.get("report").ok_or_else(|| {
                    EngineError::Schema("cache entry missing report".into())
                })?)?;
            if !overwrite && map.contains_key(key) {
                continue;
            }
            map.insert(key.to_string(), Entry { canonical: canonical.to_string(), report });
        }
        Ok(())
    }
}

fn method_name(m: Method) -> &'static str {
    match m {
        Method::Power => "power",
        Method::Jacobi => "jacobi",
        Method::GaussSeidel => "gauss-seidel",
        Method::Sor => "sor",
        Method::Direct => "direct",
    }
}

/// Parses a solver-method name (the [`Method`] `Display` form).
pub fn method_from_name(name: &str) -> Option<Method> {
    match name {
        "power" => Some(Method::Power),
        "jacobi" => Some(Method::Jacobi),
        "gauss-seidel" => Some(Method::GaussSeidel),
        "sor" => Some(Method::Sor),
        "direct" => Some(Method::Direct),
        _ => None,
    }
}

/// Serializes a report for the store. `nines` and downtime are derived
/// fields recomputed on load, which keeps every stored number finite.
pub fn report_to_value(r: &AvailabilityReport) -> Value {
    let mut t = BTreeMap::new();
    t.insert("availability".into(), Value::Float(r.availability));
    t.insert("expected_running_vms".into(), Value::Float(r.expected_running_vms));
    t.insert(
        "capacity_oriented_availability".into(),
        Value::Float(r.capacity_oriented_availability),
    );
    t.insert("tangible_states".into(), Value::Int(r.tangible_states as i64));
    t.insert("edges".into(), Value::Int(r.edges as i64));
    t.insert("vanishing_markings".into(), Value::Int(r.vanishing_markings as i64));
    t.insert("solver_iterations".into(), Value::Int(r.solve.iterations as i64));
    t.insert("solver_residual".into(), Value::Float(r.solve.residual));
    t.insert("solver_method".into(), Value::Str(method_name(r.solve.method).into()));
    Value::Table(t)
}

/// Inverse of [`report_to_value`].
pub fn report_from_value(v: &Value) -> Result<AvailabilityReport> {
    let ctx = "cache report";
    let f = |key: &str| -> Result<f64> {
        v.get(key)
            .and_then(|x| x.as_f64())
            .ok_or_else(|| EngineError::Schema(format!("{ctx}: missing {key}")))
    };
    let u = |key: &str| -> Result<usize> {
        v.get(key)
            .and_then(|x| x.as_i64())
            .and_then(|x| usize::try_from(x).ok())
            .ok_or_else(|| EngineError::Schema(format!("{ctx}: missing {key}")))
    };
    let availability = f("availability")?;
    if !(0.0..=1.0).contains(&availability) {
        return Err(EngineError::Schema(format!(
            "{ctx}: availability {availability} outside [0, 1]"
        )));
    }
    let method = v
        .get("solver_method")
        .and_then(|x| x.as_str())
        .and_then(method_from_name)
        .ok_or_else(|| EngineError::Schema(format!("{ctx}: bad solver_method")))?;
    Ok(AvailabilityReport {
        availability,
        nines: nines(availability),
        downtime_hours_per_year: downtime_hours_per_year(availability),
        expected_running_vms: f("expected_running_vms")?,
        capacity_oriented_availability: f("capacity_oriented_availability")?,
        tangible_states: u("tangible_states")?,
        edges: u("edges")?,
        vanishing_markings: u("vanishing_markings")?,
        solve: SolveStats {
            iterations: u("solver_iterations")?,
            residual: f("solver_residual")?,
            method,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::key_of_encoding;
    use dtc_petri::reach::ReachStats;

    fn report(a: f64) -> AvailabilityReport {
        AvailabilityReport::new(
            a,
            3.9,
            4,
            ReachStats { tangible_states: 126_000, vanishing_markings: 40, edges: 500_000 },
            SolveStats { iterations: 321, residual: 4.2e-13, method: Method::GaussSeidel },
        )
    }

    #[test]
    fn get_put_and_stats() {
        let cache = EvalCache::in_memory();
        let key = key_of_encoding("canon-a");
        assert!(cache.get(&key, "canon-a").is_none());
        cache.put(&key, "canon-a", report(0.999));
        let hit = cache.get(&key, "canon-a").unwrap();
        assert_eq!(hit, report(0.999));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn collision_means_miss_not_wrong_answer() {
        let cache = EvalCache::in_memory();
        let key = key_of_encoding("canon-a");
        cache.put(&key, "canon-a", report(0.999));
        // Same key, different canonical form: must refuse.
        assert!(cache.get(&key, "canon-b").is_none());
    }

    #[test]
    fn report_round_trip_is_exact() {
        for a in [0.0, 0.5, 0.9997317, 1.0] {
            let r = report(a);
            let v = report_to_value(&r);
            let back = report_from_value(&Value::from_json(&v.to_json()).unwrap()).unwrap();
            assert_eq!(r, back, "availability {a}");
        }
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("dtc-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let _ = std::fs::remove_file(&path);

        let cache = EvalCache::with_store(&path).unwrap();
        let key = key_of_encoding("canon-x");
        cache.put(&key, "canon-x", report(0.995));
        cache.persist().unwrap();

        let reloaded = EvalCache::with_store(&path).unwrap();
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.get(&key, "canon-x").unwrap(), report(0.995));

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_writers_merge_at_persist() {
        let dir = std::env::temp_dir().join(format!("dtc-cache-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.json");
        let _ = std::fs::remove_file(&path);

        // Two processes load the same (empty) store…
        let a = EvalCache::with_store(&path).unwrap();
        let b = EvalCache::with_store(&path).unwrap();
        a.put(&key_of_encoding("spec-a"), "spec-a", report(0.99));
        b.put(&key_of_encoding("spec-b"), "spec-b", report(0.98));
        // …and persist one after the other: the second must keep the
        // first's entry instead of overwriting the file with its own view.
        a.persist().unwrap();
        b.persist().unwrap();

        let merged = EvalCache::with_store(&path).unwrap();
        assert_eq!(merged.len(), 2, "both writers' entries survive");
        assert!(merged.get(&key_of_encoding("spec-a"), "spec-a").is_some());
        assert!(merged.get(&key_of_encoding("spec-b"), "spec-b").is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fresh_store_ignores_corrupt_file_and_replaces_it() {
        let dir = std::env::temp_dir().join(format!("dtc-cache-fresh-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "garbage{").unwrap();

        assert!(EvalCache::with_store(&path).is_err(), "strict open rejects corruption");
        let cache = EvalCache::fresh_store(&path);
        assert!(cache.is_empty());
        cache.put(&key_of_encoding("x"), "x", report(0.9));
        cache.persist().unwrap();
        let reopened = EvalCache::with_store(&path).unwrap();
        assert_eq!(reopened.len(), 1, "corrupt store was replaced");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_store_rejected() {
        let cache = EvalCache::in_memory();
        assert!(cache.load_json("{\"version\":2,\"entries\":[]}").is_err());
        assert!(cache.load_json("not json").is_err());
        assert!(cache.load_json("{\"version\":1,\"entries\":[{\"key\":\"k\"}]}").is_err());
    }

    #[test]
    fn method_names_round_trip() {
        for m in
            [Method::Power, Method::Jacobi, Method::GaussSeidel, Method::Sor, Method::Direct]
        {
            assert_eq!(method_from_name(method_name(m)), Some(m));
        }
        assert_eq!(method_from_name("nope"), None);
    }
}
