//! Error type for catalog parsing, cache I/O and scenario execution.

use dtc_core::CloudError;
use std::fmt;

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors from the scenario engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Syntax error in a TOML catalog file.
    Toml {
        /// 1-based line of the offending input.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// Syntax error in a JSON document.
    Json(String),
    /// The document parsed but does not match the catalog schema.
    Schema(String),
    /// A scenario references a city with no built-in coordinates.
    UnknownCity(String),
    /// Filesystem error (path and OS message).
    Io(String),
    /// Error bubbled up from the modeling layer.
    Cloud(CloudError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Toml { line, msg } => {
                write!(f, "toml parse error (line {line}): {msg}")
            }
            EngineError::Json(msg) => write!(f, "json parse error: {msg}"),
            EngineError::Schema(msg) => write!(f, "catalog schema error: {msg}"),
            EngineError::UnknownCity(name) => write!(
                f,
                "unknown city {name:?}: not a built-in site; give lat/lon coordinates instead"
            ),
            EngineError::Io(msg) => write!(f, "io error: {msg}"),
            EngineError::Cloud(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Cloud(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CloudError> for EngineError {
    fn from(e: CloudError) -> Self {
        EngineError::Cloud(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EngineError::Toml { line: 3, msg: "bad".into() };
        assert!(e.to_string().contains("line 3"));
        let e: EngineError = CloudError::BadSpec("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(EngineError::Schema("y".into()).to_string().contains("schema"));
    }
}
