//! Rendering batch results as text tables, CSV, or JSON.

use crate::catalog::Scenario;
use crate::executor::{BatchResult, Outcome, Provenance};
use crate::value::Value;
use dtc_core::analysis::AnalysisReport;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Output format selector for the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Human-readable aligned table.
    #[default]
    Table,
    /// Comma-separated values with a header row.
    Csv,
    /// A JSON array of result objects.
    Json,
}

impl Format {
    /// Parses a `--format` argument.
    pub fn from_name(name: &str) -> Option<Format> {
        match name {
            "table" => Some(Format::Table),
            "csv" => Some(Format::Csv),
            "json" => Some(Format::Json),
            _ => None,
        }
    }
}

fn provenance_tag(p: Provenance) -> &'static str {
    match p {
        Provenance::Evaluated => "solved",
        Provenance::Deduplicated => "dedup",
        Provenance::Cached => "cache",
    }
}

/// Renders outcomes in the requested format.
pub fn render(scenarios: &[Scenario], result: &BatchResult, format: Format) -> String {
    match format {
        Format::Table => render_table(scenarios, &result.outcomes),
        Format::Csv => render_csv(scenarios, &result.outcomes),
        Format::Json => render_json(scenarios, &result.outcomes),
    }
}

/// One-line cache/dedup summary (for stderr).
pub fn render_summary(result: &BatchResult) -> String {
    format!(
        "{} scenario(s): {} solved, {} from cache, {} deduplicated ({} hit(s) total); \
         solve time {:?}; cache holds {} entr{}",
        result.outcomes.len(),
        result.evaluated,
        result.cached,
        result.deduplicated,
        result.total_hits(),
        result.solve_time,
        result.cache_stats.entries,
        if result.cache_stats.entries == 1 { "y" } else { "ies" },
    )
}

/// Scalar metric columns extracted from an outcome's analysis set (the
/// curves — transient, capacity — are CSV/JSON-only payloads).
#[derive(Default)]
struct MetricCells {
    mttsf_hours: Option<f64>,
    interval: Option<f64>,
    cost_total: Option<f64>,
    sim_mean: Option<f64>,
    /// The top-ranked sensitivity parameter (strongest `|elasticity|`),
    /// rendered as its human-readable label; `"(none)"` when the filter
    /// matched no parameter of this architecture.
    top_knob: Option<String>,
}

impl MetricCells {
    fn of(o: &Outcome) -> MetricCells {
        let mut cells = MetricCells::default();
        if let Ok(reports) = &o.reports {
            for r in reports.iter() {
                match r {
                    AnalysisReport::Mttsf { hours } => cells.mttsf_hours = Some(*hours),
                    AnalysisReport::Interval { availability, .. } => {
                        cells.interval = Some(*availability)
                    }
                    AnalysisReport::Cost { breakdown } => {
                        cells.cost_total = Some(breakdown.total())
                    }
                    AnalysisReport::Simulation { mean, .. } => cells.sim_mean = Some(*mean),
                    AnalysisReport::Sensitivity { rows, .. } => {
                        cells.top_knob = Some(match rows.first() {
                            Some(row) => row.parameter.to_string(),
                            None => "(none)".to_string(),
                        })
                    }
                    _ => {}
                }
            }
        }
        cells
    }
}

fn write_opt(out: &mut String, value: Option<f64>, width: usize, precision: usize) {
    match value {
        Some(v) => {
            let _ = write!(out, " {v:>width$.precision$}");
        }
        None => {
            let _ = write!(out, " {:>width$}", "-");
        }
    }
}

fn render_table(scenarios: &[Scenario], outcomes: &[Outcome]) -> String {
    let name_width = scenarios.iter().map(|s| s.name.len()).max().unwrap_or(8).clamp(8, 60);
    let any_expect = scenarios.iter().any(|s| s.expect_availability.is_some());
    let cells: Vec<MetricCells> = outcomes.iter().map(MetricCells::of).collect();
    let any_mttsf = cells.iter().any(|c| c.mttsf_hours.is_some());
    let any_interval = cells.iter().any(|c| c.interval.is_some());
    let any_cost = cells.iter().any(|c| c.cost_total.is_some());
    let any_sim = cells.iter().any(|c| c.sim_mean.is_some());
    let any_sens = cells.iter().any(|c| c.top_knob.is_some());
    let mut out = String::new();
    let _ = write!(
        out,
        "{:<name_width$} {:>12} {:>7} {:>10} {:>9} {:>7}",
        "scenario", "A", "nines", "down h/y", "states", "source"
    );
    if any_mttsf {
        let _ = write!(out, " {:>11}", "mttsf h");
    }
    if any_interval {
        let _ = write!(out, " {:>12}", "A[0,T]");
    }
    if any_cost {
        let _ = write!(out, " {:>12}", "cost/yr");
    }
    if any_sim {
        let _ = write!(out, " {:>12}", "sim A");
    }
    if any_sens {
        let _ = write!(out, " {:>26}", "top knob");
    }
    if any_expect {
        let _ = write!(out, " {:>12} {:>9}", "paper A", "ΔA");
    }
    out.push('\n');
    let total_width = out.trim_end().chars().count();
    let _ = writeln!(out, "{}", "-".repeat(total_width));
    for ((s, o), cell) in scenarios.iter().zip(outcomes).zip(&cells) {
        match (&o.reports, o.steady()) {
            (Ok(_), steady) => {
                match steady {
                    Some(r) => {
                        let _ = write!(
                            out,
                            "{:<name_width$} {:>12.7} {:>7.2} {:>10.2} {:>9} {:>7}",
                            s.name,
                            r.availability,
                            r.nines,
                            r.downtime_hours_per_year,
                            r.tangible_states,
                            provenance_tag(o.provenance),
                        );
                    }
                    None => {
                        // The analysis set did not include steady state.
                        let _ = write!(
                            out,
                            "{:<name_width$} {:>12} {:>7} {:>10} {:>9} {:>7}",
                            s.name,
                            "-",
                            "-",
                            "-",
                            "-",
                            provenance_tag(o.provenance),
                        );
                    }
                }
                if any_mttsf {
                    write_opt(&mut out, cell.mttsf_hours, 11, 2);
                }
                if any_interval {
                    write_opt(&mut out, cell.interval, 12, 7);
                }
                if any_cost {
                    write_opt(&mut out, cell.cost_total, 12, 0);
                }
                if any_sim {
                    write_opt(&mut out, cell.sim_mean, 12, 7);
                }
                if any_sens {
                    let _ = write!(out, " {:>26}", cell.top_knob.as_deref().unwrap_or("-"));
                }
                if any_expect {
                    match (s.expect_availability, steady) {
                        (Some(paper), Some(r)) => {
                            let _ = write!(
                                out,
                                " {:>12.7} {:>8.3}%",
                                paper,
                                (r.availability - paper) / paper * 100.0
                            );
                        }
                        _ => {
                            let _ = write!(out, " {:>12} {:>9}", "-", "-");
                        }
                    }
                }
                out.push('\n');
            }
            (Err(e), _) => {
                let _ = writeln!(out, "{:<name_width$} FAILED: {e}", s.name);
            }
        }
    }
    out
}

fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn joined_curve(xs: &[f64]) -> String {
    xs.iter().map(f64::to_string).collect::<Vec<_>>().join(";")
}

fn render_csv(scenarios: &[Scenario], outcomes: &[Outcome]) -> String {
    let mut out = String::from(
        "name,status,availability,nines,downtime_hours_per_year,expected_running_vms,\
         capacity_oriented_availability,tangible_states,edges,source,secondary,alpha,\
         disaster_years,machines,is_baseline,expect_availability,mttsf_hours,\
         interval_availability,cost_total,sim_mean,sim_half_width,transient,\
         capacity_thresholds,sensitivity,error\n",
    );
    for (s, o) in scenarios.iter().zip(outcomes) {
        let meta = |out: &mut String| {
            let _ = write!(
                out,
                "{},{},{},{},{}",
                s.secondary.as_deref().map(csv_escape).unwrap_or_default(),
                s.alpha.map(|a| a.to_string()).unwrap_or_default(),
                s.disaster_years.map(|y| y.to_string()).unwrap_or_default(),
                s.machines.map(|m| m.to_string()).unwrap_or_default(),
                s.is_baseline,
            );
        };
        // The per-analysis metric cells (blank when not requested).
        let extras = |out: &mut String, reports: &[AnalysisReport]| {
            let mut mttsf = String::new();
            let mut interval = String::new();
            let mut cost = String::new();
            let mut sim = (String::new(), String::new());
            let mut transient = String::new();
            let mut capacity = String::new();
            let mut sensitivity = String::new();
            for r in reports {
                match r {
                    AnalysisReport::Mttsf { hours } => mttsf = hours.to_string(),
                    AnalysisReport::Interval { availability, .. } => {
                        interval = availability.to_string()
                    }
                    AnalysisReport::Cost { breakdown } => cost = breakdown.total().to_string(),
                    AnalysisReport::Simulation { mean, half_width, .. } => {
                        sim = (mean.to_string(), half_width.to_string())
                    }
                    AnalysisReport::Transient { availability, .. } => {
                        transient = joined_curve(availability)
                    }
                    AnalysisReport::CapacityThresholds { availability } => {
                        capacity = joined_curve(availability)
                    }
                    AnalysisReport::Sensitivity { rows, .. } => {
                        // Ranked `key:elasticity` pairs, strongest first —
                        // the same `;`-joined convention as the curves.
                        sensitivity = rows
                            .iter()
                            .map(|r| format!("{}:{}", r.parameter.key(), r.elasticity))
                            .collect::<Vec<_>>()
                            .join(";")
                    }
                    AnalysisReport::SteadyState(_) => {}
                }
            }
            let _ = write!(
                out,
                ",{mttsf},{interval},{cost},{},{},{transient},{capacity},{sensitivity}",
                sim.0, sim.1
            );
        };
        match &o.reports {
            Ok(reports) => {
                match o.steady() {
                    Some(r) => {
                        let _ = write!(
                            out,
                            "{},ok,{},{},{},{},{},{},{},{},",
                            csv_escape(&s.name),
                            r.availability,
                            r.nines,
                            r.downtime_hours_per_year,
                            r.expected_running_vms,
                            r.capacity_oriented_availability,
                            r.tangible_states,
                            r.edges,
                            provenance_tag(o.provenance),
                        );
                    }
                    None => {
                        let _ = write!(
                            out,
                            "{},ok,,,,,,,,{},",
                            csv_escape(&s.name),
                            provenance_tag(o.provenance),
                        );
                    }
                }
                meta(&mut out);
                let _ = write!(
                    out,
                    ",{}",
                    s.expect_availability.map(|a| a.to_string()).unwrap_or_default()
                );
                extras(&mut out, reports);
                out.push(',');
                out.push('\n');
            }
            Err(e) => {
                let _ = write!(out, "{},error,,,,,,,,,", csv_escape(&s.name));
                meta(&mut out);
                let _ = writeln!(out, ",,,,,,,,,,{}", csv_escape(&e.to_string()));
            }
        }
    }
    out
}

/// The JSON result tree: one [`Value`] object per scenario, in input
/// order. This is the payload shared by `--format json` and the
/// `dtc-serve` `POST /v1/evaluate` response.
pub fn results_to_value(scenarios: &[Scenario], outcomes: &[Outcome]) -> Value {
    let items: Vec<Value> = scenarios
        .iter()
        .zip(outcomes)
        .map(|(s, o)| {
            let mut t = BTreeMap::new();
            t.insert("name".into(), Value::Str(s.name.clone()));
            t.insert("key".into(), Value::Str(o.key.0.clone()));
            t.insert("source".into(), Value::Str(provenance_tag(o.provenance).into()));
            if let Some(sec) = &s.secondary {
                t.insert("secondary".into(), Value::Str(sec.clone()));
            }
            if let Some(a) = s.alpha {
                t.insert("alpha".into(), Value::Float(a));
            }
            if let Some(y) = s.disaster_years {
                t.insert("disaster_years".into(), Value::Float(y));
            }
            if let Some(m) = s.machines {
                t.insert("machines".into(), Value::Int(m as i64));
            }
            t.insert("is_baseline".into(), Value::Bool(s.is_baseline));
            if let Some(a) = s.expect_availability {
                t.insert("expect_availability".into(), Value::Float(a));
            }
            match &o.reports {
                Ok(reports) => {
                    t.insert("status".into(), Value::Str("ok".into()));
                    // Steady state keeps its dedicated field (the v1
                    // payload shape); the full union rides alongside.
                    if let Some(r) = o.steady() {
                        t.insert("report".into(), crate::cache::report_to_value(r));
                    }
                    t.insert(
                        "analyses".into(),
                        Value::Array(
                            reports
                                .iter()
                                .map(crate::cache::analysis_report_to_value)
                                .collect(),
                        ),
                    );
                }
                Err(e) => {
                    t.insert("status".into(), Value::Str("error".into()));
                    t.insert("error".into(), Value::Str(e.to_string()));
                }
            }
            Value::Table(t)
        })
        .collect();
    Value::Array(items)
}

fn render_json(scenarios: &[Scenario], outcomes: &[Outcome]) -> String {
    results_to_value(scenarios, outcomes).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::EvalCache;
    use crate::executor::{run_batch, RunOptions};
    use dtc_core::params::{ComponentParams, VmParams};
    use dtc_core::system::{CloudSystemSpec, DataCenterSpec, PmSpec};

    fn batch() -> (Vec<Scenario>, BatchResult) {
        let spec = CloudSystemSpec {
            ospm: ComponentParams::new(1000.0, 12.0),
            vm: VmParams { mttf_hours: 2880.0, mttr_hours: 0.5, start_hours: 0.1 },
            data_centers: vec![DataCenterSpec {
                label: "1".into(),
                pms: vec![PmSpec::hot(1, 1)],
                disaster: None,
                nas_net: None,
                backup_inbound_mtt_hours: None,
            }],
            backup: None,
            direct_mtt_hours: vec![vec![None]],
            min_running_vms: 1,
            migration_threshold: 1,
        };
        let mut bad = spec.clone();
        bad.min_running_vms = 99;
        let scenarios = vec![
            Scenario {
                name: "good, with comma".into(),
                spec,
                secondary: Some("Brasilia".into()),
                alpha: Some(0.35),
                disaster_years: Some(100.0),
                machines: None,
                is_baseline: true,
                expect_availability: Some(0.99),
            },
            Scenario {
                name: "bad".into(),
                spec: bad,
                secondary: None,
                alpha: None,
                disaster_years: None,
                machines: Some(1),
                is_baseline: false,
                expect_availability: None,
            },
        ];
        let cache = std::sync::Arc::new(EvalCache::in_memory());
        let result = run_batch(&scenarios, &cache, &RunOptions::default());
        (scenarios, result)
    }

    #[test]
    fn table_lists_rows_and_deltas() {
        let (scenarios, result) = batch();
        let text = render(&scenarios, &result, Format::Table);
        assert!(text.contains("good, with comma"));
        assert!(text.contains("FAILED"));
        assert!(text.contains("paper A"), "expect column present");
        assert!(text.contains("solved"));
    }

    #[test]
    fn csv_has_header_and_escapes() {
        let (scenarios, result) = batch();
        let text = render(&scenarios, &result, Format::Csv);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("name,status,availability"));
        assert!(lines[1].starts_with("\"good, with comma\",ok,"));
        assert!(lines[2].contains(",error,"));
    }

    #[test]
    fn json_is_parseable_and_complete() {
        let (scenarios, result) = batch();
        let text = render(&scenarios, &result, Format::Json);
        let v = Value::from_json(&text).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("status").unwrap().as_str(), Some("ok"));
        assert!(items[0].get("report").unwrap().get("availability").is_some());
        assert_eq!(items[1].get("status").unwrap().as_str(), Some("error"));
    }

    #[test]
    fn sensitivity_rides_the_table_csv_and_json_outputs() {
        let (mut scenarios, _) = batch();
        scenarios.truncate(1); // the good scenario only
                               // Plain name: the naive column split below needs no CSV unquoting.
        scenarios[0].name = "good".into();
        let cache = std::sync::Arc::new(EvalCache::in_memory());
        let opts = RunOptions {
            analyses: vec![
                dtc_core::analysis::AnalysisRequest::SteadyState,
                dtc_core::analysis::AnalysisRequest::Sensitivity {
                    parameters: vec!["ospm_mttr".into(), "vm_mttr".into()],
                    rel_step: 0.05,
                },
            ],
            ..RunOptions::default()
        };
        let result = run_batch(&scenarios, &cache, &opts);

        let table = render(&scenarios, &result, Format::Table);
        assert!(table.contains("top knob"), "{table}");
        assert!(table.contains("MTTR"), "top-ranked parameter label shown: {table}");

        let csv = render(&scenarios, &result, Format::Csv);
        let lines: Vec<&str> = csv.lines().collect();
        let headers: Vec<&str> = lines[0].split(',').collect();
        let sens_col = headers.iter().position(|h| *h == "sensitivity").unwrap();
        let cell = lines[1].split(',').nth(sens_col).unwrap();
        assert!(cell.contains("ospm_mttr:") && cell.contains("vm_mttr:"), "{cell}");
        assert_eq!(cell.split(';').count(), 2, "one ranked entry per row: {cell}");

        let json = render(&scenarios, &result, Format::Json);
        let v = Value::from_json(&json).unwrap();
        let analyses = v.as_array().unwrap()[0].get("analyses").unwrap().clone();
        let sens = analyses.as_array().unwrap()[1].clone();
        assert_eq!(sens.get("kind").and_then(|k| k.as_str()), Some("sensitivity"));
        let rows = sens.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].get("elasticity").and_then(|e| e.as_f64()).is_some());
        assert!(rows[0].get("label").and_then(|l| l.as_str()).is_some());
    }

    #[test]
    fn summary_mentions_counts() {
        let (_, result) = batch();
        let text = render_summary(&result);
        assert!(text.contains("2 scenario(s)"));
        assert!(text.contains("solved"));
    }

    #[test]
    fn format_names() {
        assert_eq!(Format::from_name("csv"), Some(Format::Csv));
        assert_eq!(Format::from_name("json"), Some(Format::Json));
        assert_eq!(Format::from_name("table"), Some(Format::Table));
        assert_eq!(Format::from_name("xml"), None);
    }
}
