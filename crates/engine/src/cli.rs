//! The `dtc` command-line interface.
//!
//! ```text
//! dtc run <catalog.toml|.json> [options]   evaluate a scenario catalog
//! dtc table7 [options]                     bundled Table VII catalog
//! dtc fig7 [options]                       bundled Figure 7 catalog
//! dtc validate <catalog>                   parse + expand + compile only
//! dtc help                                 this text
//!
//! options:
//!   --format table|csv|json   output format (default table)
//!   --threads N               worker threads (default: available cores)
//!   --solver NAME             power|jacobi|gauss-seidel|sor|direct
//!   --cache FILE              persistent JSON evaluation cache
//! ```
//!
//! Results go to stdout; progress and the cache summary go to stderr.

use crate::cache::{method_from_name, EvalCache};
use crate::catalog::{Catalog, Scenario};
use crate::error::{EngineError, Result};
use crate::executor::{run_batch, BatchResult, Outcome, RunOptions};
use crate::output::{render, render_summary, Format};
use dtc_core::analysis::AnalysisRequest;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

const USAGE: &str = "\
dtc — disaster-tolerant cloud scenario evaluator

usage:
  dtc run <catalog.toml|.json> [options]   evaluate a scenario catalog
  dtc table7 [options]                     bundled DSN'13 Table VII catalog
  dtc fig7 [options]                       bundled DSN'13 Figure 7 catalog
  dtc validate <catalog>                   parse, expand and compile only
  dtc cache stats|keys|clear --cache FILE  inspect or prune a cache store
  dtc search <catalog>|search7 [options]   SLO-driven design search (dtc-search)
  dtc serve [serve options]                HTTP evaluation service (dtc-serve)
  dtc help                                 show this text

options:
  --format table|csv|json   output format (default table)
  --threads N               worker threads (default: available cores)
  --solver NAME             power|jacobi|gauss-seidel|sor|direct
  --analyses LIST           comma-separated analyses to run per scenario
                            (steady_state, transient, interval, mttsf,
                            capacity_thresholds, cost, simulation, sensitivity);
                            default: the catalog's [analyses] section, else
                            steady_state
  --cache FILE              persistent JSON evaluation cache
  --cache-cap N             cap resident cache entries (oldest evicted)
  --trace                   collect a request-scoped span tree for the run
                            and print it to stderr (explore, solver stages,
                            cache events — the same tree `dtc serve` returns
                            for `?trace=1`)

serve options (see `dtc serve --help`):
  --addr HOST:PORT          listen address (default 127.0.0.1:7878)
  --threads N               HTTP worker threads
  --queue N                 pending-connection queue capacity
  --cache FILE              persistent JSON evaluation cache
  --cache-cap N             cap resident cache entries
";

#[derive(Debug)]
struct CliOptions {
    format: Format,
    run: RunOptions,
    /// `--analyses` override; `None` defers to the catalog's `[analyses]`.
    analyses: Option<Vec<AnalysisRequest>>,
    cache_path: Option<PathBuf>,
    cache_cap: Option<usize>,
    /// `--trace`: collect a span tree for the run and print it to stderr.
    trace: bool,
}

/// Parses a comma-separated `--analyses` list of analysis kinds (each with
/// its default parameters; use a catalog `[analyses]` section to tune
/// them).
fn parse_analyses_flag(list: &str) -> Result<Vec<AnalysisRequest>> {
    let requests: Vec<AnalysisRequest> = list
        .split(',')
        .map(str::trim)
        .filter(|k| !k.is_empty())
        .map(|k| {
            AnalysisRequest::from_kind(k).ok_or_else(|| {
                EngineError::Schema(format!(
                    "unknown analysis kind {k:?} (expected steady_state, transient, interval, \
                     mttsf, capacity_thresholds, cost, simulation or sensitivity)"
                ))
            })
        })
        .collect::<Result<_>>()?;
    if requests.is_empty() {
        return Err(EngineError::Schema("--analyses needs at least one kind".into()));
    }
    Ok(requests)
}

fn parse_options(args: &[String]) -> Result<(CliOptions, Vec<String>)> {
    let mut opts = CliOptions {
        format: Format::Table,
        run: RunOptions::default(),
        analyses: None,
        cache_path: None,
        cache_cap: None,
        trace: false,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String> {
            it.next()
                .cloned()
                .ok_or_else(|| EngineError::Schema(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--format" => {
                let v = take("--format")?;
                opts.format = Format::from_name(&v).ok_or_else(|| {
                    EngineError::Schema(format!("unknown format {v:?} (table, csv or json)"))
                })?;
            }
            "--threads" => {
                let v = take("--threads")?;
                opts.run.threads = v.parse().map_err(|_| {
                    EngineError::Schema(format!("--threads expects a number, got {v:?}"))
                })?;
            }
            "--solver" => {
                let v = take("--solver")?;
                opts.run.eval.method = method_from_name(&v).ok_or_else(|| {
                    EngineError::Schema(format!(
                        "unknown solver {v:?} (power, jacobi, gauss-seidel, sor or direct)"
                    ))
                })?;
            }
            "--analyses" => opts.analyses = Some(parse_analyses_flag(&take("--analyses")?)?),
            "--cache" => opts.cache_path = Some(PathBuf::from(take("--cache")?)),
            "--cache-cap" => {
                let v = take("--cache-cap")?;
                opts.cache_cap = Some(v.parse().map_err(|_| {
                    EngineError::Schema(format!("--cache-cap expects a number, got {v:?}"))
                })?);
            }
            "--trace" => opts.trace = true,
            other if other.starts_with("--") => {
                return Err(EngineError::Schema(format!("unknown option {other}")));
            }
            other => positional.push(other.to_string()),
        }
    }
    Ok((opts, positional))
}

fn evaluate(catalog: &Catalog, opts: &CliOptions) -> Result<(Vec<Scenario>, BatchResult)> {
    let scenarios = catalog.expand()?;
    let mut run = opts.run.clone();
    // --analyses beats the catalog's [analyses] section.
    run.analyses = opts.analyses.clone().unwrap_or_else(|| catalog.analyses.clone());
    // --threads is the whole solver budget: run_batch divides it between
    // batch workers, per-scenario sweep fan-out (sensitivity), and the
    // parallel march/power kernels inside each solve (dtc_markov::par).
    eprintln!(
        "catalog {:?}: {} scenario(s) × {} analysis(es) on {} thread(s)…",
        catalog.name,
        scenarios.len(),
        run.analyses.len(),
        run.threads.max(1)
    );
    let cache = Arc::new(EvalCache::open_lenient(opts.cache_path.clone(), opts.cache_cap));
    let trace_ctx = opts
        .trace
        .then(|| dtc_obs::trace::TraceContext::new(dtc_obs::trace::TraceId::generate()));
    let result = {
        let _guard = trace_ctx.as_ref().map(dtc_obs::trace::install);
        let _root = trace_ctx.as_ref().map(|_| {
            let span = dtc_obs::trace::trace_span("run");
            dtc_obs::trace::attr_str("catalog", &catalog.name);
            dtc_obs::trace::attr_int("scenarios", scenarios.len() as i64);
            span
        });
        let result = run_batch(&scenarios, &cache, &run);
        cache.persist()?;
        result
    };
    if let Some(ctx) = &trace_ctx {
        eprint!("{}", dtc_obs::trace::render_text(&ctx.snapshot()));
    }
    eprintln!("{}", render_summary(&result));
    Ok((scenarios, result))
}

/// Renders the Figure 7 view: per city pair, the change in number of nines
/// over that pair's baseline point.
pub fn render_fig7_grid(scenarios: &[Scenario], outcomes: &[Outcome]) -> String {
    let nines_of = |sec: &str, alpha: f64, years: f64| -> f64 {
        scenarios
            .iter()
            .position(|s| {
                s.secondary.as_deref() == Some(sec)
                    && s.alpha == Some(alpha)
                    && s.disaster_years == Some(years)
            })
            .and_then(|i| outcomes[i].steady().map(|r| r.nines))
            .unwrap_or(f64::NAN)
    };
    // Distinct secondaries / alphas / years, in first-appearance order.
    let mut pairs: Vec<String> = Vec::new();
    let mut alphas: Vec<f64> = Vec::new();
    let mut years_axis: Vec<f64> = Vec::new();
    for s in scenarios {
        if let Some(sec) = &s.secondary {
            if !pairs.contains(sec) {
                pairs.push(sec.clone());
            }
        }
        if let Some(a) = s.alpha {
            if !alphas.contains(&a) {
                alphas.push(a);
            }
        }
        if let Some(y) = s.disaster_years {
            if !years_axis.contains(&y) {
                years_axis.push(y);
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 7 — availability increase over the per-pair baseline (Δ nines)\n"
    );
    let _ = write!(out, "{:<12} {:>6} |", "pair", "α");
    for y in &years_axis {
        let _ = write!(out, " {:>9}", format!("{y} y"));
    }
    let _ = writeln!(out, " | {:>9}", "base A");
    let width = 22 + 10 * years_axis.len() + 12;
    let _ = writeln!(out, "{}", "-".repeat(width));
    for pair in &pairs {
        let base = scenarios
            .iter()
            .position(|s| s.secondary.as_deref() == Some(pair.as_str()) && s.is_baseline);
        let (base_nines, base_avail) = match base.and_then(|i| outcomes[i].steady()) {
            Some(r) => (r.nines, r.availability),
            None => (f64::NAN, f64::NAN),
        };
        for (row, &alpha) in alphas.iter().enumerate() {
            if row == 0 {
                let _ = write!(out, "{:<12} {:>6.2} |", pair, alpha);
            } else {
                let _ = write!(out, "{:<12} {:>6.2} |", "", alpha);
            }
            for &y in &years_axis {
                let delta = nines_of(pair, alpha, y) - base_nines;
                let _ = write!(out, " {:>+9.3}", delta);
            }
            if row == 0 {
                let _ = writeln!(out, " | {:>9.6}", base_avail);
            } else {
                let _ = writeln!(out, " |");
            }
        }
    }
    out
}

fn cmd_run(catalog: Catalog, opts: &CliOptions) -> Result<()> {
    let (scenarios, result) = evaluate(&catalog, opts)?;
    print!("{}", render(&scenarios, &result, opts.format));
    Ok(())
}

fn cmd_fig7(catalog: Catalog, opts: &CliOptions) -> Result<()> {
    let (scenarios, result) = evaluate(&catalog, opts)?;
    match opts.format {
        Format::Table => print!("{}", render_fig7_grid(&scenarios, &result.outcomes)),
        other => print!("{}", render(&scenarios, &result, other)),
    }
    Ok(())
}

fn cmd_validate(catalog: Catalog) -> Result<()> {
    let scenarios = catalog.expand()?;
    let mut compiled = 0usize;
    for s in &scenarios {
        dtc_core::CloudModel::build(&s.spec).map_err(|e| {
            EngineError::Schema(format!("scenario {:?} does not compile: {e}", s.name))
        })?;
        compiled += 1;
    }
    println!(
        "catalog {:?} ok: {} template(s), {} scenario(s), all compile",
        catalog.name,
        catalog.templates.len(),
        compiled
    );
    for s in &scenarios {
        println!(
            "  {:<60} dcs={} pms={} vms={} k={}",
            s.name,
            s.spec.data_centers.len(),
            s.spec.total_pms(),
            s.spec.total_vms(),
            s.spec.min_running_vms
        );
    }
    Ok(())
}

fn cmd_cache(positional: &[String], opts: &CliOptions) -> Result<()> {
    let action = positional.first().map(String::as_str).ok_or_else(|| {
        EngineError::Schema("cache needs an action: stats, keys or clear".into())
    })?;
    let path = opts
        .cache_path
        .as_ref()
        .ok_or_else(|| EngineError::Schema("cache commands need --cache FILE".into()))?;
    match action {
        "stats" => {
            let cache = EvalCache::with_store(path.clone())?;
            let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            let stats = cache.stats();
            println!("store:     {}", path.display());
            println!("entries:   {}", cache.len());
            println!("bytes:     {bytes}");
            println!("hits:      {}", stats.hits);
            println!("misses:    {}", stats.misses);
            println!("joins:     {}", stats.joins);
            println!("evictions: {}", stats.evictions);
            // Batch counters are runtime-only (not persisted), so on a
            // freshly opened store they describe this process: the
            // candidates-vs-distinct-specs split of any batches run here.
            println!("batch candidates: {}", stats.batch_candidates);
            println!("batch distinct:   {}", stats.batch_distinct);
            Ok(())
        }
        "keys" => {
            let cache = EvalCache::with_store(path.clone())?;
            for key in cache.keys() {
                println!("{key}");
            }
            Ok(())
        }
        "clear" => {
            // Count what is there (0 for a corrupt or missing store), then
            // truncate to an empty store. Deliberately NOT `persist`, which
            // would merge the file's entries right back.
            let removed = EvalCache::with_store(path.clone()).map(|c| c.len()).unwrap_or(0);
            std::fs::write(path, EvalCache::in_memory().to_json())
                .map_err(|e| EngineError::Io(format!("{}: {e}", path.display())))?;
            println!(
                "cleared {removed} entr{} from {}",
                if removed == 1 { "y" } else { "ies" },
                path.display()
            );
            Ok(())
        }
        other => Err(EngineError::Schema(format!(
            "unknown cache action {other:?} (expected stats, keys or clear)"
        ))),
    }
}

fn dispatch(args: &[String]) -> Result<()> {
    let Some(command) = args.first() else {
        println!("{USAGE}");
        return Ok(());
    };
    let (opts, positional) = parse_options(&args[1..])?;
    let catalog_from_arg = |what: &str| -> Result<Catalog> {
        let path = positional
            .first()
            .ok_or_else(|| EngineError::Schema(format!("{what} needs a catalog file")))?;
        Catalog::from_path(std::path::Path::new(path))
    };
    match command.as_str() {
        "run" => cmd_run(catalog_from_arg("run")?, &opts),
        "table7" => cmd_run(crate::catalogs::table7(), &opts),
        "fig7" => cmd_fig7(crate::catalogs::fig7(), &opts),
        "validate" => cmd_validate(catalog_from_arg("validate")?),
        "cache" => cmd_cache(&positional, &opts),
        "serve" => Err(EngineError::Schema(
            "the serve command lives in the dtc-serve crate's `dtc` binary \
             (cargo run -p dtc-serve --bin dtc -- serve)"
                .into(),
        )),
        "search" => Err(EngineError::Schema(
            "the search command lives in the dtc-search crate, surfaced by the dtc-serve \
             crate's `dtc` binary (cargo run -p dtc-serve --bin dtc -- search)"
                .into(),
        )),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(EngineError::Schema(format!("unknown command {other:?}; try `dtc help`"))),
    }
}

/// CLI entry point; returns the process exit code.
pub fn run_cli(args: &[String]) -> i32 {
    match dispatch(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("dtc: {e}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_parsing() {
        let args: Vec<String> = ["--format", "csv", "--threads", "2", "--solver", "power", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (opts, positional) = parse_options(&args).unwrap();
        assert_eq!(opts.format, Format::Csv);
        assert_eq!(opts.run.threads, 2);
        assert_eq!(opts.run.eval.method, dtc_markov::Method::Power);
        assert_eq!(positional, vec!["x".to_string()]);

        assert!(parse_options(&["--format".into(), "xml".into()]).is_err());
        assert!(parse_options(&["--threads".into()]).is_err());
        assert!(parse_options(&["--wat".into()]).is_err());
    }

    #[test]
    fn unknown_command_fails() {
        assert_eq!(run_cli(&["frobnicate".into()]), 2);
        assert_eq!(run_cli(&[]), 0, "no command prints usage");
        assert_eq!(run_cli(&["help".into()]), 0);
    }

    #[test]
    fn run_needs_a_catalog_path() {
        assert_eq!(run_cli(&["run".into()]), 2);
        assert_eq!(run_cli(&["run".into(), "/no/such/file.toml".into()]), 2);
    }
}
