//! The `dtc` command-line interface.
//!
//! ```text
//! dtc run <catalog.toml|.json> [options]   evaluate a scenario catalog
//! dtc table7 [options]                     bundled Table VII catalog
//! dtc fig7 [options]                       bundled Figure 7 catalog
//! dtc validate <catalog>                   parse + expand + compile only
//! dtc help                                 this text
//!
//! options:
//!   --format table|csv|json   output format (default table)
//!   --threads N               worker threads (default: available cores)
//!   --solver NAME             power|jacobi|gauss-seidel|sor|direct
//!   --cache FILE              persistent JSON evaluation cache
//! ```
//!
//! Results go to stdout; progress and the cache summary go to stderr.

use crate::cache::{method_from_name, EvalCache};
use crate::catalog::{Catalog, Scenario};
use crate::error::{EngineError, Result};
use crate::executor::{run_batch, BatchResult, Outcome, RunOptions};
use crate::output::{render, render_summary, Format};
use std::fmt::Write as _;
use std::path::PathBuf;

const USAGE: &str = "\
dtc — disaster-tolerant cloud scenario evaluator

usage:
  dtc run <catalog.toml|.json> [options]   evaluate a scenario catalog
  dtc table7 [options]                     bundled DSN'13 Table VII catalog
  dtc fig7 [options]                       bundled DSN'13 Figure 7 catalog
  dtc validate <catalog>                   parse, expand and compile only
  dtc help                                 show this text

options:
  --format table|csv|json   output format (default table)
  --threads N               worker threads (default: available cores)
  --solver NAME             power|jacobi|gauss-seidel|sor|direct
  --cache FILE              persistent JSON evaluation cache
";

#[derive(Debug)]
struct CliOptions {
    format: Format,
    run: RunOptions,
    cache_path: Option<PathBuf>,
}

fn parse_options(args: &[String]) -> Result<(CliOptions, Vec<String>)> {
    let mut opts =
        CliOptions { format: Format::Table, run: RunOptions::default(), cache_path: None };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String> {
            it.next()
                .cloned()
                .ok_or_else(|| EngineError::Schema(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--format" => {
                let v = take("--format")?;
                opts.format = Format::from_name(&v).ok_or_else(|| {
                    EngineError::Schema(format!("unknown format {v:?} (table, csv or json)"))
                })?;
            }
            "--threads" => {
                let v = take("--threads")?;
                opts.run.threads = v.parse().map_err(|_| {
                    EngineError::Schema(format!("--threads expects a number, got {v:?}"))
                })?;
            }
            "--solver" => {
                let v = take("--solver")?;
                opts.run.eval.method = method_from_name(&v).ok_or_else(|| {
                    EngineError::Schema(format!(
                        "unknown solver {v:?} (power, jacobi, gauss-seidel, sor or direct)"
                    ))
                })?;
            }
            "--cache" => opts.cache_path = Some(PathBuf::from(take("--cache")?)),
            other if other.starts_with("--") => {
                return Err(EngineError::Schema(format!("unknown option {other}")));
            }
            other => positional.push(other.to_string()),
        }
    }
    Ok((opts, positional))
}

fn open_cache(opts: &CliOptions) -> Result<EvalCache> {
    match &opts.cache_path {
        Some(path) => match EvalCache::with_store(path.clone()) {
            Ok(cache) => Ok(cache),
            // A corrupt store (truncated write, version skew) must not
            // wedge every subsequent run: warn, start fresh, overwrite on
            // persist.
            Err(e) => {
                eprintln!("dtc: warning: ignoring unusable cache store: {e}");
                Ok(EvalCache::fresh_store(path.clone()))
            }
        },
        None => Ok(EvalCache::in_memory()),
    }
}

fn evaluate(catalog: &Catalog, opts: &CliOptions) -> Result<(Vec<Scenario>, BatchResult)> {
    let scenarios = catalog.expand()?;
    eprintln!(
        "catalog {:?}: {} scenario(s) on {} thread(s)…",
        catalog.name,
        scenarios.len(),
        opts.run.threads.max(1)
    );
    let cache = open_cache(opts)?;
    let result = run_batch(&scenarios, &cache, &opts.run);
    cache.persist()?;
    eprintln!("{}", render_summary(&result));
    Ok((scenarios, result))
}

/// Renders the Figure 7 view: per city pair, the change in number of nines
/// over that pair's baseline point.
pub fn render_fig7_grid(scenarios: &[Scenario], outcomes: &[Outcome]) -> String {
    let nines_of = |sec: &str, alpha: f64, years: f64| -> f64 {
        scenarios
            .iter()
            .position(|s| {
                s.secondary.as_deref() == Some(sec)
                    && s.alpha == Some(alpha)
                    && s.disaster_years == Some(years)
            })
            .and_then(|i| outcomes[i].report.as_ref().ok().map(|r| r.nines))
            .unwrap_or(f64::NAN)
    };
    // Distinct secondaries / alphas / years, in first-appearance order.
    let mut pairs: Vec<String> = Vec::new();
    let mut alphas: Vec<f64> = Vec::new();
    let mut years_axis: Vec<f64> = Vec::new();
    for s in scenarios {
        if let Some(sec) = &s.secondary {
            if !pairs.contains(sec) {
                pairs.push(sec.clone());
            }
        }
        if let Some(a) = s.alpha {
            if !alphas.contains(&a) {
                alphas.push(a);
            }
        }
        if let Some(y) = s.disaster_years {
            if !years_axis.contains(&y) {
                years_axis.push(y);
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 7 — availability increase over the per-pair baseline (Δ nines)\n"
    );
    let _ = write!(out, "{:<12} {:>6} |", "pair", "α");
    for y in &years_axis {
        let _ = write!(out, " {:>9}", format!("{y} y"));
    }
    let _ = writeln!(out, " | {:>9}", "base A");
    let width = 22 + 10 * years_axis.len() + 12;
    let _ = writeln!(out, "{}", "-".repeat(width));
    for pair in &pairs {
        let base = scenarios
            .iter()
            .position(|s| s.secondary.as_deref() == Some(pair.as_str()) && s.is_baseline);
        let (base_nines, base_avail) = match base {
            Some(i) => match &outcomes[i].report {
                Ok(r) => (r.nines, r.availability),
                Err(_) => (f64::NAN, f64::NAN),
            },
            None => (f64::NAN, f64::NAN),
        };
        for (row, &alpha) in alphas.iter().enumerate() {
            if row == 0 {
                let _ = write!(out, "{:<12} {:>6.2} |", pair, alpha);
            } else {
                let _ = write!(out, "{:<12} {:>6.2} |", "", alpha);
            }
            for &y in &years_axis {
                let delta = nines_of(pair, alpha, y) - base_nines;
                let _ = write!(out, " {:>+9.3}", delta);
            }
            if row == 0 {
                let _ = writeln!(out, " | {:>9.6}", base_avail);
            } else {
                let _ = writeln!(out, " |");
            }
        }
    }
    out
}

fn cmd_run(catalog: Catalog, opts: &CliOptions) -> Result<()> {
    let (scenarios, result) = evaluate(&catalog, opts)?;
    print!("{}", render(&scenarios, &result, opts.format));
    Ok(())
}

fn cmd_fig7(catalog: Catalog, opts: &CliOptions) -> Result<()> {
    let (scenarios, result) = evaluate(&catalog, opts)?;
    match opts.format {
        Format::Table => print!("{}", render_fig7_grid(&scenarios, &result.outcomes)),
        other => print!("{}", render(&scenarios, &result, other)),
    }
    Ok(())
}

fn cmd_validate(catalog: Catalog) -> Result<()> {
    let scenarios = catalog.expand()?;
    let mut compiled = 0usize;
    for s in &scenarios {
        dtc_core::CloudModel::build(s.spec.clone()).map_err(|e| {
            EngineError::Schema(format!("scenario {:?} does not compile: {e}", s.name))
        })?;
        compiled += 1;
    }
    println!(
        "catalog {:?} ok: {} template(s), {} scenario(s), all compile",
        catalog.name,
        catalog.templates.len(),
        compiled
    );
    for s in &scenarios {
        println!(
            "  {:<60} dcs={} pms={} vms={} k={}",
            s.name,
            s.spec.data_centers.len(),
            s.spec.total_pms(),
            s.spec.total_vms(),
            s.spec.min_running_vms
        );
    }
    Ok(())
}

fn dispatch(args: &[String]) -> Result<()> {
    let Some(command) = args.first() else {
        println!("{USAGE}");
        return Ok(());
    };
    let (opts, positional) = parse_options(&args[1..])?;
    let catalog_from_arg = |what: &str| -> Result<Catalog> {
        let path = positional
            .first()
            .ok_or_else(|| EngineError::Schema(format!("{what} needs a catalog file")))?;
        Catalog::from_path(std::path::Path::new(path))
    };
    match command.as_str() {
        "run" => cmd_run(catalog_from_arg("run")?, &opts),
        "table7" => cmd_run(crate::catalogs::table7(), &opts),
        "fig7" => cmd_fig7(crate::catalogs::fig7(), &opts),
        "validate" => cmd_validate(catalog_from_arg("validate")?),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(EngineError::Schema(format!("unknown command {other:?}; try `dtc help`"))),
    }
}

/// CLI entry point; returns the process exit code.
pub fn run_cli(args: &[String]) -> i32 {
    match dispatch(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("dtc: {e}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_parsing() {
        let args: Vec<String> = ["--format", "csv", "--threads", "2", "--solver", "power", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (opts, positional) = parse_options(&args).unwrap();
        assert_eq!(opts.format, Format::Csv);
        assert_eq!(opts.run.threads, 2);
        assert_eq!(opts.run.eval.method, dtc_markov::Method::Power);
        assert_eq!(positional, vec!["x".to_string()]);

        assert!(parse_options(&["--format".into(), "xml".into()]).is_err());
        assert!(parse_options(&["--threads".into()]).is_err());
        assert!(parse_options(&["--wat".into()]).is_err());
    }

    #[test]
    fn unknown_command_fails() {
        assert_eq!(run_cli(&["frobnicate".into()]), 2);
        assert_eq!(run_cli(&[]), 0, "no command prints usage");
        assert_eq!(run_cli(&["help".into()]), 0);
    }

    #[test]
    fn run_needs_a_catalog_path() {
        assert_eq!(run_cli(&["run".into()]), 2);
        assert_eq!(run_cli(&["run".into(), "/no/such/file.toml".into()]), 2);
    }
}
