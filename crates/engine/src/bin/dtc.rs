//! The `dtc` command-line evaluator; see `dtc help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(dtc_engine::cli::run_cli(&args));
}
